//! End-to-end system tests: generate → persist → reload → index → query,
//! with planted-outlier recovery as the acceptance criterion.

use hin_datagen::dblp::{generate, SyntheticConfig};
use hin_graph::io;
use netout::{IndexPolicy, MeasureKind, OutlierDetector};

fn sharp_config(seed: u64) -> SyntheticConfig {
    SyntheticConfig {
        outlier_fraction: 0.05,
        outlier_strength: 1.0,
        crossover_prob: 0.01,
        authors: 500,
        papers: 4_000,
        ..SyntheticConfig::tiny(seed)
    }
}

/// NetOut recovers planted cross-community authors among a hub's coauthors.
#[test]
fn planted_outliers_recovered_from_coauthor_query() {
    let net = generate(&sharp_config(7));
    let (anchor, planted_in_set) = bench_anchor(&net);
    assert!(planted_in_set > 0, "fixture must plant outliers near the hub");
    let detector = OutlierDetector::new(net.graph.clone());
    let k = 10;
    let result = detector
        .query(&format!(
            "FIND OUTLIERS FROM author{{\"{}\"}}.paper.author \
             JUDGED BY author.paper.venue TOP {k};",
            net.graph.vertex_name(anchor)
        ))
        .unwrap();
    let ranking: Vec<_> = result.ranked.iter().map(|o| o.vertex).collect();
    let p = net.precision_at_k(&ranking, k);
    assert!(
        p >= 0.3,
        "precision@{k} = {p}, expected clear recovery of planted outliers"
    );
}

/// Pick the hub whose coauthor set holds the most planted outliers.
fn bench_anchor(
    net: &hin_datagen::dblp::SyntheticNetwork,
) -> (hin_graph::VertexId, usize) {
    use hin_graph::{traverse, MetaPath};
    let apa = MetaPath::parse("author.paper.author", net.graph.schema()).unwrap();
    net.hubs
        .iter()
        .map(|&hub| {
            let coauthors = traverse::neighborhood(&net.graph, hub, &apa).unwrap();
            let planted = coauthors.iter().filter(|v| net.is_planted(**v)).count();
            (hub, planted)
        })
        .max_by_key(|&(_, p)| p)
        .unwrap()
}

/// Persisting to the text format and reloading preserves query results
/// bit-for-bit (scores included).
#[test]
fn persistence_roundtrip_preserves_results() {
    let net = generate(&SyntheticConfig::tiny(8));
    let dir = std::env::temp_dir().join("hin_e2e_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("net.hin");
    io::save_graph(&net.graph, &path).unwrap();
    let reloaded = io::load_graph(&path).unwrap();
    assert_eq!(reloaded.vertex_count(), net.graph.vertex_count());
    assert_eq!(reloaded.edge_count(), net.graph.edge_count());

    let query = format!(
        "FIND OUTLIERS FROM author{{\"{}\"}}.paper.author \
         JUDGED BY author.paper.venue TOP 10;",
        net.graph.vertex_name(net.hubs[0])
    );
    let before = OutlierDetector::new(net.graph.clone()).query(&query).unwrap();
    let after = OutlierDetector::new(reloaded).query(&query).unwrap();
    assert_eq!(before.names(), after.names());
    for (b, a) in before.ranked.iter().zip(&after.ranked) {
        assert_eq!(b.score, a.score);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A full indexed pipeline: PM index, multi-feature weighted query,
/// reference set different from candidate set, WHERE filter.
#[test]
fn complex_query_through_pm_index() {
    let net = generate(&SyntheticConfig::tiny(9));
    let g = &net.graph;
    let venue_t = g.schema().vertex_type_by_name("venue").unwrap();
    let venues = g.vertices_of_type(venue_t);
    let (v1, v2) = (g.vertex_name(venues[0]), g.vertex_name(venues[1]));
    let query = format!(
        "FIND OUTLIERS FROM venue{{\"{v1}\"}}.paper.author AS A WHERE COUNT(A.paper) >= 2 \
         COMPARED TO venue{{\"{v2}\"}}.paper.author \
         JUDGED BY author.paper.venue : 2.0, author.paper.term \
         TOP 15;"
    );
    let baseline = OutlierDetector::new(g.clone());
    let pm = OutlierDetector::with_index(g.clone(), IndexPolicy::full()).unwrap();
    let rb = baseline.query(&query).unwrap();
    let rp = pm.query(&query).unwrap();
    assert_eq!(rb.names(), rp.names());
    assert!(rp.stats.indexed_count > 0, "PM must serve from the index");
    assert!(rb.ranked.len() <= 15);
    for w in rb.ranked.windows(2) {
        assert!(w[0].score <= w[1].score, "ascending Ω ordering");
    }
}

/// All five measures run end-to-end on the same query and produce
/// internally consistent rankings.
#[test]
fn all_measures_end_to_end() {
    let net = generate(&SyntheticConfig::tiny(10));
    let query = format!(
        "FIND OUTLIERS FROM author{{\"{}\"}}.paper.author \
         JUDGED BY author.paper.venue TOP 8;",
        net.graph.vertex_name(net.hubs[0])
    );
    for kind in [
        MeasureKind::NetOut,
        MeasureKind::PathSim,
        MeasureKind::CosSim,
        MeasureKind::Lof { k: 3 },
        MeasureKind::KnnDist { k: 3 },
    ] {
        let detector = OutlierDetector::new(net.graph.clone()).measure(kind);
        let r = detector.query(&query).unwrap_or_else(|e| {
            panic!("{} failed: {e}", kind.name());
        });
        assert_eq!(r.measure, kind.name());
        assert!(!r.ranked.is_empty(), "{} returned nothing", kind.name());
        // Scores are sorted most-outlying first under the measure's order.
        let ascending = matches!(
            kind,
            MeasureKind::NetOut | MeasureKind::PathSim | MeasureKind::CosSim
        );
        for w in r.ranked.windows(2) {
            if ascending {
                assert!(w[0].score <= w[1].score, "{}", kind.name());
            } else {
                assert!(w[0].score >= w[1].score, "{}", kind.name());
            }
        }
    }
}

/// SPM built from a real workload answers that workload with index hits
/// while staying smaller than full PM.
#[test]
fn spm_workload_locality() {
    use hin_datagen::workload::{generate_queries, QueryTemplate};
    let net = generate(&SyntheticConfig::tiny(11));
    let queries = generate_queries(&net.graph, QueryTemplate::Q1, 40, 3);
    let pm = OutlierDetector::with_index(net.graph.clone(), IndexPolicy::full()).unwrap();
    let spm = OutlierDetector::with_index(
        net.graph.clone(),
        IndexPolicy::selective(queries.clone(), 0.01),
    )
    .unwrap();
    assert!(spm.index_size_bytes() < pm.index_size_bytes());
    let mut hits = 0u64;
    for q in &queries {
        hits += spm.query(q).unwrap().stats.indexed_count;
    }
    assert!(hits > 0, "SPM should serve its own workload from the index");
}
