//! Chaos-under-load integration tests (DESIGN.md §11): deterministic fault
//! injection drives worker panics, worker kills, and dropped connections
//! through a live server, and the suite proves the fault-tolerance
//! invariants end to end — panics are isolated into structured responses,
//! killed workers are respawned and the queue keeps draining, the
//! self-healing client recovers dropped responses byte-identically from the
//! server-side dedup cache, and the final statistics ledger balances.
//!
//! Every fault decision comes from a seeded plan keyed on the request
//! admission index, so each run injects *exactly* the planned faults and
//! the assertions can demand equality, not bounds.

use hin_datagen::dblp::{generate, SyntheticConfig};
use hin_service::client::{response_kind, run_closed_loop};
use hin_service::{
    Client, FaultPlan, LoadSpec, RetryClient, RetryPolicy, Server, ServerConfig, StatsSnapshot,
};
use netout::OutlierDetector;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// A small synthetic DBLP network plus a valid anchored query against it.
fn fixture(seed: u64) -> (OutlierDetector, String) {
    let net = generate(&SyntheticConfig::tiny(seed));
    let author = net.graph.schema().vertex_type_by_name("author").unwrap();
    let paper = net.graph.schema().vertex_type_by_name("paper").unwrap();
    let anchor = net
        .graph
        .vertices_of_type(author)
        .iter()
        .find(|&&a| net.graph.step_degree(a, paper) >= 3)
        .copied()
        .unwrap();
    let query = format!(
        "FIND OUTLIERS FROM author{{\"{}\"}}.paper.author \
         JUDGED BY author.paper.venue TOP 5;",
        net.graph.vertex_name(anchor)
    );
    (
        OutlierDetector::new(net.graph).with_vector_cache(1024),
        query,
    )
}

fn spawn(
    detector: OutlierDetector,
    config: ServerConfig,
) -> (SocketAddr, std::thread::JoinHandle<StatsSnapshot>) {
    let server = Server::bind(detector, "127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr();
    (addr, std::thread::spawn(move || server.run()))
}

fn shutdown(addr: SocketAddr) {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    let bye = client.send_line("SHUTDOWN").expect("shutdown");
    assert!(bye.starts_with(r#"{"bye""#), "{bye}");
}

/// Run one sequential pass of `n` SLEEP requests against a fresh server
/// carrying `plan`, returning the response kind observed at each request
/// index plus the final statistics snapshot.
fn sequential_pass(plan: &str, n: usize) -> (Vec<String>, StatsSnapshot) {
    let (detector, _) = fixture(51);
    let (addr, server) = spawn(
        detector,
        ServerConfig {
            workers: 1,
            queue_cap: 16,
            poll_interval: Duration::from_millis(5),
            fault_plan: Some(FaultPlan::parse(plan).expect("plan parses")),
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(addr).expect("connect");
    let mut kinds = Vec::with_capacity(n);
    for _ in 0..n {
        let response = client.send_line("SLEEP 1").expect("one response");
        let kind = match response_kind(&response) {
            Some("err") if response.contains(r#""code":"Panic""#) => "panic".to_string(),
            Some("err") if response.contains("worker dropped the request") => "killed".to_string(),
            Some(k) => k.to_string(),
            None => panic!("unclassifiable response: {response}"),
        };
        kinds.push(kind);
    }
    shutdown(addr);
    (kinds, server.join().expect("server thread"))
}

/// The same fault plan injects the same faults at the same request indices
/// on every run — chaos is reproducible, so failures found under it are
/// debuggable. A worker panic at index 1 and a worker kill at index 3 are
/// both proven non-fatal: later requests on the same connection succeed.
#[test]
fn fault_injection_is_deterministic_and_panics_are_not_fatal() {
    let plan = "seed=5;panic@1;kill@3";
    let (first, stats) = sequential_pass(plan, 6);
    assert_eq!(
        first,
        vec!["slept", "panic", "slept", "killed", "slept", "slept"],
        "planned faults must land exactly at their indices"
    );
    assert_eq!(stats.panics, 1, "{stats:?}");
    assert_eq!(
        stats.respawns, 1,
        "killed worker must be respawned: {stats:?}"
    );
    assert_eq!(stats.errors, 2, "one panic + one kill: {stats:?}");
    assert_eq!(stats.in_flight, 0, "{stats:?}");
    assert_eq!(stats.queue_depth, 0, "{stats:?}");

    // Second run, fresh server, same plan: byte-for-byte the same schedule.
    let (second, _) = sequential_pass(plan, 6);
    assert_eq!(first, second, "fault schedule must be reproducible");
}

/// Concurrent chaos with the self-healing client: every injected connection
/// drop is healed by retry + server-side dedup (no lost or double-executed
/// requests), every injected panic/kill surfaces as exactly one structured
/// error, and the final ledger balances: ok + errors = all requests, zero
/// hung connections, nothing left in flight.
#[test]
fn chaos_under_concurrency_accounts_for_every_request() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 10;
    const TOTAL: u64 = (CLIENTS * PER_CLIENT) as u64;

    let (detector, _) = fixture(53);
    let plan = FaultPlan::parse("seed=9;panic~6;kill~11;drop~4").expect("plan parses");
    let (addr, server) = spawn(
        detector,
        ServerConfig {
            workers: 4,
            queue_cap: 64,
            poll_interval: Duration::from_millis(5),
            fault_plan: Some(plan),
            ..ServerConfig::default()
        },
    );

    let report = run_closed_loop(
        addr,
        &LoadSpec {
            clients: CLIENTS,
            requests_per_client: PER_CLIENT,
            lines: vec!["SLEEP 1".to_string()],
            retry: Some(RetryPolicy {
                max_attempts: 5,
                base_backoff: Duration::from_millis(2),
                backoff_cap: Duration::from_millis(20),
                overall_deadline: Duration::from_secs(20),
                seed: 77,
            }),
        },
    );

    // What did the plan actually inject? Ask the server.
    let mut probe = Client::connect(addr).expect("connect");
    let faults = probe.send_line("FAULTS").expect("status");
    let field = |name: &str| {
        hin_service::client::json_u64_field(&faults, name)
            .unwrap_or_else(|| panic!("missing {name} in {faults}"))
    };
    let (panics, kills, drops) = (field("panics"), field("kills"), field("drops"));
    // Exactly one fault decision per pool request: retries of dropped
    // responses are served from the dedup cache and never re-claim.
    assert_eq!(field("requests_seen"), TOTAL, "{faults}");
    assert!(panics + kills > 0, "plan injected nothing: {faults}");
    assert!(drops > 0, "plan injected no drops: {faults}");
    drop(probe);

    // Every request got exactly one definitive response…
    assert_eq!(report.requests, TOTAL, "{report:?}");
    assert_eq!(
        report.io_errors, 0,
        "drops must be healed by retry: {report:?}"
    );
    assert_eq!(report.busy, 0, "queue 64 must not reject here: {report:?}");
    // …and the split is exactly the injected faults: drops recovered (ok),
    // panics and kills surfaced as structured errors.
    assert_eq!(report.errors, panics + kills, "{report:?}\n{faults}");
    assert_eq!(report.ok, TOTAL - panics - kills, "{report:?}\n{faults}");

    shutdown(addr);
    let stats = server.join().expect("server thread");
    assert_eq!(stats.panics, panics, "{stats:?}");
    assert_eq!(stats.respawns, kills, "every kill respawned: {stats:?}");
    assert_eq!(stats.dropped_conns, drops, "{stats:?}");
    assert_eq!(
        stats.deduped, drops,
        "each drop retried exactly once: {stats:?}"
    );
    assert_eq!(stats.in_flight, 0, "{stats:?}");
    assert_eq!(stats.queue_depth, 0, "{stats:?}");
}

/// A response lost to a dropped connection is recovered **byte-identically**
/// (same `exec_us`, same ranking bytes) by retrying with the same
/// idempotency id: the server executed the request once, cached the
/// serialized response, and replays it for every retry.
#[test]
fn dropped_response_recovers_byte_identically_within_deadline() {
    let (detector, query) = fixture(59);
    let (addr, server) = spawn(
        detector,
        ServerConfig {
            workers: 2,
            queue_cap: 8,
            fault_plan: Some(FaultPlan::parse("seed=1;drop@0").expect("plan parses")),
            ..ServerConfig::default()
        },
    );

    // Explicit id so the recovered response can be cross-checked below.
    let line = format!("QUERY id=424242 {query}");
    let policy = RetryPolicy {
        max_attempts: 4,
        base_backoff: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(20),
        overall_deadline: Duration::from_secs(10),
        seed: 13,
    };
    let deadline = policy.overall_deadline;
    let mut healing = RetryClient::new(addr, policy).expect("resolve");
    let started = Instant::now();
    let recovered = healing.send_idempotent(&line).expect("recovered response");
    assert!(
        started.elapsed() < deadline,
        "recovery blew the caller deadline: {:?}",
        started.elapsed()
    );
    assert_eq!(response_kind(&recovered), Some("result"), "{recovered}");

    // The same id through a plain client replays the identical bytes —
    // including `exec_us`, which a re-execution could never reproduce.
    let mut plain = Client::connect(addr).expect("connect");
    let replayed = plain.send_line(&line).expect("replay");
    assert_eq!(recovered, replayed, "dedup replay must be byte-identical");

    shutdown(addr);
    let stats = server.join().expect("server thread");
    assert_eq!(stats.dropped_conns, 1, "{stats:?}");
    assert!(
        stats.deduped >= 2,
        "retry + replay both hit the cache: {stats:?}"
    );
    assert_eq!(stats.completed, 1, "the query ran exactly once: {stats:?}");
}

/// With a hang timeout configured, a worker stuck on one request is
/// detected by the supervisor and a replacement is spawned: new requests
/// are served promptly instead of queueing behind the wedge, and the
/// stuck request still completes and delivers its response.
#[test]
fn hung_worker_gets_a_replacement_and_service_continues() {
    let (detector, _) = fixture(61);
    let (addr, server) = spawn(
        detector,
        ServerConfig {
            workers: 1,
            queue_cap: 8,
            poll_interval: Duration::from_millis(5),
            hang_timeout: Some(Duration::from_millis(100)),
            ..ServerConfig::default()
        },
    );

    // Wedge the only worker on a long sleep (cooperative, but well past the
    // hang timeout — indistinguishable from a stuck request).
    let mut sleeper = Client::connect(addr).expect("connect");
    sleeper.send_no_wait("SLEEP 3000").expect("send");

    // A second request would normally wait ~3 s behind the sleeper. The
    // supervisor's replacement worker must serve it far sooner.
    let mut prompt = Client::connect(addr).expect("connect");
    let started = Instant::now();
    let slept = prompt.send_line("SLEEP 1").expect("served by replacement");
    assert_eq!(response_kind(&slept), Some("slept"), "{slept}");
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "request queued behind a hung worker for {:?}",
        started.elapsed()
    );

    // The wedged request is not abandoned: its response still arrives.
    let woke = sleeper.read_response().expect("sleeper response");
    assert_eq!(response_kind(&woke), Some("slept"), "{woke}");

    shutdown(addr);
    let stats = server.join().expect("server thread");
    assert!(stats.respawns >= 1, "no replacement spawned: {stats:?}");
    assert_eq!(stats.completed, 2, "{stats:?}");
    assert_eq!(stats.in_flight, 0, "{stats:?}");
}

/// The `FAULTS` verb reconfigures injection at runtime: install a plan,
/// watch it fire and count, clear it, and the server returns to normal
/// service with a fresh sequence (each (re)install resets the ledger so
/// planned indices are predictable from that point).
#[test]
fn faults_verb_installs_fires_and_clears_at_runtime() {
    let (detector, _) = fixture(67);
    let (addr, server) = spawn(
        detector,
        ServerConfig {
            workers: 1,
            queue_cap: 8,
            poll_interval: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    );

    let mut client = Client::connect(addr).expect("connect");
    // No plan installed.
    let status = client.send_line("FAULTS").expect("status");
    assert!(status.contains(r#""spec":null"#), "{status}");

    // Install: the next pool request (index 0) panics.
    let installed = client.send_line("FAULTS seed=3;panic@0").expect("install");
    assert!(
        installed.contains(r#""spec":"seed=3;panic@0""#),
        "{installed}"
    );
    let hit = client.send_line("SLEEP 1").expect("response");
    assert!(hit.contains(r#""code":"Panic""#), "{hit}");
    let status = client.send_line("FAULTS").expect("status");
    assert!(status.contains(r#""panics":1"#), "{status}");
    assert!(status.contains(r#""requests_seen":1"#), "{status}");

    // Clear: service is normal again; the injection ledger starts fresh.
    let cleared = client.send_line("FAULTS OFF").expect("clear");
    assert!(cleared.contains(r#""spec":null"#), "{cleared}");
    assert!(cleared.contains(r#""requests_seen":0"#), "{cleared}");
    let ok = client.send_line("SLEEP 1").expect("response");
    assert_eq!(response_kind(&ok), Some("slept"), "{ok}");

    shutdown(addr);
    let stats = server.join().expect("server thread");
    assert_eq!(stats.panics, 1, "{stats:?}");
}
