//! Integration tests for the scatter-gather coordinator (DESIGN.md §13):
//! the three acceptance properties of scale-out serving.
//!
//! 1. A coordinator fronting N backends answers every query byte-identically
//!    to a single-box `serve` (only `exec_us` differs), across measures and
//!    the paper's Q1/Q2/Q3 workload templates.
//! 2. A seeded chaos plan killing one backend's workers mid-workload never
//!    surfaces to the client: retry/failover re-routes the shard and the
//!    results stay byte-identical, within the deadline.
//! 3. When every replica of a shard is down, the coordinator returns a
//!    degraded partial result naming the missing shard (strict mode: a
//!    structured `NoBackends` error), and never hangs or panics.

use hin_datagen::dblp::{generate, SyntheticConfig};
use hin_datagen::workload::{generate_queries, QueryTemplate};
use hin_service::{Client, Coordinator, CoordinatorConfig, Server, ServerConfig, StatsSnapshot};
use netout::{MeasureKind, OutlierDetector};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Build the deterministic tiny DBLP network; every call with the same seed
/// yields an identical graph, so backends and the single-box control all
/// serve the same data.
fn detector(seed: u64, measure: MeasureKind) -> OutlierDetector {
    let net = generate(&SyntheticConfig::tiny(seed));
    OutlierDetector::new(net.graph)
        .with_vector_cache(1024)
        .measure(measure)
}

fn spawn_backend(
    detector: OutlierDetector,
    config: ServerConfig,
) -> (SocketAddr, std::thread::JoinHandle<StatsSnapshot>) {
    let server = Server::bind(detector, "127.0.0.1:0", config).expect("bind backend");
    let addr = server.local_addr();
    (addr, std::thread::spawn(move || server.run()))
}

fn coordinator_config() -> CoordinatorConfig {
    CoordinatorConfig {
        heartbeat_interval: Duration::from_millis(100),
        connect_timeout: Duration::from_millis(300),
        default_deadline: Duration::from_secs(10),
        ..CoordinatorConfig::default()
    }
}

fn spawn_coordinator(
    backends: Vec<SocketAddr>,
    config: CoordinatorConfig,
) -> (
    SocketAddr,
    std::thread::JoinHandle<hin_service::CoordSnapshot>,
) {
    let coordinator = Coordinator::bind(backends, "127.0.0.1:0", config).expect("bind coordinator");
    let addr = coordinator.local_addr();
    (addr, std::thread::spawn(move || coordinator.run()))
}

fn shutdown(addr: SocketAddr) {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    let bye = client.send_line("SHUTDOWN").expect("shutdown");
    assert!(bye.starts_with(r#"{"bye""#), "{bye}");
}

/// Replace the run-dependent `exec_us` value so responses can be compared
/// byte-for-byte.
fn strip_exec_us(line: &str) -> String {
    let Some(start) = line.find("\"exec_us\":") else {
        return line.to_string();
    };
    let rest = &line[start..];
    let end = rest
        .find([',', '}'])
        .map(|i| start + i)
        .unwrap_or(line.len());
    format!("{}\"exec_us\":0{}", &line[..start], &line[end..])
}

/// The workload: a few instances of each paper template. All three
/// templates are single-feature queries, where the shard merge is exactly
/// the single-box score list (multi-feature best-effort runs may differ in
/// summation order and are rejected by strict shard execution).
fn workload_queries(seed: u64) -> Vec<String> {
    let net = generate(&SyntheticConfig::tiny(seed));
    QueryTemplate::ALL
        .iter()
        .flat_map(|&t| generate_queries(&net.graph, t, 2, 77))
        .collect()
}

#[test]
fn coordinator_matches_single_box_across_measures_and_templates() {
    let seed = 41;
    let queries = workload_queries(seed);
    assert_eq!(queries.len(), 6, "two instances of each template");
    for measure in [
        MeasureKind::NetOut,
        MeasureKind::PathSim,
        MeasureKind::CosSim,
        MeasureKind::Lof { k: 3 },
        MeasureKind::KnnDist { k: 3 },
    ] {
        let config = ServerConfig {
            workers: 2,
            queue_cap: 16,
            ..ServerConfig::default()
        };
        let (single, single_h) = spawn_backend(detector(seed, measure), config.clone());
        let (b0, b0_h) = spawn_backend(detector(seed, measure), config.clone());
        let (b1, b1_h) = spawn_backend(detector(seed, measure), config.clone());
        let (b2, b2_h) = spawn_backend(detector(seed, measure), config);
        let (coord, coord_h) = spawn_coordinator(vec![b0, b1, b2], coordinator_config());

        let mut direct = Client::connect(single).expect("connect single box");
        let mut merged = Client::connect(coord).expect("connect coordinator");
        for query in &queries {
            let line = format!("QUERY {query}");
            let want = direct.send_line(&line).expect("single-box response");
            let got = merged.send_line(&line).expect("coordinator response");
            assert!(
                want.starts_with(r#"{"result""#),
                "fixture query must succeed: {want}"
            );
            assert_eq!(
                strip_exec_us(&got),
                strip_exec_us(&want),
                "measure {measure:?}, query {query:?}"
            );
        }
        drop(direct);
        drop(merged);
        shutdown(coord);
        coord_h.join().expect("coordinator");
        for (addr, handle) in [(single, single_h), (b0, b0_h), (b1, b1_h), (b2, b2_h)] {
            shutdown(addr);
            handle.join().expect("backend");
        }
    }
}

#[test]
fn killed_backend_fails_over_without_client_visible_errors() {
    let seed = 43;
    let queries = workload_queries(seed);
    let config = ServerConfig {
        workers: 2,
        queue_cap: 16,
        ..ServerConfig::default()
    };
    let (b0, b0_h) = spawn_backend(detector(seed, MeasureKind::NetOut), config.clone());
    let (b1, b1_h) = spawn_backend(detector(seed, MeasureKind::NetOut), config);
    let (coord, coord_h) = spawn_coordinator(vec![b0, b1], coordinator_config());

    // Collect the expected answers before the chaos plan lands (backend 0
    // doubles as the single-box control; it serves the whole graph).
    let mut control = Client::connect(b0).expect("connect control");
    let expected: Vec<String> = queries
        .iter()
        .map(|q| {
            control
                .send_line(&format!("QUERY {q}"))
                .expect("control response")
        })
        .collect();
    drop(control);

    // Install a seeded kill plan on backend 1 *through the coordinator*:
    // the first six requests it executes each take down a worker mid-query
    // (the supervisor respawns them). The coordinator must fail the shard
    // over to backend 0 every time.
    let mut ops = Client::connect(coord).expect("connect ops");
    let faults = ops
        .send_line("FAULTS 1 seed=9;kill@0;kill@1;kill@2;kill@3;kill@4;kill@5")
        .expect("install fault plan");
    assert!(faults.starts_with(r#"{"faults""#), "{faults}");

    let started = Instant::now();
    let mut client = Client::connect(coord).expect("connect workload");
    for (query, want) in queries.iter().zip(&expected) {
        let got = client
            .send_line(&format!("QUERY {query}"))
            .expect("workload response");
        assert!(
            got.starts_with(r#"{"result""#),
            "client saw a non-result during failover: {got}"
        );
        assert!(
            !got.contains(r#""degraded""#) || got.contains(r#""degraded":null"#),
            "failover must recover the shard, not degrade: {got}"
        );
        assert_eq!(strip_exec_us(&got), strip_exec_us(want), "query {query:?}");
    }
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "failover workload took {:?}",
        started.elapsed()
    );
    drop(client);

    // The coordinator observed the faults as failovers, not client errors.
    let metrics = ops.send_line("METRICS JSON").expect("metrics");
    assert!(metrics.contains(r#""failovers":"#), "{metrics}");
    drop(ops);

    shutdown(coord);
    let snapshot = coord_h.join().expect("coordinator");
    assert!(
        snapshot.failovers >= 1,
        "kill plan never triggered a failover: {snapshot:?}"
    );
    assert_eq!(snapshot.no_backends, 0, "{snapshot:?}");
    shutdown(b0);
    shutdown(b1);
    b0_h.join().expect("backend 0");
    b1_h.join().expect("backend 1");
}

/// PR 5's invariant extended across processes (DESIGN.md §17): `trace=1`
/// must never perturb the merged answer — not under aggressive hedging
/// (traced winners racing cancelled losers), not across failover (failed
/// attempts become annotated spans, not result changes) — and the
/// assembled tree must stitch coordinator and backend spans together.
#[test]
fn tracing_is_invisible_across_failover_and_hedging() {
    let seed = 53;
    let queries = workload_queries(seed);
    let config = ServerConfig {
        workers: 2,
        queue_cap: 16,
        ..ServerConfig::default()
    };
    let (b0, b0_h) = spawn_backend(detector(seed, MeasureKind::NetOut), config.clone());
    let (b1, b1_h) = spawn_backend(detector(seed, MeasureKind::NetOut), config);
    // Hedge almost immediately: every shard dials its second replica while
    // the first is still working, so traced span payloads ride both the
    // winning and the cancelled attempt.
    let (coord, coord_h) = spawn_coordinator(
        vec![b0, b1],
        CoordinatorConfig {
            hedge_after: Duration::from_millis(1),
            ..coordinator_config()
        },
    );

    // Untraced control answers from the same coordinator.
    let mut client = Client::connect(coord).expect("connect");
    let expected: Vec<String> = queries
        .iter()
        .map(|q| {
            let line = client
                .send_line(&format!("QUERY {q}"))
                .expect("control response");
            assert!(line.starts_with(r#"{"result""#), "{line}");
            line
        })
        .collect();

    // A seeded kill plan on backend 1 forces failovers mid-workload.
    let faults = client
        .send_line("FAULTS 1 seed=5;kill@0;kill@2")
        .expect("install fault plan");
    assert!(faults.starts_with(r#"{"faults""#), "{faults}");

    for (query, want) in queries.iter().zip(&expected) {
        let got = client
            .send_line(&format!("QUERY trace=1 {query}"))
            .expect("traced response");
        assert!(
            !got.contains("\"trace\""),
            "tracing leaked into a client-visible result: {got}"
        );
        assert_eq!(
            strip_exec_us(&got),
            strip_exec_us(want),
            "trace=1 perturbed the bytes of query {query:?}"
        );
    }
    drop(client);

    // Every traced query force-logged into the coordinator's ring; the
    // assembled tree must hold spans from both sides of the wire —
    // coordinator scatter/merge plus grafted backend engine phases.
    let trace = hin_service::fetch_latest_trace(coord)
        .expect("fetch trace")
        .expect("ring has entries");
    let rendered = hin_telemetry::trace::render_tree(&trace.spans);
    for span in ["carve", "scatter", "merge", "attempt", "set_retrieval"] {
        assert!(rendered.contains(span), "missing {span} in:\n{rendered}");
    }

    shutdown(coord);
    let snapshot = coord_h.join().expect("coordinator");
    assert!(
        snapshot.failovers + snapshot.hedges >= 1,
        "the kill plan and 1ms hedge trigger must have exercised extra attempts: {snapshot:?}"
    );
    shutdown(b0);
    shutdown(b1);
    b0_h.join().expect("backend 0");
    b1_h.join().expect("backend 1");
}

#[test]
fn unrecoverable_shard_degrades_and_total_outage_errors() {
    let seed = 47;
    let query = workload_queries(seed).remove(0);
    let (b0, b0_h) = spawn_backend(
        detector(seed, MeasureKind::NetOut),
        ServerConfig {
            workers: 2,
            queue_cap: 16,
            ..ServerConfig::default()
        },
    );
    // Two dead replicas: shard 1 of 3 maps to {backend 1, backend 2}, both
    // unreachable, so it cannot be recovered; shards 0 and 2 reach the live
    // backend 0.
    let dead1: SocketAddr = "127.0.0.1:1".parse().expect("addr");
    let dead2: SocketAddr = "127.0.0.1:2".parse().expect("addr");
    let (coord, coord_h) = spawn_coordinator(
        vec![b0, dead1, dead2],
        CoordinatorConfig {
            attempts: 2,
            down_after: 1,
            ..coordinator_config()
        },
    );
    let started = Instant::now();
    let mut client = Client::connect(coord).expect("connect");
    let partial = client
        .send_line(&format!("QUERY timeout-ms=5000 {query}"))
        .expect("degraded response");
    assert!(partial.starts_with(r#"{"result""#), "{partial}");
    assert!(partial.contains(r#""degraded":{"#), "{partial}");
    assert!(
        partial.contains("shard 1/3"),
        "degraded marker must name the missing shard: {partial}"
    );
    let strict = client
        .send_line(&format!("QUERY timeout-ms=5000 mode=strict {query}"))
        .expect("strict response");
    assert!(
        strict.contains(r#""code":"NoBackends""#),
        "strict mode must refuse partial results: {strict}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(15),
        "degraded path must respect the deadline, took {:?}",
        started.elapsed()
    );
    drop(client);
    shutdown(coord);
    let snapshot = coord_h.join().expect("coordinator");
    assert!(snapshot.degraded >= 1, "{snapshot:?}");

    // Total outage: every backend down. The request fails fast with a
    // structured NoBackends error; inline verbs still answer.
    let (coord2, coord2_h) = spawn_coordinator(
        vec![dead1, dead2],
        CoordinatorConfig {
            attempts: 1,
            down_after: 1,
            ..coordinator_config()
        },
    );
    let mut client = Client::connect(coord2).expect("connect");
    let pong = client.send_line("PING").expect("ping");
    assert!(pong.starts_with(r#"{"pong""#), "{pong}");
    let outage_started = Instant::now();
    let refused = client
        .send_line(&format!("QUERY timeout-ms=3000 {query}"))
        .expect("outage response");
    assert!(
        refused.contains(r#""code":"NoBackends""#),
        "total outage must be a structured error: {refused}"
    );
    assert!(
        outage_started.elapsed() < Duration::from_secs(10),
        "outage answer took {:?}",
        outage_started.elapsed()
    );
    drop(client);
    shutdown(coord2);
    let snapshot2 = coord2_h.join().expect("coordinator 2");
    assert!(snapshot2.no_backends >= 1, "{snapshot2:?}");

    shutdown(b0);
    b0_h.join().expect("backend");
}
