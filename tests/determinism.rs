//! Tier-1 determinism tests for the intra-query parallel engine: for every
//! thread count, a query must produce exactly the answer the serial engine
//! produces — same ranked order (ties included), bit-identical scores, same
//! zero-visibility sets, and the same degraded/partial outcome under tight
//! budgets. Candidates are sharded contiguously and shard results are
//! concatenated in shard order, so nothing here is allowed to be "close":
//! everything is compared exactly.

use hin_datagen::dblp::{generate, SyntheticConfig, SyntheticNetwork};
use hin_datagen::toy;
use hin_datagen::workload::{generate_queries, QueryTemplate};
use netout::{
    Budget, BudgetLimit, CancelToken, EngineError, MeasureKind, OutlierDetector, QueryResult,
};

const THREAD_COUNTS: [usize; 3] = [2, 4, 7];

fn fixture(scale: f64) -> SyntheticNetwork {
    generate(&SyntheticConfig::default().scaled(scale))
}

/// Everything about a result that must be invariant under thread count.
/// Timing stats are the one legitimate difference, so they are excluded.
fn fingerprint(r: &QueryResult) -> impl PartialEq + std::fmt::Debug {
    (
        r.measure,
        r.candidate_count,
        r.reference_count,
        r.zero_visibility.clone(),
        r.ranked
            .iter()
            .map(|o| (o.vertex, o.name.clone(), o.score.to_bits()))
            .collect::<Vec<_>>(),
        r.degraded.as_ref().map(|d| (d.scored, d.total, d.limit)),
    )
}

/// A mixed workload across all three templates, small enough to keep the
/// suite fast but broad enough to hit anchors with very different fan-out.
fn workload(net: &SyntheticNetwork, per_template: usize) -> Vec<String> {
    QueryTemplate::ALL
        .iter()
        .enumerate()
        .flat_map(|(i, &t)| generate_queries(&net.graph, t, per_template, 42 + i as u64))
        .collect()
}

#[test]
fn workload_is_bit_identical_across_thread_counts() {
    let net = fixture(0.25);
    let queries = workload(&net, 4);
    let serial = OutlierDetector::new(net.graph.clone());
    for query in &queries {
        let baseline = fingerprint(&serial.query(query).expect("serial run succeeds"));
        for threads in THREAD_COUNTS {
            let detector = OutlierDetector::new(net.graph.clone()).with_threads(threads);
            let result = fingerprint(&detector.query(query).expect("parallel run succeeds"));
            assert!(
                baseline == result,
                "{threads}-thread result diverged from serial on {query}"
            );
        }
    }
}

#[test]
fn every_measure_is_deterministic_under_parallelism() {
    let net = fixture(0.25);
    let queries = workload(&net, 1);
    let measures = [
        MeasureKind::NetOut,
        MeasureKind::PathSim,
        MeasureKind::CosSim,
        MeasureKind::Lof { k: 5 },
        MeasureKind::KnnDist { k: 3 },
    ];
    for measure in measures {
        let serial = OutlierDetector::new(net.graph.clone()).measure(measure);
        for query in &queries {
            let baseline = fingerprint(&serial.query(query).expect("serial run succeeds"));
            for threads in [2, 4] {
                let detector = OutlierDetector::new(net.graph.clone())
                    .measure(measure)
                    .with_threads(threads);
                let result = fingerprint(&detector.query(query).expect("parallel run succeeds"));
                assert!(
                    baseline == result,
                    "{measure:?} diverged at {threads} threads on {query}"
                );
            }
        }
    }
}

/// The Table 1 network ends in ~100 cloned reference authors with exactly
/// equal scores: if the parallel merge used an unstable order anywhere, the
/// tie run would be the first place it shows.
#[test]
fn tie_breaks_survive_parallel_merge() {
    let g = toy::table1_network();
    let query = toy::table1_query();
    let serial = OutlierDetector::new(g.clone());
    let baseline = serial.query(&query).expect("serial run succeeds");
    // The fixture really does produce ties — otherwise this test is vacuous.
    let has_tie = baseline
        .ranked
        .windows(2)
        .any(|w| w[0].score.to_bits() == w[1].score.to_bits());
    assert!(has_tie, "expected tied scores in the Table 1 ranking");
    let baseline = fingerprint(&baseline);
    for threads in THREAD_COUNTS {
        let detector = OutlierDetector::new(g.clone()).with_threads(threads);
        let result = fingerprint(&detector.query(&query).expect("parallel run succeeds"));
        assert!(
            baseline == result,
            "tie-break order changed at {threads} threads"
        );
    }
}

#[test]
fn similarity_search_is_deterministic_under_parallelism() {
    let g = toy::table1_network();
    let serial = OutlierDetector::new(g.clone());
    let baseline = serial
        .similar("author", "Sarah", "author.paper.venue", 25)
        .expect("serial search succeeds");
    for threads in THREAD_COUNTS {
        let detector = OutlierDetector::new(g.clone()).with_threads(threads);
        let hits = detector
            .similar("author", "Sarah", "author.paper.venue", 25)
            .expect("parallel search succeeds");
        assert_eq!(baseline.len(), hits.len());
        for (a, b) in baseline.iter().zip(&hits) {
            assert_eq!(a.0, b.0, "{threads} threads reordered the hits");
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }
}

/// Deterministic budgets (cardinality and frontier-nnz caps — everything
/// except wall clock) must produce the *same outcome* at every thread
/// count: the same answer, the same degraded marker, or the same error
/// limit. Shards are contiguous and the merge reports the first failing
/// shard in order, so the serial trip point is also the parallel one.
#[test]
fn tight_budgets_degrade_identically_across_thread_counts() {
    let net = fixture(0.25);
    let queries = workload(&net, 2);
    let budgets = [
        Budget::unbounded().with_max_nnz(1),
        Budget::unbounded().with_max_nnz(512),
        Budget::unbounded().with_max_nnz(1_000_000_000),
        Budget::unbounded().with_max_candidates(3),
        Budget::unbounded().with_max_candidates(1_000_000),
    ];
    for budget in &budgets {
        for query in &queries {
            let serial = OutlierDetector::new(net.graph.clone()).budget(budget.clone());
            for strict in [true, false] {
                let run = |d: &OutlierDetector| {
                    if strict {
                        d.query(query)
                    } else {
                        d.query_best_effort(query)
                    }
                };
                let baseline = run(&serial);
                for threads in [2, 4] {
                    let detector = OutlierDetector::new(net.graph.clone())
                        .budget(budget.clone())
                        .with_threads(threads);
                    match (&baseline, &run(&detector)) {
                        (Ok(a), Ok(b)) => {
                            assert!(
                                fingerprint(a) == fingerprint(b),
                                "{threads}-thread budgeted result diverged on {query}"
                            );
                        }
                        (
                            Err(EngineError::BudgetExceeded { limit: a, .. }),
                            Err(EngineError::BudgetExceeded { limit: b, .. }),
                        ) => {
                            assert_eq!(a, b, "different budget limit tripped on {query}");
                        }
                        (a, b) => panic!(
                            "outcome changed with {threads} threads on {query}: \
                             serial {a:?} vs parallel {b:?}"
                        ),
                    }
                }
            }
        }
    }
}

/// Tracing must be an observer: with a span tracer installed (the server's
/// slow-query path), every thread count still reproduces the serial
/// ranking bit for bit, and the trace itself is well-formed — one root
/// query span whose children include the execution phases, with shard
/// spans absorbed deterministically under `run_sharded`.
#[test]
fn tracing_preserves_bit_identical_results_across_thread_counts() {
    let net = fixture(0.25);
    let queries = workload(&net, 2);
    let serial = OutlierDetector::new(net.graph.clone());
    for query in &queries {
        // Untraced serial baseline: tracing may not perturb anything.
        let baseline = fingerprint(&serial.query(query).expect("serial run succeeds"));
        for threads in [1, 2, 4, 7] {
            let detector = OutlierDetector::new(net.graph.clone()).with_threads(threads);
            hin_telemetry::trace::install();
            let outcome = detector.query(query);
            let buf = hin_telemetry::trace::take().expect("tracer was installed");
            let result = fingerprint(&outcome.expect("traced run succeeds"));
            assert!(
                baseline == result,
                "traced {threads}-thread result diverged from serial on {query}"
            );
            let tree = buf.tree();
            assert_eq!(tree.len(), 1, "expected one root span on {query}");
            assert_eq!(tree[0].name, "query");
            assert!(
                tree[0].children.iter().any(|c| c.name == "set_retrieval"),
                "missing set_retrieval phase in trace of {query}"
            );
        }
    }
}

/// The cross-query sub-path product cache (DESIGN.md §15) must be a pure
/// accelerator: with the cache enabled, every thread count and every cache
/// temperature (cold first run, warm rerun against the same shared cache)
/// reproduces the uncached serial ranking bit for bit.
#[test]
fn subpath_cache_is_bit_identical_across_thread_counts() {
    let net = fixture(0.25);
    let queries = workload(&net, 2);
    let uncached = OutlierDetector::new(net.graph.clone());
    for query in &queries {
        let baseline = fingerprint(&uncached.query(query).expect("uncached run succeeds"));
        for threads in [1, 2, 4, 7] {
            let detector = OutlierDetector::new(net.graph.clone())
                .with_subpath_cache_mb(16)
                .with_threads(threads);
            // Cold, then warm against the populated cache.
            for temperature in ["cold", "warm"] {
                let result = fingerprint(&detector.query(query).expect("cached run succeeds"));
                assert!(
                    baseline == result,
                    "{temperature} subpath-cached {threads}-thread result \
                     diverged from uncached serial on {query}"
                );
            }
        }
    }
}

/// Under deterministic budgets the cache must also replay the exact budget
/// exposure of the work it skips: a cached run — cold or warm, at any
/// thread count, even with a cache byte budget so tight it constantly
/// evicts — produces the same outcome as the uncached serial run: the same
/// answer, the same degraded marker (scored/total/limit), or the same
/// budget-limit error.
#[test]
fn subpath_cache_with_tight_budgets_degrades_identically() {
    let net = fixture(0.25);
    let queries = workload(&net, 1);
    let budgets = [
        Budget::unbounded().with_max_nnz(1),
        Budget::unbounded().with_max_nnz(512),
        Budget::unbounded().with_max_nnz(1_000_000_000),
        Budget::unbounded().with_max_candidates(3),
    ];
    // A generous cache and a pathologically tight one (evicts and rejects
    // constantly): neither may change any outcome.
    let cache_budgets_bytes = [16 * 1024 * 1024, 4 * 1024];
    for budget in &budgets {
        for query in &queries {
            let serial = OutlierDetector::new(net.graph.clone()).budget(budget.clone());
            for strict in [true, false] {
                let run = |d: &OutlierDetector| {
                    if strict {
                        d.query(query)
                    } else {
                        d.query_best_effort(query)
                    }
                };
                let baseline = run(&serial);
                for cache_bytes in cache_budgets_bytes {
                    let cache =
                        std::sync::Arc::new(netout::SubpathCache::with_budget_bytes(cache_bytes));
                    for threads in [1, 2, 4, 7] {
                        let detector = OutlierDetector::new(net.graph.clone())
                            .budget(budget.clone())
                            .with_shared_subpath_cache(cache.clone())
                            .with_threads(threads);
                        match (&baseline, &run(&detector)) {
                            (Ok(a), Ok(b)) => assert!(
                                fingerprint(a) == fingerprint(b),
                                "cached ({cache_bytes}B) {threads}-thread budgeted \
                                 result diverged on {query}"
                            ),
                            (
                                Err(EngineError::BudgetExceeded { limit: a, .. }),
                                Err(EngineError::BudgetExceeded { limit: b, .. }),
                            ) => assert_eq!(
                                a, b,
                                "different budget limit tripped with the subpath \
                                 cache ({cache_bytes}B) on {query}"
                            ),
                            (a, b) => panic!(
                                "outcome changed with the subpath cache ({cache_bytes}B, \
                                 {threads} threads) on {query}: \
                                 uncached {a:?} vs cached {b:?}"
                            ),
                        }
                    }
                }
            }
        }
    }
}

/// Every comparison measure stays bit-identical with the cache enabled, at
/// 1 and 4 threads, cold and warm (the acceptance matrix of ISSUE 8).
#[test]
fn subpath_cache_preserves_every_measure() {
    let net = fixture(0.25);
    let queries = workload(&net, 1);
    let measures = [
        MeasureKind::NetOut,
        MeasureKind::PathSim,
        MeasureKind::CosSim,
        MeasureKind::Lof { k: 5 },
        MeasureKind::KnnDist { k: 3 },
    ];
    for measure in measures {
        let uncached = OutlierDetector::new(net.graph.clone()).measure(measure);
        for query in &queries {
            let baseline = fingerprint(&uncached.query(query).expect("uncached run succeeds"));
            for threads in [1, 4] {
                let detector = OutlierDetector::new(net.graph.clone())
                    .measure(measure)
                    .with_subpath_cache_mb(16)
                    .with_threads(threads);
                for _temperature in ["cold", "warm"] {
                    let result = fingerprint(&detector.query(query).expect("cached run succeeds"));
                    assert!(
                        baseline == result,
                        "{measure:?} diverged with the subpath cache at {threads} \
                         threads on {query}"
                    );
                }
            }
        }
    }
}

/// A pre-cancelled token aborts identically regardless of thread count.
#[test]
fn cancellation_is_deterministic_across_thread_counts() {
    let net = fixture(0.1);
    let query = &workload(&net, 1)[0];
    for threads in [1, 4] {
        let token = CancelToken::new();
        token.cancel();
        let detector = OutlierDetector::new(net.graph.clone())
            .budget(Budget::unbounded().with_cancel_token(token))
            .with_threads(threads);
        match detector.query(query) {
            Err(EngineError::BudgetExceeded { limit, .. }) => {
                assert_eq!(limit, BudgetLimit::Cancelled);
            }
            other => panic!("expected cancellation at {threads} threads, got {other:?}"),
        }
    }
}
