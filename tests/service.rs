//! Integration tests for the `hin-service` query server: concurrent
//! clients over one shared graph, admission-control backpressure,
//! per-request budgets, client-disconnect cancellation, and graceful
//! drain-shutdown. Every test binds an ephemeral port, so tests run in
//! parallel without interfering.

use hin_datagen::dblp::{generate, SyntheticConfig};
use hin_service::client::{json_u64_field, response_kind, run_closed_loop};
use hin_service::{Client, ExecMode, LoadSpec, OverloadConfig, Server, ServerConfig};
use netout::{Budget, OutlierDetector};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// A small synthetic DBLP network plus a valid anchored query against it.
fn fixture(seed: u64) -> (OutlierDetector, String) {
    let net = generate(&SyntheticConfig::tiny(seed));
    let author = net.graph.schema().vertex_type_by_name("author").unwrap();
    let paper = net.graph.schema().vertex_type_by_name("paper").unwrap();
    let anchor = net
        .graph
        .vertices_of_type(author)
        .iter()
        .find(|&&a| net.graph.step_degree(a, paper) >= 3)
        .copied()
        .unwrap();
    let query = format!(
        "FIND OUTLIERS FROM author{{\"{}\"}}.paper.author \
         JUDGED BY author.paper.venue TOP 5;",
        net.graph.vertex_name(anchor)
    );
    let detector = OutlierDetector::new(net.graph).with_vector_cache(1024);
    // The over-budget tests assume the candidate set exceeds tiny caps.
    let probe = detector.query(&query).expect("fixture query must run");
    assert!(
        probe.candidate_count >= 3,
        "fixture anchor too small: {} candidates",
        probe.candidate_count
    );
    (detector, query)
}

fn spawn(
    detector: OutlierDetector,
    config: ServerConfig,
) -> (
    SocketAddr,
    std::thread::JoinHandle<hin_service::StatsSnapshot>,
) {
    let server = Server::bind(detector, "127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr();
    (addr, std::thread::spawn(move || server.run()))
}

fn shutdown(addr: SocketAddr) {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    let bye = client.send_line("SHUTDOWN").expect("shutdown");
    assert!(bye.starts_with(r#"{"bye""#), "{bye}");
}

/// ≥8 concurrent clients over one shared graph, mixing valid queries,
/// invalid queries, protocol garbage, and over-budget requests: every
/// request gets exactly one response, and an over-budget client's failure
/// never leaks into other clients' results.
#[test]
fn concurrent_clients_each_get_exactly_one_response_per_request() {
    let (detector, query) = fixture(23);
    let (addr, server) = spawn(
        detector,
        ServerConfig {
            workers: 4,
            queue_cap: 64,
            ..ServerConfig::default()
        },
    );

    const CLIENTS: usize = 9;
    const ROUNDS: usize = 6;
    let per_client: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let query = query.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut responses = Vec::new();
                    for round in 0..ROUNDS {
                        let line = match (c + round) % 4 {
                            // Valid query; must produce a full ranking.
                            0 => format!("QUERY {query}"),
                            // Over-budget strict request; must fail with a
                            // structured Budget error, nothing else.
                            1 => format!("QUERY max-candidates=1 mode=strict {query}"),
                            // Invalid OQL; structured Query error.
                            2 => "QUERY FIND OUTLIERS FROM nowhere;".to_string(),
                            // Protocol garbage; structured Protocol error.
                            _ => "BOGUS VERB".to_string(),
                        };
                        responses.push(client.send_line(&line).expect("one response per request"));
                    }
                    responses
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (c, responses) in per_client.iter().enumerate() {
        assert_eq!(responses.len(), ROUNDS);
        for (round, response) in responses.iter().enumerate() {
            let kind = response_kind(response).unwrap_or("?");
            match (c + round) % 4 {
                0 => {
                    assert_eq!(kind, "result", "client {c} round {round}: {response}");
                    assert!(
                        response.contains(r#""degraded":null"#),
                        "valid query degraded by a neighbor's budget: {response}"
                    );
                }
                1 => {
                    assert_eq!(kind, "err", "client {c} round {round}: {response}");
                    assert!(response.contains(r#""code":"Budget""#), "{response}");
                }
                2 => {
                    assert_eq!(kind, "err", "client {c} round {round}: {response}");
                    assert!(response.contains(r#""code":"Query""#), "{response}");
                }
                _ => {
                    assert_eq!(kind, "err", "client {c} round {round}: {response}");
                    assert!(response.contains(r#""code":"Protocol""#), "{response}");
                }
            }
        }
    }

    // Scrape METRICS (raw Prometheus text, blank-line terminated) while the
    // server is still live: the exposition must parse and carry the
    // required serving/latency/cache series.
    let exposition = {
        use std::io::{BufRead, BufReader, Write};
        let stream = std::net::TcpStream::connect(addr).expect("connect for scrape");
        let mut writer = stream.try_clone().expect("clone scrape stream");
        writer.write_all(b"METRICS\n").expect("send scrape");
        let mut reader = BufReader::new(stream);
        let mut text = String::new();
        let mut line = String::new();
        loop {
            line.clear();
            let n = reader.read_line(&mut line).expect("read exposition");
            if n == 0 || line.trim_end().is_empty() {
                break;
            }
            text.push_str(&line);
        }
        text
    };
    let samples = hin_telemetry::parse_exposition(&exposition).expect("valid exposition");
    for name in [
        "hin_connections_total",
        "hin_requests_total",
        "hin_completed_total",
        "hin_errors_total",
        "hin_in_flight",
        "hin_queue_wait_us_count",
        "hin_exec_us_count",
        "hin_total_us_count",
        "hin_cache_hit_ratio",
        "hin_engine_scoring_us_total",
    ] {
        assert!(
            samples.iter().any(|s| s.name == name),
            "missing {name} in exposition:\n{exposition}"
        );
    }

    shutdown(addr);
    let stats = server.join().expect("server thread");
    let expected = (CLIENTS * ROUNDS) as u64 + 2; // +1 METRICS scrape, +1 SHUTDOWN
    assert_eq!(stats.requests, expected, "{stats:?}");
    assert!(stats.completed >= (CLIENTS * ROUNDS / 4) as u64);
    assert!(stats.errors > 0);
    assert_eq!(stats.rejected_busy, 0, "queue 64 must not reject here");
}

/// With one worker held by a long SLEEP and a queue of one, the third
/// worker-pool request is rejected with `busy` — and the rejection is
/// immediate, not queued behind the sleeper.
#[test]
fn queue_overflow_answers_busy() {
    let (detector, _) = fixture(29);
    let (addr, server) = spawn(
        detector,
        ServerConfig {
            workers: 1,
            queue_cap: 1,
            ..ServerConfig::default()
        },
    );

    // Occupy the single worker.
    let mut sleeper = Client::connect(addr).expect("connect");
    sleeper.send_no_wait("SLEEP 3000").expect("send");
    // Wait until the worker has actually picked the job up (in_flight=1),
    // so the queue slot below is genuinely free.
    let mut probe = Client::connect(addr).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = probe.send_line("STATS").expect("stats");
        if json_u64_field(&stats, "in_flight") == Some(1) {
            break;
        }
        assert!(Instant::now() < deadline, "worker never picked up the job");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Fill the queue's only slot, and wait until STATS shows it occupied —
    // admission happens on the filler's connection thread, asynchronously.
    let mut filler = Client::connect(addr).expect("connect");
    filler.send_no_wait("SLEEP 10").expect("send");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = probe.send_line("STATS").expect("stats");
        if json_u64_field(&stats, "queue_depth") == Some(1) {
            break;
        }
        assert!(Instant::now() < deadline, "filler job never queued");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Worker busy + queue full: the next worker-pool request must be
    // rejected immediately, not queued behind the sleeper.
    let mut overflow = Client::connect(addr).expect("connect");
    let busy = overflow.send_line("SLEEP 10").expect("response");
    assert_eq!(response_kind(&busy), Some("busy"), "{busy}");
    assert!(busy.contains(r#""queue_cap":1"#), "{busy}");

    // The sleeper and filler still complete normally.
    assert_eq!(
        response_kind(&sleeper.read_response().unwrap()),
        Some("slept")
    );
    assert_eq!(
        response_kind(&filler.read_response().unwrap()),
        Some("slept")
    );

    shutdown(addr);
    let stats = server.join().expect("server thread");
    assert!(stats.rejected_busy >= 1, "{stats:?}");
}

/// A client that disconnects while its request is queued or executing trips
/// the request's cancel token: the worker stops early and the `cancelled`
/// counter becomes visible through `STATS`.
#[test]
fn disconnected_client_cancels_its_request() {
    let (detector, _) = fixture(31);
    let (addr, server) = spawn(
        detector,
        ServerConfig {
            workers: 1,
            queue_cap: 4,
            poll_interval: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    );

    let started = Instant::now();
    {
        // Send a 30-second sleep, then hang up without reading the response.
        let mut abandoner = Client::connect(addr).expect("connect");
        abandoner.send_no_wait("SLEEP 30000").expect("send");
        std::thread::sleep(Duration::from_millis(100));
    } // drop = disconnect

    let mut probe = Client::connect(addr).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let stats = probe.send_line("STATS").expect("stats");
        if json_u64_field(&stats, "cancelled") == Some(1) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "cancellation never surfaced in STATS: {stats}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // The worker was freed by cancellation, not by sleeping out the 30 s.
    assert!(
        started.elapsed() < Duration::from_secs(15),
        "cancellation took {:?}",
        started.elapsed()
    );

    // The freed worker serves new requests promptly.
    let slept = probe.send_line("SLEEP 1").expect("sleep");
    assert_eq!(response_kind(&slept), Some("slept"));

    shutdown(addr);
    let stats = server.join().expect("server thread");
    assert_eq!(stats.cancelled, 1, "{stats:?}");
}

/// Per-request budget overrides layer over the server's default budget;
/// over-budget requests are always marked (degraded result or Budget
/// error) and unbudgeted requests on the same server stay unaffected.
#[test]
fn per_request_budgets_and_degraded_results() {
    let (detector, query) = fixture(37);
    let detector = detector.budget(Budget::unbounded().with_timeout_ms(120_000));
    let (addr, server) = spawn(
        detector,
        ServerConfig {
            workers: 2,
            queue_cap: 8,
            default_mode: ExecMode::BestEffort,
            ..ServerConfig::default()
        },
    );

    let mut client = Client::connect(addr).expect("connect");
    // Best-effort + tiny candidate cap: a degraded partial ranking when a
    // prefix was scored, or a structured Budget error when the cap fired
    // before scoring — never a silent full result, never a panic. (The
    // candidate cap is checked at set retrieval, so here it errors; the
    // invariant tested is "over-budget is always marked".)
    let over = client
        .send_line(&format!("QUERY max-candidates=2 {query}"))
        .expect("over-budget query");
    match response_kind(&over) {
        Some("result") => assert!(over.contains(r#""degraded":{"#), "{over}"),
        Some("err") => assert!(over.contains(r#""code":"Budget""#), "{over}"),
        other => panic!("unexpected response kind {other:?}: {over}"),
    }
    // The same cap in strict mode → structured Budget error, always.
    let strict = client
        .send_line(&format!("QUERY max-candidates=2 mode=strict {query}"))
        .expect("strict query");
    assert_eq!(response_kind(&strict), Some("err"), "{strict}");
    assert!(strict.contains(r#""code":"Budget""#), "{strict}");
    // No overrides → the generous server default; full result.
    let full = client
        .send_line(&format!("QUERY {query}"))
        .expect("full query");
    assert_eq!(response_kind(&full), Some("result"), "{full}");
    assert!(full.contains(r#""degraded":null"#), "{full}");

    shutdown(addr);
    let stats = server.join().expect("server thread");
    assert!(stats.errors + stats.degraded >= 1, "{stats:?}");
}

/// Corrupt bytes on the wire — invalid UTF-8, oversized lines, binary noise
/// — each produce one structured `err` response, and the same connection
/// keeps working afterwards (no worker death, framing stays synchronized).
#[test]
fn wire_garbage_yields_structured_errors_and_server_survives() {
    use std::io::Write as _;
    use std::net::TcpStream;

    let (detector, query) = fixture(41);
    let (addr, server) = spawn(
        detector,
        ServerConfig {
            workers: 2,
            queue_cap: 8,
            ..ServerConfig::default()
        },
    );

    let mut raw = TcpStream::connect(addr).expect("connect");
    let mut reader = std::io::BufReader::new(raw.try_clone().expect("clone"));
    let mut read_line = || {
        use std::io::BufRead as _;
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        line.trim_end().to_string()
    };

    // Invalid UTF-8.
    raw.write_all(b"QUERY \xff\xfe garbage\n").expect("write");
    let response = read_line();
    assert!(response.contains(r#""code":"Protocol""#), "{response}");
    assert!(response.contains("UTF-8"), "{response}");

    // A 2 MiB line (over the 1 MiB cap) without a newline until the end.
    let mut oversized = vec![b'x'; 2 << 20];
    oversized.push(b'\n');
    raw.write_all(&oversized).expect("write");
    let response = read_line();
    assert!(response.contains(r#""code":"Protocol""#), "{response}");
    assert!(response.contains("too long"), "{response}");

    // Binary noise that still frames as a line.
    raw.write_all(&[0, 1, 2, 3, 254, 255, b'\n'])
        .expect("write");
    let response = read_line();
    assert!(response.contains(r#""code":"Protocol""#), "{response}");

    // Framing is resynchronized: a valid request on the same connection.
    raw.write_all(format!("QUERY {query}\n").as_bytes())
        .expect("write");
    let response = read_line();
    assert!(response.starts_with(r#"{"result""#), "{response}");

    shutdown(addr);
    server.join().expect("server thread");
}

/// `"exec_us":N` is the only result field allowed to differ between runs
/// of the same query; strip it so responses can be compared byte-for-byte.
fn strip_exec_us(line: &str) -> String {
    match line.find(r#""exec_us":"#) {
        Some(at) => {
            let rest = &line[at..];
            let end = rest
                .find(|c: char| c == ',' || c == '}')
                .expect("exec_us value must terminate");
            format!("{}{}", &line[..at], &rest[end..])
        }
        None => line.to_string(),
    }
}

/// Overload storm at 4× over-admission: one worker held by a long sleep
/// while eight short-deadline queries and two patient ones pile up behind
/// it. Every query whose deadline elapses in the queue is shed with a
/// structured `expired` response carrying a retry hint and is *never
/// executed*, while the patient queries admitted alongside them still
/// complete — with answers byte-identical to the unloaded run.
#[test]
fn overload_storm_sheds_expired_and_preserves_answered_queries() {
    let (detector, query) = fixture(47);
    let (addr, server) = spawn(
        detector,
        ServerConfig {
            workers: 1,
            queue_cap: 16,
            overload: OverloadConfig {
                // Deadline shedding only: cost admission stays out of the
                // way so every doomed request reaches the queue.
                cost_reject_factor: 0.0,
                ..OverloadConfig::default()
            },
            ..ServerConfig::default()
        },
    );

    // Unloaded reference answer, captured before the storm.
    let mut probe = Client::connect(addr).expect("connect");
    let unloaded = probe
        .send_line(&format!("QUERY {query}"))
        .expect("reference query");
    assert_eq!(response_kind(&unloaded), Some("result"), "{unloaded}");

    // Occupy the single worker for longer than every short deadline.
    let mut sleeper = Client::connect(addr).expect("connect");
    sleeper.send_no_wait("SLEEP 3000").expect("send");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = probe.send_line("STATS").expect("stats");
        if json_u64_field(&stats, "in_flight") == Some(1) {
            break;
        }
        assert!(Instant::now() < deadline, "worker never picked up the job");
        std::thread::sleep(Duration::from_millis(10));
    }

    // 4× over-admission against the held worker: 8 doomed queries whose
    // 100 ms deadlines will elapse behind the 3 s sleeper, plus 2 patient
    // queries that can wait it out. All 10 fit the queue (cap 16).
    let mut doomed: Vec<Client> = (0..8)
        .map(|_| {
            let mut c = Client::connect(addr).expect("connect");
            c.send_no_wait(&format!("QUERY timeout-ms=100 {query}"))
                .expect("send doomed");
            c
        })
        .collect();
    let mut patient: Vec<Client> = (0..2)
        .map(|_| {
            let mut c = Client::connect(addr).expect("connect");
            c.send_no_wait(&format!("QUERY timeout-ms=60000 {query}"))
                .expect("send patient");
            c
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = probe.send_line("STATS").expect("stats");
        if json_u64_field(&stats, "queue_depth") == Some(10) {
            break;
        }
        assert!(Instant::now() < deadline, "storm never fully queued");
        std::thread::sleep(Duration::from_millis(5));
    }

    // The sleeper outlasts every short deadline, then the worker drains
    // the backlog: doomed queries shed instantly, patient ones execute.
    assert_eq!(
        response_kind(&sleeper.read_response().unwrap()),
        Some("slept")
    );
    for c in &mut doomed {
        let shed = c.read_response().expect("shed response");
        assert_eq!(response_kind(&shed), Some("expired"), "{shed}");
        let waited = json_u64_field(&shed, "waited_ms").expect("waited_ms");
        let deadline_ms = json_u64_field(&shed, "deadline_ms").expect("deadline_ms");
        assert!(waited >= deadline_ms, "shed before its deadline: {shed}");
        assert_eq!(deadline_ms, 100, "{shed}");
        let hint = json_u64_field(&shed, "retry_after_ms").expect("retry hint");
        assert!(hint >= 1, "shed without a usable retry hint: {shed}");
    }
    for c in &mut patient {
        let answer = c.read_response().expect("answer under load");
        assert_eq!(response_kind(&answer), Some("result"), "{answer}");
        assert_eq!(
            strip_exec_us(&answer),
            strip_exec_us(&unloaded),
            "answered query must be byte-identical to the unloaded run"
        );
    }

    shutdown(addr);
    let stats = server.join().expect("server thread");
    // Zero executed-after-expiry: every doomed request is accounted for as
    // a shed — none of them reached execution.
    assert_eq!(stats.expired, 8, "{stats:?}");
    assert_eq!(stats.queue_depth, 0, "{stats:?}");
    assert!(stats.completed >= 4, "{stats:?}"); // reference + sleeper + 2 patient
}

/// Closed-loop 4× over-admission with a per-request delay fault (every
/// execution stalls 100 ms on one worker, four concurrent clients): the
/// load report and the server's own counters must agree that every request
/// got exactly one structured answer — goodput loss equals the shed count,
/// nothing is silently dropped, and the server never executes a request it
/// reported as expired.
#[test]
fn overload_closed_loop_accounts_every_request() {
    let (detector, query) = fixture(53);
    let (addr, server) = spawn(
        detector,
        ServerConfig {
            workers: 1,
            queue_cap: 64,
            overload: OverloadConfig {
                cost_reject_factor: 0.0,
                ..OverloadConfig::default()
            },
            ..ServerConfig::default()
        },
    );

    // Stall every execution by 100 ms: with one worker and four clients in
    // closed loop, queue waits at depth ≥ 2 exceed the 150 ms deadlines.
    let mut probe = Client::connect(addr).expect("connect");
    let installed = probe
        .send_line("FAULTS seed=11;delay~1:100")
        .expect("install delay plan");
    assert!(installed.starts_with(r#"{"faults""#), "{installed}");

    let storm = run_closed_loop(
        addr,
        &LoadSpec {
            clients: 4,
            requests_per_client: 8,
            lines: vec![format!("QUERY timeout-ms=150 {query}")],
            retry: None,
        },
    );
    assert_eq!(storm.requests, 32, "{storm:?}");
    assert_eq!(storm.io_errors, 0, "{storm:?}");
    assert_eq!(storm.errors, 0, "{storm:?}");
    // Full accounting: goodput loss is exactly the shed count — every
    // request was answered with a result, a busy, or an expired.
    assert_eq!(
        storm.ok + storm.busy + storm.expired,
        storm.requests,
        "{storm:?}"
    );
    // Sustained 4× over-admission with 100 ms executions must shed, and
    // must still make forward progress for requests that fit.
    assert!(storm.expired >= 1, "{storm:?}");
    assert!(storm.ok >= 1, "{storm:?}");

    shutdown(addr);
    let stats = server.join().expect("server thread");
    // The server's shed count matches what clients observed: a request is
    // either executed or expired, never both.
    assert_eq!(stats.expired, storm.expired, "{stats:?} vs {storm:?}");
    assert_eq!(stats.rejected_busy, storm.busy, "{stats:?} vs {storm:?}");
}

/// Brownout escalation to priority shedding: with the enter threshold at
/// zero the controller climbs one level per admission once its sample
/// window fills, reaching L3. There, a `priority=0` query is shed with a
/// structured busy + retry hint while a `priority=9` query on the same
/// server still answers in full.
#[test]
fn brownout_escalates_and_sheds_low_priority_queries() {
    let (detector, query) = fixture(59);
    let (addr, server) = spawn(
        detector,
        ServerConfig {
            workers: 1,
            queue_cap: 8,
            overload: OverloadConfig {
                cost_reject_factor: 0.0,
                // Enter at zero wait and never exit: every evaluation after
                // the window fills climbs a level, pinning the controller
                // at L3 for the rest of the test.
                brownout_enter: Some(Duration::ZERO),
                brownout_exit: Duration::ZERO,
                brownout_dwell: Duration::ZERO,
                ..OverloadConfig::default()
            },
            ..ServerConfig::default()
        },
    );

    // Fill the queue-wait sample window (16 samples) and give the
    // controller enough admissions to climb to L3.
    let mut client = Client::connect(addr).expect("connect");
    for _ in 0..22 {
        let slept = client.send_line("SLEEP 0").expect("sleep");
        assert_eq!(response_kind(&slept), Some("slept"), "{slept}");
    }
    let stats = client.send_line("STATS").expect("stats");
    assert_eq!(
        json_u64_field(&stats, "brownout_level"),
        Some(3),
        "controller never reached L3: {stats}"
    );

    // Below-threshold priority is shed with a structured busy + hint.
    let shed = client
        .send_line(&format!("QUERY priority=0 timeout-ms=5000 {query}"))
        .expect("low-priority query");
    assert_eq!(response_kind(&shed), Some("busy"), "{shed}");
    assert!(
        json_u64_field(&shed, "retry_after_ms").expect("retry hint") >= 1,
        "{shed}"
    );

    // High-priority work on the same saturated server still answers.
    let answered = client
        .send_line(&format!("QUERY priority=9 timeout-ms=60000 {query}"))
        .expect("high-priority query");
    assert_eq!(response_kind(&answered), Some("result"), "{answered}");
    assert!(answered.contains(r#""degraded":null"#), "{answered}");

    shutdown(addr);
    let stats = server.join().expect("server thread");
    assert_eq!(stats.priority_shed, 1, "{stats:?}");
    assert_eq!(stats.brownout_level, 3, "{stats:?}");
    assert!(stats.completed >= 23, "{stats:?}"); // 22 sleeps + 1 answered query
}

/// SHUTDOWN drains: requests already admitted finish and their responses
/// are delivered before the server exits.
#[test]
fn shutdown_drains_in_flight_work() {
    let (detector, query) = fixture(43);
    let (addr, server) = spawn(
        detector,
        ServerConfig {
            workers: 1,
            queue_cap: 8,
            ..ServerConfig::default()
        },
    );

    let mut slow = Client::connect(addr).expect("connect");
    slow.send_no_wait("SLEEP 300").expect("send");
    let mut worker_bound = Client::connect(addr).expect("connect");
    worker_bound
        .send_no_wait(&format!("QUERY {query}"))
        .expect("send");
    // Give both jobs time to be admitted before the shutdown request.
    std::thread::sleep(Duration::from_millis(50));

    shutdown(addr);

    // Both in-flight requests still get their responses.
    let slept = slow.read_response().expect("drained sleep response");
    assert_eq!(response_kind(&slept), Some("slept"), "{slept}");
    let result = worker_bound
        .read_response()
        .expect("drained query response");
    assert_eq!(response_kind(&result), Some("result"), "{result}");

    let stats = server.join().expect("server thread");
    assert_eq!(stats.queue_depth, 0, "queue must be drained: {stats:?}");
    assert_eq!(stats.in_flight, 0, "{stats:?}");
    assert!(stats.completed >= 2, "{stats:?}");
}
