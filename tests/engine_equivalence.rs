//! Property-based tests over randomly generated networks: every execution
//! strategy must agree, the Equation (1) rewrite must match the naive
//! definition, and the meta-path algebra must satisfy its laws.

use hin_datagen::dblp::{generate, SyntheticConfig};
use hin_datagen::workload::{generate_queries, QueryTemplate};
use hin_graph::{traverse, MetaPath, SparseVec, VertexId};
use hin_query::validate::parse_and_bind;
use netout::measures::netout::{netout_scores_naive, NetOut};
use netout::measures::OutlierMeasure;
use netout::{IndexPolicy, OutlierDetector};
use proptest::prelude::*;

/// Baseline, PM, and SPM produce identical rankings and scores on arbitrary
/// seeds and templates.
#[test]
fn strategies_agree_across_seeds_and_templates() {
    for seed in [1u64, 17, 3000] {
        let net = generate(&SyntheticConfig::tiny(seed));
        let baseline = OutlierDetector::new(net.graph.clone());
        let pm = OutlierDetector::with_index(net.graph.clone(), IndexPolicy::full()).unwrap();
        for template in QueryTemplate::ALL {
            let queries = generate_queries(&net.graph, template, 6, seed ^ 0xbeef);
            let spm = OutlierDetector::with_index(
                net.graph.clone(),
                IndexPolicy::selective(queries.clone(), 0.1),
            )
            .unwrap();
            for q in &queries {
                let bound = parse_and_bind(q, net.graph.schema()).unwrap();
                let rb = baseline.execute(&bound).unwrap();
                let rp = pm.execute(&bound).unwrap();
                let rs = spm.execute(&bound).unwrap();
                assert_eq!(rb.names(), rp.names(), "PM diverged on {q}");
                assert_eq!(rb.names(), rs.names(), "SPM diverged on {q}");
                for ((b, p), s) in rb.ranked.iter().zip(&rp.ranked).zip(&rs.ranked) {
                    assert!((b.score - p.score).abs() < 1e-9);
                    assert!((b.score - s.score).abs() < 1e-9);
                }
            }
        }
    }
}

/// Strategy for small sparse vectors.
fn sparse_vec_strategy() -> impl Strategy<Value = SparseVec> {
    proptest::collection::vec((0u32..64, 0.0f64..50.0), 0..12)
        .prop_map(|pairs| pairs.into_iter().map(|(i, x)| (VertexId(i), x)).collect())
}

fn vector_set_strategy(max: usize) -> impl Strategy<Value = Vec<(VertexId, SparseVec)>> {
    proptest::collection::vec(sparse_vec_strategy(), 1..max).prop_map(|vecs| {
        vecs.into_iter()
            .enumerate()
            .map(|(i, phi)| (VertexId(1000 + i as u32), phi))
            .collect()
    })
}

proptest! {
    /// Equation (1) equals the literal Definition 10 double loop.
    #[test]
    fn netout_eq1_matches_naive(
        candidates in vector_set_strategy(12),
        reference in vector_set_strategy(12),
    ) {
        let fast = NetOut.scores(&candidates, &reference).unwrap();
        let slow = netout_scores_naive(&candidates, &reference);
        for ((v1, a), (v2, b)) in fast.iter().zip(&slow) {
            prop_assert_eq!(v1, v2);
            if a.is_finite() || b.is_finite() {
                prop_assert!((a - b).abs() <= 1e-6 * b.abs().max(1.0),
                    "fast {} vs naive {}", a, b);
            }
        }
    }

    /// κ(v, v) = 1 whenever visibility is positive: a candidate that also
    /// sits alone in the reference set scores exactly 1.
    #[test]
    fn netout_self_reference_is_one(phi in sparse_vec_strategy()) {
        prop_assume!(!phi.is_empty());
        let set = vec![(VertexId(1), phi)];
        let scores = NetOut.scores(&set, &set).unwrap();
        prop_assert!((scores[0].1 - 1.0).abs() < 1e-12);
    }

    /// Sparse vector laws: dot symmetry, Cauchy–Schwarz, distance axioms.
    #[test]
    fn sparse_vector_laws(a in sparse_vec_strategy(), b in sparse_vec_strategy()) {
        prop_assert_eq!(a.dot(&b), b.dot(&a));
        let cs = a.dot(&b);
        prop_assert!(cs * cs <= a.norm2_sq() * b.norm2_sq() * (1.0 + 1e-9));
        prop_assert!(a.dist2_sq(&b) >= 0.0);
        prop_assert_eq!(a.dist2_sq(&a), 0.0);
        // ‖a−b‖² = ‖a‖² + ‖b‖² − 2a·b
        let expanded = a.norm2_sq() + b.norm2_sq() - 2.0 * cs;
        prop_assert!((a.dist2_sq(&b) - expanded).abs() < 1e-6 * expanded.abs().max(1.0));
    }

    /// add_assign agrees with entry-wise addition.
    #[test]
    fn sparse_add_assign_law(a in sparse_vec_strategy(), b in sparse_vec_strategy()) {
        let mut sum = a.clone();
        sum.add_assign(&b);
        for v in (0u32..64).map(VertexId) {
            let want = a.get(v) + b.get(v);
            prop_assert!((sum.get(v) - want).abs() < 1e-12);
        }
    }
}

/// Meta-path algebra laws on the bibliographic schema.
#[test]
fn metapath_algebra_laws() {
    let schema = hin_graph::bibliographic_schema();
    let paths = [
        "author.paper",
        "author.paper.venue",
        "author.paper.author",
        "venue.paper.term",
        "author.paper.venue.paper.author",
    ];
    for p in paths {
        let mp = MetaPath::parse(p, &schema).unwrap();
        // Reversal is an involution.
        assert_eq!(mp.reversed().reversed(), mp);
        // Symmetrization is symmetric and starts/ends at the source type.
        let sym = mp.symmetric();
        assert!(sym.is_symmetric());
        assert_eq!(sym.source_type(), mp.source_type());
        assert_eq!(sym.target_type(), mp.source_type());
        assert_eq!(sym.len(), 2 * mp.len());
        // Decomposition reassembles to the original.
        let rebuilt = mp
            .decompose_pairs()
            .into_iter()
            .reduce(|a, b| a.concat(&b).unwrap());
        assert_eq!(rebuilt.unwrap(), mp);
    }
}

/// On real traversals, connectivity is symmetric (χ(u,v) = χ(v,u)) and
/// normalized connectivity respects the definition κ = χ/χ_self.
#[test]
fn connectivity_laws_on_synthetic_network() {
    let net = generate(&SyntheticConfig::tiny(99));
    let g = &net.graph;
    let apv = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
    let author_t = g.schema().vertex_type_by_name("author").unwrap();
    let authors = g.vertices_of_type(author_t);
    let sample: Vec<_> = authors.iter().step_by(37).take(8).copied().collect();
    for &u in &sample {
        for &v in &sample {
            let chi_uv = traverse::connectivity(g, u, v, &apv).unwrap();
            let chi_vu = traverse::connectivity(g, v, u, &apv).unwrap();
            assert_eq!(chi_uv, chi_vu);
            let vis = traverse::visibility(g, u, &apv).unwrap();
            match traverse::normalized_connectivity(g, u, v, &apv).unwrap() {
                Some(kappa) => assert!((kappa - chi_uv / vis).abs() < 1e-12),
                None => assert_eq!(vis, 0.0),
            }
        }
    }
}
