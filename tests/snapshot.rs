//! Tier-1 snapshot equivalence tests: an engine serving from a memory-mapped
//! snapshot must produce exactly the answer the in-memory engine produces —
//! same ranked order (ties included), bit-identical scores, same
//! zero-visibility sets — for every measure, every workload template, and
//! under intra-query parallelism. Snapshots change where bytes live, never
//! what they say.

use hin_datagen::dblp::{generate, SyntheticConfig, SyntheticNetwork};
use hin_datagen::workload::{generate_queries, QueryTemplate};
use hin_snapshot::{Snapshot, SnapshotWriter};
use netout::engine::index::{ChunkSelection, PmIndex};
use netout::{MeasureKind, OutlierDetector, QueryResult};
use std::path::PathBuf;

fn fixture(scale: f64) -> SyntheticNetwork {
    generate(&SyntheticConfig::default().scaled(scale))
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hin_snapshot_t1_{}_{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Everything about a result that must be invariant across storage
/// backends. Timing stats are the one legitimate difference, so they are
/// excluded.
fn fingerprint(r: &QueryResult) -> impl PartialEq + std::fmt::Debug {
    (
        r.measure,
        r.candidate_count,
        r.reference_count,
        r.zero_visibility.clone(),
        r.ranked
            .iter()
            .map(|o| (o.vertex, o.name.clone(), o.score.to_bits()))
            .collect::<Vec<_>>(),
        r.degraded.as_ref().map(|d| (d.scored, d.total, d.limit)),
    )
}

/// A mixed workload across all three templates.
fn workload(net: &SyntheticNetwork, per_template: usize) -> Vec<String> {
    QueryTemplate::ALL
        .iter()
        .enumerate()
        .flat_map(|(i, &t)| generate_queries(&net.graph, t, per_template, 42 + i as u64))
        .collect()
}

/// Write the graph (+ full PM index) to a snapshot file, load it back
/// through the mmap path, and return the snapshot-backed (graph, index).
fn roundtrip(
    net: &SyntheticNetwork,
    dir: &std::path::Path,
) -> (hin_graph::HinGraph, Option<PmIndex>) {
    let index = PmIndex::build_full(&net.graph, ChunkSelection::All, 1);
    let path = dir.join("net.hsnp");
    SnapshotWriter::write(&path, &net.graph, Some(&index)).expect("write snapshot");
    let snap = Snapshot::load(&path).expect("load snapshot");
    assert!(
        snap.graph().is_mapped() || !cfg!(all(unix, target_pointer_width = "64")),
        "expected a zero-copy mapping on this platform"
    );
    snap.into_parts()
}

#[test]
fn snapshot_engine_is_bit_identical_across_templates() {
    let net = fixture(0.25);
    let dir = scratch_dir("templates");
    let (graph, index) = roundtrip(&net, &dir);
    let queries = workload(&net, 3);
    let mem = OutlierDetector::with_index(net.graph.clone(), netout::IndexPolicy::full())
        .expect("in-memory detector builds");
    let mapped = OutlierDetector::from_prebuilt(graph, index);
    for query in &queries {
        let a = fingerprint(&mem.query(query).expect("in-memory run succeeds"));
        let b = fingerprint(&mapped.query(query).expect("snapshot run succeeds"));
        assert!(a == b, "snapshot result diverged on {query}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_engine_is_bit_identical_for_every_measure() {
    let net = fixture(0.25);
    let dir = scratch_dir("measures");
    let (graph, index) = roundtrip(&net, &dir);
    let queries = workload(&net, 1);
    let measures = [
        MeasureKind::NetOut,
        MeasureKind::PathSim,
        MeasureKind::CosSim,
        MeasureKind::Lof { k: 5 },
        MeasureKind::KnnDist { k: 3 },
    ];
    for measure in measures {
        let mem = OutlierDetector::new(net.graph.clone()).measure(measure);
        let mapped = OutlierDetector::from_prebuilt(graph.clone(), index.clone()).measure(measure);
        for query in &queries {
            let a = fingerprint(&mem.query(query).expect("in-memory run succeeds"));
            let b = fingerprint(&mapped.query(query).expect("snapshot run succeeds"));
            assert!(a == b, "{measure:?} diverged on {query}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_engine_is_bit_identical_under_parallelism() {
    let net = fixture(0.25);
    let dir = scratch_dir("threads");
    let (graph, index) = roundtrip(&net, &dir);
    let queries = workload(&net, 2);
    let serial = OutlierDetector::new(net.graph.clone());
    let mapped = OutlierDetector::from_prebuilt(graph, index).with_threads(4);
    for query in &queries {
        let a = fingerprint(&serial.query(query).expect("serial in-memory run succeeds"));
        let b = fingerprint(&mapped.query(query).expect("4-thread snapshot run succeeds"));
        assert!(
            a == b,
            "4-thread snapshot result diverged from serial in-memory on {query}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_survives_rewrite_while_mapped() {
    // The mmap safety contract: writers never mutate a live file in place —
    // they write a temp file and rename over. A reader holding the old
    // mapping keeps serving the old bytes.
    let net = fixture(0.1);
    let dir = scratch_dir("rewrite");
    let path = dir.join("net.hsnp");
    SnapshotWriter::write(&path, &net.graph, None).expect("write snapshot");
    let snap = Snapshot::load(&path).expect("load snapshot");
    let before = snap.graph().vertex_count();
    // Replace the file with a different graph while the mapping is live.
    let other = fixture(0.05);
    SnapshotWriter::write(&path, &other.graph, None).expect("rewrite snapshot");
    assert_eq!(snap.graph().vertex_count(), before, "live mapping changed");
    // A fresh open sees the new graph.
    let fresh = Snapshot::load(&path).expect("reload snapshot");
    assert_eq!(fresh.graph().vertex_count(), other.graph.vertex_count());
    std::fs::remove_dir_all(&dir).ok();
}
