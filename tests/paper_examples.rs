//! Integration tests pinning every number the paper prints for its
//! illustrative examples, exercised through the full public pipeline
//! (query string → parse → bind → execute).

use hin_datagen::toy;
use netout::{MeasureKind, OutlierDetector, QueryEngine};

/// Section 3's Definition 5–7 examples on the Figure 1(b) network.
#[test]
fn section3_meta_path_examples() {
    use hin_graph::{traverse, MetaPath};
    let g = toy::figure1_network();
    let author = g.schema().vertex_type_by_name("author").unwrap();
    let ava = g.vertex_by_name(author, "Ava").unwrap();
    let liam = g.vertex_by_name(author, "Liam").unwrap();
    let zoe = g.vertex_by_name(author, "Zoe").unwrap();

    let pca = MetaPath::parse("author.paper.author", g.schema()).unwrap();
    // |π_Pca(Ava, Liam)| = 1, |π_Pca(Liam, Zoe)| = 2.
    assert_eq!(traverse::path_count(&g, ava, liam, &pca).unwrap(), 1.0);
    assert_eq!(traverse::path_count(&g, liam, zoe, &pca).unwrap(), 2.0);

    // Φ_Pca(Zoe) = [Ava:1, Liam:2, Zoe:5].
    let phi = traverse::neighbor_vector(&g, zoe, &pca).unwrap();
    assert_eq!(phi.get(ava), 1.0);
    assert_eq!(phi.get(liam), 2.0);
    assert_eq!(phi.get(zoe), 5.0);

    // Φ_APV(Zoe) = [ICDE:2, KDD:3].
    let pv = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
    let phi = traverse::neighbor_vector(&g, zoe, &pv).unwrap();
    assert_eq!(phi.sum(), 5.0);
    assert_eq!(phi.nnz(), 2);
}

/// Figure 2 / Example 4: χ(Jim, Mary) = 28, κ(Jim, Mary) = 0.5,
/// κ(Mary, Jim) = 2 — via the query pipeline with singleton sets.
#[test]
fn figure2_normalized_connectivity() {
    let g = toy::figure2_network();
    let engine = QueryEngine::baseline(&g);
    let k_jm = engine
        .execute_str(
            "FIND OUTLIERS FROM author{\"Jim\"} COMPARED TO author{\"Mary\"} \
             JUDGED BY author.paper.venue;",
        )
        .unwrap()
        .ranked[0]
        .score;
    let k_mj = engine
        .execute_str(
            "FIND OUTLIERS FROM author{\"Mary\"} COMPARED TO author{\"Jim\"} \
             JUDGED BY author.paper.venue;",
        )
        .unwrap()
        .ranked[0]
        .score;
    assert_eq!(k_jm, 0.5);
    assert_eq!(k_mj, 2.0);
}

/// Table 2, all three columns, to the paper's printed precision (±0.005).
#[test]
fn table2_all_columns_exact() {
    let expected: [(&str, f64, f64, f64); 5] = [
        ("Sarah", 100.0, 100.0, 100.0),
        ("Rob", 6.24, 9.97, 12.43),
        ("Lucy", 31.11, 32.79, 32.83),
        ("Joe", 50.0, 1.94, 7.04),
        ("Emma", 3.33, 5.44, 7.04),
    ];
    let graph = toy::table1_network();
    let query = toy::table1_query();
    for (mi, kind) in [MeasureKind::NetOut, MeasureKind::PathSim, MeasureKind::CosSim]
        .into_iter()
        .enumerate()
    {
        let engine = QueryEngine::baseline(&graph).measure(kind);
        let result = engine.execute_str(&query).unwrap();
        for (name, netout, pathsim, cossim) in expected {
            let want = [netout, pathsim, cossim][mi];
            let got = result
                .ranked
                .iter()
                .find(|o| o.name == name)
                .unwrap_or_else(|| panic!("{name} missing under {}", kind.name()))
                .score;
            assert!(
                (got - want).abs() < 0.005,
                "{} for {name}: got {got}, paper says {want}",
                kind.name()
            );
        }
    }
}

/// The qualitative orderings the paper highlights around Table 2:
/// NetOut: Emma is the strongest outlier and Joe is *not* flagged;
/// PathSim/CosSim both put Joe at (or tied with) the most-outlying end.
#[test]
fn table2_qualitative_orderings() {
    let graph = toy::table1_network();
    let query = toy::table1_query();

    let netout = QueryEngine::baseline(&graph).execute_str(&query).unwrap();
    assert_eq!(netout.ranked[0].name, "Emma");
    let joe_rank = netout
        .ranked
        .iter()
        .position(|o| o.name == "Joe")
        .unwrap();
    assert!(joe_rank >= 3, "NetOut does not flag unstable Joe");

    let pathsim = QueryEngine::baseline(&graph)
        .measure(MeasureKind::PathSim)
        .execute_str(&query)
        .unwrap();
    assert_eq!(pathsim.ranked[0].name, "Joe", "PathSim's low-visibility bias");
}

/// Paper Examples 1–3 (Section 4.3) parse, bind, and — on networks that
/// contain the referenced anchors — execute.
#[test]
fn section4_example_queries_bind() {
    use hin_query::validate::parse_and_bind;
    let schema = hin_graph::bibliographic_schema();
    let examples = [
        "FIND OUTLIERS \
         FROM author{\"Christos Faloutsos\"}.paper.author \
         JUDGED BY author.paper.venue \
         TOP 10;",
        "FIND OUTLIERS \
         FROM author{\"Christos Faloutsos\"}.paper.author \
         COMPARED TO venue{\"KDD\"}.paper.author \
         JUDGED BY author.paper.venue, author.paper.author \
         TOP 10;",
        "FIND OUTLIERS \
         FROM venue{\"SIGMOD\"}.paper.author AS A WHERE COUNT(A.paper) >= 5 \
         JUDGED BY author.paper.author, author.paper.term : 3.0 \
         TOP 50;",
    ];
    for q in examples {
        parse_and_bind(q, &schema).unwrap_or_else(|e| panic!("example failed: {e}\n{q}"));
    }
}

/// The NetOut detector surfaces exactly the zero-visibility candidates the
/// paper's measure leaves undefined, instead of mis-ranking them.
#[test]
fn zero_visibility_policy() {
    let detector = OutlierDetector::new(toy::lonely_author_network());
    let r = detector
        .query(
            "FIND OUTLIERS FROM venue{\"V1\"}.paper.author UNION author{\"Loner\"} \
             JUDGED BY author.paper.venue;",
        )
        .unwrap();
    assert_eq!(r.candidate_count, 3);
    assert_eq!(r.zero_visibility.len(), 1);
    assert_eq!(r.ranked.len(), 2);
}
