//! Integration tests for the query language: paper queries, the Table 4
//! templates, canonical-form round-trips, and diagnostics.

use hin_graph::bibliographic_schema;
use hin_query::validate::parse_and_bind;
use hin_query::{parse, QueryError};
use proptest::prelude::*;

/// Every query string printed in the paper (Sections 4.2–4.3, Table 4)
/// parses and binds against the bibliographic schema.
#[test]
fn all_paper_queries_accepted() {
    let schema = bibliographic_schema();
    let queries = [
        // Section 4.3 examples.
        "FIND OUTLIERS FROM author{\"Christos Faloutsos\"}.paper.author \
         JUDGED BY author.paper.venue TOP 10;",
        "FIND OUTLIERS FROM author{\"Christos Faloutsos\"}.paper.author \
         COMPARED TO venue{\"KDD\"}.paper.author \
         JUDGED BY author.paper.venue, author.paper.author TOP 10;",
        "FIND OUTLIERS FROM venue{\"SIGMOD\"}.paper.author AS A \
         WHERE COUNT(A.paper) >= 5 \
         JUDGED BY author.paper.author, author.paper.term : 3.0 TOP 50;",
        // Table 4 templates (note Q2/Q3 use IN).
        "FIND OUTLIERS FROM author{\"x\"}.paper.author \
         JUDGED BY author.paper.venue TOP 10;",
        "FIND OUTLIERS IN author{\"x\"}.paper.venue \
         JUDGED BY venue.paper.term TOP 10;",
        "FIND OUTLIERS IN author{\"x\"}.paper.term \
         JUDGED BY term.paper.venue TOP 10;",
        // Section 4.2 set-operation snippets, embedded in full queries.
        "FIND OUTLIERS FROM venue{\"EDBT\"}.paper.author UNION venue{\"ICDE\"}.paper.author \
         JUDGED BY author.paper.venue;",
        "FIND OUTLIERS FROM venue{\"EDBT\"}.paper.author INTERSECT venue{\"ICDE\"}.paper.author \
         JUDGED BY author.paper.venue;",
        "FIND OUTLIERS FROM venue{\"EDBT\"}.paper.author AS A WHERE COUNT(A.paper) > 10 \
         JUDGED BY author.paper.venue;",
    ];
    for q in queries {
        parse_and_bind(q, &schema).unwrap_or_else(|e| panic!("rejected paper query: {e}\n{q}"));
    }
}

/// Canonical printing round-trips: parse → print → parse → print is a
/// fixed point.
#[test]
fn canonical_form_is_fixed_point() {
    let queries = [
        "find outliers from venue{\"EDBT\"}.paper.author as A \
         where count(A.paper) >= 5 and not count(A.paper.venue) < 2 \
         judged by author.paper.venue : 2.5, author.paper.author top 7",
        "FIND OUTLIERS IN (venue{\"A\"}.paper.author UNION venue{\"B\"}.paper.author) \
         INTERSECT venue{\"C\"}.paper.author JUDGED BY author.paper.term;",
    ];
    for q in queries {
        let once = parse(q).unwrap().to_string();
        let twice = parse(&once).unwrap().to_string();
        assert_eq!(once, twice, "canonical form unstable for {q}");
    }
}

/// Diagnostics carry spans that point into the source.
#[test]
fn diagnostics_have_useful_spans() {
    let src = "FIND OUTLIERS FROM author{\"X\"}.papr JUDGED BY author.paper.venue;";
    let err = parse_and_bind(src, &bibliographic_schema()).unwrap_err();
    let rendered = err.render(src);
    assert!(rendered.contains("papr"), "mentions the bad type: {rendered}");
    assert!(rendered.contains('^'), "has caret markers: {rendered}");

    let src = "FIND OUTLIERS FROM author{\"X\" JUDGED BY a.b;";
    let err = parse(src).unwrap_err();
    assert!(matches!(err, QueryError::Parse { .. }));
}

// Grammar fuzz: the parser must never panic, whatever bytes arrive.
proptest! {
    #[test]
    fn parser_never_panics(input in "\\PC{0,120}") {
        let _ = parse(&input);
    }

    #[test]
    fn parser_never_panics_querylike(
        anchor in "[a-z]{1,8}",
        name in "[A-Za-z0-9 .]{0,12}",
        path in proptest::collection::vec("[a-z]{1,6}", 0..4),
        top in proptest::option::of(0usize..100),
    ) {
        let mut q = format!("FIND OUTLIERS FROM {anchor}{{\"{name}\"}}");
        for p in &path {
            q.push('.');
            q.push_str(p);
        }
        q.push_str(" JUDGED BY a.b");
        if let Some(t) = top {
            q.push_str(&format!(" TOP {t}"));
        }
        q.push(';');
        let _ = parse(&q);
    }

    /// Any successfully parsed query round-trips through its Display form.
    /// (Identifiers are filtered against the reserved keywords — `to`,
    /// `top`, `in`, … are legitimately rejected as type names.)
    #[test]
    fn parsed_queries_roundtrip(
        vtype in "[a-z]{1,6}".prop_filter("not a keyword", |s| {
            !matches!(
                s.as_str(),
                "find" | "outliers" | "from" | "in" | "compared" | "to" | "judged" | "by"
                    | "top" | "as" | "where" | "count" | "union" | "intersect" | "except" | "and" | "or"
                    | "not"
            )
        }),
        vname in "[A-Za-z ]{1,10}",
        k in 1usize..50,
        weight in proptest::option::of(1u32..9),
    ) {
        let w = weight.map(|w| format!(" : {w}")).unwrap_or_default();
        let q = format!(
            "FIND OUTLIERS FROM {vtype}{{\"{vname}\"}}.paper \
             JUDGED BY paper.author{w} TOP {k};"
        );
        let ast = parse(&q).unwrap();
        let printed = ast.to_string();
        let reparsed = parse(&printed).unwrap();
        prop_assert_eq!(printed, reparsed.to_string());
    }
}

/// The validator rejects each class of semantic error with a targeted
/// message (not a generic failure).
#[test]
fn semantic_error_catalogue() {
    let schema = bibliographic_schema();
    let cases = [
        (
            "FIND OUTLIERS FROM writer{\"X\"}.paper JUDGED BY paper.author;",
            "unknown vertex type",
        ),
        (
            "FIND OUTLIERS FROM author{\"X\"}.venue JUDGED BY venue.paper;",
            "no edge type",
        ),
        (
            "FIND OUTLIERS FROM author{\"X\"}.paper.author JUDGED BY venue.paper.author;",
            "feature meta-path starts at",
        ),
        (
            "FIND OUTLIERS FROM author{\"X\"}.paper UNION venue{\"Y\"}.paper.author \
             JUDGED BY paper.author;",
            "different member types",
        ),
        (
            "FIND OUTLIERS FROM author{\"X\"}.paper.author COMPARED TO venue{\"Y\"}.paper \
             JUDGED BY author.paper.venue;",
            "reference set contains",
        ),
        (
            "FIND OUTLIERS FROM author{\"X\"}.paper.author WHERE COUNT(A.paper) > 3 \
             JUDGED BY author.paper.venue;",
            "no AS alias",
        ),
    ];
    for (query, needle) in cases {
        let err = parse_and_bind(query, &schema).unwrap_err();
        assert!(
            err.to_string().contains(needle),
            "expected {needle:?} in error for {query}\ngot: {err}"
        );
    }
}
