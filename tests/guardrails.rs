//! Tier-1 guardrail tests: execution budgets must terminate oversized
//! queries promptly, either with `EngineError::BudgetExceeded` or — on the
//! best-effort path — a partial result carrying a `Degraded` marker.

use hin_datagen::dblp::{generate, SyntheticConfig};
use netout::{Budget, BudgetLimit, CancelToken, EngineError, OutlierDetector};
use std::time::{Duration, Instant};

/// A graph big enough that an unbudgeted broad query does real work.
fn fixture(scale: f64) -> hin_datagen::dblp::SyntheticNetwork {
    generate(&SyntheticConfig::default().scaled(scale))
}

/// A deliberately broad query: a venue's whole author population judged by
/// two feature paths.
fn oversized_query(net: &hin_datagen::dblp::SyntheticNetwork) -> String {
    let g = &net.graph;
    let venue_t = g.schema().vertex_type_by_name("venue").unwrap();
    let venue = g.vertex_name(g.vertices_of_type(venue_t)[0]);
    format!(
        "FIND OUTLIERS FROM venue{{\"{venue}\"}}.paper.author \
         JUDGED BY author.paper.venue, author.paper.term TOP 50;"
    )
}

/// The ISSUE acceptance criterion: a 1 ms deadline terminates an oversized
/// query well under a second, as a budget error or a degraded partial result.
#[test]
fn one_ms_deadline_terminates_promptly() {
    // Full-scale network: the query takes far longer than 1 ms unbudgeted,
    // so a clean completion here would mean the deadline is ignored.
    let net = fixture(1.0);
    let query = oversized_query(&net);
    let detector =
        OutlierDetector::new(net.graph.clone()).budget(Budget::unbounded().with_timeout_ms(1));
    let start = Instant::now();
    let strict = detector.query(&query);
    let best_effort = detector.query_best_effort(&query);
    let elapsed = start.elapsed();
    // Generous CI margin; a working deadline fires in a few ms, a broken one
    // runs the full multi-second query (twice).
    assert!(
        elapsed < Duration::from_secs(5),
        "budgeted queries took {elapsed:?}, deadline is not being honored"
    );
    match strict {
        Err(EngineError::BudgetExceeded { limit, .. }) => {
            assert_eq!(limit, BudgetLimit::WallClock);
        }
        other => panic!("strict run must hit the wall-clock budget, got {other:?}"),
    }
    match best_effort {
        Ok(result) => {
            let d = result.degraded.expect("1 ms run cannot finish cleanly");
            assert_eq!(d.limit, BudgetLimit::WallClock);
            assert!(d.scored <= d.total, "scored prefix cannot exceed total");
        }
        // Deadline fired before even one candidate was scored: also fine.
        Err(EngineError::BudgetExceeded { limit, .. }) => {
            assert_eq!(limit, BudgetLimit::WallClock);
        }
        Err(other) => panic!("unexpected failure: {other}"),
    }
}

/// Candidate-cardinality and frontier-nnz caps fail with the right limit,
/// and a loose budget is invisible (same answer as unbudgeted).
#[test]
fn cardinality_and_nnz_limits_enforced() {
    let net = fixture(0.25);
    let query = oversized_query(&net);

    let capped =
        OutlierDetector::new(net.graph.clone()).budget(Budget::unbounded().with_max_candidates(2));
    match capped.query(&query) {
        Err(EngineError::BudgetExceeded {
            limit, observed, ..
        }) => {
            assert_eq!(limit, BudgetLimit::Candidates);
            assert!(observed > 2);
        }
        other => panic!("expected candidate-cap violation, got {other:?}"),
    }

    let pinched =
        OutlierDetector::new(net.graph.clone()).budget(Budget::unbounded().with_max_nnz(1));
    match pinched.query(&query) {
        Err(EngineError::BudgetExceeded { limit, .. }) => {
            assert_eq!(limit, BudgetLimit::FrontierNnz);
        }
        other => panic!("expected frontier-nnz violation, got {other:?}"),
    }

    let loose = OutlierDetector::new(net.graph.clone()).budget(
        Budget::unbounded()
            .with_timeout_ms(600_000)
            .with_max_candidates(1_000_000)
            .with_max_nnz(1_000_000_000),
    );
    let budgeted = loose.query(&query).unwrap();
    assert!(budgeted.degraded.is_none());
    let baseline = OutlierDetector::new(net.graph.clone())
        .query(&query)
        .unwrap();
    assert_eq!(budgeted.names(), baseline.names());
    assert!(
        budgeted.stats.budget_checks() > 0,
        "budgeted execution must actually consult the budget"
    );
}

/// A pre-cancelled token aborts before any propagation work happens.
#[test]
fn cancelled_token_aborts_immediately() {
    let net = fixture(0.25);
    let query = oversized_query(&net);
    let token = CancelToken::new();
    token.cancel();
    let detector = OutlierDetector::new(net.graph.clone())
        .budget(Budget::unbounded().with_cancel_token(token));
    let start = Instant::now();
    match detector.query(&query) {
        Err(EngineError::BudgetExceeded { limit, .. }) => {
            assert_eq!(limit, BudgetLimit::Cancelled);
        }
        other => panic!("expected cancellation, got {other:?}"),
    }
    assert!(start.elapsed() < Duration::from_secs(1));
}
