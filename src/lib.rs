//! Umbrella crate for the EDBT 2015 "Query-Based Outlier Detection in
//! Heterogeneous Information Networks" reproduction.
//!
//! Re-exports the member crates so examples and integration tests can use a
//! single dependency. Library users normally depend on the member crates
//! directly:
//!
//! * [`hin_graph`] — the HIN data model, meta-paths, sparse kernels.
//! * [`hin_query`] — the outlier query language.
//! * [`netout`] — the NetOut measure and query execution engine.
//! * [`hin_datagen`] — toy fixtures, synthetic networks, workloads.

pub use hin_datagen;
pub use hin_graph;
pub use hin_query;
pub use netout;
