//! Quickstart: build a tiny bibliographic network by hand and ask the
//! paper's motivating question — "who among this author's coauthors
//! publishes in the weirdest venues?"
//!
//! Run with: `cargo run --example quickstart`

use hin_graph::{bibliographic_schema, GraphBuilder};
use netout::OutlierDetector;

fn main() {
    // 1. Schema: the paper's author / paper / venue / term types.
    let schema = bibliographic_schema();
    let author = schema.vertex_type_by_name("author").unwrap();
    let paper = schema.vertex_type_by_name("paper").unwrap();
    let venue = schema.vertex_type_by_name("venue").unwrap();

    // 2. A small network: four authors around "Christos", three venues.
    //    Daphne coauthors with Christos but publishes mostly at SIGGRAPH —
    //    she should surface as the venue outlier.
    let mut gb = GraphBuilder::new(schema);
    let christos = gb.add_vertex(author, "Christos").unwrap();
    let alice = gb.add_vertex(author, "Alice").unwrap();
    let bob = gb.add_vertex(author, "Bob").unwrap();
    let daphne = gb.add_vertex(author, "Daphne").unwrap();
    let kdd = gb.add_vertex(venue, "KDD").unwrap();
    let icdm = gb.add_vertex(venue, "ICDM").unwrap();
    let siggraph = gb.add_vertex(venue, "SIGGRAPH").unwrap();

    let mut add_paper = |name: &str, authors: &[hin_graph::VertexId], v| {
        let p = gb.add_vertex(paper, name).unwrap();
        for &a in authors {
            gb.add_edge(a, p).unwrap();
        }
        gb.add_edge(p, v).unwrap();
    };
    add_paper("p1", &[christos, alice], kdd);
    add_paper("p2", &[christos, alice], icdm);
    add_paper("p3", &[christos, bob], kdd);
    add_paper("p4", &[bob, alice], kdd);
    add_paper("p5", &[christos, daphne], kdd);
    add_paper("p6", &[daphne], siggraph);
    add_paper("p7", &[daphne], siggraph);
    add_paper("p8", &[daphne], siggraph);
    let graph = gb.build();

    // 3. Ask the question in the paper's query language.
    let detector = OutlierDetector::new(graph);
    let result = detector
        .query(
            "FIND OUTLIERS \
             FROM author{\"Christos\"}.paper.author \
             JUDGED BY author.paper.venue \
             TOP 3;",
        )
        .expect("valid query");

    println!(
        "outliers among Christos' coauthors, judged by publishing venues \
         (smaller Ω = stronger outlier):\n"
    );
    for (rank, outlier) in result.ranked.iter().enumerate() {
        println!("  {}. {:<10} Ω = {:.3}", rank + 1, outlier.name, outlier.score);
    }
    assert_eq!(result.ranked[0].name, "Daphne");
    println!("\nDaphne tops the list: most of her work is at SIGGRAPH, unlike the group.");
}
