//! Community-level analysis with pre-materialization: find venues whose
//! vocabulary deviates from an author's usual communities (Table 4's Q2
//! template) and terms used in unusual venues (Q3), comparing Baseline and
//! PM execution times per query.
//!
//! Run with: `cargo run --release --example venue_communities`

use hin_datagen::dblp::{generate, SyntheticConfig};
use hin_datagen::workload::QueryTemplate;
use netout::{IndexPolicy, OutlierDetector};
use std::time::Instant;

fn main() {
    let net = generate(&SyntheticConfig {
        seed: 7,
        ..SyntheticConfig::default()
    });
    let anchor = net.graph.vertex_name(net.hubs[1]).to_string();
    println!(
        "network: {} vertices, {} edges; anchor: {anchor}\n",
        net.graph.vertex_count(),
        net.graph.edge_count()
    );

    let baseline = OutlierDetector::new(net.graph.clone());
    let t = Instant::now();
    let pm = OutlierDetector::with_index(net.graph.clone(), IndexPolicy::full())
        .expect("PM build");
    println!(
        "PM index: {} bytes, built in {:?}\n",
        pm.index_size_bytes(),
        t.elapsed()
    );

    for template in [QueryTemplate::Q2, QueryTemplate::Q3] {
        let query = template.instantiate(&anchor);
        println!("{}: {query}", template.name());

        let t = Instant::now();
        let rb = baseline.query(&query).expect("baseline run");
        let t_base = t.elapsed();
        let t = Instant::now();
        let rp = pm.query(&query).expect("pm run");
        let t_pm = t.elapsed();

        assert_eq!(rb.names(), rp.names(), "strategies agree");
        println!(
            "  baseline {t_base:?} vs PM {t_pm:?} ({:.1}x)",
            t_base.as_secs_f64() / t_pm.as_secs_f64().max(1e-9)
        );
        for (rank, o) in rp.ranked.iter().enumerate().take(5) {
            println!("  {:2}. {:<24} Ω = {:.3}", rank + 1, o.name, o.score);
        }
        println!();
    }

    println!(
        "Q2 ranks the anchor's venues by how typical their vocabulary is for \
         the set;\nQ3 ranks the anchor's title terms by the venues they appear \
         in. Both reuse the\nsame engine — only the meta-paths change."
    );
}
