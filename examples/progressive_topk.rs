//! Progressive top-k — the paper's Section 8 extension: watch the
//! approximate top-k stabilize while the query is still being processed,
//! and decide when the answer is good enough.
//!
//! Run with: `cargo run --release --example progressive_topk`

use hin_datagen::dblp::{generate, SyntheticConfig};
use hin_query::validate::parse_and_bind;
use netout::QueryEngine;

fn main() {
    let net = generate(&SyntheticConfig {
        seed: 99,
        authors: 4_000,
        papers: 16_000,
        ..SyntheticConfig::default()
    });
    let g = &net.graph;

    // A broad query: outliers among all authors of one venue.
    let venue_t = g.schema().vertex_type_by_name("venue").unwrap();
    let venue = g.vertex_name(g.vertices_of_type(venue_t)[0]);
    let query = format!(
        "FIND OUTLIERS FROM venue{{\"{venue}\"}}.paper.author \
         JUDGED BY author.paper.venue TOP 5;"
    );
    let bound = parse_and_bind(&query, g.schema()).expect("valid query");

    let engine = QueryEngine::baseline(g);
    let mut run = engine
        .execute_progressive(&bound, 64)
        .expect("query starts");

    println!("{query}\n");
    println!(
        "{:>9} {:>7} {:>10}  current top-5",
        "processed", "stable", "threshold"
    );
    let mut early_answer = None;
    for snapshot in &mut run {
        let names: Vec<&str> = snapshot.top.iter().map(|o| o.name.as_str()).collect();
        println!(
            "{:>8.0}% {:>6.0}% {:>10}  {}",
            snapshot.progress() * 100.0,
            snapshot.stability * 100.0,
            snapshot
                .threshold
                .map(|t| format!("{t:.2}"))
                .unwrap_or_else(|| "-".into()),
            names.join(", ")
        );
        // An analyst's stopping rule: half the batches agree and we've seen
        // at least a quarter of the candidates.
        if early_answer.is_none() && snapshot.stability >= 0.5 && snapshot.progress() >= 0.25 {
            early_answer = Some(names.join(", "));
        }
    }
    let exact = engine.execute(&bound).expect("query runs");
    let exact_names: Vec<&str> = exact.ranked.iter().map(|o| o.name.as_str()).collect();
    println!("\nexact top-5: {}", exact_names.join(", "));
    if let Some(early) = early_answer {
        println!("early answer (at the stopping rule): {early}");
        if early == exact_names.join(", ") {
            println!("-> the early answer was already correct.");
        }
    }
}
