//! The paper's flagship scenario at scale: find outliers among a prolific
//! author's coauthors, compare judgment criteria (venues vs. coauthors, the
//! two queries of Table 5), and compare NetOut with the similarity-based
//! measures (Table 3).
//!
//! Run with: `cargo run --release --example coauthor_outliers`

use hin_datagen::dblp::{generate, SyntheticConfig};
use netout::{MeasureKind, OutlierDetector};

fn main() {
    // A synthetic bibliographic network with planted cross-community
    // authors (1% of authors publish in a foreign area's venues).
    let net = generate(&SyntheticConfig {
        seed: 2015,
        outlier_fraction: 0.02,
        ..SyntheticConfig::default()
    });
    println!(
        "synthetic DBLP: {} vertices, {} edges, {} planted outliers\n",
        net.graph.vertex_count(),
        net.graph.edge_count(),
        net.planted.len()
    );

    // Anchor on the hub (most prolific author) of area 0 — the synthetic
    // "Christos Faloutsos".
    let anchor = net.graph.vertex_name(net.hubs[0]).to_string();
    println!("anchor author: {anchor}\n");
    let detector = OutlierDetector::new(net.graph.clone());

    // Query 1: judged by publishing venues.
    let by_venue = format!(
        "FIND OUTLIERS FROM author{{\"{anchor}\"}}.paper.author \
         JUDGED BY author.paper.venue TOP 10;"
    );
    // Query 2: same candidates, judged by collaboration structure.
    let by_coauthor = format!(
        "FIND OUTLIERS FROM author{{\"{anchor}\"}}.paper.author \
         JUDGED BY author.paper.author TOP 10;"
    );

    for (title, query) in [
        ("judged by venues (APV)", &by_venue),
        ("judged by coauthors (APA)", &by_coauthor),
    ] {
        let result = detector.query(query).expect("query runs");
        println!("top outliers {title}:");
        for (rank, o) in result.ranked.iter().enumerate() {
            let mark = if net.is_planted(o.vertex) { "  <- planted" } else { "" };
            println!("  {:2}. {:<24} Ω = {:>8.3}{mark}", rank + 1, o.name, o.score);
        }
        println!();
    }
    println!(
        "As in the paper's Table 5, the two judgments give substantially \
         different outliers:\nwithout a user-specified criterion the task \
         would be ill-defined.\n"
    );

    // Table 3 flavor: PathSim and CosSim are biased toward low-visibility
    // authors; show the paper counts of each measure's top-5.
    let paper_t = net.graph.schema().vertex_type_by_name("paper").unwrap();
    for kind in [MeasureKind::NetOut, MeasureKind::PathSim, MeasureKind::CosSim] {
        let result = OutlierDetector::new(net.graph.clone())
            .measure(kind)
            .query(&by_venue)
            .expect("query runs");
        let counts: Vec<usize> = result
            .ranked
            .iter()
            .take(5)
            .map(|o| net.graph.step_degree(o.vertex, paper_t))
            .collect();
        println!("{:<8} top-5 paper counts: {counts:?}", result.measure);
    }
    println!(
        "\nNetOut's top outliers span a range of visibilities; the similarity \
         measures\nconcentrate on minimal-paper-count authors (the Table 3 effect)."
    );
}
