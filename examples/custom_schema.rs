//! The framework is not tied to bibliographic data: define a movie network
//! (user / movie / genre / director) and find rating outliers with the same
//! query language — the generality the paper claims in Section 8
//! ("our framework can easily be extended to a broader range of data sets").
//!
//! Run with: `cargo run --example custom_schema`

use hin_graph::{GraphBuilder, SchemaBuilder, VertexId};
use netout::OutlierDetector;

fn main() {
    // 1. A custom schema.
    let mut sb = SchemaBuilder::new();
    let user = sb.vertex_type("user");
    let movie = sb.vertex_type("movie");
    let genre = sb.vertex_type("genre");
    let director = sb.vertex_type("director");
    sb.edge_type("rated", user, movie);
    sb.edge_type("belongs_to", movie, genre);
    sb.edge_type("directed_by", movie, director);
    let schema = sb.build().expect("valid schema");

    // 2. A small rating network. Most of the club watches sci-fi;
    //    Quentin-fan watches only westerns.
    let mut gb = GraphBuilder::new(schema);
    let users: Vec<VertexId> = ["Ana", "Bruno", "Cleo", "Quentin-fan"]
        .iter()
        .map(|n| gb.add_vertex(user, *n).unwrap())
        .collect();
    let scifi = gb.add_vertex(genre, "sci-fi").unwrap();
    let western = gb.add_vertex(genre, "western").unwrap();
    let nolan = gb.add_vertex(director, "Nolan").unwrap();
    let leone = gb.add_vertex(director, "Leone").unwrap();

    let movies: Vec<(&str, VertexId, VertexId)> = vec![
        ("Interstellar", scifi, nolan),
        ("Inception", scifi, nolan),
        ("Tenet", scifi, nolan),
        ("Dollars", western, leone),
        ("GoodBadUgly", western, leone),
    ];
    let movie_ids: Vec<VertexId> = movies
        .iter()
        .map(|(name, g, d)| {
            let m = gb.add_vertex(movie, *name).unwrap();
            gb.add_edge(m, *g).unwrap();
            gb.add_edge(m, *d).unwrap();
            m
        })
        .collect();

    // Ana, Bruno, Cleo rate the sci-fi titles; Quentin-fan rates westerns.
    for &u in &users[..3] {
        for &m in &movie_ids[..3] {
            gb.add_edge(u, m).unwrap();
        }
    }
    for &m in &movie_ids[3..] {
        gb.add_edge(users[3], m).unwrap();
    }
    // Everyone saw Interstellar (shared context keeps the group connected).
    gb.add_edge(users[3], movie_ids[0]).unwrap();
    let graph = gb.build();

    // 3. Same language, different domain: outliers among all users who
    //    rated Interstellar, judged by the genres they consume.
    let detector = OutlierDetector::new(graph);
    let result = detector
        .query(
            "FIND OUTLIERS \
             FROM movie{\"Interstellar\"}.user \
             JUDGED BY user.movie.genre \
             TOP 2;",
        )
        .expect("valid query");

    println!("outliers among Interstellar's raters, judged by genre taste:\n");
    for (rank, o) in result.ranked.iter().enumerate() {
        println!("  {}. {:<12} Ω = {:.3}", rank + 1, o.name, o.score);
    }
    assert_eq!(result.ranked[0].name, "Quentin-fan");
    println!("\nThe western devotee stands out — no bibliographic assumptions anywhere.");
}
