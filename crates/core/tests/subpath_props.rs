//! Property tests for sub-path canonicalization (`engine::subpath`): the
//! chunking that feeds the cross-query product cache must recompose to the
//! original meta-path exactly, chunk shapes must match the Section 6.2
//! decomposition, and symmetric paths must exhibit the mirror structure the
//! cache relies on (a single-hop symmetric path dedupes to one palindromic
//! chunk).

use hin_graph::{bibliographic_schema, MetaPath, Schema, VertexTypeId};
use netout::engine::subpath::{canonical_chunks, prefix_paths};
use proptest::prelude::*;

/// Random schema-valid meta-path: a walk over the schema's link graph,
/// seeded by a start index and per-step neighbor choices.
fn random_path(schema: &Schema, start: usize, steps: &[usize]) -> MetaPath {
    let types: Vec<VertexTypeId> = schema.vertex_type_ids().collect();
    let neighbors: Vec<Vec<VertexTypeId>> = types
        .iter()
        .map(|&a| {
            types
                .iter()
                .copied()
                .filter(|&b| schema.link_exists(a, b))
                .collect()
        })
        .collect();
    let mut walk = vec![types[start % types.len()]];
    for &choice in steps {
        let here = walk[walk.len() - 1];
        let next = &neighbors[here.index()];
        // Every type in the bibliographic schema has at least one link.
        walk.push(next[choice % next.len()]);
    }
    MetaPath::new(walk, schema).expect("walk follows schema links")
}

fn path_strategy() -> impl Strategy<Value = MetaPath> {
    (0usize..4, proptest::collection::vec(0usize..8, 1..10))
        .prop_map(|(start, steps)| random_path(&bibliographic_schema(), start, &steps))
}

proptest! {
    /// Decompose → recompose identity: folding the canonical chunks back
    /// together with `concat` reproduces the original type sequence, and
    /// the running prefixes agree with the chunk boundaries.
    #[test]
    fn decompose_recompose_identity(path in path_strategy()) {
        let chunks = canonical_chunks(&path);
        let prefixes = prefix_paths(&chunks);
        prop_assert_eq!(prefixes.len(), chunks.len());
        let last = prefixes.last().expect("non-degenerate path has chunks");
        prop_assert_eq!(last.types(), path.types());
        // Each prefix starts where the path starts and ends where its last
        // chunk ends.
        for (k, prefix) in prefixes.iter().enumerate() {
            prop_assert_eq!(prefix.source_type(), path.source_type());
            prop_assert_eq!(prefix.target_type(), chunks[k].target_type());
        }
    }

    /// Chunk shapes follow the Section 6.2 decomposition: every chunk is
    /// length 2 except an odd trailing hop, chunks chain boundary-to-
    /// boundary, and the total edge count is preserved.
    #[test]
    fn chunk_shapes_and_boundaries(path in path_strategy()) {
        let chunks = canonical_chunks(&path);
        prop_assert_eq!(chunks.len(), path.len().div_ceil(2));
        let total: usize = chunks.iter().map(MetaPath::len).sum();
        prop_assert_eq!(total, path.len());
        for (i, chunk) in chunks.iter().enumerate() {
            if i + 1 < chunks.len() {
                prop_assert_eq!(chunk.len(), 2);
                prop_assert_eq!(chunk.target_type(), chunks[i + 1].source_type());
            } else {
                prop_assert!(chunk.len() == 2 || chunk.len() == 1);
            }
        }
    }

    /// A single-hop path's symmetric closure `(A B A)` dedupes to exactly
    /// one palindromic chunk — both "halves" of the symmetric path are the
    /// same cache entry.
    #[test]
    fn single_hop_symmetric_dedupes_to_one_chunk(start in 0usize..4, step in 0usize..8) {
        let schema = bibliographic_schema();
        let hop = random_path(&schema, start, &[step]);
        let sym = hop.symmetric();
        prop_assert!(sym.is_symmetric());
        let chunks = canonical_chunks(&sym);
        prop_assert_eq!(chunks.len(), 1);
        prop_assert_eq!(chunks[0].types(), sym.types());
        prop_assert!(chunks[0].is_symmetric());
    }

    /// For any symmetric closure `P·P⁻¹` of an even-length path, the chunk
    /// sequence mirrors: chunk `k` is the reversal of chunk `n-1-k`. This
    /// is the structure that lets one warm chunk serve both halves of a
    /// symmetric materialization (modulo direction).
    #[test]
    fn symmetric_halves_mirror(path in path_strategy()) {
        let sym = path.symmetric();
        prop_assert!(sym.is_symmetric());
        let chunks = canonical_chunks(&sym);
        if sym.len() % 2 == 0 {
            let n = chunks.len();
            for k in 0..n {
                prop_assert_eq!(
                    chunks[k].reversed().types(),
                    chunks[n - 1 - k].types()
                );
            }
        }
    }
}
