//! High-level facade: own a network, optionally build an index, run queries.

use crate::engine::budget::{Budget, ExecCtx};
use crate::engine::cache::{CacheStats, CachedSource, VectorCache};
use crate::engine::executor::{CombineStrategy, QueryEngine, QueryResult};
use crate::engine::index::{select_frequent_vertices, ChunkSelection, PmIndex};
use crate::engine::source::IndexedSource;
use crate::engine::subpath::{SubpathCache, SubpathSource, SubpathStats};
use crate::error::EngineError;
use crate::measures::MeasureKind;
use hin_graph::HinGraph;
use hin_query::validate::{parse_and_bind, BoundQuery};
use std::sync::Arc;

/// Indexing policy for an [`OutlierDetector`], mirroring the three
/// implementations compared in the paper's Section 7 (Baseline / PM / SPM).
#[derive(Debug, Clone)]
pub enum IndexPolicy {
    /// No index — the baseline implementation (Section 6.1).
    None,
    /// Full pre-materialization of length-2 meta-paths (PM).
    Full {
        /// Which length-2 meta-paths to materialize.
        selection: ChunkSelection,
        /// Build parallelism (1 = sequential).
        threads: usize,
    },
    /// Selective pre-materialization (SPM): only vertices whose relative
    /// frequency in the candidate sets of `init_queries` is at least
    /// `threshold` get materialized rows.
    Selective {
        /// Which length-2 meta-paths to consider. `None` derives the chunk
        /// set from the initialization queries themselves.
        selection: Option<ChunkSelection>,
        /// Relative frequency threshold in `[0, 1]` (the paper uses 0.01).
        threshold: f64,
        /// The initialization query workload ("existing query logs, or else
        /// synthetic queries", Section 6.2).
        init_queries: Vec<String>,
        /// Build parallelism (1 = sequential).
        threads: usize,
    },
}

impl IndexPolicy {
    /// Full PM over all schema-valid length-2 paths, parallel build.
    pub fn full() -> Self {
        IndexPolicy::Full {
            selection: ChunkSelection::All,
            threads: default_threads(),
        }
    }

    /// SPM with the paper's default threshold (0.01), deriving indexed
    /// chunks from the workload.
    pub fn selective(init_queries: Vec<String>, threshold: f64) -> Self {
        IndexPolicy::Selective {
            selection: None,
            threshold,
            init_queries,
            threads: default_threads(),
        }
    }
}

/// Scoring batch size used by [`OutlierDetector::query_best_effort`]: small
/// enough that a tripped deadline wastes little work, large enough to
/// amortize per-batch bookkeeping.
const BEST_EFFORT_BATCH: usize = 64;

/// A sensible build parallelism: available cores, capped.
fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(16))
        .unwrap_or(1)
}

/// The top-level outlier detection system: a heterogeneous network plus an
/// optional pre-materialization index, a measure, and a combination
/// strategy.
///
/// ```
/// use hin_datagen::toy;
/// use netout::{IndexPolicy, OutlierDetector};
///
/// let detector = OutlierDetector::with_index(toy::figure1_network(), IndexPolicy::full()).unwrap();
/// let result = detector
///     .query("FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author JUDGED BY author.paper.venue;")
///     .unwrap();
/// assert_eq!(result.ranked.len(), 3);
/// ```
#[derive(Debug)]
pub struct OutlierDetector {
    graph: HinGraph,
    index: Option<PmIndex>,
    cache: Option<Arc<VectorCache>>,
    subpath: Option<Arc<SubpathCache>>,
    source_name: &'static str,
    measure: MeasureKind,
    combine: CombineStrategy,
    budget: Budget,
    threads: usize,
}

impl OutlierDetector {
    /// A detector without an index (baseline execution).
    pub fn new(graph: HinGraph) -> Self {
        OutlierDetector {
            graph,
            index: None,
            cache: None,
            subpath: None,
            source_name: "baseline",
            measure: MeasureKind::NetOut,
            combine: CombineStrategy::default(),
            budget: Budget::default(),
            threads: 1,
        }
    }

    /// A detector with the given indexing policy; builds the index eagerly.
    pub fn with_index(graph: HinGraph, policy: IndexPolicy) -> Result<Self, EngineError> {
        let (index, source_name) = match policy {
            IndexPolicy::None => (None, "baseline"),
            IndexPolicy::Full { selection, threads } => {
                (Some(PmIndex::build_full(&graph, selection, threads)), "pm")
            }
            IndexPolicy::Selective {
                selection,
                threshold,
                init_queries,
                threads,
            } => {
                let bound: Vec<BoundQuery> = init_queries
                    .iter()
                    .map(|q| parse_and_bind(q, graph.schema()))
                    .collect::<Result<_, _>>()?;
                let selection = selection.unwrap_or_else(|| {
                    ChunkSelection::Paths(crate::engine::index::chunks_used_by(&bound))
                });
                let selected = select_frequent_vertices(&graph, &bound, threshold);
                (
                    Some(PmIndex::build_selective(
                        &graph, selection, &selected, threads,
                    )),
                    "spm",
                )
            }
        };
        Ok(OutlierDetector {
            graph,
            index,
            cache: None,
            subpath: None,
            source_name,
            measure: MeasureKind::NetOut,
            combine: CombineStrategy::default(),
            budget: Budget::default(),
            threads: 1,
        })
    }

    /// A detector over a graph and an *already built* index — the snapshot
    /// path, where both were loaded from disk rather than computed here.
    /// Queries behave exactly like [`OutlierDetector::with_index`] with the
    /// policy that originally built the index (`"pm"` strategy when an index
    /// is present, `"baseline"` otherwise).
    pub fn from_prebuilt(graph: HinGraph, index: Option<PmIndex>) -> Self {
        let source_name = if index.is_some() { "pm" } else { "baseline" };
        OutlierDetector {
            graph,
            index,
            cache: None,
            subpath: None,
            source_name,
            measure: MeasureKind::NetOut,
            combine: CombineStrategy::default(),
            budget: Budget::default(),
            threads: 1,
        }
    }

    /// The prebuilt index, when present (borrowed; used by snapshot writers).
    pub fn index(&self) -> Option<&PmIndex> {
        self.index.as_ref()
    }

    /// Enable a cross-query LRU cache of neighbor vectors holding up to
    /// `capacity` vectors — pays off when an analyst iterates on related
    /// queries (see [`crate::engine::cache`]). Composes with any index
    /// policy.
    pub fn with_vector_cache(self, capacity: usize) -> Self {
        self.with_shared_cache(Arc::new(VectorCache::new(capacity)))
    }

    /// Use an existing shared cache instance. The cache is `Send + Sync`
    /// (interior mutability behind a `parking_lot::Mutex`), so several
    /// detectors/engines — e.g. every worker of a query server — can share
    /// one instance and serve each other's warm vectors.
    pub fn with_shared_cache(mut self, cache: Arc<VectorCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The shared vector-cache instance, when enabled.
    pub fn shared_cache(&self) -> Option<&Arc<VectorCache>> {
        self.cache.as_ref()
    }

    /// Hit/miss counters of the vector cache (`None` when disabled).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_deref().map(VectorCache::stats)
    }

    /// Enable a cross-query sub-path product cache with a byte budget of
    /// `mb` mebibytes (the CLI's `--subpath-cache-mb`; `0` disables). Unlike
    /// the whole-vector cache, this one memoizes intermediate chunk and
    /// prefix products, so queries that merely *share a meta-path prefix*
    /// accelerate each other — see [`crate::engine::subpath`]. Composes with
    /// any index policy and with the whole-vector cache.
    pub fn with_subpath_cache_mb(self, mb: usize) -> Self {
        if mb == 0 {
            return self;
        }
        self.with_shared_subpath_cache(Arc::new(SubpathCache::with_budget_mb(mb)))
    }

    /// Use an existing shared sub-path cache instance (`Send + Sync`, so
    /// every worker of a query server can share one).
    pub fn with_shared_subpath_cache(mut self, cache: Arc<SubpathCache>) -> Self {
        self.subpath = Some(cache);
        self
    }

    /// The shared sub-path cache instance, when enabled.
    pub fn shared_subpath_cache(&self) -> Option<&Arc<SubpathCache>> {
        self.subpath.as_ref()
    }

    /// Counters and gauges of the sub-path cache (`None` when disabled).
    pub fn subpath_stats(&self) -> Option<SubpathStats> {
        self.subpath.as_deref().map(SubpathCache::stats)
    }

    /// Drop every entry from both caches (counters are preserved; the
    /// sub-path cache's frequency sketch is reset). Used between workload
    /// runs so one run's warm state cannot silently change the next run's
    /// reported hit rates.
    pub fn clear_caches(&self) {
        if let Some(cache) = &self.cache {
            cache.clear();
        }
        if let Some(subpath) = &self.subpath {
            subpath.clear();
        }
    }

    /// Change the outlierness measure (default: NetOut).
    pub fn measure(mut self, measure: MeasureKind) -> Self {
        self.measure = measure;
        self
    }

    /// Change the multi-path combination strategy (default: weighted
    /// average).
    pub fn combine_strategy(mut self, combine: CombineStrategy) -> Self {
        self.combine = combine;
        self
    }

    /// Set a default execution [`Budget`] applied to every query run through
    /// this detector (default: unbounded). Strict entry points
    /// ([`Self::query`], [`Self::execute`]) fail with
    /// [`EngineError::BudgetExceeded`] when a limit trips;
    /// [`Self::query_best_effort`] degrades to a partial result instead
    /// whenever at least one candidate was scored.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The currently configured default budget.
    pub fn current_budget(&self) -> &Budget {
        &self.budget
    }

    /// Set the number of worker threads used *within* each query (default 1
    /// = fully serial). `0` picks a sensible automatic value (available
    /// cores, capped at 16). Results are bit-identical for every thread
    /// count — see [`crate::engine::parallel`].
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = if n == 0 { default_threads() } else { n };
        self
    }

    /// The configured intra-query thread count.
    pub fn current_threads(&self) -> usize {
        self.threads
    }

    /// The underlying network.
    pub fn graph(&self) -> &HinGraph {
        &self.graph
    }

    /// Bytes of index memory (0 when unindexed) — Figure 5b's metric.
    pub fn index_size_bytes(&self) -> usize {
        self.index.as_ref().map(PmIndex::size_bytes).unwrap_or(0)
    }

    /// The active strategy name: `"baseline"`, `"pm"`, or `"spm"`.
    pub fn strategy(&self) -> &'static str {
        self.source_name
    }

    /// Build a [`QueryEngine`] borrowing this detector's graph, index, and
    /// caches. Decorators stack base → sub-path cache → whole-vector cache,
    /// so a whole-vector hit short-circuits everything and a whole-vector
    /// miss still reuses cached sub-products.
    pub fn engine(&self) -> QueryEngine<'_> {
        let base: Box<dyn crate::engine::source::VectorSource + '_> = match &self.index {
            None => Box::new(crate::engine::source::TraversalSource::new(&self.graph)),
            Some(index) => Box::new(IndexedSource::new(&self.graph, index, self.source_name)),
        };
        let base: Box<dyn crate::engine::source::VectorSource + '_> = match &self.subpath {
            None => base,
            Some(subpath) => Box::new(SubpathSource::new(base, subpath.as_ref())),
        };
        let source: Box<dyn crate::engine::source::VectorSource + '_> = match &self.cache {
            None => base,
            Some(cache) => Box::new(CachedSource::new(base, cache.as_ref())),
        };
        QueryEngine::with_source(&self.graph, source)
            .measure(self.measure)
            .combine_strategy(self.combine)
            .budget(self.budget.clone())
            .threads(self.threads)
    }

    /// Parse, validate, and execute a query string.
    pub fn query(&self, src: &str) -> Result<QueryResult, EngineError> {
        self.engine().execute_str(src)
    }

    /// Parse, validate, and execute a query string, degrading gracefully
    /// under budget pressure: when the configured [`Budget`] trips after at
    /// least one candidate has been scored, the partial ranking is returned
    /// with [`QueryResult::degraded`] set instead of an error. Budget
    /// violations before any scoring (and all non-budget errors) still fail.
    pub fn query_best_effort(&self, src: &str) -> Result<QueryResult, EngineError> {
        let bound = parse_and_bind(src, self.graph.schema())?;
        self.engine().execute_best_effort(&bound, BEST_EFFORT_BATCH)
    }

    /// Parse and validate a query string, returning its execution plan
    /// without running it.
    pub fn explain(&self, src: &str) -> Result<crate::engine::explain::Explain, EngineError> {
        let bound = parse_and_bind(src, self.graph.schema())?;
        Ok(self.engine().explain(&bound))
    }

    /// Execute a pre-bound query (useful for repeated workloads).
    pub fn execute(&self, query: &BoundQuery) -> Result<QueryResult, EngineError> {
        self.engine().execute(query)
    }

    /// Top-k PathSim similarity search from a named vertex along a feature
    /// meta-path (see [`crate::measures::similarity`]). The feature path is
    /// given in dotted notation (`"author.paper.venue"`) and must start at
    /// the vertex's type.
    pub fn similar(
        &self,
        type_name: &str,
        vertex_name: &str,
        feature_path: &str,
        k: usize,
    ) -> Result<Vec<(String, f64)>, EngineError> {
        let schema = self.graph.schema();
        let vtype = schema.vertex_type_by_name(type_name).ok_or_else(|| {
            EngineError::Graph(hin_graph::GraphError::UnknownVertexTypeName(
                type_name.to_string(),
            ))
        })?;
        let v = self
            .graph
            .vertex_by_name(vtype, vertex_name)
            .ok_or_else(|| EngineError::UnknownAnchor {
                type_name: type_name.to_string(),
                name: vertex_name.to_string(),
            })?;
        let path = hin_graph::MetaPath::parse(feature_path, schema)?;
        let engine = self.engine();
        let mut ctx = ExecCtx::new(&self.budget);
        ctx.set_threads(self.threads);
        let hits =
            crate::measures::similarity::pathsim_topk(engine.source(), v, &path, k, &mut ctx)?;
        Ok(hits
            .into_iter()
            .map(|h| (self.graph.vertex_name(h.vertex).to_string(), h.similarity))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hin_datagen::toy;

    fn icde_query() -> &'static str {
        "FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author JUDGED BY author.paper.venue;"
    }

    #[test]
    fn baseline_pm_and_spm_agree_on_scores() {
        let base = OutlierDetector::new(toy::figure1_network());
        let pm = OutlierDetector::with_index(toy::figure1_network(), IndexPolicy::full()).unwrap();
        let spm = OutlierDetector::with_index(
            toy::figure1_network(),
            IndexPolicy::selective(vec![icde_query().to_string()], 0.01),
        )
        .unwrap();
        let rb = base.query(icde_query()).unwrap();
        let rp = pm.query(icde_query()).unwrap();
        let rs = spm.query(icde_query()).unwrap();
        assert_eq!(rb.names(), rp.names());
        assert_eq!(rb.names(), rs.names());
        for ((b, p), s) in rb.ranked.iter().zip(&rp.ranked).zip(&rs.ranked) {
            assert!((b.score - p.score).abs() < 1e-12);
            assert!((b.score - s.score).abs() < 1e-12);
        }
        assert_eq!(base.strategy(), "baseline");
        assert_eq!(pm.strategy(), "pm");
        assert_eq!(spm.strategy(), "spm");
    }

    #[test]
    fn index_sizes_ordered() {
        let base = OutlierDetector::new(toy::table1_network());
        let pm = OutlierDetector::with_index(toy::table1_network(), IndexPolicy::full()).unwrap();
        let spm = OutlierDetector::with_index(
            toy::table1_network(),
            // Workload touching only Sarah's coauthor set.
            IndexPolicy::selective(
                vec!["FIND OUTLIERS FROM author{\"Sarah\"}.paper.author \
                     JUDGED BY author.paper.venue;"
                    .to_string()],
                0.5,
            ),
        )
        .unwrap();
        assert_eq!(base.index_size_bytes(), 0);
        assert!(pm.index_size_bytes() > spm.index_size_bytes());
        assert!(spm.index_size_bytes() > 0);
    }

    #[test]
    fn spm_records_index_hits_and_misses() {
        let spm = OutlierDetector::with_index(
            toy::figure1_network(),
            IndexPolicy::selective(
                vec![
                    // Only Zoe's coauthors in the workload (= all 3 authors,
                    // each freq 1.0) — threshold 1.0 keeps them all; the
                    // chunk set will be APA + APV.
                    "FIND OUTLIERS FROM author{\"Zoe\"}.paper.author \
                     JUDGED BY author.paper.venue;"
                        .to_string(),
                ],
                1.0,
            ),
        )
        .unwrap();
        let r = spm
            .query("FIND OUTLIERS FROM author{\"Zoe\"}.paper.author JUDGED BY author.paper.venue;")
            .unwrap();
        assert!(
            r.stats.indexed_count > 0,
            "feature vectors served from index"
        );
        assert!(r.stats.index_hit_rate().unwrap() > 0.0);
    }

    #[test]
    fn spm_with_bad_init_query_fails_fast() {
        let err = OutlierDetector::with_index(
            toy::figure1_network(),
            IndexPolicy::selective(vec!["FIND GARBAGE;".to_string()], 0.01),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::Query(_)));
    }

    #[test]
    fn vector_cache_accelerates_repeated_queries() {
        let detector = OutlierDetector::new(toy::figure1_network()).with_vector_cache(256);
        let r1 = detector.query(icde_query()).unwrap();
        let stats1 = detector.cache_stats().unwrap();
        assert_eq!(stats1.hits, 0, "cold cache");
        assert!(stats1.misses > 0);
        let r2 = detector.query(icde_query()).unwrap();
        let stats2 = detector.cache_stats().unwrap();
        assert!(stats2.hits > 0, "warm cache serves repeats");
        assert_eq!(r1.names(), r2.names());
        for (a, b) in r1.ranked.iter().zip(&r2.ranked) {
            assert_eq!(a.score, b.score);
        }
        // The warm run's materializations were all indexed-bucket loads.
        assert_eq!(r2.stats.unindexed_count, 0);
    }

    #[test]
    fn cache_composes_with_pm_index() {
        let detector = OutlierDetector::with_index(toy::figure1_network(), IndexPolicy::full())
            .unwrap()
            .with_vector_cache(64);
        let r1 = detector.query(icde_query()).unwrap();
        let r2 = detector.query(icde_query()).unwrap();
        assert_eq!(r1.names(), r2.names());
        assert!(detector.cache_stats().unwrap().hits > 0);
        assert_eq!(detector.strategy(), "pm");
    }

    #[test]
    fn budget_threads_through_facade() {
        use crate::engine::budget::{Budget, BudgetLimit};
        // A candidate cap far below the real candidate-set size fails the
        // strict path...
        let d = OutlierDetector::new(toy::figure1_network())
            .budget(Budget::default().with_max_candidates(1));
        let err = d.query(icde_query()).unwrap_err();
        assert!(matches!(
            err,
            EngineError::BudgetExceeded {
                limit: BudgetLimit::Candidates,
                ..
            }
        ));
        // ...while an ample budget changes nothing.
        let roomy = OutlierDetector::new(toy::figure1_network())
            .budget(Budget::default().with_max_candidates(1_000_000));
        let r = roomy.query(icde_query()).unwrap();
        assert!(r.degraded.is_none());
        assert_eq!(r.ranked.len(), 3);
        // Best-effort on an unbounded budget is identical to strict.
        let b = roomy.query_best_effort(icde_query()).unwrap();
        assert_eq!(r.names(), b.names());
        assert!(b.degraded.is_none());
    }

    #[test]
    fn threads_builder_is_bit_identical_to_serial() {
        let serial = OutlierDetector::new(toy::table1_network());
        let parallel = OutlierDetector::new(toy::table1_network()).with_threads(4);
        assert_eq!(parallel.current_threads(), 4);
        let rs = serial.query(&toy::table1_query()).unwrap();
        let rp = parallel.query(&toy::table1_query()).unwrap();
        assert_eq!(rs.names(), rp.names());
        for (a, b) in rs.ranked.iter().zip(&rp.ranked) {
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        // 0 = automatic (cores, capped): always at least one thread.
        let auto = OutlierDetector::new(toy::figure1_network()).with_threads(0);
        assert!(auto.current_threads() >= 1);
        assert!(auto.current_threads() <= 16);
    }

    #[test]
    fn subpath_cache_is_bit_identical_and_hits_on_repeats() {
        let plain = OutlierDetector::new(toy::figure1_network());
        let cached = OutlierDetector::new(toy::figure1_network()).with_subpath_cache_mb(16);
        let want = plain.query(icde_query()).unwrap();
        let cold = cached.query(icde_query()).unwrap();
        let warm = cached.query(icde_query()).unwrap();
        for got in [&cold, &warm] {
            assert_eq!(want.names(), got.names());
            for (a, b) in want.ranked.iter().zip(&got.ranked) {
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
        let stats = cached.subpath_stats().unwrap();
        assert!(stats.hits > 0, "repeat run must hit: {stats:?}");
        assert!(stats.admitted > 0);
        // mb = 0 disables the cache entirely.
        let disabled = OutlierDetector::new(toy::figure1_network()).with_subpath_cache_mb(0);
        assert!(disabled.subpath_stats().is_none());
    }

    #[test]
    fn subpath_cache_composes_with_index_and_vector_cache() {
        let detector = OutlierDetector::with_index(toy::figure1_network(), IndexPolicy::full())
            .unwrap()
            .with_subpath_cache_mb(16)
            .with_vector_cache(64);
        let r1 = detector.query(icde_query()).unwrap();
        let r2 = detector.query(icde_query()).unwrap();
        assert_eq!(r1.names(), r2.names());
        for (a, b) in r1.ranked.iter().zip(&r2.ranked) {
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        // Both cache layers are live and visible through the facade.
        assert!(detector.cache_stats().unwrap().hits > 0);
        assert!(detector.subpath_stats().is_some());
        assert_eq!(detector.strategy(), "pm");
    }

    #[test]
    fn cleared_caches_make_runs_order_independent() {
        // Regression test: one process executing several runs against a
        // shared detector must report the same per-run hit-rate deltas
        // regardless of run order, provided caches are cleared between runs
        // (what `workload --run` does).
        let queries = [
            icde_query().to_string(),
            "FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author JUDGED BY author.paper.author;"
                .to_string(),
        ];
        let run = |detector: &OutlierDetector, strict: bool| -> (u64, u64, u64, u64) {
            detector.clear_caches();
            let c0 = detector.cache_stats().unwrap();
            let s0 = detector.subpath_stats().unwrap();
            for q in &queries {
                if strict {
                    detector.query(q).unwrap();
                } else {
                    detector.query_best_effort(q).unwrap();
                }
            }
            let c1 = detector.cache_stats().unwrap();
            let s1 = detector.subpath_stats().unwrap();
            (
                c1.hits - c0.hits,
                c1.misses - c0.misses,
                s1.since(&s0).hits,
                s1.since(&s0).misses,
            )
        };
        let fresh = || {
            OutlierDetector::new(toy::figure1_network())
                .with_vector_cache(256)
                .with_subpath_cache_mb(16)
        };
        // Order A: strict then best-effort; order B: best-effort then strict.
        let a = fresh();
        let (a_strict, a_best) = (run(&a, true), run(&a, false));
        let b = fresh();
        let (b_best, b_strict) = (run(&b, false), run(&b, true));
        assert_eq!(a_strict, b_strict, "strict deltas depend on run order");
        assert_eq!(a_best, b_best, "best-effort deltas depend on run order");
    }

    #[test]
    fn measure_and_combine_builders() {
        let d = OutlierDetector::new(toy::table1_network())
            .measure(MeasureKind::CosSim)
            .combine_strategy(CombineStrategy::WeightedSum);
        let r = d.query(&toy::table1_query()).unwrap();
        assert_eq!(r.measure, "CosSim");
    }
}
