//! `Ω_PathSim` — the comparison measure of Section 5.2 built on PathSim
//! (Sun et al., VLDB 2011).
//!
//! ```text
//! PathSim(v_i, v_j) = 2·χ(v_i, v_j) / (χ(v_i, v_i) + χ(v_j, v_j))
//! Ω_PathSim(v_i)    = Σ_{v_j ∈ S_r} PathSim(v_i, v_j)
//! ```
//!
//! Unlike NetOut's normalized connectivity, PathSim is symmetric; the paper
//! shows this makes the outlier score biased toward low-visibility vertices
//! (Joe in Table 2 and the one-paper authors in Table 3).
//!
//! The per-pair denominator depends on *both* endpoints, so the reference
//! sum cannot be hoisted: scoring is inherently `O(|S_r| × |S_c|)`.

use super::common::{OutlierMeasure, PreparedScorer, VectorSet};
use crate::engine::topk::ScoreOrder;
use crate::error::EngineError;
use hin_graph::{SparseVec, VertexId};

/// The `Ω_PathSim` measure.
#[derive(Debug, Clone, Copy, Default)]
pub struct PathSimMeasure;

/// PathSim between two feature vectors. A pair with zero combined
/// visibility has no path structure to compare; its similarity is 0.
pub fn pathsim(phi_i: &SparseVec, phi_j: &SparseVec) -> f64 {
    let denom = phi_i.norm2_sq() + phi_j.norm2_sq();
    if denom == 0.0 {
        0.0
    } else {
        2.0 * phi_i.dot(phi_j) / denom
    }
}

/// PathSim with every reference visibility `χ(v_j, v_j) = ‖Φ(v_j)‖²`
/// precomputed once; the per-pair denominator then reuses it instead of
/// re-walking each reference vector for every candidate.
struct PathSimPrepared<'a> {
    reference: &'a VectorSet,
    ref_norms: Vec<f64>,
}

impl PreparedScorer for PathSimPrepared<'_> {
    fn score_slice(&self, candidates: &VectorSet) -> Result<Vec<(VertexId, f64)>, EngineError> {
        Ok(candidates
            .iter()
            .map(|(v, phi)| {
                let cand_norm = phi.norm2_sq();
                let omega: f64 = self
                    .reference
                    .iter()
                    .zip(&self.ref_norms)
                    .map(|((_, psi), &ref_norm)| {
                        // Same arithmetic as `pathsim`, with both norms
                        // hoisted: `norm2_sq` is deterministic, so the
                        // result is bit-identical to the unhoisted form.
                        let denom = cand_norm + ref_norm;
                        if denom == 0.0 {
                            0.0
                        } else {
                            2.0 * phi.dot(psi) / denom
                        }
                    })
                    .sum();
                (*v, omega)
            })
            .collect())
    }
}

impl OutlierMeasure for PathSimMeasure {
    fn name(&self) -> &'static str {
        "PathSim"
    }

    fn order(&self) -> ScoreOrder {
        ScoreOrder::AscendingIsOutlier
    }

    fn prepare<'a>(
        &'a self,
        reference: &'a VectorSet,
    ) -> Result<Box<dyn PreparedScorer + 'a>, EngineError> {
        let ref_norms = reference.iter().map(|(_, psi)| psi.norm2_sq()).collect();
        Ok(Box::new(PathSimPrepared {
            reference,
            ref_norms,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(pairs: &[(u32, f64)]) -> SparseVec {
        pairs.iter().map(|&(i, x)| (VertexId(i), x)).collect()
    }

    type Fixture = (Vec<(VertexId, SparseVec)>, Vec<(VertexId, SparseVec)>);

    fn table1() -> Fixture {
        let r = sv(&[(0, 10.0), (1, 10.0), (2, 1.0), (3, 1.0)]);
        let reference: Vec<_> = (0..100).map(|i| (VertexId(100 + i), r.clone())).collect();
        let candidates = vec![
            (VertexId(0), r),                                     // Sarah
            (VertexId(1), sv(&[(1, 1.0), (2, 20.0), (3, 20.0)])), // Rob
            (VertexId(2), sv(&[(1, 5.0), (2, 10.0), (3, 10.0)])), // Lucy
            (VertexId(3), sv(&[(3, 2.0)])),                       // Joe
            (VertexId(4), sv(&[(3, 30.0)])),                      // Emma
        ];
        (candidates, reference)
    }

    #[test]
    fn reproduces_table2_pathsim_column() {
        // Table 2: Ω_PathSim = 100, 9.97, 32.79, 1.94, 5.44.
        let (candidates, reference) = table1();
        let scores = PathSimMeasure.scores(&candidates, &reference).unwrap();
        let expected = [100.0, 9.97, 32.79, 1.94, 5.44];
        for ((_, omega), want) in scores.iter().zip(expected) {
            assert!(
                (omega - want).abs() < 0.005,
                "Ω_PathSim = {omega}, paper says {want}"
            );
        }
    }

    #[test]
    fn pathsim_is_symmetric_and_self_is_one() {
        let a = sv(&[(0, 2.0), (1, 3.0)]);
        let b = sv(&[(1, 1.0), (2, 4.0)]);
        assert_eq!(pathsim(&a, &b), pathsim(&b, &a));
        assert!((pathsim(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pathsim_bounded_by_one() {
        // 2ab/(a²+b²) ≤ 1 by AM–GM.
        let a = sv(&[(0, 5.0)]);
        let b = sv(&[(0, 0.1)]);
        let s = pathsim(&a, &b);
        assert!(s > 0.0 && s <= 1.0);
    }

    #[test]
    fn zero_visibility_pair_is_zero() {
        let empty = SparseVec::new();
        let a = sv(&[(0, 1.0)]);
        assert_eq!(pathsim(&empty, &a), 0.0);
        assert_eq!(pathsim(&empty, &empty), 0.0);
    }

    #[test]
    fn low_visibility_bias_joe_vs_emma() {
        // The paper's key criticism: under PathSim, Joe (2 SIGGRAPH papers)
        // scores *lower* (more outlying) than Emma (30 SIGGRAPH papers),
        // even though Emma is the stronger outlier. NetOut orders them the
        // other way.
        let (candidates, reference) = table1();
        let scores = PathSimMeasure.scores(&candidates, &reference).unwrap();
        let joe = scores[3].1;
        let emma = scores[4].1;
        assert!(joe < emma, "PathSim biased toward low visibility");
    }
}
