//! Distance-based kNN outlier score (Ramaswamy, Rastogi, Shim — SIGMOD
//! 2000), cited by the paper as the classic top-k distance-based outlier
//! definition. The score of a candidate is its Euclidean distance to its
//! `k`-th nearest reference vector; larger ⇒ more outlying.
//!
//! When the candidate itself belongs to the reference set (the common
//! `S_r = S_c` query), its own entry is excluded from the neighbor search —
//! otherwise every candidate's 1-NN distance would be zero.

use super::common::{OutlierMeasure, PreparedScorer, VectorSet};
use crate::engine::topk::ScoreOrder;
use crate::error::EngineError;
use hin_graph::VertexId;

/// kNN-distance outlier measure.
#[derive(Debug, Clone, Copy)]
pub struct KnnDist {
    k: usize,
}

impl KnnDist {
    /// Score by distance to the `k`-th nearest reference vector (`k ≥ 1`).
    pub fn new(k: usize) -> Self {
        KnnDist { k }
    }
}

/// Distance to the `k`-th nearest vector in `reference`, excluding entries
/// whose vertex id equals `this`. Returns `None` when fewer than `k`
/// eligible reference vectors exist.
pub(crate) fn kth_nn_dist2(
    this: VertexId,
    phi: &hin_graph::SparseVec,
    reference: &VectorSet,
    k: usize,
) -> Option<f64> {
    // Keep the k smallest squared distances in a bounded max-heap.
    let mut heap: std::collections::BinaryHeap<OrdF64> =
        std::collections::BinaryHeap::with_capacity(k + 1);
    for (u, psi) in reference {
        if *u == this {
            continue;
        }
        heap.push(OrdF64(phi.dist2_sq(psi)));
        if heap.len() > k {
            heap.pop();
        }
    }
    if heap.len() < k {
        None
    } else {
        heap.peek().map(|d| d.0)
    }
}

/// Total-ordered f64 wrapper for the bounded heap (all distances are
/// non-negative and finite).
#[derive(PartialEq)]
pub(crate) struct OrdF64(pub f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl OutlierMeasure for KnnDist {
    fn name(&self) -> &'static str {
        "kNN-dist"
    }

    fn order(&self) -> ScoreOrder {
        ScoreOrder::DescendingIsOutlier
    }

    fn prepare<'a>(
        &'a self,
        reference: &'a VectorSet,
    ) -> Result<Box<dyn PreparedScorer + 'a>, EngineError> {
        if self.k == 0 {
            return Err(EngineError::BadMeasureParameter(
                "kNN-dist requires k >= 1".into(),
            ));
        }
        Ok(Box::new(KnnPrepared {
            reference,
            k: self.k,
        }))
    }
}

/// kNN-dist bound to its reference set; each candidate's neighbor search is
/// independent, so shards share this state read-only.
struct KnnPrepared<'a> {
    reference: &'a VectorSet,
    k: usize,
}

impl PreparedScorer for KnnPrepared<'_> {
    fn score_slice(&self, candidates: &VectorSet) -> Result<Vec<(VertexId, f64)>, EngineError> {
        candidates
            .iter()
            .map(|(v, phi)| {
                let d2 = kth_nn_dist2(*v, phi, self.reference, self.k).ok_or_else(|| {
                    EngineError::BadMeasureParameter(format!(
                        "kNN-dist needs at least k={} reference vertices besides the candidate",
                        self.k
                    ))
                })?;
                Ok((*v, d2.sqrt()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hin_graph::SparseVec;

    fn sv(pairs: &[(u32, f64)]) -> SparseVec {
        pairs.iter().map(|&(i, x)| (VertexId(i), x)).collect()
    }

    fn refs(vectors: &[&[(u32, f64)]]) -> Vec<(VertexId, SparseVec)> {
        vectors
            .iter()
            .enumerate()
            .map(|(i, pairs)| (VertexId(100 + i as u32), sv(pairs)))
            .collect()
    }

    #[test]
    fn far_point_scores_higher() {
        let reference = refs(&[&[(0, 1.0)], &[(0, 2.0)], &[(0, 3.0)]]);
        let candidates = vec![
            (VertexId(0), sv(&[(0, 2.0)])),  // central
            (VertexId(1), sv(&[(0, 50.0)])), // far away
        ];
        let scores = KnnDist::new(1).scores(&candidates, &reference).unwrap();
        assert!(scores[1].1 > scores[0].1);
        assert_eq!(scores[0].1, 0.0); // exact match with a reference point
    }

    #[test]
    fn self_excluded_from_neighbors() {
        // Candidate shares an id with a reference entry: its distance to
        // itself must not count.
        let reference = vec![
            (VertexId(0), sv(&[(0, 1.0)])),
            (VertexId(1), sv(&[(0, 5.0)])),
        ];
        let candidates = vec![(VertexId(0), sv(&[(0, 1.0)]))];
        let scores = KnnDist::new(1).scores(&candidates, &reference).unwrap();
        assert_eq!(scores[0].1, 4.0); // distance to the other point
    }

    #[test]
    fn k_beyond_reference_errors() {
        let reference = refs(&[&[(0, 1.0)]]);
        let candidates = vec![(VertexId(0), sv(&[(0, 1.0)]))];
        assert!(KnnDist::new(5).scores(&candidates, &reference).is_err());
        assert!(KnnDist::new(0).scores(&candidates, &reference).is_err());
    }

    #[test]
    fn kth_distance_is_monotone_in_k() {
        let reference = refs(&[&[(0, 1.0)], &[(0, 2.0)], &[(0, 4.0)], &[(0, 8.0)]]);
        let phi = sv(&[(0, 0.0)]);
        let d1 = kth_nn_dist2(VertexId(0), &phi, &reference, 1).unwrap();
        let d2 = kth_nn_dist2(VertexId(0), &phi, &reference, 2).unwrap();
        let d4 = kth_nn_dist2(VertexId(0), &phi, &reference, 4).unwrap();
        assert!(d1 <= d2 && d2 <= d4);
        assert_eq!(d1, 1.0);
        assert_eq!(d4, 64.0);
    }
}
