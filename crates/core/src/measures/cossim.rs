//! `Ω_CosSim` — the cosine-similarity comparison measure of Section 5.2.
//!
//! ```text
//! Ω_CosSim(v_i) = Σ_{v_j ∈ S_r} Φ(v_i)·Φ(v_j) / (‖Φ(v_i)‖₂ ‖Φ(v_j)‖₂)
//! ```
//!
//! Cosine similarity ignores vector magnitude entirely, so two authors whose
//! venue distributions have the same *direction* are indistinguishable no
//! matter how much they published — Joe and Emma tie in Table 2, which is
//! exactly the failure mode the paper highlights.

use super::common::{OutlierMeasure, PreparedScorer, VectorSet};
use crate::engine::topk::ScoreOrder;
use crate::error::EngineError;
use hin_graph::{SparseVec, VertexId};

/// The `Ω_CosSim` measure.
#[derive(Debug, Clone, Copy, Default)]
pub struct CosSimMeasure;

/// Cosine similarity; 0 when either vector is empty.
pub fn cosine(phi_i: &SparseVec, phi_j: &SparseVec) -> f64 {
    let denom = phi_i.norm2() * phi_j.norm2();
    if denom == 0.0 {
        0.0
    } else {
        phi_i.dot(phi_j) / denom
    }
}

/// CosSim with the unit reference sum hoisted out.
struct CosSimPrepared {
    unit_sum: SparseVec,
}

impl PreparedScorer for CosSimPrepared {
    fn score_slice(&self, candidates: &VectorSet) -> Result<Vec<(VertexId, f64)>, EngineError> {
        Ok(candidates
            .iter()
            .map(|(v, phi)| {
                let n = phi.norm2();
                let omega = if n == 0.0 {
                    0.0
                } else {
                    phi.dot(&self.unit_sum) / n
                };
                (*v, omega)
            })
            .collect())
    }
}

impl OutlierMeasure for CosSimMeasure {
    fn name(&self) -> &'static str {
        "CosSim"
    }

    fn order(&self) -> ScoreOrder {
        ScoreOrder::AscendingIsOutlier
    }

    fn prepare<'a>(
        &'a self,
        reference: &'a VectorSet,
    ) -> Result<Box<dyn PreparedScorer + 'a>, EngineError> {
        // Cosine against each reference vector is a dot with the *unit*
        // reference vector, so the normalized reference sum can be hoisted —
        // unlike PathSim, CosSim admits the same O(|S_r|+|S_c|) trick.
        let mut unit_sum = SparseVec::new();
        for (_, psi) in reference {
            let n = psi.norm2();
            if n > 0.0 {
                let mut u = psi.clone();
                u.scale(1.0 / n);
                unit_sum.add_assign(&u);
            }
        }
        Ok(Box::new(CosSimPrepared { unit_sum }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(pairs: &[(u32, f64)]) -> SparseVec {
        pairs.iter().map(|&(i, x)| (VertexId(i), x)).collect()
    }

    type Fixture = (Vec<(VertexId, SparseVec)>, Vec<(VertexId, SparseVec)>);

    fn table1() -> Fixture {
        let r = sv(&[(0, 10.0), (1, 10.0), (2, 1.0), (3, 1.0)]);
        let reference: Vec<_> = (0..100).map(|i| (VertexId(100 + i), r.clone())).collect();
        let candidates = vec![
            (VertexId(0), r),                                     // Sarah
            (VertexId(1), sv(&[(1, 1.0), (2, 20.0), (3, 20.0)])), // Rob
            (VertexId(2), sv(&[(1, 5.0), (2, 10.0), (3, 10.0)])), // Lucy
            (VertexId(3), sv(&[(3, 2.0)])),                       // Joe
            (VertexId(4), sv(&[(3, 30.0)])),                      // Emma
        ];
        (candidates, reference)
    }

    #[test]
    fn reproduces_table2_cossim_column() {
        // Table 2: Ω_CosSim = 100, 12.43, 32.83, 7.04, 7.04.
        let (candidates, reference) = table1();
        let scores = CosSimMeasure.scores(&candidates, &reference).unwrap();
        let expected = [100.0, 12.43, 32.83, 7.04, 7.04];
        for ((_, omega), want) in scores.iter().zip(expected) {
            assert!(
                (omega - want).abs() < 0.005,
                "Ω_CosSim = {omega}, paper says {want}"
            );
        }
    }

    #[test]
    fn magnitude_blindness_joe_equals_emma() {
        // Joe [SIGGRAPH:2] and Emma [SIGGRAPH:30] have identical directions,
        // hence identical Ω_CosSim — the bias the paper calls out.
        let (candidates, reference) = table1();
        let scores = CosSimMeasure.scores(&candidates, &reference).unwrap();
        assert!((scores[3].1 - scores[4].1).abs() < 1e-9);
    }

    #[test]
    fn cosine_basics() {
        let a = sv(&[(0, 1.0)]);
        let b = sv(&[(1, 1.0)]);
        assert_eq!(cosine(&a, &b), 0.0); // orthogonal
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-12); // identical
        assert_eq!(cosine(&a, &SparseVec::new()), 0.0); // empty
    }

    #[test]
    fn hoisted_sum_matches_pairwise() {
        let (candidates, reference) = table1();
        let fast = CosSimMeasure.scores(&candidates, &reference).unwrap();
        for (i, (_, phi)) in candidates.iter().enumerate() {
            let slow: f64 = reference.iter().map(|(_, psi)| cosine(phi, psi)).sum();
            assert!((fast[i].1 - slow).abs() < 1e-9, "{} vs {slow}", fast[i].1);
        }
    }
}
