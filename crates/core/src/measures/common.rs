//! The [`OutlierMeasure`] trait and shared vector-set plumbing.

use crate::engine::topk::ScoreOrder;
use crate::error::EngineError;
use hin_graph::{SparseVec, VertexId};

/// A set of vertices with their materialized feature vectors `Φ_P(·)`.
///
/// Materialization happens once in the executor; measures only read.
pub type VectorSet = [(VertexId, SparseVec)];

/// A measure that has absorbed its reference set and is ready to score
/// candidate shards independently.
///
/// `prepare` runs once per query (serially), doing all reference-side work:
/// summing reference vectors, building k-NN models, precomputing norms. The
/// resulting scorer is `Send + Sync` so the parallel executor can hand the
/// same prepared state to every shard; because each candidate is scored
/// purely from that shared immutable state, sharded execution is
/// bit-identical to serial execution by construction.
pub trait PreparedScorer: Send + Sync {
    /// Score a contiguous slice of candidates. Output order matches input
    /// order; concatenating shard outputs in shard order reproduces the
    /// serial output exactly.
    fn score_slice(&self, candidates: &VectorSet) -> Result<Vec<(VertexId, f64)>, EngineError>;
}

/// An outlierness measure: maps candidate vectors against a reference set of
/// vectors to one score per candidate.
pub trait OutlierMeasure: Send + Sync {
    /// Display name of the measure.
    fn name(&self) -> &'static str;

    /// Which end of the score scale is most outlying.
    fn order(&self) -> ScoreOrder;

    /// Absorb the reference set, performing all per-query precomputation
    /// (reference sums, k-NN models, cached norms), and return a scorer
    /// that can evaluate candidate shards independently.
    ///
    /// Errors that depend only on the measure's parameters or the reference
    /// set (e.g. `k == 0`, too few reference points) surface here, before
    /// any candidate work is spent.
    fn prepare<'a>(
        &'a self,
        reference: &'a VectorSet,
    ) -> Result<Box<dyn PreparedScorer + 'a>, EngineError>;

    /// Score every candidate. Output order matches input order.
    ///
    /// Implementations must tolerate empty vectors (vertices with no path
    /// instances); what score they assign is measure-specific and
    /// documented per measure.
    ///
    /// Provided in terms of [`OutlierMeasure::prepare`]; the parallel
    /// executor calls `prepare` directly so reference-side work happens
    /// once, not once per shard.
    fn scores(
        &self,
        candidates: &VectorSet,
        reference: &VectorSet,
    ) -> Result<Vec<(VertexId, f64)>, EngineError> {
        self.prepare(reference)?.score_slice(candidates)
    }
}

/// Sum of all reference vectors — the `Σ_{v_j ∈ S_r} Φ_P(v_j)` term that
/// Equation (1) hoists out of the per-candidate loop.
pub fn reference_sum(reference: &VectorSet) -> SparseVec {
    let mut sum = SparseVec::new();
    for (_, phi) in reference {
        sum.add_assign(phi);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(pairs: &[(u32, f64)]) -> SparseVec {
        pairs.iter().map(|&(i, x)| (VertexId(i), x)).collect()
    }

    #[test]
    fn reference_sum_accumulates() {
        let refs = vec![
            (VertexId(1), sv(&[(10, 1.0), (11, 2.0)])),
            (VertexId(2), sv(&[(11, 3.0), (12, 4.0)])),
        ];
        let sum = reference_sum(&refs);
        assert_eq!(sum, sv(&[(10, 1.0), (11, 5.0), (12, 4.0)]));
    }

    #[test]
    fn reference_sum_empty() {
        assert!(reference_sum(&[]).is_empty());
    }
}
