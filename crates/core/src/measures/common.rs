//! The [`OutlierMeasure`] trait and shared vector-set plumbing.

use crate::engine::topk::ScoreOrder;
use crate::error::EngineError;
use hin_graph::{SparseVec, VertexId};

/// A set of vertices with their materialized feature vectors `Φ_P(·)`.
///
/// Materialization happens once in the executor; measures only read.
pub type VectorSet = [(VertexId, SparseVec)];

/// An outlierness measure: maps candidate vectors against a reference set of
/// vectors to one score per candidate.
pub trait OutlierMeasure: Send + Sync {
    /// Display name of the measure.
    fn name(&self) -> &'static str;

    /// Which end of the score scale is most outlying.
    fn order(&self) -> ScoreOrder;

    /// Score every candidate. Output order matches input order.
    ///
    /// Implementations must tolerate empty vectors (vertices with no path
    /// instances); what score they assign is measure-specific and
    /// documented per measure.
    fn scores(
        &self,
        candidates: &VectorSet,
        reference: &VectorSet,
    ) -> Result<Vec<(VertexId, f64)>, EngineError>;
}

/// Sum of all reference vectors — the `Σ_{v_j ∈ S_r} Φ_P(v_j)` term that
/// Equation (1) hoists out of the per-candidate loop.
pub fn reference_sum(reference: &VectorSet) -> SparseVec {
    let mut sum = SparseVec::new();
    for (_, phi) in reference {
        sum.add_assign(phi);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(pairs: &[(u32, f64)]) -> SparseVec {
        pairs.iter().map(|&(i, x)| (VertexId(i), x)).collect()
    }

    #[test]
    fn reference_sum_accumulates() {
        let refs = vec![
            (VertexId(1), sv(&[(10, 1.0), (11, 2.0)])),
            (VertexId(2), sv(&[(11, 3.0), (12, 4.0)])),
        ];
        let sum = reference_sum(&refs);
        assert_eq!(sum, sv(&[(10, 1.0), (11, 5.0), (12, 4.0)]));
    }

    #[test]
    fn reference_sum_empty() {
        assert!(reference_sum(&[]).is_empty());
    }
}
