//! **NetOut** — the paper's outlierness measure (Section 5).
//!
//! For a candidate `v_i` and reference set `S_r`, with feature vectors
//! `Φ = Φ_P(·)` along the feature meta-path `P`:
//!
//! ```text
//! Ω_NetOut(v_i) = Σ_{v_j ∈ S_r} κ(v_i, v_j)
//!               = Σ_{v_j ∈ S_r} χ(v_i, v_j) / χ(v_i, v_i)
//!               = Φ(v_i) · ( Σ_{v_j ∈ S_r} Φ(v_j) ) / ‖Φ(v_i)‖²      (Eq. 1)
//! ```
//!
//! Smaller `Ω` ⇒ more outlying. The hoisted reference sum makes scoring all
//! candidates `O(|S_r| + |S_c|)` dot products, the efficiency claim of
//! Section 6.1 (verified in `benches/micro_ops.rs`).
//!
//! **Zero-visibility candidates** (no instantiation of the feature path at
//! all, `χ(v,v) = 0`) have undefined normalized connectivity. We assign
//! `Ω = +∞`: such vertices have *no* information along the judged aspect, so
//! under NetOut's philosophy — which deliberately refuses to flag
//! low-visibility vertices (see the Joe example, Table 2) — they are ranked
//! least outlying, after every finite score. The executor also reports them
//! separately so an analyst can inspect them.

use super::common::{reference_sum, OutlierMeasure, PreparedScorer, VectorSet};
use crate::engine::topk::ScoreOrder;
use crate::error::EngineError;
use hin_graph::{SparseVec, VertexId};

/// The NetOut measure (Definition 10, computed via Equation (1)).
#[derive(Debug, Clone, Copy, Default)]
pub struct NetOut;

/// NetOut with the Equation (1) reference sum hoisted out.
struct NetOutPrepared {
    ref_sum: SparseVec,
}

impl PreparedScorer for NetOutPrepared {
    fn score_slice(&self, candidates: &VectorSet) -> Result<Vec<(VertexId, f64)>, EngineError> {
        Ok(candidates
            .iter()
            .map(|(v, phi)| {
                let visibility = phi.norm2_sq();
                let omega = if visibility == 0.0 {
                    f64::INFINITY
                } else {
                    phi.dot(&self.ref_sum) / visibility
                };
                (*v, omega)
            })
            .collect())
    }
}

impl OutlierMeasure for NetOut {
    fn name(&self) -> &'static str {
        "NetOut"
    }

    fn order(&self) -> ScoreOrder {
        ScoreOrder::AscendingIsOutlier
    }

    fn prepare<'a>(
        &'a self,
        reference: &'a VectorSet,
    ) -> Result<Box<dyn PreparedScorer + 'a>, EngineError> {
        Ok(Box::new(NetOutPrepared {
            ref_sum: reference_sum(reference),
        }))
    }
}

/// Reference implementation: the literal Definition 10 double loop,
/// `O(|S_r| × |S_c|)`. Used to validate the Equation (1) rewrite (they must
/// agree to floating-point reassociation error) and by the baseline-cost
/// microbenchmark.
pub fn netout_scores_naive(candidates: &VectorSet, reference: &VectorSet) -> Vec<(VertexId, f64)> {
    candidates
        .iter()
        .map(|(v, phi)| {
            let visibility = phi.norm2_sq();
            if visibility == 0.0 {
                return (*v, f64::INFINITY);
            }
            let omega: f64 = reference
                .iter()
                .map(|(_, psi)| phi.dot(psi) / visibility)
                .sum();
            (*v, omega)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hin_graph::SparseVec;

    fn sv(pairs: &[(u32, f64)]) -> SparseVec {
        pairs.iter().map(|&(i, x)| (VertexId(i), x)).collect()
    }

    /// The Table 1/2 toy workload, expressed directly as venue vectors:
    /// dims 0..4 = VLDB, KDD, STOC, SIGGRAPH.
    type Fixture = (Vec<(VertexId, SparseVec)>, Vec<(VertexId, SparseVec)>);

    fn table1() -> Fixture {
        let reference: Vec<_> = (0..100)
            .map(|i| {
                (
                    VertexId(100 + i),
                    sv(&[(0, 10.0), (1, 10.0), (2, 1.0), (3, 1.0)]),
                )
            })
            .collect();
        let candidates = vec![
            (VertexId(0), sv(&[(0, 10.0), (1, 10.0), (2, 1.0), (3, 1.0)])), // Sarah
            (VertexId(1), sv(&[(1, 1.0), (2, 20.0), (3, 20.0)])),           // Rob
            (VertexId(2), sv(&[(1, 5.0), (2, 10.0), (3, 10.0)])),           // Lucy
            (VertexId(3), sv(&[(3, 2.0)])),                                 // Joe
            (VertexId(4), sv(&[(3, 30.0)])),                                // Emma
        ];
        (candidates, reference)
    }

    #[test]
    fn reproduces_table2_netout_column() {
        // Table 2 of the paper: Ω_NetOut = 100, 6.24, 31.11, 50, 3.33.
        let (candidates, reference) = table1();
        let scores = NetOut.scores(&candidates, &reference).unwrap();
        let expected = [100.0, 6.24, 31.11, 50.0, 3.33];
        for ((_, omega), want) in scores.iter().zip(expected) {
            assert!(
                (omega - want).abs() < 0.005,
                "Ω = {omega}, paper says {want}"
            );
        }
    }

    #[test]
    fn efficient_matches_naive() {
        let (candidates, reference) = table1();
        let fast = NetOut.scores(&candidates, &reference).unwrap();
        let slow = netout_scores_naive(&candidates, &reference);
        for ((v1, a), (v2, b)) in fast.iter().zip(&slow) {
            assert_eq!(v1, v2);
            assert!((a - b).abs() < 1e-9 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn zero_visibility_is_infinite() {
        let candidates = vec![(VertexId(0), SparseVec::new())];
        let reference = vec![(VertexId(1), sv(&[(0, 1.0)]))];
        let scores = NetOut.scores(&candidates, &reference).unwrap();
        assert!(scores[0].1.is_infinite());
        let naive = netout_scores_naive(&candidates, &reference);
        assert!(naive[0].1.is_infinite());
    }

    #[test]
    fn self_in_reference_contributes_one() {
        // κ(v, v) = 1: a candidate identical to the whole reference set of
        // size n scores exactly n.
        let phi = sv(&[(0, 3.0), (1, 4.0)]);
        let reference: Vec<_> = (0..7).map(|i| (VertexId(i), phi.clone())).collect();
        let candidates = vec![(VertexId(0), phi)];
        let scores = NetOut.scores(&candidates, &reference).unwrap();
        assert!((scores[0].1 - 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_reference_scores_zero() {
        // Degenerate but well-defined: Σ over an empty S_r is 0 for any
        // candidate with positive visibility.
        let candidates = vec![(VertexId(0), sv(&[(0, 1.0)]))];
        let scores = NetOut.scores(&candidates, &[]).unwrap();
        assert_eq!(scores[0].1, 0.0);
    }

    #[test]
    fn scale_invariance_of_direction_not_magnitude() {
        // Doubling a candidate's vector halves its Ω (visibility grows
        // quadratically, connectivity linearly) — the property that lets
        // NetOut flag high-visibility vertices PathSim misses (Emma vs Joe).
        let reference = vec![(VertexId(9), sv(&[(0, 1.0)]))];
        let once = vec![(VertexId(0), sv(&[(0, 1.0)]))];
        let twice = vec![(VertexId(0), sv(&[(0, 2.0)]))];
        let s1 = NetOut.scores(&once, &reference).unwrap()[0].1;
        let s2 = NetOut.scores(&twice, &reference).unwrap()[0].1;
        assert!((s1 - 2.0 * s2).abs() < 1e-12);
    }
}
