//! Outlierness measures over neighbor vectors.
//!
//! Every measure consumes the candidates' and reference set's feature
//! vectors `Φ_P(·)` and produces one score per candidate. [`MeasureKind`]
//! enumerates the measures the paper evaluates:
//!
//! * [`netout`] — the paper's contribution (Definition 10), built on
//!   normalized connectivity. Lower `Ω` ⇒ more outlying.
//! * [`pathsim`] / [`cossim`] — the comparison variants of Section 5.2
//!   (`Ω_PathSim`, `Ω_CosSim`), which the paper shows are biased toward
//!   low-visibility vertices.
//! * [`lof`] — Local Outlier Factor (Breunig et al.), the classical density
//!   baseline the paper discusses in Section 8.
//! * [`knn`] — distance-based kNN outlier score (Ramaswamy et al.), cited in
//!   the paper's related work as the classic top-k outlier mining target.
//!
//! [`similarity`] additionally provides PathSim *top-k similarity search*
//! (the VLDB 2011 primitive the comparison measures derive from).

pub mod common;
pub mod cossim;
pub mod knn;
pub mod lof;
pub mod netout;
pub mod pathsim;
pub mod similarity;

pub use common::{OutlierMeasure, PreparedScorer, VectorSet};

use crate::engine::topk::ScoreOrder;

/// The measure to apply when scoring candidates (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasureKind {
    /// NetOut (the paper's measure; default).
    NetOut,
    /// `Ω_PathSim` comparison measure.
    PathSim,
    /// `Ω_CosSim` comparison measure.
    CosSim,
    /// Local Outlier Factor with neighborhood size `k`.
    Lof {
        /// Number of nearest neighbors.
        k: usize,
    },
    /// Distance to the `k`-th nearest reference vector.
    KnnDist {
        /// Which nearest neighbor's distance is the score.
        k: usize,
    },
}

impl MeasureKind {
    /// Instantiate the measure.
    pub fn instantiate(self) -> Box<dyn OutlierMeasure> {
        match self {
            MeasureKind::NetOut => Box::new(netout::NetOut),
            MeasureKind::PathSim => Box::new(pathsim::PathSimMeasure),
            MeasureKind::CosSim => Box::new(cossim::CosSimMeasure),
            MeasureKind::Lof { k } => Box::new(lof::Lof::new(k)),
            MeasureKind::KnnDist { k } => Box::new(knn::KnnDist::new(k)),
        }
    }

    /// Which end of the score scale is most outlying for this measure.
    pub fn order(self) -> ScoreOrder {
        match self {
            MeasureKind::NetOut | MeasureKind::PathSim | MeasureKind::CosSim => {
                ScoreOrder::AscendingIsOutlier
            }
            MeasureKind::Lof { .. } | MeasureKind::KnnDist { .. } => {
                ScoreOrder::DescendingIsOutlier
            }
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            MeasureKind::NetOut => "NetOut",
            MeasureKind::PathSim => "PathSim",
            MeasureKind::CosSim => "CosSim",
            MeasureKind::Lof { .. } => "LOF",
            MeasureKind::KnnDist { .. } => "kNN-dist",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_instantiate_with_consistent_order() {
        for kind in [
            MeasureKind::NetOut,
            MeasureKind::PathSim,
            MeasureKind::CosSim,
            MeasureKind::Lof { k: 3 },
            MeasureKind::KnnDist { k: 2 },
        ] {
            let m = kind.instantiate();
            assert_eq!(m.order(), kind.order(), "{}", kind.name());
            assert!(!m.name().is_empty());
        }
    }
}
