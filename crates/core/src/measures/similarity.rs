//! Top-k meta-path similarity search — the PathSim primitive of *Sun, Han,
//! Yan, Yu, Wu. "PathSim: Meta Path-Based Top-K Similarity Search in
//! Heterogeneous Information Networks", VLDB 2011* — which the paper's
//! Section 5.2 comparison measures are built on.
//!
//! Given a query vertex and a feature meta-path `P`, find the `k` vertices
//! most similar under `PathSim_{P_sym}`. Candidate generation is exact and
//! cheap: only vertices connected to the query along `P_sym` can have
//! non-zero PathSim, and those are precisely the support of `Φ_{P_sym}(v)`.

use crate::engine::budget::ExecCtx;
use crate::engine::parallel::run_sharded;
use crate::engine::source::VectorSource;
use crate::engine::topk::{top_k, ScoreOrder};
use crate::error::EngineError;
use hin_graph::{MetaPath, VertexId};

/// One similarity-search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarVertex {
    /// The similar vertex.
    pub vertex: VertexId,
    /// `PathSim_{P_sym}(query, vertex)` in `[0, 1]`.
    pub similarity: f64,
}

/// Find the `k` most PathSim-similar vertices to `query` along
/// `feature_path` (the query vertex itself, trivially at similarity 1, is
/// excluded). Vertices are materialized through `source`, so PM/SPM indexes
/// and the vector cache all apply.
pub fn pathsim_topk(
    source: &dyn VectorSource,
    query: VertexId,
    feature_path: &MetaPath,
    k: usize,
    ctx: &mut ExecCtx,
) -> Result<Vec<SimilarVertex>, EngineError> {
    let (phi_q, norm_q) = source.neighbor_vector_with_norm(query, feature_path, ctx)?;
    if phi_q.is_empty() {
        // No path instances ⇒ PathSim 0 with everyone.
        return Ok(Vec::new());
    }
    // Candidates: support of Φ_{P_sym}(query) — exactly the vertices with
    // non-zero connectivity to the query.
    let sym = feature_path.symmetric();
    let reachable = source.neighbor_vector(query, &sym, ctx)?;
    let candidates: Vec<VertexId> = reachable.support().filter(|&u| u != query).collect();
    // Score every candidate, sharded across the context's threads. The
    // query's visibility `‖Φ_q‖²` is hoisted out of the loop; the per-pair
    // arithmetic is unchanged from [`pathsim`](crate::measures::pathsim::pathsim),
    // so the hoisted form is bit-identical.
    let scored = run_sharded(&candidates, ctx, |shard, sctx| {
        shard
            .iter()
            .map(|&u| {
                let (phi_u, norm_u) = source.neighbor_vector_with_norm(u, feature_path, sctx)?;
                let denom = norm_q + norm_u;
                let sim = if denom == 0.0 {
                    0.0
                } else {
                    2.0 * phi_q.dot(&phi_u) / denom
                };
                Ok((u, sim))
            })
            .collect::<Result<Vec<_>, EngineError>>()
    })?;
    // PathSim: larger = more similar, so rank descending.
    let ranked = top_k(scored, Some(k), ScoreOrder::DescendingIsOutlier);
    Ok(ranked
        .into_iter()
        .map(|(vertex, similarity)| SimilarVertex { vertex, similarity })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::source::TraversalSource;
    use hin_datagen::toy;
    use hin_graph::HinGraph;

    fn topk(g: &HinGraph, name: &str, path: &str, k: usize) -> Vec<(String, f64)> {
        let author = g.schema().vertex_type_by_name("author").unwrap();
        let v = g.vertex_by_name(author, name).unwrap();
        let p = MetaPath::parse(path, g.schema()).unwrap();
        let source = TraversalSource::new(g);
        let mut ctx = ExecCtx::unbounded();
        pathsim_topk(&source, v, &p, k, &mut ctx)
            .unwrap()
            .into_iter()
            .map(|s| (g.vertex_name(s.vertex).to_string(), s.similarity))
            .collect()
    }

    #[test]
    fn table1_similarity_search() {
        // Sarah's venue profile is identical to every reference author's:
        // all of them are perfectly similar (PathSim 1); the SIGGRAPH-only
        // authors are near the bottom.
        let g = toy::table1_network();
        let hits = topk(&g, "Sarah", "author.paper.venue", 3);
        for (name, sim) in &hits {
            assert!(name.starts_with("ref_"), "top hits are the clones: {name}");
            assert!((sim - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn self_is_excluded() {
        let g = toy::figure1_network();
        let hits = topk(&g, "Zoe", "author.paper.venue", 10);
        assert!(hits.iter().all(|(n, _)| n != "Zoe"));
        // Ava and Liam both publish in venues Zoe uses.
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn similarity_ordering_is_sensible() {
        // Figure 1(b): Liam ([ICDE:2, KDD:1]) resembles Zoe ([ICDE:2, KDD:3])
        // more than Ava ([ICDE:2]) does.
        let g = toy::figure1_network();
        let hits = topk(&g, "Zoe", "author.paper.venue", 2);
        assert_eq!(hits[0].0, "Liam");
        assert_eq!(hits[1].0, "Ava");
        assert!(hits[0].1 > hits[1].1);
        for (_, sim) in &hits {
            assert!((0.0..=1.0).contains(sim));
        }
    }

    #[test]
    fn zero_visibility_query_returns_empty() {
        let g = toy::lonely_author_network();
        let hits = topk(&g, "Loner", "author.paper.venue", 5);
        assert!(hits.is_empty());
    }

    #[test]
    fn k_bounds_results() {
        let g = toy::table1_network();
        assert_eq!(topk(&g, "Sarah", "author.paper.venue", 1).len(), 1);
        assert!(topk(&g, "Sarah", "author.paper.venue", 1000).len() >= 100);
    }

    #[test]
    fn parallel_search_is_bit_identical_to_serial() {
        let g = toy::table1_network();
        let source = TraversalSource::new(&g);
        let author = g.schema().vertex_type_by_name("author").unwrap();
        let sarah = g.vertex_by_name(author, "Sarah").unwrap();
        let p = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
        let mut serial_ctx = ExecCtx::unbounded();
        let serial = pathsim_topk(&source, sarah, &p, 20, &mut serial_ctx).unwrap();
        for threads in [2, 4] {
            let mut ctx = ExecCtx::unbounded();
            ctx.set_threads(threads);
            let parallel = pathsim_topk(&source, sarah, &p, 20, &mut ctx).unwrap();
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.vertex, b.vertex, "{threads} threads reordered");
                assert_eq!(a.similarity.to_bits(), b.similarity.to_bits());
            }
        }
    }

    #[test]
    fn works_through_pm_index() {
        use crate::engine::index::{ChunkSelection, PmIndex};
        use crate::engine::source::IndexedSource;
        let g = toy::figure1_network();
        let index = PmIndex::build_full(&g, ChunkSelection::All, 1);
        let idx_source = IndexedSource::new(&g, &index, "pm");
        let trv_source = TraversalSource::new(&g);
        let author = g.schema().vertex_type_by_name("author").unwrap();
        let zoe = g.vertex_by_name(author, "Zoe").unwrap();
        let p = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
        let mut c1 = ExecCtx::unbounded();
        let mut c2 = ExecCtx::unbounded();
        let a = pathsim_topk(&idx_source, zoe, &p, 5, &mut c1).unwrap();
        let b = pathsim_topk(&trv_source, zoe, &p, 5, &mut c2).unwrap();
        assert_eq!(a, b);
        assert!(c1.stats.indexed_count > 0);
    }
}
