//! Local Outlier Factor (Breunig, Kriegel, Ng, Sander — SIGMOD 2000) over
//! feature vectors.
//!
//! The paper's Section 8 reports that substituting classical detectors like
//! LOF into the query framework "cannot produce better results than NetOut"
//! and is too slow for exploratory querying; this implementation exists to
//! reproduce that comparison (`bench/src/bin/exp_baselines.rs`).
//!
//! The reference set is the density population: each candidate is scored
//! against the reference vectors. Larger LOF ⇒ more outlying; values near 1
//! mean inlier-like density.
//!
//! Definitions (with `d` = Euclidean distance on `Φ_P(·)`):
//!
//! ```text
//! k-dist(o)        = distance from o to its k-th nearest reference point
//! reach-dist(p, o) = max(k-dist(o), d(p, o))
//! lrd(p)           = 1 / mean_{o ∈ kNN(p)} reach-dist(p, o)
//! LOF(p)           = mean_{o ∈ kNN(p)} lrd(o) / lrd(p)
//! ```

use super::common::{OutlierMeasure, PreparedScorer, VectorSet};
use super::knn::OrdF64;
use crate::engine::topk::ScoreOrder;
use crate::error::EngineError;
use hin_graph::{SparseVec, VertexId};

/// The LOF measure with neighborhood size `k`.
#[derive(Debug, Clone, Copy)]
pub struct Lof {
    k: usize,
}

impl Lof {
    /// LOF with `k` nearest neighbors (`k ≥ 1`).
    pub fn new(k: usize) -> Self {
        Lof { k }
    }
}

/// The `k` nearest entries of `reference` to `phi` (excluding id `this`),
/// as `(index into reference, distance)` sorted ascending by distance with
/// index tiebreak. Returns `None` if fewer than `k` are eligible.
fn knn_of(
    this: VertexId,
    phi: &SparseVec,
    reference: &VectorSet,
    k: usize,
) -> Option<Vec<(usize, f64)>> {
    let mut dists: Vec<(usize, f64)> = reference
        .iter()
        .enumerate()
        .filter(|(_, (u, _))| *u != this)
        .map(|(i, (_, psi))| (i, phi.dist2_sq(psi).sqrt()))
        .collect();
    if dists.len() < k {
        return None;
    }
    dists.sort_by(|a, b| OrdF64(a.1).cmp(&OrdF64(b.1)).then(a.0.cmp(&b.0)));
    dists.truncate(k);
    Some(dists)
}

/// Precomputed per-reference-point model: k-distance and local reachability
/// density of every reference point within the reference population.
struct LofModel {
    k_dist: Vec<f64>,
    lrd: Vec<f64>,
}

fn build_model(reference: &VectorSet, k: usize) -> Option<LofModel> {
    let n = reference.len();
    let mut k_dist = vec![0.0; n];
    let mut neighbors: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
    for (i, (u, phi)) in reference.iter().enumerate() {
        let nn = knn_of(*u, phi, reference, k)?;
        // Invariant: `knn_of` returns `None` rather than an empty list when
        // fewer than `k ≥ 1` neighbors exist, so `nn` is non-empty here.
        #[allow(clippy::expect_used)]
        {
            k_dist[i] = nn.last().expect("k >= 1").1;
        }
        neighbors.push(nn);
    }
    let lrd: Vec<f64> = neighbors
        .iter()
        .map(|nn| {
            let mean_reach: f64 =
                nn.iter().map(|&(j, d)| d.max(k_dist[j])).sum::<f64>() / nn.len() as f64;
            if mean_reach == 0.0 {
                f64::INFINITY
            } else {
                1.0 / mean_reach
            }
        })
        .collect();
    Some(LofModel { k_dist, lrd })
}

/// LOF of one point given its kNN among the reference set and the model.
fn lof_of(nn: &[(usize, f64)], model: &LofModel) -> f64 {
    let mean_reach: f64 =
        nn.iter().map(|&(j, d)| d.max(model.k_dist[j])).sum::<f64>() / nn.len() as f64;
    let lrd_p = if mean_reach == 0.0 {
        f64::INFINITY
    } else {
        1.0 / mean_reach
    };
    let mean_lrd_o: f64 = nn.iter().map(|&(j, _)| model.lrd[j]).sum::<f64>() / nn.len() as f64;
    let lof = mean_lrd_o / lrd_p;
    // inf/inf (point and neighbors all in a zero-diameter cluster) is a
    // perfect inlier, not NaN.
    if lof.is_nan() {
        1.0
    } else {
        lof
    }
}

impl OutlierMeasure for Lof {
    fn name(&self) -> &'static str {
        "LOF"
    }

    fn order(&self) -> ScoreOrder {
        ScoreOrder::DescendingIsOutlier
    }

    fn prepare<'a>(
        &'a self,
        reference: &'a VectorSet,
    ) -> Result<Box<dyn PreparedScorer + 'a>, EngineError> {
        if self.k == 0 {
            return Err(EngineError::BadMeasureParameter(
                "LOF requires k >= 1".into(),
            ));
        }
        let model = build_model(reference, self.k).ok_or_else(|| {
            EngineError::BadMeasureParameter(format!(
                "LOF needs at least k+1 = {} reference vertices",
                self.k + 1
            ))
        })?;
        Ok(Box::new(LofPrepared {
            reference,
            model,
            k: self.k,
        }))
    }
}

/// LOF with the reference-side model (k-distances and local reachability
/// densities) built once; candidates then only need their own kNN query.
struct LofPrepared<'a> {
    reference: &'a VectorSet,
    model: LofModel,
    k: usize,
}

impl PreparedScorer for LofPrepared<'_> {
    fn score_slice(&self, candidates: &VectorSet) -> Result<Vec<(VertexId, f64)>, EngineError> {
        candidates
            .iter()
            .map(|(v, phi)| {
                let nn = knn_of(*v, phi, self.reference, self.k).ok_or_else(|| {
                    EngineError::BadMeasureParameter(format!(
                        "LOF needs at least k = {} reference vertices besides the candidate",
                        self.k
                    ))
                })?;
                Ok((*v, lof_of(&nn, &self.model)))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(pairs: &[(u32, f64)]) -> SparseVec {
        pairs.iter().map(|&(i, x)| (VertexId(i), x)).collect()
    }

    /// A tight 1-d cluster at 1, 2, 3, 4, 5.
    fn cluster() -> Vec<(VertexId, SparseVec)> {
        (1..=5)
            .map(|i| (VertexId(100 + i), sv(&[(0, i as f64)])))
            .collect()
    }

    #[test]
    fn isolated_point_has_high_lof() {
        let reference = cluster();
        let candidates = vec![
            (VertexId(0), sv(&[(0, 3.0)])),   // inside the cluster
            (VertexId(1), sv(&[(0, 100.0)])), // far outside
        ];
        let scores = Lof::new(2).scores(&candidates, &reference).unwrap();
        let inside = scores[0].1;
        let outside = scores[1].1;
        assert!(inside < 1.5, "inlier LOF ≈ 1, got {inside}");
        assert!(outside > 5.0, "outlier LOF large, got {outside}");
    }

    #[test]
    fn uniform_cluster_scores_near_one() {
        let reference = cluster();
        let candidates: Vec<_> = cluster()
            .into_iter()
            .map(|(v, phi)| (VertexId(v.0 - 100), phi))
            .collect();
        let scores = Lof::new(2).scores(&candidates, &reference).unwrap();
        for (_, lof) in scores {
            assert!(
                (0.5..2.0).contains(&lof),
                "uniform data ⇒ LOF ≈ 1, got {lof}"
            );
        }
    }

    #[test]
    fn duplicate_points_do_not_nan() {
        // All reference points identical: candidate at the same spot must
        // score 1 (perfect inlier), not NaN; a distant candidate must still
        // be flagged (infinite LOF is acceptable — density contrast is
        // infinite).
        let reference: Vec<_> = (0..4)
            .map(|i| (VertexId(100 + i), sv(&[(0, 7.0)])))
            .collect();
        let on_top = vec![(VertexId(0), sv(&[(0, 7.0)]))];
        let away = vec![(VertexId(1), sv(&[(0, 9.0)]))];
        let s_on = Lof::new(2).scores(&on_top, &reference).unwrap()[0].1;
        let s_away = Lof::new(2).scores(&away, &reference).unwrap()[0].1;
        assert_eq!(s_on, 1.0);
        assert!(s_away > 1.0 || s_away.is_infinite());
        assert!(!s_away.is_nan());
    }

    #[test]
    fn parameter_validation() {
        let reference = cluster();
        let candidates = vec![(VertexId(0), sv(&[(0, 1.0)]))];
        assert!(Lof::new(0).scores(&candidates, &reference).is_err());
        assert!(Lof::new(10).scores(&candidates, &reference).is_err());
    }

    #[test]
    fn self_excluded_when_candidate_in_reference() {
        let reference = cluster();
        // Candidate IS reference point 3 (same id).
        let candidates = vec![(VertexId(103), sv(&[(0, 3.0)]))];
        let scores = Lof::new(2).scores(&candidates, &reference).unwrap();
        assert!(scores[0].1.is_finite());
    }
}
