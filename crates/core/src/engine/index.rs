//! Pre-materialization indexes (Section 6.2 of the paper).
//!
//! A [`PmIndex`] stores, per length-2 meta-path `(T₀ T₁ T₂)`, a sparse
//! matrix whose row `v` is `Φ_{(T₀T₁T₂)}(v)`. Full pre-materialization (PM)
//! stores rows for every vertex of `T₀`; selective pre-materialization (SPM)
//! stores rows only for vertices whose *relative frequency* of appearance in
//! candidate sets of an initialization query workload reaches a threshold.

use crate::engine::budget::ExecCtx;
use crate::engine::set_eval::eval_set;
use crate::engine::source::TraversalSource;
use hin_graph::{traverse, HinGraph, MetaPath, SparseMatrix, SparseVec, VertexId, VertexTypeId};
use hin_query::validate::BoundQuery;
use rustc_hash::{FxHashMap, FxHashSet};

/// Which length-2 meta-paths an index covers.
#[derive(Debug, Clone)]
pub enum ChunkSelection {
    /// Every schema-valid length-2 meta-path ("we may compute all length-2
    /// paths", Section 6.2).
    All,
    /// An explicit set of length-2 meta-paths — typically the chunks
    /// appearing in a known query workload ("or only a subset").
    Paths(Vec<MetaPath>),
}

impl ChunkSelection {
    /// Resolve to the concrete list of length-2 paths for `graph`'s schema.
    /// Non-length-2 paths in `Paths` are ignored (the index cannot serve
    /// them).
    pub fn resolve(&self, graph: &HinGraph) -> Vec<MetaPath> {
        match self {
            ChunkSelection::All => all_length2_paths(graph),
            ChunkSelection::Paths(paths) => {
                let mut out: Vec<MetaPath> =
                    paths.iter().filter(|p| p.len() == 2).cloned().collect();
                out.sort_by(|a, b| a.types().cmp(b.types()));
                out.dedup();
                out
            }
        }
    }
}

/// Every length-2 meta-path `(T₀ T₁ T₂)` such that both links exist in the
/// schema, in deterministic order.
pub fn all_length2_paths(graph: &HinGraph) -> Vec<MetaPath> {
    let schema = graph.schema();
    let mut out = Vec::new();
    for t0 in schema.vertex_type_ids() {
        for t1 in schema.vertex_type_ids() {
            if !schema.link_exists(t0, t1) {
                continue;
            }
            for t2 in schema.vertex_type_ids() {
                if !schema.link_exists(t1, t2) {
                    continue;
                }
                // Invariant: both links were checked against the schema just
                // above, so construction cannot fail.
                #[allow(clippy::expect_used)]
                out.push(MetaPath::new(vec![t0, t1, t2], schema).expect("links verified above"));
            }
        }
    }
    out
}

/// A pre-materialized length-2 meta-path index.
#[derive(Debug, Clone, Default)]
pub struct PmIndex {
    matrices: FxHashMap<MetaPath, SparseMatrix>,
    /// `‖Φ_chunk(v)‖²` per materialized row, computed once at build time so
    /// measure denominators (visibility) are never re-derived from an
    /// indexed vector.
    norms: FxHashMap<MetaPath, FxHashMap<VertexId, f64>>,
}

impl PmIndex {
    /// An empty index (every lookup misses — behaves like the baseline).
    pub fn empty() -> Self {
        PmIndex::default()
    }

    /// Build a **full PM** index: rows for every vertex of each chunk's
    /// source type. `threads` bounds build parallelism (1 = sequential).
    pub fn build_full(graph: &HinGraph, selection: ChunkSelection, threads: usize) -> Self {
        let chunks = selection.resolve(graph);
        let mut matrices = FxHashMap::default();
        let mut norms = FxHashMap::default();
        for chunk in chunks {
            let vertices = graph.vertices_of_type(chunk.source_type());
            let rows = materialize_rows(graph, &chunk, vertices, threads);
            norms.insert(chunk.clone(), row_norms(&rows));
            matrices.insert(chunk, SparseMatrix::from_rows(rows));
        }
        PmIndex { matrices, norms }
    }

    /// Build a **selective (SPM)** index: rows only for `selected` vertices,
    /// for each chunk whose source type matches the vertex's type.
    pub fn build_selective(
        graph: &HinGraph,
        selection: ChunkSelection,
        selected: &FxHashSet<VertexId>,
        threads: usize,
    ) -> Self {
        let chunks = selection.resolve(graph);
        // Bucket selected vertices by type once.
        let mut by_type: FxHashMap<VertexTypeId, Vec<VertexId>> = FxHashMap::default();
        for &v in selected {
            by_type.entry(graph.vertex_type(v)).or_default().push(v);
        }
        for list in by_type.values_mut() {
            list.sort_unstable();
        }
        let mut matrices = FxHashMap::default();
        let mut norms = FxHashMap::default();
        for chunk in chunks {
            let vertices = by_type
                .get(&chunk.source_type())
                .map(Vec::as_slice)
                .unwrap_or(&[]);
            let rows = materialize_rows(graph, &chunk, vertices, threads);
            norms.insert(chunk.clone(), row_norms(&rows));
            matrices.insert(chunk, SparseMatrix::from_rows(rows));
        }
        PmIndex { matrices, norms }
    }

    /// Look up `Φ_chunk(v)`. `None` when either the chunk or the row is not
    /// materialized.
    pub fn row(&self, chunk: &MetaPath, v: VertexId) -> Option<SparseVec> {
        self.matrices.get(chunk)?.row_vec(v)
    }

    /// Precomputed `‖Φ_chunk(v)‖²` for a materialized row. `None` exactly
    /// when [`PmIndex::row`] would be `None`.
    pub fn row_norm(&self, chunk: &MetaPath, v: VertexId) -> Option<f64> {
        self.norms.get(chunk)?.get(&v).copied()
    }

    /// Number of materialized rows for `chunk`, or `None` when the chunk is
    /// not indexed at all.
    pub fn rows_for(&self, chunk: &MetaPath) -> Option<usize> {
        self.matrices.get(chunk).map(SparseMatrix::row_count)
    }

    /// Whether the row is materialized (without copying it).
    pub fn has_row(&self, chunk: &MetaPath, v: VertexId) -> bool {
        self.matrices.get(chunk).is_some_and(|m| m.has_row(v))
    }

    /// Number of indexed meta-paths.
    pub fn path_count(&self) -> usize {
        self.matrices.len()
    }

    /// Iterate every indexed chunk and its matrix in deterministic order
    /// (sorted by the chunk's type sequence) — the serialization order used
    /// by snapshot writers.
    pub fn chunks(&self) -> Vec<(&MetaPath, &SparseMatrix)> {
        let mut out: Vec<_> = self.matrices.iter().collect();
        out.sort_by(|(a, _), (b, _)| a.types().cmp(b.types()));
        out
    }

    /// Rebuild an index from per-chunk parts: each entry carries a chunk,
    /// its matrix, and row norms *parallel to the matrix's row order* (as
    /// produced by walking [`SparseMatrix::raw_parts`] row ids through
    /// [`PmIndex::row_norm`]). Duplicate chunks or a norms length that does
    /// not match the matrix's row count are rejected.
    pub fn from_parts(
        parts: Vec<(MetaPath, SparseMatrix, Vec<f64>)>,
    ) -> Result<Self, hin_graph::GraphError> {
        let mut matrices = FxHashMap::default();
        let mut norms = FxHashMap::default();
        for (chunk, matrix, row_norms) in parts {
            if row_norms.len() != matrix.row_count() {
                return Err(hin_graph::GraphError::Format {
                    line: 0,
                    message: format!(
                        "index chunk has {} rows but {} norms",
                        matrix.row_count(),
                        row_norms.len()
                    ),
                });
            }
            let (row_ids, _, _) = matrix.raw_parts();
            let per_row: FxHashMap<VertexId, f64> =
                row_ids.iter().copied().zip(row_norms).collect();
            if matrices.insert(chunk.clone(), matrix).is_some() {
                return Err(hin_graph::GraphError::Format {
                    line: 0,
                    message: "duplicate index chunk".into(),
                });
            }
            norms.insert(chunk, per_row);
        }
        Ok(PmIndex { matrices, norms })
    }

    /// Total materialized rows across all meta-paths.
    pub fn total_rows(&self) -> usize {
        self.matrices.values().map(SparseMatrix::row_count).sum()
    }

    /// Total stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.matrices.values().map(SparseMatrix::nnz).sum()
    }

    /// Approximate heap footprint in bytes (the y-axis of Figure 5b),
    /// including the per-row norm side table.
    pub fn size_bytes(&self) -> usize {
        let matrices: usize = self
            .matrices
            .iter()
            .map(|(k, m)| m.size_bytes() + k.types().len())
            .sum();
        let norms: usize = self
            .norms
            .values()
            .map(|per_row| {
                per_row.len() * (std::mem::size_of::<VertexId>() + std::mem::size_of::<f64>())
            })
            .sum();
        matrices + norms
    }
}

/// `‖Φ‖²` per materialized row, computed once at index-build time.
fn row_norms(rows: &[(VertexId, SparseVec)]) -> FxHashMap<VertexId, f64> {
    rows.iter().map(|(v, phi)| (*v, phi.norm2_sq())).collect()
}

/// Materialize `Φ_chunk(v)` for each vertex, optionally in parallel.
fn materialize_rows(
    graph: &HinGraph,
    chunk: &MetaPath,
    vertices: &[VertexId],
    threads: usize,
) -> Vec<(VertexId, SparseVec)> {
    let compute = |v: VertexId| {
        // Invariant: callers only pass vertices whose type matches the
        // chunk's source type, so traversal cannot fail.
        #[allow(clippy::expect_used)]
        let phi = traverse::neighbor_vector(graph, v, chunk)
            .expect("chunk starts at the vertex's type by construction");
        (v, phi)
    };
    let threads = threads.max(1).min(vertices.len().max(1));
    if threads == 1 || vertices.len() < 256 {
        return vertices.iter().map(|&v| compute(v)).collect();
    }
    // Parallel build: split the vertex list into contiguous shards; each
    // shard's rows come back in order, so concatenation preserves global
    // order (from_rows sorts anyway, but this keeps merging cheap).
    let shard_len = vertices.len().div_ceil(threads);
    let mut out = Vec::with_capacity(vertices.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = vertices
            .chunks(shard_len)
            .map(|shard| scope.spawn(move || shard.iter().map(|&v| compute(v)).collect::<Vec<_>>()))
            .collect();
        for h in handles {
            // Propagating a worker panic is the only sensible response here;
            // swallowing it would silently drop index rows.
            #[allow(clippy::expect_used)]
            out.extend(h.join().expect("row materialization panicked"));
        }
    });
    out
}

/// Count how frequently each vertex appears in the *candidate sets* of the
/// initialization workload, and return those whose relative frequency
/// (`appearances / number of queries`) is at least `threshold`.
///
/// This is the SPM vertex-selection rule of Section 6.2. Queries whose
/// anchors are missing from the graph are skipped (they contribute to the
/// denominator, matching "relative to the workload size").
pub fn select_frequent_vertices(
    graph: &HinGraph,
    queries: &[BoundQuery],
    threshold: f64,
) -> FxHashSet<VertexId> {
    let source = TraversalSource::new(graph);
    let mut counts: FxHashMap<VertexId, u32> = FxHashMap::default();
    for q in queries {
        let mut ctx = ExecCtx::unbounded();
        let Ok(members) = eval_set(graph, &source, &q.candidate, &mut ctx) else {
            continue;
        };
        for v in members {
            *counts.entry(v).or_insert(0) += 1;
        }
    }
    let min_count = threshold * queries.len() as f64;
    counts
        .into_iter()
        .filter(|&(_, c)| c as f64 >= min_count)
        .map(|(v, _)| v)
        .collect()
}

/// The length-2 chunks a workload needs: decomposition chunks of every
/// feature meta-path, every set-retrieval walk, and every `COUNT` walk.
pub fn chunks_used_by(queries: &[BoundQuery]) -> Vec<MetaPath> {
    fn add_set(expr: &hin_query::validate::BoundSetExpr, out: &mut Vec<MetaPath>) {
        use hin_query::validate::{BoundCondition, BoundSetExpr};
        match expr {
            BoundSetExpr::Primary(p) => {
                out.extend(p.path.decompose_pairs());
                fn add_cond(c: &BoundCondition, out: &mut Vec<MetaPath>) {
                    match c {
                        BoundCondition::And(a, b) | BoundCondition::Or(a, b) => {
                            add_cond(a, out);
                            add_cond(b, out);
                        }
                        BoundCondition::Not(c) => add_cond(c, out),
                        BoundCondition::Count { path, .. } => out.extend(path.decompose_pairs()),
                    }
                }
                if let Some(c) = &p.filter {
                    add_cond(c, out);
                }
            }
            BoundSetExpr::Union(a, b)
            | BoundSetExpr::Intersect(a, b)
            | BoundSetExpr::Except(a, b) => {
                add_set(a, out);
                add_set(b, out);
            }
        }
    }
    let mut out = Vec::new();
    for q in queries {
        add_set(&q.candidate, &mut out);
        if let Some(r) = &q.reference {
            add_set(r, &mut out);
        }
        for f in &q.features {
            out.extend(f.path.decompose_pairs());
        }
    }
    out.retain(|p| p.len() == 2);
    out.sort_by(|a, b| a.types().cmp(b.types()));
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hin_datagen::toy;
    use hin_query::validate::parse_and_bind;

    #[test]
    fn all_length2_paths_for_bibliographic_schema() {
        let g = toy::figure1_network();
        let paths = all_length2_paths(&g);
        // Links (undirected): A–P, P–V, P–T. Middle type T₁ must link both
        // ways: P links to A, V, T (and each of A,V,T links only to P).
        // Chunks through P: 3×3 = 9. Chunks through A, V, T: middle A links
        // to P only → (P A P); same for V and T → 3 more. Total 12.
        assert_eq!(paths.len(), 12);
        let schema = g.schema();
        let rendered: Vec<String> = paths
            .iter()
            .map(|p| p.display(schema).to_string())
            .collect();
        assert!(rendered.contains(&"author.paper.venue".to_string()));
        assert!(rendered.contains(&"paper.author.paper".to_string()));
        assert!(!rendered.contains(&"author.venue.paper".to_string()));
    }

    #[test]
    fn full_index_has_all_rows() {
        let g = toy::figure1_network();
        let idx = PmIndex::build_full(&g, ChunkSelection::All, 1);
        assert_eq!(idx.path_count(), 12);
        let apv = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
        let author = g.schema().vertex_type_by_name("author").unwrap();
        for &a in g.vertices_of_type(author) {
            assert!(idx.has_row(&apv, a));
            let row = idx.row(&apv, a).unwrap();
            let direct = traverse::neighbor_vector(&g, a, &apv).unwrap();
            assert_eq!(row, direct);
        }
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let g = toy::table1_network();
        let seq = PmIndex::build_full(&g, ChunkSelection::All, 1);
        let par = PmIndex::build_full(&g, ChunkSelection::All, 4);
        assert_eq!(seq.path_count(), par.path_count());
        assert_eq!(seq.total_rows(), par.total_rows());
        assert_eq!(seq.nnz(), par.nnz());
        let apv = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
        let author = g.schema().vertex_type_by_name("author").unwrap();
        for &a in g.vertices_of_type(author) {
            assert_eq!(seq.row(&apv, a), par.row(&apv, a));
        }
    }

    #[test]
    fn row_norms_match_recomputation() {
        let g = toy::figure1_network();
        let idx = PmIndex::build_full(&g, ChunkSelection::All, 1);
        let apv = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
        let author = g.schema().vertex_type_by_name("author").unwrap();
        for &a in g.vertices_of_type(author) {
            let row = idx.row(&apv, a).unwrap();
            let norm = idx.row_norm(&apv, a).unwrap();
            assert_eq!(norm.to_bits(), row.norm2_sq().to_bits());
        }
        // Missing rows have no norm either.
        assert!(idx.row_norm(&apv, VertexId(u32::MAX)).is_none());
        assert!(PmIndex::empty().row_norm(&apv, VertexId(0)).is_none());
    }

    #[test]
    fn restricted_selection_only_indexes_those_paths() {
        let g = toy::figure1_network();
        let apv = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
        let idx = PmIndex::build_full(&g, ChunkSelection::Paths(vec![apv.clone()]), 1);
        assert_eq!(idx.path_count(), 1);
        let apa = MetaPath::parse("author.paper.author", g.schema()).unwrap();
        let author = g.schema().vertex_type_by_name("author").unwrap();
        let zoe = g.vertex_by_name(author, "Zoe").unwrap();
        assert!(idx.has_row(&apv, zoe));
        assert!(!idx.has_row(&apa, zoe));
    }

    #[test]
    fn selection_ignores_non_length2() {
        let g = toy::figure1_network();
        let long = MetaPath::parse("author.paper.venue.paper", g.schema()).unwrap();
        let idx = PmIndex::build_full(&g, ChunkSelection::Paths(vec![long]), 1);
        assert_eq!(idx.path_count(), 0);
        assert_eq!(idx.size_bytes(), 0);
    }

    #[test]
    fn selective_index_partial_rows() {
        let g = toy::figure1_network();
        let author = g.schema().vertex_type_by_name("author").unwrap();
        let zoe = g.vertex_by_name(author, "Zoe").unwrap();
        let selected: FxHashSet<VertexId> = [zoe].into_iter().collect();
        let idx = PmIndex::build_selective(&g, ChunkSelection::All, &selected, 1);
        let apv = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
        let ava = g.vertex_by_name(author, "Ava").unwrap();
        assert!(idx.has_row(&apv, zoe));
        assert!(!idx.has_row(&apv, ava));
        // Only author-rooted chunks have rows; the rest are empty matrices.
        assert_eq!(idx.total_rows(), 3); // A.P.A, A.P.V, A.P.T for Zoe
    }

    #[test]
    fn frequency_selection_threshold() {
        let g = toy::figure1_network();
        let schema = g.schema();
        // Workload: coauthor sets of each author. Zoe appears in all three
        // candidate sets (she coauthors with Ava and Liam and herself); Ava
        // appears in Ava's and Zoe's and Liam's (via p6)... compute:
        //   N(Ava)={Ava,Liam,Zoe}, N(Liam)={Ava,Liam,Zoe}, N(Zoe)={Ava,Liam,Zoe}.
        // All three authors appear 3/3 times.
        let queries: Vec<BoundQuery> = ["Ava", "Liam", "Zoe"]
            .iter()
            .map(|name| {
                parse_and_bind(
                    &format!(
                        "FIND OUTLIERS FROM author{{\"{name}\"}}.paper.author \
                         JUDGED BY author.paper.venue TOP 3;"
                    ),
                    schema,
                )
                .unwrap()
            })
            .collect();
        let selected = select_frequent_vertices(&g, &queries, 1.0);
        assert_eq!(selected.len(), 3);
        // An impossible threshold selects nothing.
        let selected = select_frequent_vertices(&g, &queries, 1.1);
        assert!(selected.is_empty());
    }

    #[test]
    fn frequency_selection_skips_missing_anchors() {
        let g = toy::figure1_network();
        let schema = g.schema();
        let queries: Vec<BoundQuery> = ["Zoe", "Ghost"]
            .iter()
            .map(|name| {
                parse_and_bind(
                    &format!(
                        "FIND OUTLIERS FROM author{{\"{name}\"}}.paper.author \
                         JUDGED BY author.paper.venue;"
                    ),
                    schema,
                )
                .unwrap()
            })
            .collect();
        // Zoe's set appears once over 2 queries → rel. freq 0.5.
        let selected = select_frequent_vertices(&g, &queries, 0.5);
        assert_eq!(selected.len(), 3);
        let selected = select_frequent_vertices(&g, &queries, 0.6);
        assert!(selected.is_empty());
    }

    #[test]
    fn chunks_used_by_collects_all_walks() {
        let g = toy::figure1_network();
        let schema = g.schema();
        let q = parse_and_bind(
            "FIND OUTLIERS FROM venue{\"KDD\"}.paper.author AS A WHERE COUNT(A.paper.venue) > 1 \
             COMPARED TO venue{\"ICDE\"}.paper.author \
             JUDGED BY author.paper.venue.paper.author TOP 5;",
            schema,
        )
        .unwrap();
        let chunks = chunks_used_by(&[q]);
        let rendered: Vec<String> = chunks
            .iter()
            .map(|p| p.display(schema).to_string())
            .collect();
        assert!(rendered.contains(&"venue.paper.author".to_string())); // set walks
        assert!(rendered.contains(&"author.paper.venue".to_string())); // feature + count
        assert!(rendered.contains(&"venue.paper.author".to_string())); // feature tail
        assert_eq!(chunks.len(), 2, "duplicates removed: {rendered:?}");
    }

    #[test]
    fn chunks_and_from_parts_roundtrip() {
        let g = toy::figure1_network();
        let idx = PmIndex::build_full(&g, ChunkSelection::All, 1);
        let parts: Vec<_> = idx
            .chunks()
            .into_iter()
            .map(|(chunk, matrix)| {
                let (row_ids, _, _) = matrix.raw_parts();
                let norms: Vec<f64> = row_ids
                    .iter()
                    .map(|&v| idx.row_norm(chunk, v).unwrap())
                    .collect();
                (chunk.clone(), matrix.clone(), norms)
            })
            .collect();
        let back = PmIndex::from_parts(parts).unwrap();
        assert_eq!(back.path_count(), idx.path_count());
        assert_eq!(back.total_rows(), idx.total_rows());
        assert_eq!(back.nnz(), idx.nnz());
        let apv = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
        let author = g.schema().vertex_type_by_name("author").unwrap();
        for &a in g.vertices_of_type(author) {
            assert_eq!(back.row(&apv, a), idx.row(&apv, a));
            assert_eq!(
                back.row_norm(&apv, a).map(f64::to_bits),
                idx.row_norm(&apv, a).map(f64::to_bits)
            );
        }
        // Mismatched norms length is rejected.
        let chunk = apv.clone();
        let matrix = SparseMatrix::from_rows(vec![(VertexId(0), SparseVec::unit(VertexId(1)))]);
        assert!(PmIndex::from_parts(vec![(chunk.clone(), matrix.clone(), vec![])]).is_err());
        // Duplicate chunks are rejected.
        assert!(PmIndex::from_parts(vec![
            (chunk.clone(), matrix.clone(), vec![1.0]),
            (chunk, matrix, vec![1.0]),
        ])
        .is_err());
    }

    #[test]
    fn empty_index_misses_everything() {
        let g = toy::figure1_network();
        let idx = PmIndex::empty();
        let apv = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
        assert!(idx.row(&apv, VertexId(0)).is_none());
        assert_eq!(idx.size_bytes(), 0);
        assert_eq!(idx.total_rows(), 0);
    }
}
