//! Candidate/reference set retrieval (the `FROM` / `COMPARED TO` clauses).
//!
//! A set expression evaluates to a sorted, de-duplicated list of vertex ids.
//! Neighborhood walks go through the active [`VectorSource`], so set
//! retrieval also benefits from pre-materialization — the paper notes this
//! explicitly at the end of Section 6.2.

use crate::engine::budget::ExecCtx;
use crate::engine::source::VectorSource;
use crate::error::EngineError;
use hin_graph::{HinGraph, VertexId};
use hin_query::validate::{BoundCondition, BoundSetExpr, BoundSetPrimary};
use std::time::Instant;

/// Evaluate a set expression to its member vertices (ascending id order).
///
/// Set-algebra work is attributed to `ctx.stats.set_retrieval`; vector
/// materialization inside walks is attributed by the source as usual. The
/// context's budget is checked per set-algebra node, per filtered member,
/// and — through the source — per propagation step.
pub fn eval_set(
    graph: &HinGraph,
    source: &dyn VectorSource,
    expr: &BoundSetExpr,
    ctx: &mut ExecCtx,
) -> Result<Vec<VertexId>, EngineError> {
    ctx.checkpoint()?;
    match expr {
        BoundSetExpr::Primary(p) => eval_primary(graph, source, p, ctx),
        BoundSetExpr::Union(a, b) => {
            let left = eval_set(graph, source, a, ctx)?;
            let right = eval_set(graph, source, b, ctx)?;
            let t = Instant::now();
            let merged = union_sorted(&left, &right);
            ctx.stats.set_retrieval += t.elapsed();
            Ok(merged)
        }
        BoundSetExpr::Intersect(a, b) => {
            let left = eval_set(graph, source, a, ctx)?;
            let right = eval_set(graph, source, b, ctx)?;
            let t = Instant::now();
            let merged = intersect_sorted(&left, &right);
            ctx.stats.set_retrieval += t.elapsed();
            Ok(merged)
        }
        BoundSetExpr::Except(a, b) => {
            let left = eval_set(graph, source, a, ctx)?;
            let right = eval_set(graph, source, b, ctx)?;
            let t = Instant::now();
            let merged = difference_sorted(&left, &right);
            ctx.stats.set_retrieval += t.elapsed();
            Ok(merged)
        }
    }
}

fn eval_primary(
    graph: &HinGraph,
    source: &dyn VectorSource,
    p: &BoundSetPrimary,
    ctx: &mut ExecCtx,
) -> Result<Vec<VertexId>, EngineError> {
    let t = Instant::now();
    let anchor_type = p.anchor_type();
    let anchor = graph
        .vertex_by_name(anchor_type, &p.anchor_name)
        .ok_or_else(|| EngineError::UnknownAnchor {
            type_name: graph.schema().vertex_type_name(anchor_type).to_string(),
            name: p.anchor_name.clone(),
        })?;
    ctx.stats.set_retrieval += t.elapsed();

    // The neighborhood N_P(anchor) is the support of Φ_P(anchor). For the
    // identity path this is just the anchor itself.
    let members: Vec<VertexId> = if p.path.is_empty() {
        vec![anchor]
    } else {
        let phi = source.neighbor_vector(anchor, &p.path, ctx)?;
        phi.support().collect()
    };

    let Some(filter) = &p.filter else {
        return Ok(members);
    };
    let mut kept = Vec::with_capacity(members.len());
    for v in members {
        // Filtering can walk the graph per member; keep it cancellable.
        ctx.checkpoint()?;
        if eval_condition(graph, source, filter, v, ctx)? {
            kept.push(v);
        }
    }
    Ok(kept)
}

fn eval_condition(
    graph: &HinGraph,
    source: &dyn VectorSource,
    cond: &BoundCondition,
    v: VertexId,
    ctx: &mut ExecCtx,
) -> Result<bool, EngineError> {
    match cond {
        BoundCondition::And(a, b) => {
            Ok(eval_condition(graph, source, a, v, ctx)?
                && eval_condition(graph, source, b, v, ctx)?)
        }
        BoundCondition::Or(a, b) => {
            Ok(eval_condition(graph, source, a, v, ctx)?
                || eval_condition(graph, source, b, v, ctx)?)
        }
        BoundCondition::Not(c) => Ok(!eval_condition(graph, source, c, v, ctx)?),
        BoundCondition::Count { path, op, value } => {
            // COUNT(alias.path) counts *distinct* reachable vertices
            // ("published at least 10 papers" — papers, not author-paper
            // links).
            let count = if path.len() == 1 {
                // Single hop: distinct neighbors directly, cheaper than a
                // full vector build when multiplicity is 1 anyway.
                let t = Instant::now();
                let mut ns: Vec<VertexId> = graph.step_neighbors(v, path.target_type()).collect();
                ns.sort_unstable();
                ns.dedup();
                let n = ns.len();
                ctx.stats.set_retrieval += t.elapsed();
                n
            } else {
                source.neighbor_vector(v, path, ctx)?.nnz()
            };
            Ok(op.eval(count as f64, *value))
        }
    }
}

/// Union of two ascending id lists.
pub fn union_sorted(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Difference (`a \ b`) of two ascending id lists.
pub fn difference_sorted(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(a.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out
}

/// Intersection of two ascending id lists.
pub fn intersect_sorted(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::source::TraversalSource;
    use hin_datagen::toy;
    use hin_query::validate::parse_and_bind;

    fn eval(src: &str) -> Result<Vec<String>, EngineError> {
        let g = toy::figure1_network();
        let q = parse_and_bind(src, g.schema())?;
        let source = TraversalSource::new(&g);
        let mut ctx = ExecCtx::unbounded();
        let ids = eval_set(&g, &source, &q.candidate, &mut ctx)?;
        Ok(ids
            .into_iter()
            .map(|v| g.vertex_name(v).to_string())
            .collect())
    }

    #[test]
    fn neighborhood_walk() {
        // Authors with a KDD paper: Liam, Zoe.
        let names =
            eval("FIND OUTLIERS FROM venue{\"KDD\"}.paper.author JUDGED BY author.paper.venue;")
                .unwrap();
        assert_eq!(names, vec!["Liam", "Zoe"]);
    }

    #[test]
    fn anchor_only() {
        let names =
            eval("FIND OUTLIERS FROM author{\"Zoe\"} JUDGED BY author.paper.venue;").unwrap();
        assert_eq!(names, vec!["Zoe"]);
    }

    #[test]
    fn unknown_anchor_error() {
        let err = eval("FIND OUTLIERS FROM author{\"Nobody\"} JUDGED BY author.paper.venue;")
            .unwrap_err();
        assert!(matches!(err, EngineError::UnknownAnchor { .. }));
        assert!(err.to_string().contains("Nobody"));
    }

    #[test]
    fn union_of_venue_authors() {
        // ICDE authors: Ava, Liam, Zoe. KDD authors: Liam, Zoe.
        let names = eval(
            "FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author UNION venue{\"KDD\"}.paper.author \
             JUDGED BY author.paper.venue;",
        )
        .unwrap();
        assert_eq!(names, vec!["Ava", "Liam", "Zoe"]);
    }

    #[test]
    fn intersect_of_venue_authors() {
        let names = eval(
            "FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author INTERSECT venue{\"KDD\"}.paper.author \
             JUDGED BY author.paper.venue;",
        )
        .unwrap();
        assert_eq!(names, vec!["Liam", "Zoe"]);
    }

    #[test]
    fn where_count_filters() {
        // Authors of ICDE papers with more than 2 papers total: Zoe (5) and
        // Liam (3); Ava has 2.
        let names = eval(
            "FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author AS A WHERE COUNT(A.paper) > 2 \
             JUDGED BY author.paper.venue;",
        )
        .unwrap();
        assert_eq!(names, vec!["Liam", "Zoe"]);
    }

    #[test]
    fn where_count_long_path() {
        // Count distinct venues: Ava has 1 (ICDE), Liam 2, Zoe 2.
        let names = eval(
            "FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author AS A \
             WHERE COUNT(A.paper.venue) >= 2 JUDGED BY author.paper.venue;",
        )
        .unwrap();
        assert_eq!(names, vec!["Liam", "Zoe"]);
    }

    #[test]
    fn where_boolean_combinators() {
        let names = eval(
            "FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author AS A \
             WHERE COUNT(A.paper) > 2 AND NOT COUNT(A.paper.venue) < 2 \
             JUDGED BY author.paper.venue;",
        )
        .unwrap();
        assert_eq!(names, vec!["Liam", "Zoe"]);
        let names = eval(
            "FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author AS A \
             WHERE COUNT(A.paper) = 2 OR COUNT(A.paper) = 5 \
             JUDGED BY author.paper.venue;",
        )
        .unwrap();
        assert_eq!(names, vec!["Ava", "Zoe"]);
    }

    #[test]
    fn sorted_helpers() {
        let v = |xs: &[u32]| xs.iter().map(|&x| VertexId(x)).collect::<Vec<_>>();
        assert_eq!(
            union_sorted(&v(&[1, 3, 5]), &v(&[2, 3, 6])),
            v(&[1, 2, 3, 5, 6])
        );
        assert_eq!(intersect_sorted(&v(&[1, 3, 5]), &v(&[2, 3, 5])), v(&[3, 5]));
        assert_eq!(union_sorted(&v(&[]), &v(&[1])), v(&[1]));
        assert_eq!(intersect_sorted(&v(&[]), &v(&[1])), v(&[]));
        assert_eq!(
            difference_sorted(&v(&[1, 3, 5, 7]), &v(&[3, 4, 7])),
            v(&[1, 5])
        );
        assert_eq!(difference_sorted(&v(&[]), &v(&[1])), v(&[]));
        assert_eq!(difference_sorted(&v(&[2]), &v(&[])), v(&[2]));
    }

    #[test]
    fn except_removes_anchor_from_own_neighborhood() {
        // The motivating use: exclude the anchor from their coauthor set.
        let names = eval(
            "FIND OUTLIERS FROM author{\"Zoe\"}.paper.author EXCEPT author{\"Zoe\"} \
             JUDGED BY author.paper.venue;",
        )
        .unwrap();
        assert_eq!(names, vec!["Ava", "Liam"]);
    }

    #[test]
    fn except_type_mismatch_rejected() {
        let err = eval(
            "FIND OUTLIERS FROM author{\"Zoe\"}.paper.author EXCEPT venue{\"KDD\"}.paper \
             JUDGED BY author.paper.venue;",
        )
        .unwrap_err();
        assert!(err.to_string().contains("different member types"));
    }
}
