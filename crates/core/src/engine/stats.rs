//! Per-phase timing breakdowns, matching the buckets of the paper's Figure 4
//! ("Not indexed vectors" / "Indexed vectors" / "Outlierness calculation").

use std::ops::{Add, AddAssign};
use std::time::Duration;

/// Wall-clock time spent in each phase of query execution, plus vector
/// materialization counters.
///
/// Accumulate across queries with `+=` to reproduce the paper's
/// whole-workload totals (Figures 3 and 4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecBreakdown {
    /// Time spent evaluating candidate/reference set expressions (anchor
    /// lookup, neighborhood walks, WHERE filters, set algebra).
    pub set_retrieval: Duration,
    /// Time materializing feature vectors by graph traversal (vertices with
    /// no usable index row) — "Not indexed vectors" in Figure 4.
    pub unindexed_vectors: Duration,
    /// Time fetching feature vectors from a pre-materialized index —
    /// "Indexed vectors" in Figure 4.
    pub indexed_vectors: Duration,
    /// Time computing outlierness scores and selecting the top-k —
    /// "Outlierness calculation" in Figure 4.
    pub scoring: Duration,
    /// Number of feature vectors materialized by traversal.
    pub unindexed_count: u64,
    /// Number of feature vectors served from the index.
    pub indexed_count: u64,
    /// Budget checkpoints run while evaluating set expressions.
    pub set_retrieval_checks: u64,
    /// Budget checkpoints run while materializing neighbor vectors (one
    /// per propagation step / index chunk — the enforcement granularity).
    pub materialization_checks: u64,
    /// Budget checkpoints run while scoring.
    pub scoring_checks: u64,
    /// Largest intermediate sparse-vector population (`nnz`) observed
    /// during traversal — the value compared against `Budget::max_nnz`.
    pub peak_frontier_nnz: u64,
}

impl ExecBreakdown {
    /// Sum of all phase durations. (End-to-end latency can be slightly
    /// larger due to unattributed glue work.)
    pub fn total(&self) -> Duration {
        self.set_retrieval + self.unindexed_vectors + self.indexed_vectors + self.scoring
    }

    /// Total budget checkpoints run across all phases. Each checkpoint
    /// polls the cancellation token and wall-clock deadline, so this is
    /// also the enforcement granularity of the run.
    pub fn budget_checks(&self) -> u64 {
        self.set_retrieval_checks + self.materialization_checks + self.scoring_checks
    }

    /// Fraction of materialized vectors served from the index, in `[0, 1]`.
    /// Returns `None` when nothing was materialized.
    pub fn index_hit_rate(&self) -> Option<f64> {
        let total = self.indexed_count + self.unindexed_count;
        if total == 0 {
            None
        } else {
            Some(self.indexed_count as f64 / total as f64)
        }
    }
}

impl Add for ExecBreakdown {
    type Output = ExecBreakdown;

    fn add(self, rhs: ExecBreakdown) -> ExecBreakdown {
        ExecBreakdown {
            set_retrieval: self.set_retrieval + rhs.set_retrieval,
            unindexed_vectors: self.unindexed_vectors + rhs.unindexed_vectors,
            indexed_vectors: self.indexed_vectors + rhs.indexed_vectors,
            scoring: self.scoring + rhs.scoring,
            unindexed_count: self.unindexed_count + rhs.unindexed_count,
            indexed_count: self.indexed_count + rhs.indexed_count,
            set_retrieval_checks: self.set_retrieval_checks + rhs.set_retrieval_checks,
            materialization_checks: self.materialization_checks + rhs.materialization_checks,
            scoring_checks: self.scoring_checks + rhs.scoring_checks,
            peak_frontier_nnz: self.peak_frontier_nnz.max(rhs.peak_frontier_nnz),
        }
    }
}

impl AddAssign for ExecBreakdown {
    fn add_assign(&mut self, rhs: ExecBreakdown) {
        *self = *self + rhs;
    }
}

impl std::fmt::Display for ExecBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "set retrieval {:?}, unindexed vectors {:?} ({}), indexed vectors {:?} ({}), scoring {:?}",
            self.set_retrieval,
            self.unindexed_vectors,
            self.unindexed_count,
            self.indexed_vectors,
            self.indexed_count,
            self.scoring
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ms: u64, hits: u64, misses: u64) -> ExecBreakdown {
        ExecBreakdown {
            set_retrieval: Duration::from_millis(ms),
            unindexed_vectors: Duration::from_millis(2 * ms),
            indexed_vectors: Duration::from_millis(3 * ms),
            scoring: Duration::from_millis(4 * ms),
            unindexed_count: misses,
            indexed_count: hits,
            ..ExecBreakdown::default()
        }
    }

    #[test]
    fn total_sums_phases() {
        assert_eq!(sample(1, 0, 0).total(), Duration::from_millis(10));
    }

    #[test]
    fn add_and_add_assign_agree() {
        let a = sample(1, 2, 3);
        let b = sample(10, 20, 30);
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        assert_eq!(c.indexed_count, 22);
        assert_eq!(c.unindexed_count, 33);
        assert_eq!(c.set_retrieval, Duration::from_millis(11));
    }

    #[test]
    fn hit_rate() {
        assert_eq!(sample(1, 3, 1).index_hit_rate(), Some(0.75));
        assert_eq!(sample(1, 0, 0).index_hit_rate(), None);
    }

    #[test]
    fn display_mentions_counts() {
        let s = sample(1, 5, 7).to_string();
        assert!(s.contains("(5)"));
        assert!(s.contains("(7)"));
    }

    #[test]
    fn budget_accounting_sums_and_maxes() {
        let a = ExecBreakdown {
            set_retrieval_checks: 1,
            materialization_checks: 2,
            scoring_checks: 3,
            peak_frontier_nnz: 100,
            ..ExecBreakdown::default()
        };
        let b = ExecBreakdown {
            set_retrieval_checks: 10,
            materialization_checks: 20,
            scoring_checks: 30,
            peak_frontier_nnz: 7,
            ..ExecBreakdown::default()
        };
        let c = a + b;
        assert_eq!(c.budget_checks(), 66);
        assert_eq!(c.peak_frontier_nnz, 100);
    }
}
