//! Intra-query parallel execution: shard a slice of work items across a
//! scoped thread pool and merge the results deterministically.
//!
//! The engine's per-candidate work — neighbor-vector materialization and
//! measure scoring — is embarrassingly parallel: every item is evaluated
//! against immutable shared state (the graph, the index, a prepared
//! measure). [`run_sharded`] splits the item slice into at most
//! [`ExecCtx::threads`] contiguous shards, runs one worker per shard on a
//! [`std::thread::scope`] (no runtime, no detached threads), and
//! concatenates the per-shard outputs **in shard order**, which reproduces
//! the serial output exactly:
//!
//! * shards are contiguous, so concatenation preserves input order;
//! * every worker computes each item with the same bit-identical kernels
//!   and shared read-only state, so the floats match the serial run.
//!
//! ## Budget semantics under parallelism
//!
//! Each worker gets a [`fork`](ExecCtx::fork) of the query context: the
//! *absolute* wall-clock deadline, the shared [`CancelToken`], and all
//! cardinality/`nnz` caps carry over, and all shards additionally share a
//! [`ShardShared`] atomics block. A shard that hits a budget error raises
//! the shared stop flag so its siblings abandon work at their next
//! checkpoint instead of running to the common deadline. When workers are
//! joined (in shard order):
//!
//! * per-shard [`ExecBreakdown`](crate::engine::stats::ExecBreakdown)s are
//!   absorbed into the parent (durations and counters sum, peak `nnz`
//!   maxes);
//! * the reported error is the first error **by shard index** from a shard
//!   that was *not* stopped by a peer — peer-stop aborts are bookkeeping,
//!   not real violations, so error selection is deterministic and
//!   independent of thread scheduling.
//!
//! ## Panic isolation
//!
//! A panic inside shard work is caught at the shard boundary
//! (`catch_unwind`) and converted into a structured
//! [`EngineError::Panicked`] instead of unwinding across the scope join and
//! tearing down the calling thread. The shard raises the shared stop flag
//! first, so sibling shards abandon work promptly. **Unwind-safety audit**
//! (why `AssertUnwindSafe` is sound here): the closure touches only (a) the
//! shard's own `ExecCtx`, which is discarded wholesale on panic except for
//! its plain-counter stats, (b) immutable shared state (graph, index,
//! prepared measures), and (c) the `ShardShared` atomics, whose every write
//! is a single atomic store — no invariant can be observed half-updated.
//!
//! [`CancelToken`]: crate::engine::budget::CancelToken

use crate::engine::budget::{ExecCtx, ShardShared};
use crate::error::EngineError;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

/// Run `work` over `items`, split into at most `ctx.threads()` contiguous
/// shards, and return the concatenated outputs in input order.
///
/// `work` is called once per shard with the shard's items and a forked
/// single-threaded [`ExecCtx`]; it must return one output per item, in
/// item order. With one effective thread (or one item), `work` runs inline
/// on the parent context — no threads are spawned and no atomics are
/// touched, so the serial path is exactly the pre-parallel engine.
pub(crate) fn run_sharded<T, R, F>(
    items: &[T],
    ctx: &mut ExecCtx,
    work: F,
) -> Result<Vec<R>, EngineError>
where
    T: Sync,
    R: Send,
    F: Fn(&[T], &mut ExecCtx) -> Result<Vec<R>, EngineError> + Sync,
{
    let threads = ctx.threads().min(items.len()).max(1);
    if threads == 1 {
        return work(items, ctx);
    }
    let shard_len = items.len().div_ceil(threads);
    let shared = Arc::new(ShardShared::default());

    // (result, shard context) per shard, in shard order.
    let outcomes: Vec<(Result<Vec<R>, EngineError>, ExecCtx)> = std::thread::scope(|scope| {
        let work = &work;
        let handles: Vec<_> = items
            .chunks(shard_len)
            .enumerate()
            .map(|(shard_idx, chunk)| {
                let mut shard_ctx = ctx.fork(Arc::clone(&shared));
                scope.spawn(move || {
                    // A traced query traces its shards too: each worker
                    // records into its own thread-local buffer, parked on
                    // the shard context afterwards (even on error/panic) so
                    // the coordinator can merge buffers in shard order.
                    if shard_ctx.tracing() {
                        hin_telemetry::trace::install();
                    }
                    let span =
                        hin_telemetry::span!("shard", index = shard_idx, items = chunk.len());
                    // Panic isolation: a panicking shard becomes a
                    // structured error, never an unwind across the scope
                    // join (see the module-level unwind-safety audit).
                    let result =
                        std::panic::catch_unwind(AssertUnwindSafe(|| work(chunk, &mut shard_ctx)))
                            .unwrap_or_else(|payload| Err(EngineError::from_panic(payload)));
                    drop(span);
                    shard_ctx.set_trace_out(hin_telemetry::trace::take());
                    // A shard that failed on its own behalf tells the others
                    // to stop; a shard that was *told* to stop must not
                    // re-signal (it would mask nothing, but keep the intent
                    // clear: only genuine violations broadcast).
                    if result.is_err() && !shard_ctx.stopped_by_peer() {
                        shard_ctx.signal_peers();
                    }
                    (result, shard_ctx)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(outcome) => outcome,
                // Unreachable: the closure body is fully wrapped in
                // catch_unwind above. Kept as a defensive re-raise so a
                // future edit cannot silently swallow a panic.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut merged: Vec<R> = Vec::with_capacity(items.len());
    let mut first_err: Option<EngineError> = None;
    let mut peer_err: Option<EngineError> = None;
    for (result, mut shard_ctx) in outcomes {
        ctx.absorb(&mut shard_ctx);
        match result {
            Ok(mut part) => merged.append(&mut part),
            Err(e) => {
                if shard_ctx.stopped_by_peer() {
                    // Only reported if no genuine violation exists (which
                    // cannot happen by construction — the stop flag is only
                    // raised by a genuinely failing shard — but never
                    // swallow an error on a code path we cannot prove cold).
                    peer_err.get_or_insert(e);
                } else {
                    first_err.get_or_insert(e);
                }
            }
        }
    }
    match first_err.or(peer_err) {
        Some(e) => Err(e),
        None => Ok(merged),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::budget::{Budget, BudgetLimit, BudgetPhase, CancelToken};

    fn ctx_with_threads(threads: usize) -> ExecCtx {
        let mut ctx = ExecCtx::unbounded();
        ctx.set_threads(threads);
        ctx
    }

    #[test]
    fn sharded_output_matches_serial_in_order() {
        let items: Vec<u64> = (0..103).collect();
        let work = |chunk: &[u64], ctx: &mut ExecCtx| {
            chunk
                .iter()
                .map(|&x| {
                    ctx.checkpoint()?;
                    Ok(x * 3 + 1)
                })
                .collect::<Result<Vec<u64>, EngineError>>()
        };
        let serial = run_sharded(&items, &mut ctx_with_threads(1), work).unwrap();
        for threads in [2, 3, 4, 16] {
            let mut ctx = ctx_with_threads(threads);
            let parallel = run_sharded(&items, &mut ctx, work).unwrap();
            assert_eq!(parallel, serial, "{threads} threads diverged");
            // Same total work ⇒ same total checkpoint count.
            assert_eq!(ctx.stats.budget_checks(), items.len() as u64);
        }
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = [1u32, 2, 3];
        let out = run_sharded(&items, &mut ctx_with_threads(64), |chunk, _| {
            Ok(chunk.to_vec())
        })
        .unwrap();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn empty_items_yield_empty_output() {
        let items: [u32; 0] = [];
        let out = run_sharded(&items, &mut ctx_with_threads(4), |chunk, _| {
            Ok(chunk.to_vec())
        })
        .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn error_selection_is_deterministic_by_shard_index() {
        // Every shard fails immediately (pre-cancelled token): the reported
        // error must be a genuine cancellation, never a peer-stop artifact,
        // regardless of scheduling.
        let token = CancelToken::new();
        token.cancel();
        let budget = Budget::default().with_cancel_token(token);
        for _ in 0..20 {
            let mut ctx = ExecCtx::new(&budget);
            ctx.set_threads(4);
            let items: Vec<u32> = (0..100).collect();
            let err = run_sharded(&items, &mut ctx, |chunk, sctx| {
                for _ in chunk {
                    sctx.checkpoint()?;
                }
                Ok(chunk.to_vec())
            })
            .unwrap_err();
            match err {
                EngineError::BudgetExceeded { limit, phase, .. } => {
                    assert_eq!(limit, BudgetLimit::Cancelled);
                    assert_eq!(phase, BudgetPhase::SetRetrieval);
                }
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn failing_shard_stops_siblings() {
        use std::sync::atomic::{AtomicU64, Ordering};
        // Shard 0 fails on its first item; the other shards spin on
        // checkpoints until the stop flag reaches them. If peer-stop did not
        // work this test would hang.
        let done = AtomicU64::new(0);
        let items: Vec<u32> = (0..64).collect();
        let mut ctx = ctx_with_threads(4);
        let err = run_sharded(&items, &mut ctx, |chunk, sctx| {
            if chunk[0] == 0 {
                return Err(EngineError::EmptyCandidateSet);
            }
            loop {
                sctx.checkpoint()?;
                std::thread::yield_now();
                done.fetch_add(1, Ordering::Relaxed);
            }
        })
        .unwrap_err();
        assert_eq!(err, EngineError::EmptyCandidateSet);
    }

    #[test]
    fn shard_panic_becomes_structured_error_and_stops_siblings() {
        // Shard 0 panics on its first item; the panic must surface as
        // EngineError::Panicked (not unwind), and the spinning siblings must
        // be stopped by the peer flag — if isolation or peer-stop failed,
        // this test would abort the process or hang.
        let items: Vec<u32> = (0..64).collect();
        for threads in [2, 4] {
            let mut ctx = ctx_with_threads(threads);
            let err = run_sharded(&items, &mut ctx, |chunk, sctx| {
                if chunk[0] == 0 {
                    panic!("injected shard panic");
                }
                loop {
                    sctx.checkpoint()?;
                    std::thread::yield_now();
                }
            })
            .unwrap_err();
            match err {
                EngineError::Panicked { message } => {
                    assert!(message.contains("injected shard panic"), "{message}");
                }
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn serial_path_panics_propagate_unchanged() {
        // With one thread the work runs inline: no catch_unwind wrapper, so
        // the caller's own isolation boundary (e.g. a serving worker) sees
        // the raw panic. Pin that contract.
        let items = [0u32];
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut ctx = ctx_with_threads(1);
            let _ = run_sharded(&items, &mut ctx, |_, _| -> Result<Vec<u32>, EngineError> {
                panic!("serial panic")
            });
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn traced_runs_merge_shard_spans_in_index_order() {
        // Install a trace buffer *before* creating the context so the
        // tracing flag propagates to shard workers.
        hin_telemetry::trace::install();
        let items: Vec<u64> = (0..40).collect();
        let mut ctx = ctx_with_threads(4);
        let out = run_sharded(&items, &mut ctx, |chunk, _| Ok(chunk.to_vec())).unwrap();
        assert_eq!(out, items);
        let buf = hin_telemetry::trace::take().expect("buffer still installed");
        let tree = buf.tree();
        // One root per shard, merged in shard-index order regardless of
        // which worker finished first.
        assert_eq!(tree.len(), 4, "{tree:?}");
        for (i, node) in tree.iter().enumerate() {
            assert_eq!(node.name, "shard");
            assert_eq!(node.fields[0], ("index".to_string(), i.to_string()));
            assert_eq!(node.fields[1], ("items".to_string(), "10".to_string()));
        }
    }

    #[test]
    fn untraced_runs_record_nothing() {
        let items: Vec<u64> = (0..16).collect();
        let mut ctx = ctx_with_threads(4);
        let out = run_sharded(&items, &mut ctx, |chunk, _| Ok(chunk.to_vec())).unwrap();
        assert_eq!(out, items);
        assert!(hin_telemetry::trace::take().is_none());
    }

    #[test]
    fn stats_absorbed_from_all_shards_even_on_error() {
        let items: Vec<u32> = (0..40).collect();
        let mut ctx = ctx_with_threads(4);
        let _ = run_sharded(&items, &mut ctx, |chunk, sctx| {
            for _ in chunk {
                sctx.checkpoint()?;
            }
            if chunk[0] == 0 {
                return Err(EngineError::EmptyCandidateSet);
            }
            Ok(chunk.to_vec())
        });
        // All four shards ran their checkpoints before the error surfaced.
        assert_eq!(ctx.stats.budget_checks(), items.len() as u64);
    }
}
