//! A cross-query cache of meta-path *sub-product* vectors.
//!
//! The whole-vector [`VectorCache`](crate::engine::cache::VectorCache) only
//! pays off when two queries ask for the exact same `(meta-path, vertex)`
//! pair. Interactive workloads elaborate queries instead: consecutive
//! queries share anchors, templates, and meta-path *prefixes*, so their
//! propagations recompute the same intermediate chunk products from scratch.
//! [`SubpathCache`] memoizes those intermediates: every requested meta-path
//! is decomposed into its canonical length-2 chunks (the same
//! [`MetaPath::decompose_pairs`] decomposition the PM index materializes),
//! and both per-seed chunk products and completed prefix products are cached
//! across queries. A later query whose path shares a prefix resumes
//! propagation from the longest cached prefix instead of the seed vertex.
//!
//! # Cost-based admission, byte-budgeted eviction
//!
//! The cache is bounded by a byte budget, not an entry count: chunk products
//! range from a handful of entries to near-dense vectors, so counting
//! entries would make the footprint workload-dependent. Admission is
//! cost-based: a small frequency sketch tracks how often each sub-path key
//! has been requested, and a new product is admitted only if its *value
//! density* (observed frequency per byte) is at least that of the
//! least-recently-used entries it would displace. The comparison
//! `freq_in · bytes_victim ≥ freq_victim · bytes_in` is evaluated in integer
//! arithmetic, so admission decisions are exact and reproducible for a given
//! access sequence. Oversized products (more than 1/8 of the budget) are
//! rejected outright — one giant vector must not wipe the working set.
//!
//! # Bit-identical results, budget-equivalent hits
//!
//! Chunked evaluation sums per-seed chunk products instead of propagating
//! one whole frontier; both orders sum the same nonnegative integer path
//! counts, which f64 addition represents exactly (below 2⁵³), so cached and
//! uncached runs produce bit-identical vectors — the same invariant that
//! makes the PM index equal the baseline. Budgets are the subtler half: a
//! hit skips the propagation loop, so it would also skip the `max_nnz`
//! checks a miss performs. Each entry therefore stores the **peak frontier
//! `nnz` checked while computing it** (captured via
//! [`ExecCtx`] chunk-peak accounting), and every hit replays that peak
//! through [`ExecCtx::check_frontier`]. A frontier cap then fires on a hit
//! if and only if it would have fired recomputing the product, which keeps
//! degraded outcomes deterministic across thread counts even though cache
//! fill order races.

use crate::engine::budget::ExecCtx;
use crate::engine::source::VectorSource;
use crate::error::EngineError;
use hin_graph::{MetaPath, SparseVec, VertexId};
use parking_lot::Mutex;
use rustc_hash::{FxHashMap, FxHasher};
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::time::Instant;

type Key = (MetaPath, VertexId);

/// Number of counters in the frequency sketch (power of two).
const SKETCH_SLOTS: usize = 4096;
/// Every `AGE_INTERVAL` recorded accesses all sketch counters are halved,
/// so stale popularity decays instead of pinning the cache forever.
const AGE_INTERVAL: u64 = 8 * SKETCH_SLOTS as u64;

/// Counters and gauges of a [`SubpathCache`], snapshotted together.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubpathStats {
    /// Lookups served from the cache (chunk and prefix hits combined).
    pub hits: u64,
    /// Subset of `hits` that matched a multi-chunk prefix product, skipping
    /// at least two propagation steps.
    pub prefix_hits: u64,
    /// Lookups that found nothing cached.
    pub misses: u64,
    /// Products accepted by the admission policy.
    pub admitted: u64,
    /// Products rejected by the admission policy (too large, or less
    /// valuable per byte than the entries they would displace).
    pub rejected: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Bytes of cached products currently resident.
    pub bytes_resident: u64,
    /// Number of resident entries.
    pub entries: u64,
    /// The configured byte budget.
    pub budget_bytes: u64,
}

impl SubpathStats {
    /// Hit rate in `[0, 1]`; `None` before any lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }

    /// Counter-by-counter difference against an earlier snapshot (gauges are
    /// carried over from `self`). Used to report per-run deltas when one
    /// process executes several workload runs against a shared cache.
    pub fn since(&self, earlier: &SubpathStats) -> SubpathStats {
        SubpathStats {
            hits: self.hits.saturating_sub(earlier.hits),
            prefix_hits: self.prefix_hits.saturating_sub(earlier.prefix_hits),
            misses: self.misses.saturating_sub(earlier.misses),
            admitted: self.admitted.saturating_sub(earlier.admitted),
            rejected: self.rejected.saturating_sub(earlier.rejected),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            bytes_resident: self.bytes_resident,
            entries: self.entries,
            budget_bytes: self.budget_bytes,
        }
    }
}

/// Monotonic counters kept under the lock (the public [`SubpathStats`]
/// snapshot adds the point-in-time gauges).
#[derive(Debug, Clone, Copy, Default)]
struct Counters {
    hits: u64,
    prefix_hits: u64,
    misses: u64,
    admitted: u64,
    rejected: u64,
    evictions: u64,
}

/// A fixed-size frequency sketch: two hash-indexed saturating `u32`
/// counters per key, estimate = their minimum (a 2-row count-min). Counters
/// are halved every [`AGE_INTERVAL`] accesses so old popularity decays.
struct FreqSketch {
    counters: Vec<u32>,
    ops: u64,
}

impl FreqSketch {
    fn new() -> FreqSketch {
        FreqSketch {
            counters: vec![0; SKETCH_SLOTS],
            ops: 0,
        }
    }

    /// The two counter slots for a key hash: the low bits, and a
    /// multiply-shift remix of the whole hash (independent enough that two
    /// keys rarely collide in both).
    fn slots(h: u64) -> [usize; 2] {
        let a = (h as usize) & (SKETCH_SLOTS - 1);
        let b = ((h.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & (SKETCH_SLOTS - 1);
        [a, b]
    }

    fn record(&mut self, h: u64) {
        for s in Self::slots(h) {
            self.counters[s] = self.counters[s].saturating_add(1);
        }
        self.ops += 1;
        if self.ops.is_multiple_of(AGE_INTERVAL) {
            for c in &mut self.counters {
                *c /= 2;
            }
        }
    }

    fn estimate(&self, h: u64) -> u32 {
        let [a, b] = Self::slots(h);
        self.counters[a].min(self.counters[b])
    }

    fn reset(&mut self) {
        self.counters.fill(0);
        self.ops = 0;
    }
}

fn key_hash(key: &Key) -> u64 {
    let mut h = FxHasher::default();
    key.hash(&mut h);
    h.finish()
}

struct Entry {
    vec: SparseVec,
    /// Peak frontier `nnz` that was checked while computing this product;
    /// replayed through [`ExecCtx::check_frontier`] on every hit so budget
    /// outcomes are identical whether the product is cached or recomputed.
    peak_nnz: usize,
    stamp: u64,
    /// Accounted size (vector heap footprint + key), fixed at admission.
    bytes: usize,
}

struct Inner {
    map: FxHashMap<Key, Entry>,
    /// Access log for amortized-O(1) LRU: stale `(key, stamp)` pairs are
    /// skipped during eviction.
    log: VecDeque<(Key, u64)>,
    next_stamp: u64,
    /// Sum of `Entry::bytes` over the map, maintained incrementally.
    bytes: usize,
    sketch: FreqSketch,
    stats: Counters,
}

/// A byte-budgeted, frequency-aware cache of sub-path products, safe to
/// share across engines and server workers (interior mutability via a
/// [`parking_lot::Mutex`]).
pub struct SubpathCache {
    budget_bytes: usize,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for SubpathCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("SubpathCache")
            .field("budget_bytes", &self.budget_bytes)
            .field("bytes", &inner.bytes)
            .field("len", &inner.map.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl SubpathCache {
    /// A cache bounded by `budget_bytes` of product data (≥ 1).
    pub fn with_budget_bytes(budget_bytes: usize) -> SubpathCache {
        SubpathCache {
            budget_bytes: budget_bytes.max(1),
            inner: Mutex::new(Inner {
                map: FxHashMap::default(),
                log: VecDeque::new(),
                next_stamp: 0,
                bytes: 0,
                sketch: FreqSketch::new(),
                stats: Counters::default(),
            }),
        }
    }

    /// A cache bounded by `mb` mebibytes (the CLI's `--subpath-cache-mb`).
    pub fn with_budget_mb(mb: usize) -> SubpathCache {
        SubpathCache::with_budget_bytes(mb.saturating_mul(1024 * 1024))
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Current number of cached products.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of cached products currently resident (maintained
    /// incrementally — O(1)).
    pub fn size_bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Counters plus point-in-time gauges.
    pub fn stats(&self) -> SubpathStats {
        let inner = self.inner.lock();
        SubpathStats {
            hits: inner.stats.hits,
            prefix_hits: inner.stats.prefix_hits,
            misses: inner.stats.misses,
            admitted: inner.stats.admitted,
            rejected: inner.stats.rejected,
            evictions: inner.stats.evictions,
            bytes_resident: inner.bytes as u64,
            entries: inner.map.len() as u64,
            budget_bytes: self.budget_bytes as u64,
        }
    }

    /// Drop every entry and reset the frequency sketch, so subsequent use is
    /// indistinguishable from a fresh cache. Counters are preserved (report
    /// per-run numbers as deltas via [`SubpathStats::since`]).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.log.clear();
        inner.bytes = 0;
        inner.sketch.reset();
    }

    /// Look up a sub-path product. Every lookup — hit or miss — feeds the
    /// frequency sketch, which is how reuse frequency is learned before a
    /// product is ever admitted. `prefix` marks multi-chunk prefix probes
    /// for the `prefix_hits` counter.
    fn lookup(&self, key: &Key, prefix: bool) -> Option<(SparseVec, usize)> {
        let mut inner = self.inner.lock();
        let h = key_hash(key);
        inner.sketch.record(h);
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        let Some(entry) = inner.map.get_mut(key) else {
            inner.stats.misses += 1;
            return None;
        };
        entry.stamp = stamp;
        let out = (entry.vec.clone(), entry.peak_nnz);
        inner.log.push_back((key.clone(), stamp));
        inner.stats.hits += 1;
        if prefix {
            inner.stats.prefix_hits += 1;
        }
        Some(out)
    }

    /// Offer a freshly computed product to the admission policy.
    ///
    /// `peak_nnz` is the largest frontier `nnz` that was budget-checked
    /// while computing `vec` (see [`Entry::peak_nnz`]).
    fn admit(&self, key: Key, vec: SparseVec, peak_nnz: usize) {
        let bytes = vec.size_bytes() + std::mem::size_of::<Key>();
        let mut inner = self.inner.lock();
        if inner.map.contains_key(&key) {
            // A racing engine already admitted this product (values are
            // identical by construction); keep the resident entry.
            return;
        }
        // One product may not displace the bulk of the working set.
        if bytes > self.budget_bytes / 8 {
            inner.stats.rejected += 1;
            return;
        }
        let incoming_freq = inner.sketch.estimate(key_hash(&key)) as u128;
        while inner.bytes + bytes > self.budget_bytes {
            let Some((vk, vstamp)) = inner.log.pop_front() else {
                break; // log drained; handled below
            };
            // Skip stale log records (the entry was touched again later).
            let Some(vbytes) = inner
                .map
                .get(&vk)
                .filter(|e| e.stamp == vstamp)
                .map(|e| e.bytes)
            else {
                continue;
            };
            let victim_freq = inner.sketch.estimate(key_hash(&vk)) as u128;
            // Evict only entries no denser (frequency per byte) than the
            // incoming product; cross-multiplied to stay in integers. Ties
            // go to the newcomer (recency breaks them).
            if incoming_freq * vbytes as u128 >= victim_freq * bytes as u128 {
                inner.map.remove(&vk);
                inner.bytes -= vbytes;
                inner.stats.evictions += 1;
            } else {
                // The LRU survivor is denser than the newcomer: put its log
                // record back and reject the admission.
                inner.log.push_front((vk, vstamp));
                inner.stats.rejected += 1;
                return;
            }
        }
        if inner.bytes + bytes > self.budget_bytes {
            inner.stats.rejected += 1;
            return;
        }
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        inner.log.push_back((key.clone(), stamp));
        inner.bytes += bytes;
        inner.map.insert(
            key,
            Entry {
                vec,
                peak_nnz,
                stamp,
                bytes,
            },
        );
        inner.stats.admitted += 1;
    }
}

/// The canonical chunk decomposition a path is cached under — maximal
/// length-2 chunks plus a trailing single hop for odd lengths, exactly
/// [`MetaPath::decompose_pairs`]. Exposed so tests and tools can reason
/// about cache keys.
pub fn canonical_chunks(path: &MetaPath) -> Vec<MetaPath> {
    path.decompose_pairs()
}

/// The composable prefixes of a chunk decomposition: `prefixes[k-1]` is the
/// concatenation of `chunks[..k]`, so the last element reassembles the full
/// path (the decompose→recompose identity).
pub fn prefix_paths(chunks: &[MetaPath]) -> Vec<MetaPath> {
    let mut prefixes: Vec<MetaPath> = Vec::with_capacity(chunks.len());
    for chunk in chunks {
        let next = match prefixes.last() {
            // Invariant: each chunk starts with the previous chunk's last
            // type (`decompose_pairs` slices one contiguous sequence), so
            // concatenation cannot mismatch.
            #[allow(clippy::expect_used)]
            Some(prev) => prev
                .concat(chunk)
                .expect("adjacent chunks share their boundary type"),
            None => chunk.clone(),
        };
        prefixes.push(next);
    }
    prefixes
}

/// A [`VectorSource`] decorator that serves propagation from cached
/// sub-path products and resumes from the longest cached prefix.
///
/// Evaluation mirrors [`IndexedSource`](crate::engine::source::IndexedSource)
/// exactly — seed the first chunk, then propagate frontier-vertex-by-vertex
/// through the remaining chunks — so its results are bit-identical to the
/// undecorated strategy (see the module docs for why chunked summation is
/// exact).
pub struct SubpathSource<'a> {
    inner: Box<dyn VectorSource + 'a>,
    cache: &'a SubpathCache,
}

impl<'a> SubpathSource<'a> {
    /// Layer `cache` over `inner`.
    pub fn new(inner: Box<dyn VectorSource + 'a>, cache: &'a SubpathCache) -> Self {
        SubpathSource { inner, cache }
    }

    /// One chunk product for a single seed vertex: cache, else compute
    /// through the inner source and offer the result for admission.
    /// Single-hop tail chunks bypass the cache — they are one CSR row copy,
    /// cheaper than the lookup.
    fn chunk_product(
        &self,
        u: VertexId,
        chunk: &MetaPath,
        ctx: &mut ExecCtx,
    ) -> Result<SparseVec, EngineError> {
        if chunk.len() < 2 {
            return self.inner.neighbor_vector(u, chunk, ctx);
        }
        let key = (chunk.clone(), u);
        let t = Instant::now();
        if let Some((vec, peak)) = self.cache.lookup(&key, false) {
            ctx.stats.indexed_vectors += t.elapsed();
            ctx.stats.indexed_count += 1;
            // Replay the skipped computation's budget exposure.
            ctx.check_frontier(peak)?;
            return Ok(vec);
        }
        // Miss: compute through the inner source, capturing the peak
        // frontier nnz its internal checks observe.
        let saved = ctx.swap_chunk_peak(0);
        let out = self.inner.neighbor_vector(u, chunk, ctx);
        let peak = ctx.chunk_peak();
        ctx.set_chunk_peak(saved.max(peak));
        let vec = out?;
        self.cache.admit(key, vec.clone(), peak);
        Ok(vec)
    }

    /// Propagate a frontier through one chunk, seed by seed (identical
    /// accumulation order to `IndexedSource::frontier_chunk`).
    fn frontier_chunk(
        &self,
        frontier: &SparseVec,
        chunk: &MetaPath,
        ctx: &mut ExecCtx,
    ) -> Result<SparseVec, EngineError> {
        let mut acc = SparseVec::new();
        for (u, w) in frontier.iter() {
            let mut phi = self.chunk_product(u, chunk, ctx)?;
            phi.scale(w);
            acc.add_assign(&phi);
            ctx.check_frontier(acc.nnz())?;
        }
        Ok(acc)
    }
}

impl VectorSource for SubpathSource<'_> {
    fn neighbor_vector(
        &self,
        v: VertexId,
        path: &MetaPath,
        ctx: &mut ExecCtx,
    ) -> Result<SparseVec, EngineError> {
        if path.len() < 2 {
            // Nothing to chunk; single hops and degenerate paths go
            // straight through (and get the inner source's validation).
            return self.inner.neighbor_vector(v, path, ctx);
        }
        let chunks = canonical_chunks(path);
        let prefixes = prefix_paths(&chunks);
        // Collect this evaluation's peak under a fresh accumulator and fold
        // it back into any enclosing collector on the way out.
        let saved = ctx.swap_chunk_peak(0);
        let result = self.eval(v, &chunks, &prefixes, ctx);
        let peak = ctx.chunk_peak();
        ctx.set_chunk_peak(saved.max(peak));
        result
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn index_size_bytes(&self) -> usize {
        self.inner.index_size_bytes() + self.cache.size_bytes()
    }

    fn chunk_coverage(&self, chunk: &MetaPath) -> Option<(usize, usize)> {
        self.inner.chunk_coverage(chunk)
    }

    fn subpath_stats(&self) -> Option<SubpathStats> {
        Some(self.cache.stats())
    }
}

impl SubpathSource<'_> {
    /// The chunked evaluation: resume from the longest cached prefix
    /// (longest-first probing, whole path included), then propagate the
    /// remaining chunks, admitting each completed prefix product.
    fn eval(
        &self,
        v: VertexId,
        chunks: &[MetaPath],
        prefixes: &[MetaPath],
        ctx: &mut ExecCtx,
    ) -> Result<SparseVec, EngineError> {
        let mut start = 0usize;
        let mut resumed: Option<SparseVec> = None;
        for k in (1..=chunks.len()).rev() {
            let t = Instant::now();
            if let Some((vec, peak)) = self.cache.lookup(&(prefixes[k - 1].clone(), v), k > 1) {
                ctx.stats.indexed_vectors += t.elapsed();
                ctx.stats.indexed_count += 1;
                // Replay the skipped propagation's budget exposure.
                ctx.check_frontier(peak)?;
                resumed = Some(vec);
                start = k;
                break;
            }
        }
        let mut frontier = match resumed {
            Some(f) => f,
            None => {
                // Cold start: the first chunk seeds the frontier (this also
                // runs the inner source's start validation, so unknown
                // vertices and type mismatches error exactly like the
                // undecorated strategy).
                start = 1;
                self.chunk_product(v, &chunks[0], ctx)?
            }
        };
        for k in start..chunks.len() {
            if frontier.is_empty() {
                break;
            }
            ctx.check_frontier(frontier.nnz())?;
            frontier = self.frontier_chunk(&frontier, &chunks[k], ctx)?;
            // The completed prefix product (chunks[..=k] from seed v) is a
            // resumption point for any longer path sharing it. The running
            // chunk peak at this moment is exactly the peak a fresh
            // evaluation of this prefix would have checked.
            self.cache
                .admit((prefixes[k].clone(), v), frontier.clone(), ctx.chunk_peak());
        }
        ctx.check_frontier(frontier.nnz())?;
        Ok(frontier)
    }
}

// Compile-time assertion: the cache is shareable across threads as-is —
// `hin-service` workers share one instance behind an `Arc`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn _check() {
        assert_send_sync::<SubpathCache>();
        assert_send_sync::<SubpathStats>();
    }
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::budget::{Budget, BudgetLimit};
    use crate::engine::source::TraversalSource;
    use hin_datagen::toy;
    use hin_graph::traverse;

    fn toy_path(g: &hin_graph::HinGraph, spec: &str) -> MetaPath {
        MetaPath::parse(spec, g.schema()).unwrap()
    }

    fn author(g: &hin_graph::HinGraph, name: &str) -> VertexId {
        let t = g.schema().vertex_type_by_name("author").unwrap();
        g.vertex_by_name(t, name).unwrap()
    }

    #[test]
    fn chunked_equals_traversal_cold_and_warm() {
        let g = toy::figure1_network();
        let cache = SubpathCache::with_budget_mb(16);
        let source = SubpathSource::new(Box::new(TraversalSource::new(&g)), &cache);
        let t = g.schema().vertex_type_by_name("author").unwrap();
        for spec in [
            "author.paper.venue",
            "author.paper.venue.paper",
            "author.paper.venue.paper.author",
        ] {
            let path = toy_path(&g, spec);
            for &a in g.vertices_of_type(t) {
                let want = traverse::neighbor_vector(&g, a, &path).unwrap();
                let mut c1 = ExecCtx::unbounded();
                let cold = source.neighbor_vector(a, &path, &mut c1).unwrap();
                assert_eq!(cold, want, "cold {spec} {a:?}");
                let mut c2 = ExecCtx::unbounded();
                let warm = source.neighbor_vector(a, &path, &mut c2).unwrap();
                assert_eq!(warm, want, "warm {spec} {a:?}");
            }
        }
        let stats = cache.stats();
        assert!(stats.hits > 0, "warm pass must hit: {stats:?}");
        assert!(stats.admitted > 0);
        assert!(stats.bytes_resident > 0);
        assert!(stats.bytes_resident <= stats.budget_bytes);
    }

    #[test]
    fn prefix_product_resumes_longer_paths() {
        let g = toy::figure1_network();
        let cache = SubpathCache::with_budget_mb(16);
        let source = SubpathSource::new(Box::new(TraversalSource::new(&g)), &cache);
        let zoe = author(&g, "Zoe");
        // Three chunks: [APV, VPA, APV]; evaluating the whole path admits
        // the 2-chunk prefix (author.paper.venue.paper.author, zoe).
        let long = toy_path(&g, "author.paper.venue.paper.author.paper.venue");
        let mut ctx = ExecCtx::unbounded();
        let full = source.neighbor_vector(zoe, &long, &mut ctx).unwrap();
        assert_eq!(full, traverse::neighbor_vector(&g, zoe, &long).unwrap());
        let before = cache.stats();
        // The 2-chunk prefix is itself a meta-path; a query asking for it
        // directly must hit the stored prefix product.
        let prefix = toy_path(&g, "author.paper.venue.paper.author");
        let mut ctx2 = ExecCtx::unbounded();
        let resumed = source.neighbor_vector(zoe, &prefix, &mut ctx2).unwrap();
        assert_eq!(
            resumed,
            traverse::neighbor_vector(&g, zoe, &prefix).unwrap()
        );
        let after = cache.stats();
        assert_eq!(after.prefix_hits, before.prefix_hits + 1);
        // The prefix hit served the whole request: no extra traversal ran.
        assert_eq!(ctx2.stats.unindexed_count, 0);
    }

    #[test]
    fn budget_outcomes_identical_cold_and_warm() {
        let g = toy::figure1_network();
        let long = toy_path(&g, "author.paper.venue.paper.author");
        let zoe = author(&g, "Zoe");
        for cap in 1..=12usize {
            // Cold: fresh cache, tight cap.
            let cold_cache = SubpathCache::with_budget_mb(16);
            let cold_src = SubpathSource::new(Box::new(TraversalSource::new(&g)), &cold_cache);
            let mut c1 = ExecCtx::new(&Budget::default().with_max_nnz(cap));
            let cold = cold_src.neighbor_vector(zoe, &long, &mut c1);
            // Warm: the cache was filled by an unbounded run first.
            let warm_cache = SubpathCache::with_budget_mb(16);
            let warm_src = SubpathSource::new(Box::new(TraversalSource::new(&g)), &warm_cache);
            let mut cw = ExecCtx::unbounded();
            warm_src.neighbor_vector(zoe, &long, &mut cw).unwrap();
            let mut c2 = ExecCtx::new(&Budget::default().with_max_nnz(cap));
            let warm = warm_src.neighbor_vector(zoe, &long, &mut c2);
            match (cold, warm) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a, b, "cap {cap}");
                    // The peak the budget saw must match too.
                    assert_eq!(
                        c1.stats.peak_frontier_nnz, c2.stats.peak_frontier_nnz,
                        "cap {cap}"
                    );
                }
                (Err(EngineError::BudgetExceeded { limit: l1, .. }), Err(e2)) => {
                    assert_eq!(l1, BudgetLimit::FrontierNnz, "cap {cap}");
                    match e2 {
                        EngineError::BudgetExceeded { limit, .. } => {
                            assert_eq!(limit, BudgetLimit::FrontierNnz, "cap {cap}")
                        }
                        other => panic!("warm failed differently at cap {cap}: {other:?}"),
                    }
                }
                (cold, warm) => {
                    panic!("outcomes diverged at cap {cap}: cold {cold:?} vs warm {warm:?}")
                }
            }
        }
    }

    #[test]
    fn tiny_budget_rejects_and_stays_bounded() {
        let g = toy::figure1_network();
        // 256 bytes: almost every product is oversized (> budget/8) or
        // displaced; the cache must stay within budget and count rejections.
        let cache = SubpathCache::with_budget_bytes(256);
        let source = SubpathSource::new(Box::new(TraversalSource::new(&g)), &cache);
        let t = g.schema().vertex_type_by_name("author").unwrap();
        let path = toy_path(&g, "author.paper.venue.paper.author");
        for &a in g.vertices_of_type(t) {
            let mut ctx = ExecCtx::unbounded();
            let got = source.neighbor_vector(a, &path, &mut ctx).unwrap();
            assert_eq!(got, traverse::neighbor_vector(&g, a, &path).unwrap());
        }
        let stats = cache.stats();
        assert!(stats.rejected > 0, "{stats:?}");
        assert!(stats.bytes_resident <= 256, "{stats:?}");
        assert_eq!(stats.bytes_resident, cache.size_bytes() as u64);
    }

    #[test]
    fn eviction_respects_byte_budget() {
        let g = toy::figure1_network();
        let path = toy_path(&g, "author.paper.venue");
        let t = g.schema().vertex_type_by_name("author").unwrap();
        let authors: Vec<VertexId> = g.vertices_of_type(t).to_vec();
        // Size the budget to roughly four entries so later admissions must
        // displace earlier ones (every author's vector is about the same
        // size, and every key has comparable frequency, so ties evict).
        let probe = traverse::neighbor_vector(&g, authors[0], &path).unwrap();
        let per_entry = probe.size_bytes() + std::mem::size_of::<Key>();
        let cache = SubpathCache::with_budget_bytes(per_entry * 4);
        let source = SubpathSource::new(Box::new(TraversalSource::new(&g)), &cache);
        for _ in 0..2 {
            for &a in &authors {
                let mut ctx = ExecCtx::unbounded();
                source.neighbor_vector(a, &path, &mut ctx).unwrap();
            }
        }
        let stats = cache.stats();
        assert!(stats.bytes_resident as usize <= per_entry * 4, "{stats:?}");
        assert!(stats.admitted > 0, "{stats:?}");
        assert!(stats.evictions > 0 || stats.rejected > 0, "{stats:?}");
    }

    #[test]
    fn sketch_estimates_and_ages() {
        let mut sketch = FreqSketch::new();
        let h = 0xDEAD_BEEF_u64;
        assert_eq!(sketch.estimate(h), 0);
        for _ in 0..10 {
            sketch.record(h);
        }
        assert!(sketch.estimate(h) >= 10);
        // Aging halves every counter.
        let before = sketch.estimate(h);
        for i in 0..AGE_INTERVAL {
            sketch.record(0x1234_5678_u64.wrapping_add(i));
        }
        assert!(sketch.estimate(h) <= before / 2 + 1);
        sketch.reset();
        assert_eq!(sketch.estimate(h), 0);
    }

    #[test]
    fn clear_resets_entries_keeps_counters() {
        let g = toy::figure1_network();
        let cache = SubpathCache::with_budget_mb(4);
        let source = SubpathSource::new(Box::new(TraversalSource::new(&g)), &cache);
        let zoe = author(&g, "Zoe");
        let path = toy_path(&g, "author.paper.venue");
        let mut ctx = ExecCtx::unbounded();
        source.neighbor_vector(zoe, &path, &mut ctx).unwrap();
        let before = cache.stats();
        assert!(before.admitted > 0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.size_bytes(), 0);
        let after = cache.stats();
        assert_eq!(after.misses, before.misses, "counters survive clear");
        assert_eq!(after.entries, 0);
    }

    #[test]
    fn canonicalization_round_trips() {
        let g = toy::figure1_network();
        let path = toy_path(&g, "author.paper.venue.paper.author.paper");
        let chunks = canonical_chunks(&path);
        assert_eq!(chunks.len(), 3);
        let prefixes = prefix_paths(&chunks);
        assert_eq!(prefixes.last().map(|p| p.types()), Some(path.types()));
        // Symmetric single-link paths dedupe both halves into one chunk.
        let ap = toy_path(&g, "author.paper");
        let sym = ap.symmetric();
        let sym_chunks = canonical_chunks(&sym);
        assert_eq!(sym_chunks.len(), 1);
        assert!(sym_chunks[0].is_symmetric());
        assert_eq!(sym_chunks[0].types(), sym.types());
    }

    #[test]
    fn stats_hit_rate_and_delta() {
        let stats = SubpathStats {
            hits: 3,
            misses: 1,
            ..SubpathStats::default()
        };
        assert_eq!(stats.hit_rate(), Some(0.75));
        assert_eq!(SubpathStats::default().hit_rate(), None);
        let earlier = SubpathStats {
            hits: 1,
            misses: 1,
            ..SubpathStats::default()
        };
        let delta = stats.since(&earlier);
        assert_eq!(delta.hits, 2);
        assert_eq!(delta.misses, 0);
    }
}
