//! The query execution engine (Section 6 of the paper).
//!
//! Execution of an outlier query has two steps: retrieve the candidate and
//! reference sets ([`set_eval`]), then score every candidate against the
//! reference set along the feature meta-paths ([`executor`]).
//!
//! The expensive primitive in both steps is materializing neighbor vectors
//! `Φ_P(v)`. Three strategies are provided, mirroring the paper's
//! comparison:
//!
//! * **Baseline** ([`source::TraversalSource`]) — materialize by sparse
//!   graph traversal every time.
//! * **PM** ([`index::PmIndex::build_full`]) — pre-materialize all length-2
//!   meta-path relations; arbitrary paths are evaluated by chunked
//!   vector–matrix products (Section 6.2).
//! * **SPM** ([`index::PmIndex::build_selective`]) — pre-materialize only
//!   rows for vertices that appear frequently in the candidate sets of an
//!   initialization query workload, falling back to traversal per vertex.

pub mod budget;
pub mod cache;
pub mod cost;
pub mod executor;
pub mod explain;
pub mod index;
pub mod parallel;
pub mod progressive;
pub mod set_eval;
pub mod source;
pub mod stats;
pub mod subpath;
pub mod topk;
