//! Bounded top-k selection over outlier scores.
//!
//! NetOut ranks *smaller* `Ω` as more outlying, while e.g. LOF ranks larger
//! values as more outlying; [`ScoreOrder`] makes the direction explicit so
//! the same selection code serves every measure.

use hin_graph::VertexId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which end of the score scale is "most outlying".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoreOrder {
    /// Smaller scores are more outlying (NetOut, PathSim/CosSim sums).
    AscendingIsOutlier,
    /// Larger scores are more outlying (LOF, kNN distance).
    DescendingIsOutlier,
}

impl ScoreOrder {
    /// Compare two scored vertices so that "more outlying" sorts first.
    /// Non-finite scores (`Ω = +∞` for zero-visibility vertices) always sort
    /// last; ties break by vertex id for determinism.
    pub fn compare(self, a: &(VertexId, f64), b: &(VertexId, f64)) -> Ordering {
        // Invariant: `rank_key` maps every score (including NaN/±∞) to a
        // finite key, so `partial_cmp` always succeeds.
        #[allow(clippy::expect_used)]
        rank_key(self, a)
            .partial_cmp(&rank_key(self, b))
            .expect("keys are finite or handled")
            .then(a.0.cmp(&b.0))
    }
}

/// Map a scored vertex to a finite sort key: smaller keys = more outlying,
/// with non-finite scores pushed to the very end.
fn rank_key(order: ScoreOrder, item: &(VertexId, f64)) -> (u8, f64) {
    let score = item.1;
    if !score.is_finite() {
        return (1, 0.0);
    }
    let key = match order {
        ScoreOrder::AscendingIsOutlier => score,
        ScoreOrder::DescendingIsOutlier => -score,
    };
    (0, key)
}

struct HeapItem {
    order: ScoreOrder,
    entry: (VertexId, f64),
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.order.compare(&self.entry, &other.entry) == Ordering::Equal
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by "least outlying first at the top", so the heap root is
        // the weakest of the current top-k and can be evicted.
        self.order.compare(&self.entry, &other.entry)
    }
}

/// Select the `k` most outlying entries, sorted most-outlying first.
///
/// `k = None` returns the full ranking. Runs in `O(n log k)` with a bounded
/// max-heap (the partition-based pruning idea of Ramaswamy et al., which the
/// paper cites for top-k outlier mining).
pub fn top_k(
    scores: impl IntoIterator<Item = (VertexId, f64)>,
    k: Option<usize>,
    order: ScoreOrder,
) -> Vec<(VertexId, f64)> {
    match k {
        None => {
            let mut all: Vec<(VertexId, f64)> = scores.into_iter().collect();
            all.sort_by(|a, b| order.compare(a, b));
            all
        }
        Some(0) => Vec::new(),
        Some(k) => {
            let mut heap: BinaryHeap<HeapItem> = BinaryHeap::with_capacity(k + 1);
            for entry in scores {
                heap.push(HeapItem { order, entry });
                if heap.len() > k {
                    heap.pop(); // evict the least outlying
                }
            }
            let mut out: Vec<(VertexId, f64)> = heap.into_iter().map(|h| h.entry).collect();
            out.sort_by(|a, b| order.compare(a, b));
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(id: u32) -> VertexId {
        VertexId(id)
    }

    #[test]
    fn ascending_selects_smallest() {
        let scores = vec![(v(1), 5.0), (v(2), 1.0), (v(3), 3.0), (v(4), 2.0)];
        let top = top_k(scores, Some(2), ScoreOrder::AscendingIsOutlier);
        assert_eq!(top, vec![(v(2), 1.0), (v(4), 2.0)]);
    }

    #[test]
    fn descending_selects_largest() {
        let scores = vec![(v(1), 5.0), (v(2), 1.0), (v(3), 3.0)];
        let top = top_k(scores, Some(2), ScoreOrder::DescendingIsOutlier);
        assert_eq!(top, vec![(v(1), 5.0), (v(3), 3.0)]);
    }

    #[test]
    fn none_returns_full_sorted_ranking() {
        let scores = vec![(v(1), 5.0), (v(2), 1.0)];
        let all = top_k(scores, None, ScoreOrder::AscendingIsOutlier);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, v(2));
    }

    #[test]
    fn k_larger_than_input() {
        let scores = vec![(v(1), 5.0)];
        let top = top_k(scores, Some(10), ScoreOrder::AscendingIsOutlier);
        assert_eq!(top.len(), 1);
    }

    #[test]
    fn k_zero() {
        let scores = vec![(v(1), 5.0)];
        assert!(top_k(scores, Some(0), ScoreOrder::AscendingIsOutlier).is_empty());
    }

    #[test]
    fn infinite_scores_sort_last_under_both_orders() {
        for order in [
            ScoreOrder::AscendingIsOutlier,
            ScoreOrder::DescendingIsOutlier,
        ] {
            let scores = vec![(v(1), f64::INFINITY), (v(2), 2.0), (v(3), f64::NAN)];
            let all = top_k(scores, None, order);
            assert_eq!(all[0].0, v(2), "finite score first under {order:?}");
        }
    }

    #[test]
    fn ties_break_by_vertex_id() {
        let scores = vec![(v(9), 1.0), (v(3), 1.0), (v(7), 1.0)];
        let top = top_k(scores, Some(2), ScoreOrder::AscendingIsOutlier);
        assert_eq!(top, vec![(v(3), 1.0), (v(7), 1.0)]);
    }

    #[test]
    fn heap_path_matches_full_sort() {
        // Cross-check the bounded-heap path against sort-everything.
        let scores: Vec<(VertexId, f64)> = (0..100)
            .map(|i| (v(i), ((i * 37) % 100) as f64 / 3.0))
            .collect();
        for order in [
            ScoreOrder::AscendingIsOutlier,
            ScoreOrder::DescendingIsOutlier,
        ] {
            let full = top_k(scores.clone(), None, order);
            let heap = top_k(scores.clone(), Some(10), order);
            assert_eq!(heap, full[..10].to_vec());
        }
    }
}
