//! Static query-cost estimation and an online cost-per-microsecond model,
//! the inputs to the serving tier's overload admission control
//! (DESIGN.md §16).
//!
//! The estimate follows Atrapos' observation that metapath workloads are
//! cost-estimable *before* execution: the dominant work is the chain of
//! sparse vector–matrix products along each meta-path, and its size is
//! proportional to meta-path length × the non-zeros of the chunk matrices
//! it multiplies through. [`cost_estimate`] computes exactly that proxy
//! from the query text and the PM index (falling back to the graph's edge
//! count when no index is built — the traversal source touches edges
//! instead of stored non-zeros).
//!
//! The proxy is unitless; [`CostModel`] turns it into predicted wall-clock
//! time by maintaining an exponentially weighted moving average of observed
//! cost-per-microsecond over completed queries. Admission control then asks
//! "can this request's estimated microseconds fit its remaining deadline?"

use std::sync::atomic::{AtomicU64, Ordering};

use super::index::PmIndex;

/// Count the meta-path steps mentioned in a query's text: every `.` inside
/// the `FROM`/`COMPARED TO`/`JUDGED BY` path expressions separates two
/// steps. This deliberately avoids a full parse — admission control runs
/// on the accept path and must stay O(query length) with no allocation.
/// Never returns 0: an unparsable or path-free query costs at least one
/// step (the server will answer it with a cheap error anyway).
pub fn meta_path_steps(query_text: &str) -> u64 {
    // Dots inside quoted anchor names ("J. Smith") are not path steps.
    let mut steps = 0u64;
    let mut in_quotes = false;
    for c in query_text.chars() {
        match c {
            '"' => in_quotes = !in_quotes,
            '.' if !in_quotes => steps += 1,
            _ => {}
        }
    }
    steps.max(1)
}

/// A cheap static estimate of one query's execution cost, in abstract work
/// units: meta-path steps × per-step non-zeros. With a PM index the
/// per-step work is the mean chunk nnz (`nnz / path_count` — each step is
/// one chunked product); without one it is the graph's edge count (the
/// traversal source walks edges directly).
///
/// The estimate is intentionally crude — it exists to *rank* requests and
/// feed [`CostModel`], not to predict latency on its own.
pub fn cost_estimate(query_text: &str, index: Option<&PmIndex>, graph_edges: usize) -> u64 {
    let per_step = match index {
        Some(index) => {
            let paths = index.path_count().max(1);
            (index.nnz() / paths).max(1) as u64
        }
        None => graph_edges.max(1) as u64,
    };
    meta_path_steps(query_text).saturating_mul(per_step)
}

/// Default EWMA smoothing factor: each observation contributes 10%, so the
/// model tracks load shifts within ~20 queries without whiplashing on one
/// outlier.
pub const EWMA_ALPHA: f64 = 0.1;

/// An online estimate of how many abstract cost units (see
/// [`cost_estimate`]) the server executes per microsecond, maintained as a
/// lock-free EWMA over completed queries. Shared by every worker thread;
/// all methods are safe under concurrency (last-writer-wins merging is
/// acceptable for a smoothed estimate).
#[derive(Debug, Default)]
pub struct CostModel {
    /// EWMA of cost-units-per-microsecond, stored as `f64::to_bits`.
    /// Zero bits ⇔ no observation yet.
    rate_bits: AtomicU64,
    /// Completed observations folded in (for introspection/metrics).
    observations: AtomicU64,
}

impl CostModel {
    /// A model with no observations; [`CostModel::micros_for`] returns
    /// `None` until the first [`CostModel::observe`].
    pub fn new() -> CostModel {
        CostModel::default()
    }

    /// Fold one completed query into the EWMA: it had estimated cost
    /// `cost` and executed in `micros` microseconds. Zero-duration and
    /// zero-cost observations are ignored (they carry no rate signal).
    pub fn observe(&self, cost: u64, micros: u64) {
        if cost == 0 || micros == 0 {
            return;
        }
        let sample = cost as f64 / micros as f64;
        let mut current = self.rate_bits.load(Ordering::Relaxed);
        loop {
            let next = if current == 0 {
                sample
            } else {
                let rate = f64::from_bits(current);
                rate + EWMA_ALPHA * (sample - rate)
            };
            match self.rate_bits.compare_exchange_weak(
                current,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
        self.observations.fetch_add(1, Ordering::Relaxed);
    }

    /// The current cost-units-per-microsecond EWMA, or `None` before the
    /// first observation.
    pub fn rate(&self) -> Option<f64> {
        let bits = self.rate_bits.load(Ordering::Relaxed);
        if bits == 0 {
            None
        } else {
            Some(f64::from_bits(bits))
        }
    }

    /// Observations folded in so far.
    pub fn observations(&self) -> u64 {
        self.observations.load(Ordering::Relaxed)
    }

    /// Predicted execution time in microseconds for a request of estimated
    /// cost `cost`, or `None` while the model has no signal. The floor of
    /// 1 µs keeps the prediction usable in "fits the deadline?" divisions.
    pub fn micros_for(&self, cost: u64) -> Option<u64> {
        let rate = self.rate()?;
        if !rate.is_finite() || rate <= 0.0 {
            return None;
        }
        Some(((cost as f64 / rate).ceil() as u64).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_count_dots_outside_quotes() {
        assert_eq!(meta_path_steps("FIND OUTLIERS FROM author.paper.venue"), 2);
        assert_eq!(
            meta_path_steps(
                "FIND OUTLIERS FROM author{\"J. Smith\"}.paper.author \
                 JUDGED BY author.paper.venue TOP 5;"
            ),
            4
        );
        // Unparsable garbage still charges one step.
        assert_eq!(meta_path_steps("no dots at all"), 1);
    }

    #[test]
    fn estimate_scales_with_path_length_and_falls_back_to_edges() {
        let short = cost_estimate("a.b", None, 1000);
        let long = cost_estimate("a.b.c.d", None, 1000);
        assert_eq!(short, 1000);
        assert_eq!(long, 3000);
        assert!(long > short);
        // Degenerate inputs stay non-zero.
        assert!(cost_estimate("", None, 0) >= 1);
    }

    #[test]
    fn model_warms_up_and_converges() {
        let model = CostModel::new();
        assert_eq!(model.rate(), None);
        assert_eq!(model.micros_for(1000), None);
        // First observation seeds the EWMA directly.
        model.observe(1000, 10);
        assert_eq!(model.observations(), 1);
        let rate = model.rate().unwrap();
        assert!((rate - 100.0).abs() < 1e-9, "{rate}");
        assert_eq!(model.micros_for(1000), Some(10));
        // Repeated observations at half the rate pull the EWMA down
        // monotonically toward 50 without overshooting.
        let mut last = rate;
        for _ in 0..50 {
            model.observe(1000, 20);
            let now = model.rate().unwrap();
            assert!(now <= last + 1e-9);
            assert!(now >= 50.0 - 1e-9);
            last = now;
        }
        assert!((last - 50.0).abs() < 1.0, "{last}");
    }

    #[test]
    fn degenerate_observations_are_ignored() {
        let model = CostModel::new();
        model.observe(0, 10);
        model.observe(10, 0);
        assert_eq!(model.rate(), None);
        assert_eq!(model.observations(), 0);
    }
}
