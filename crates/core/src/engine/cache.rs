//! A cross-query LRU cache of neighbor vectors.
//!
//! The paper's target user "elaborates their queries" interactively
//! (Section 1, challenge 3): consecutive queries usually revisit the same
//! anchors, candidates, and feature paths. [`VectorCache`] memoizes
//! `(meta-path, vertex) → Φ_P(v)` across queries with LRU eviction, and
//! [`CachedSource`] layers it over any [`VectorSource`] (baseline, PM, or
//! SPM).
//!
//! Cache hits are attributed to the `indexed_vectors` timing bucket — a hit
//! is an in-memory load, exactly like a pre-materialized row — and are
//! additionally counted in [`CacheStats`].

use crate::engine::budget::ExecCtx;
use crate::engine::source::VectorSource;
use crate::error::EngineError;
use hin_graph::{MetaPath, SparseVec, VertexId};
use parking_lot::Mutex;
use rustc_hash::FxHashMap;
use std::collections::VecDeque;
use std::time::Instant;

type Key = (MetaPath, VertexId);

/// Hit/miss counters for a [`VectorCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Vectors served from the cache.
    pub hits: u64,
    /// Vectors computed by the inner source (and then cached).
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; `None` before any lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }
}

struct Entry {
    vec: SparseVec,
    /// `‖vec‖²` (the vertex's visibility along the key's path), computed
    /// once on insertion so CosSim/NetOut/PathSim denominators are never
    /// re-derived for a cached vector.
    norm2_sq: f64,
    stamp: u64,
    /// Accounted size (vector heap footprint + key), fixed at insertion so
    /// the running byte total can be maintained incrementally.
    bytes: usize,
}

struct Inner {
    map: FxHashMap<Key, Entry>,
    /// Access log for amortized-O(1) LRU: stale `(key, stamp)` pairs are
    /// skipped during eviction.
    log: VecDeque<(Key, u64)>,
    next_stamp: u64,
    /// Sum of `Entry::bytes` over the map, maintained incrementally.
    bytes: usize,
    stats: CacheStats,
}

/// A bounded LRU cache of neighbor vectors, safe to share across engines
/// (interior mutability via a [`parking_lot::Mutex`]).
///
/// The bound is a **byte budget** ([`VectorCache::with_budget_bytes`]):
/// vectors vary from a few entries to near-dense, so bounding bytes keeps
/// the footprint workload-independent. The entry-count constructor
/// ([`VectorCache::new`]) remains as a compatibility shim for callers that
/// still think in entries (`serve --cache-cap`).
pub struct VectorCache {
    /// Entry-count cap (`usize::MAX` when bounded by bytes alone).
    capacity: usize,
    /// Byte budget (`usize::MAX` when bounded by entries alone).
    budget_bytes: usize,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for VectorCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("VectorCache")
            .field("capacity", &self.capacity)
            .field("budget_bytes", &self.budget_bytes)
            .field("bytes", &inner.bytes)
            .field("len", &inner.map.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl VectorCache {
    fn with_limits(capacity: usize, budget_bytes: usize) -> Self {
        VectorCache {
            capacity,
            budget_bytes,
            inner: Mutex::new(Inner {
                map: FxHashMap::default(),
                log: VecDeque::new(),
                next_stamp: 0,
                bytes: 0,
                stats: CacheStats::default(),
            }),
        }
    }

    /// A cache holding at most `capacity` vectors (`capacity` ≥ 1).
    ///
    /// Deprecated shim: entry counts say nothing about memory, since vector
    /// sizes are workload-dependent. Prefer
    /// [`with_budget_bytes`](VectorCache::with_budget_bytes); this remains
    /// so `serve --cache-cap` and older callers keep working unchanged.
    pub fn new(capacity: usize) -> Self {
        VectorCache::with_limits(capacity.max(1), usize::MAX)
    }

    /// A cache bounded by `budget_bytes` of vector data (≥ 1), LRU-evicted
    /// using the same `size_bytes` accounting that
    /// [`size_bytes`](VectorCache::size_bytes) reports.
    pub fn with_budget_bytes(budget_bytes: usize) -> Self {
        VectorCache::with_limits(usize::MAX, budget_bytes.max(1))
    }

    /// Current number of cached vectors.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    /// Drop every entry (counters are preserved).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.log.clear();
        inner.bytes = 0;
    }

    /// Approximate heap footprint of the cached vectors (maintained
    /// incrementally — O(1)).
    pub fn size_bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    fn get(&self, key: &Key) -> Option<SparseVec> {
        self.get_with_norm(key).map(|(vec, _)| vec)
    }

    /// Cached vector plus its precomputed `‖Φ‖²`.
    fn get_with_norm(&self, key: &Key) -> Option<(SparseVec, f64)> {
        let mut inner = self.inner.lock();
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        let Some(entry) = inner.map.get_mut(key) else {
            inner.stats.misses += 1;
            return None;
        };
        entry.stamp = stamp;
        let vec = entry.vec.clone();
        let norm2_sq = entry.norm2_sq;
        inner.log.push_back((key.clone(), stamp));
        inner.stats.hits += 1;
        Some((vec, norm2_sq))
    }

    fn put(&self, key: Key, vec: SparseVec) {
        let norm2_sq = vec.norm2_sq();
        self.put_with_norm(key, vec, norm2_sq);
    }

    fn put_with_norm(&self, key: Key, vec: SparseVec, norm2_sq: f64) {
        let bytes = vec.size_bytes() + std::mem::size_of::<Key>();
        let mut inner = self.inner.lock();
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        inner.log.push_back((key.clone(), stamp));
        if let Some(old) = inner.map.insert(
            key,
            Entry {
                vec,
                norm2_sq,
                stamp,
                bytes,
            },
        ) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += bytes;
        // Evict LRU-first until both bounds hold. An oversized vector can
        // evict even itself (the byte budget is a hard bound); the loop
        // terminates because every iteration shrinks the log.
        while inner.map.len() > self.capacity || inner.bytes > self.budget_bytes {
            let Some((old_key, old_stamp)) = inner.log.pop_front() else {
                break; // unreachable: map is non-empty so the log is too
            };
            // Skip stale log records (the entry was touched again later).
            let is_current = inner
                .map
                .get(&old_key)
                .is_some_and(|e| e.stamp == old_stamp);
            if is_current {
                if let Some(old) = inner.map.remove(&old_key) {
                    inner.bytes -= old.bytes;
                }
                inner.stats.evictions += 1;
            }
        }
    }
}

/// A [`VectorSource`] decorator that consults a [`VectorCache`] before its
/// inner source.
pub struct CachedSource<'a> {
    inner: Box<dyn VectorSource + 'a>,
    cache: &'a VectorCache,
}

impl<'a> CachedSource<'a> {
    /// Layer `cache` over `inner`.
    pub fn new(inner: Box<dyn VectorSource + 'a>, cache: &'a VectorCache) -> Self {
        CachedSource { inner, cache }
    }
}

impl VectorSource for CachedSource<'_> {
    fn neighbor_vector(
        &self,
        v: VertexId,
        path: &MetaPath,
        ctx: &mut ExecCtx,
    ) -> Result<SparseVec, EngineError> {
        self.neighbor_vector_with_norm(v, path, ctx)
            .map(|(vec, _)| vec)
    }

    fn neighbor_vector_with_norm(
        &self,
        v: VertexId,
        path: &MetaPath,
        ctx: &mut ExecCtx,
    ) -> Result<(SparseVec, f64), EngineError> {
        let key = (path.clone(), v);
        let t = Instant::now();
        if let Some((hit, norm2_sq)) = self.cache.get_with_norm(&key) {
            ctx.stats.indexed_vectors += t.elapsed();
            ctx.stats.indexed_count += 1;
            ctx.check_frontier(hit.nnz())?;
            return Ok((hit, norm2_sq));
        }
        // Miss: materialize through the inner source (which may itself have
        // the norm precomputed, e.g. a PM index row) and cache both.
        let (vec, norm2_sq) = self.inner.neighbor_vector_with_norm(v, path, ctx)?;
        self.cache.put_with_norm(key, vec.clone(), norm2_sq);
        Ok((vec, norm2_sq))
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn index_size_bytes(&self) -> usize {
        self.inner.index_size_bytes() + self.cache.size_bytes()
    }

    fn chunk_coverage(&self, chunk: &MetaPath) -> Option<(usize, usize)> {
        self.inner.chunk_coverage(chunk)
    }

    fn subpath_stats(&self) -> Option<crate::engine::subpath::SubpathStats> {
        self.inner.subpath_stats()
    }
}

// Compile-time assertion: the cache is shareable across threads as-is
// (interior mutability is confined to the `parking_lot::Mutex`). Concurrent
// engines — e.g. the workers of `hin-service` — rely on this to share one
// instance behind an `Arc`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn _check() {
        assert_send_sync::<VectorCache>();
        assert_send_sync::<CacheStats>();
    }
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::source::TraversalSource;
    use hin_datagen::toy;
    use hin_graph::traverse;

    fn key(g: &hin_graph::HinGraph, name: &str, path: &str) -> Key {
        let author = g.schema().vertex_type_by_name("author").unwrap();
        (
            MetaPath::parse(path, g.schema()).unwrap(),
            g.vertex_by_name(author, name).unwrap(),
        )
    }

    #[test]
    fn cached_source_returns_same_vectors() {
        let g = toy::figure1_network();
        let cache = VectorCache::new(16);
        let source = CachedSource::new(Box::new(TraversalSource::new(&g)), &cache);
        let apv = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
        let author = g.schema().vertex_type_by_name("author").unwrap();
        let zoe = g.vertex_by_name(author, "Zoe").unwrap();
        let mut ctx = ExecCtx::unbounded();
        let first = source.neighbor_vector(zoe, &apv, &mut ctx).unwrap();
        let second = source.neighbor_vector(zoe, &apv, &mut ctx).unwrap();
        assert_eq!(first, second);
        assert_eq!(first, traverse::neighbor_vector(&g, zoe, &apv).unwrap());
        let cs = cache.stats();
        assert_eq!(cs.hits, 1);
        assert_eq!(cs.misses, 1);
        // The hit was attributed to the indexed bucket.
        assert_eq!(ctx.stats.indexed_count, 1);
        assert_eq!(ctx.stats.unindexed_count, 1);
    }

    #[test]
    fn cached_norms_round_trip() {
        let g = toy::figure1_network();
        let cache = VectorCache::new(16);
        let source = CachedSource::new(Box::new(TraversalSource::new(&g)), &cache);
        let apv = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
        let author = g.schema().vertex_type_by_name("author").unwrap();
        let zoe = g.vertex_by_name(author, "Zoe").unwrap();
        let mut ctx = ExecCtx::unbounded();
        let (miss_vec, miss_norm) = source
            .neighbor_vector_with_norm(zoe, &apv, &mut ctx)
            .unwrap();
        let (hit_vec, hit_norm) = source
            .neighbor_vector_with_norm(zoe, &apv, &mut ctx)
            .unwrap();
        assert_eq!(miss_vec, hit_vec);
        assert_eq!(miss_norm.to_bits(), hit_norm.to_bits());
        assert_eq!(miss_norm.to_bits(), miss_vec.norm2_sq().to_bits());
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn keys_distinguish_paths_and_vertices() {
        let g = toy::figure1_network();
        let cache = VectorCache::new(16);
        let source = CachedSource::new(Box::new(TraversalSource::new(&g)), &cache);
        let mut ctx = ExecCtx::unbounded();
        let apv = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
        let apa = MetaPath::parse("author.paper.author", g.schema()).unwrap();
        let author = g.schema().vertex_type_by_name("author").unwrap();
        let zoe = g.vertex_by_name(author, "Zoe").unwrap();
        let ava = g.vertex_by_name(author, "Ava").unwrap();
        source.neighbor_vector(zoe, &apv, &mut ctx).unwrap();
        source.neighbor_vector(zoe, &apa, &mut ctx).unwrap();
        source.neighbor_vector(ava, &apv, &mut ctx).unwrap();
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let g = toy::figure1_network();
        let cache = VectorCache::new(2);
        let apv = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
        let phi = |name: &str| {
            let (_, v) = key(&g, name, "author.paper.venue");
            traverse::neighbor_vector(&g, v, &apv).unwrap()
        };
        let (kz, ka, kl) = (
            key(&g, "Zoe", "author.paper.venue"),
            key(&g, "Ava", "author.paper.venue"),
            key(&g, "Liam", "author.paper.venue"),
        );
        cache.put(kz.clone(), phi("Zoe"));
        cache.put(ka.clone(), phi("Ava"));
        // Touch Zoe so Ava becomes the LRU entry.
        assert!(cache.get(&kz).is_some());
        cache.put(kl.clone(), phi("Liam"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&ka).is_none(), "Ava was evicted");
        assert!(cache.get(&kz).is_some());
        assert!(cache.get(&kl).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn byte_budget_evicts_by_bytes() {
        let g = toy::figure1_network();
        let apv = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
        let phi = |name: &str| {
            let (_, v) = key(&g, name, "author.paper.venue");
            traverse::neighbor_vector(&g, v, &apv).unwrap()
        };
        let (vz, va, vl) = (phi("Zoe"), phi("Ava"), phi("Liam"));
        let sz = |v: &SparseVec| v.size_bytes() + std::mem::size_of::<Key>();
        // One byte short of all three: the third insert must evict.
        let budget = sz(&vz) + sz(&va) + sz(&vl) - 1;
        let cache = VectorCache::with_budget_bytes(budget);
        cache.put(key(&g, "Zoe", "author.paper.venue"), vz);
        cache.put(key(&g, "Ava", "author.paper.venue"), va);
        cache.put(key(&g, "Liam", "author.paper.venue"), vl);
        assert!(cache.size_bytes() <= budget);
        assert!(cache.stats().evictions >= 1);
        assert!(cache.len() < 3);
    }

    #[test]
    fn oversized_entry_does_not_stick() {
        let g = toy::figure1_network();
        let apv = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
        let (k, v) = {
            let k = key(&g, "Zoe", "author.paper.venue");
            let v = traverse::neighbor_vector(&g, k.1, &apv).unwrap();
            (k, v)
        };
        // A 1-byte budget can hold nothing; the hard byte bound wins over
        // the keep-the-newest behavior of the entry-count shim.
        let cache = VectorCache::with_budget_bytes(1);
        cache.put(k.clone(), v);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.size_bytes(), 0);
        assert!(cache.get(&k).is_none());
    }

    #[test]
    fn replacing_a_key_keeps_byte_accounting_exact() {
        let g = toy::figure1_network();
        let apv = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
        let k = key(&g, "Zoe", "author.paper.venue");
        let v = traverse::neighbor_vector(&g, k.1, &apv).unwrap();
        let one = v.size_bytes() + std::mem::size_of::<Key>();
        let cache = VectorCache::with_budget_bytes(one * 8);
        cache.put(k.clone(), v.clone());
        cache.put(k.clone(), v.clone());
        cache.put(k, v);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.size_bytes(), one, "replacement must not double-count");
    }

    #[test]
    fn clear_keeps_counters() {
        let cache = VectorCache::new(4);
        cache.put(
            (
                MetaPath::parse("author.paper", toy::figure1_network().schema()).unwrap(),
                VertexId(0),
            ),
            SparseVec::unit(VertexId(1)),
        );
        assert_eq!(cache.len(), 1);
        assert!(cache.size_bytes() > 0);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_minimum_is_one() {
        let cache = VectorCache::new(0);
        let path = MetaPath::parse("author.paper", toy::figure1_network().schema()).unwrap();
        cache.put((path.clone(), VertexId(0)), SparseVec::unit(VertexId(9)));
        cache.put((path.clone(), VertexId(1)), SparseVec::unit(VertexId(9)));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let g = Arc::new(toy::figure1_network());
        let cache = Arc::new(VectorCache::new(64));
        let apv = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
        let author = g.schema().vertex_type_by_name("author").unwrap();
        let zoe = g.vertex_by_name(author, "Zoe").unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let g = Arc::clone(&g);
                let cache = Arc::clone(&cache);
                let apv = apv.clone();
                std::thread::spawn(move || {
                    let source = CachedSource::new(Box::new(TraversalSource::new(&g)), &cache);
                    let mut ctx = ExecCtx::unbounded();
                    source.neighbor_vector(zoe, &apv, &mut ctx).unwrap()
                })
            })
            .collect();
        let vectors: Vec<SparseVec> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for v in &vectors[1..] {
            assert_eq!(v, &vectors[0]);
        }
        let cs = cache.stats();
        // Every thread asked for the same key; all lookups resolved through
        // one shared instance (hits + misses == 4, at least one of each
        // except in the degenerate all-raced case).
        assert_eq!(cs.hits + cs.misses, 4);
        assert!(cs.misses >= 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn stats_hit_rate() {
        let stats = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
        };
        assert_eq!(stats.hit_rate(), Some(0.75));
        assert_eq!(CacheStats::default().hit_rate(), None);
    }
}
