//! End-to-end query execution: set retrieval → vector materialization →
//! scoring → top-k.

use crate::engine::budget::{Budget, BudgetPhase, Degraded, ExecCtx};
use crate::engine::parallel::run_sharded;
use crate::engine::set_eval::eval_set;
use crate::engine::source::{TraversalSource, VectorSource};
use crate::engine::stats::ExecBreakdown;
use crate::engine::topk::{top_k, ScoreOrder};
use crate::error::EngineError;
use crate::measures::{MeasureKind, OutlierMeasure};
use hin_graph::{HinGraph, SparseVec, VertexId};
use hin_query::validate::{parse_and_bind, BoundQuery};
use rustc_hash::FxHashMap;
use std::time::Instant;

/// How per-feature-meta-path scores combine into one score when a query
/// specifies several feature paths.
///
/// The paper leaves the best combination open (Section 5.1: "independent
/// outlier scores can be computed considering each feature meta-path
/// independently and then averaged"); weighted averaging is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CombineStrategy {
    /// `Σ wᵢ·Ωᵢ / Σ wᵢ` — the paper's suggestion, the default.
    #[default]
    WeightedAverage,
    /// `Σ wᵢ·Ωᵢ` (no normalization; equivalent ranking to the average, but
    /// scores scale with the weight mass).
    WeightedSum,
    /// Borda rank aggregation: each feature ranks candidates most-outlying
    /// first; the combined score is the weighted mean rank. Robust to
    /// per-path score scale differences.
    BordaRank,
}

/// One ranked outlier.
#[derive(Debug, Clone, PartialEq)]
pub struct OutlierResult {
    /// The vertex.
    pub vertex: VertexId,
    /// Its name (resolved for display, as in the paper's result tables).
    pub name: String,
    /// The combined outlierness score (`Ω`-value for NetOut).
    pub score: f64,
}

/// The result of executing an outlier query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Top-k outliers, most outlying first. Only finite scores appear here.
    pub ranked: Vec<OutlierResult>,
    /// Size of the evaluated candidate set `S_c`.
    pub candidate_count: usize,
    /// Size of the evaluated reference set `S_r`.
    pub reference_count: usize,
    /// Candidates whose combined score is undefined — under NetOut, those
    /// with zero visibility (no path instances) along at least one
    /// weighted-in feature path. Excluded from `ranked` (NetOut treats them
    /// as least outlying) and reported here for inspection.
    pub zero_visibility: Vec<VertexId>,
    /// Timing breakdown of this execution.
    pub stats: ExecBreakdown,
    /// Name of the measure that produced the scores.
    pub measure: &'static str,
    /// `Some` when the execution ran out of budget after scoring only a
    /// prefix of the candidates: the ranking is best-effort, not exact.
    /// Always `None` for the strict [`QueryEngine::execute`] path, which
    /// returns [`EngineError::BudgetExceeded`] instead.
    pub degraded: Option<Degraded>,
}

impl QueryResult {
    /// Names of the ranked outliers, most outlying first.
    pub fn names(&self) -> Vec<&str> {
        self.ranked.iter().map(|r| r.name.as_str()).collect()
    }
}

/// One contiguous candidate shard's scores, produced by
/// [`QueryEngine::execute_shard`]: combined scores for the shard's
/// candidates **before** top-k selection, so a scatter-gather merger can
/// concatenate shards in order and apply the exact single-box ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardScores {
    /// Finite combined scores for this shard's candidates, in candidate
    /// order (no ranking applied).
    pub rows: Vec<OutlierResult>,
    /// How many candidates in this shard had a non-finite combined score.
    pub zero_visibility: usize,
    /// Candidate-set size of the *whole* query (all shards).
    pub candidate_count: usize,
    /// Reference-set size.
    pub reference_count: usize,
    /// The query's TOP clause, if any.
    pub top: Option<usize>,
    /// The order in which combined scores rank.
    pub order: ScoreOrder,
    /// Name of the measure that produced the scores.
    pub measure: &'static str,
    /// Timing breakdown of this shard's execution.
    pub stats: ExecBreakdown,
}

/// Executes bound queries over a graph with a chosen materialization
/// strategy, measure, and combination strategy.
pub struct QueryEngine<'g> {
    graph: &'g HinGraph,
    source: Box<dyn VectorSource + 'g>,
    combine: CombineStrategy,
    measure: MeasureKind,
    pub(crate) budget: Budget,
    pub(crate) threads: usize,
}

impl<'g> QueryEngine<'g> {
    /// An engine using baseline traversal (no index).
    pub fn baseline(graph: &'g HinGraph) -> Self {
        QueryEngine {
            graph,
            source: Box::new(TraversalSource::new(graph)),
            combine: CombineStrategy::default(),
            measure: MeasureKind::NetOut,
            budget: Budget::default(),
            threads: 1,
        }
    }

    /// An engine over a custom vector source (PM / SPM).
    pub fn with_source(graph: &'g HinGraph, source: Box<dyn VectorSource + 'g>) -> Self {
        QueryEngine {
            graph,
            source,
            combine: CombineStrategy::default(),
            measure: MeasureKind::NetOut,
            budget: Budget::default(),
            threads: 1,
        }
    }

    /// Set the multi-path combination strategy.
    pub fn combine_strategy(mut self, combine: CombineStrategy) -> Self {
        self.combine = combine;
        self
    }

    /// Set the outlierness measure.
    pub fn measure(mut self, measure: MeasureKind) -> Self {
        self.measure = measure;
        self
    }

    /// Set the number of worker threads used *within* one query (1 = fully
    /// serial, the default). Candidate materialization and scoring shard
    /// across a scoped thread pool; results are bit-identical to the serial
    /// run for any thread count (see [`crate::engine::parallel`]).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Set the execution budget applied to every query this engine runs
    /// (unbounded by default). The strict [`execute`](QueryEngine::execute)
    /// path fails hard with [`EngineError::BudgetExceeded`]; the
    /// progressive path degrades to a partial result when possible.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The graph this engine runs over.
    pub fn graph(&self) -> &'g HinGraph {
        self.graph
    }

    /// The active vector source's name (`"baseline"`, `"pm"`, `"spm"`).
    pub fn source_name(&self) -> &'static str {
        self.source.name()
    }

    /// The active vector source (used by progressive execution).
    pub(crate) fn source(&self) -> &dyn VectorSource {
        self.source.as_ref()
    }

    /// The configured measure kind.
    pub(crate) fn measure_kind(&self) -> MeasureKind {
        self.measure
    }

    /// Build a human-readable execution plan for `query` without running
    /// it (anchor resolution is checked; set sizes are not computed). See
    /// [`crate::engine::explain`].
    pub fn explain(
        &self,
        query: &hin_query::validate::BoundQuery,
    ) -> crate::engine::explain::Explain {
        let _span = hin_telemetry::span!("explain", features = query.features.len());
        crate::engine::explain::explain(self, query)
    }

    /// Start a progressive execution (Section 8's "approximate top-k while
    /// the query is being processed"): candidates are scored in batches of
    /// `batch_size` and each batch yields a [`crate::engine::progressive::ProgressSnapshot`]
    /// with the exact top-k over the processed prefix.
    ///
    /// Multi-feature queries are combined by weighted average regardless of
    /// the engine's [`CombineStrategy`] (rank aggregation needs the full
    /// candidate set and cannot stream).
    pub fn execute_progressive(
        &self,
        query: &hin_query::validate::BoundQuery,
        batch_size: usize,
    ) -> Result<crate::engine::progressive::ProgressiveRun<'_, 'g>, EngineError> {
        crate::engine::progressive::ProgressiveRun::start(self, query, batch_size)
    }

    /// Execute with graceful degradation: run the progressive path in
    /// batches of `batch_size` and, when the engine's [`Budget`] fires
    /// after at least one candidate was scored, return a **partial**
    /// best-effort result (with [`QueryResult::degraded`] set) instead of
    /// an error. Budget violations before anything was scored — and all
    /// non-budget errors — still fail.
    pub fn execute_best_effort(
        &self,
        query: &BoundQuery,
        batch_size: usize,
    ) -> Result<QueryResult, EngineError> {
        self.execute_progressive(query, batch_size)?.finish()
    }

    /// Bytes of index memory behind this engine (0 for baseline).
    pub fn index_size_bytes(&self) -> usize {
        self.source.index_size_bytes()
    }

    /// Parse, validate, and execute a query string.
    pub fn execute_str(&self, src: &str) -> Result<QueryResult, EngineError> {
        let bound = parse_and_bind(src, self.graph.schema())?;
        self.execute(&bound)
    }

    /// Execute a bound query with the engine's configured measure.
    pub fn execute(&self, query: &BoundQuery) -> Result<QueryResult, EngineError> {
        self.execute_measured(query, self.measure.instantiate().as_ref())
    }

    /// Execute a bound query with an explicit measure (used by the
    /// measure-comparison experiments).
    pub fn execute_measured(
        &self,
        query: &BoundQuery,
        measure: &dyn OutlierMeasure,
    ) -> Result<QueryResult, EngineError> {
        let mut ctx = ExecCtx::new(&self.budget);
        ctx.set_threads(self.threads);
        let mut query_span = hin_telemetry::span!("query", threads = self.threads);
        if query_span.recording() {
            query_span.field("source", self.source.name());
            query_span.field("measure", measure.name());
        }

        // 1. Retrieve S_c and S_r.
        ctx.set_phase(BudgetPhase::SetRetrieval);
        let retrieval_span = hin_telemetry::span!("set_retrieval");
        let candidates = eval_set(self.graph, self.source.as_ref(), &query.candidate, &mut ctx)?;
        if candidates.is_empty() {
            return Err(EngineError::EmptyCandidateSet);
        }
        ctx.check_candidates(candidates.len())?;
        let reference: Vec<VertexId> = match &query.reference {
            Some(r) => {
                let set = eval_set(self.graph, self.source.as_ref(), r, &mut ctx)?;
                if set.is_empty() {
                    return Err(EngineError::EmptyReferenceSet);
                }
                set
            }
            None => candidates.clone(),
        };
        ctx.check_reference(reference.len())?;
        drop(retrieval_span);
        query_span.field("candidates", candidates.len());
        query_span.field("reference", reference.len());

        // 2. Score per feature meta-path.
        let same_sets = reference == candidates;
        let mut per_feature: Vec<Vec<(VertexId, f64)>> = Vec::with_capacity(query.features.len());
        for (fi, feature) in query.features.iter().enumerate() {
            let mut feature_span = hin_telemetry::span!("feature", index = fi);
            if feature_span.recording() {
                feature_span.field(
                    "path",
                    feature.path.display(self.graph.schema()).to_string(),
                );
            }
            ctx.set_phase(BudgetPhase::Materialization);
            let cand_vecs = self.materialize(&candidates, &feature.path, &mut ctx)?;
            let scores = if same_sets {
                self.score_feature(measure, &cand_vecs, &cand_vecs, &mut ctx)?
            } else {
                let ref_vecs =
                    self.materialize_with_cache(&reference, &feature.path, &cand_vecs, &mut ctx)?;
                self.score_feature(measure, &cand_vecs, &ref_vecs, &mut ctx)?
            };
            per_feature.push(scores);
        }

        // 3. Combine, rank, split off undefined scores.
        ctx.set_phase(BudgetPhase::Scoring);
        ctx.checkpoint()?;
        let combine_span = hin_telemetry::span!("combine");
        let t = Instant::now();
        let weights: Vec<f64> = query.features.iter().map(|f| f.weight).collect();
        let (combined, order) =
            combine_scores(&per_feature, &weights, self.combine, measure.order());
        let mut zero_visibility: Vec<VertexId> = combined
            .iter()
            .filter(|(_, s)| !s.is_finite())
            .map(|(v, _)| *v)
            .collect();
        zero_visibility.sort_unstable();
        let finite: Vec<(VertexId, f64)> = combined
            .into_iter()
            .filter(|(_, s)| s.is_finite())
            .collect();
        let ranked = top_k(finite, query.top, order);
        ctx.stats.scoring += t.elapsed();
        drop(combine_span);

        let ranked = ranked
            .into_iter()
            .map(|(vertex, score)| OutlierResult {
                vertex,
                name: self.graph.vertex_name(vertex).to_string(),
                score,
            })
            .collect();

        // The trace tree subsumes the breakdown: the root span carries the
        // same phase totals `ExecBreakdown` reports, so a trace alone
        // answers "where did the time go".
        if query_span.recording() {
            query_span.field(
                "set_retrieval_us",
                ctx.stats.set_retrieval.as_micros() as u64,
            );
            query_span.field(
                "unindexed_vectors_us",
                ctx.stats.unindexed_vectors.as_micros() as u64,
            );
            query_span.field(
                "indexed_vectors_us",
                ctx.stats.indexed_vectors.as_micros() as u64,
            );
            query_span.field("scoring_us", ctx.stats.scoring.as_micros() as u64);
            query_span.field("budget_checks", ctx.stats.budget_checks());
            query_span.field("peak_frontier_nnz", ctx.stats.peak_frontier_nnz);
        }

        Ok(QueryResult {
            ranked,
            candidate_count: candidates.len(),
            reference_count: reference.len(),
            zero_visibility,
            stats: ctx.stats,
            measure: measure.name(),
            degraded: None,
        })
    }

    /// Execute one contiguous candidate shard of a bound query: shard
    /// `shard_index` of `shard_count`, where shard boundaries follow the
    /// same `div_ceil` discipline as [`crate::engine::parallel::run_sharded`]
    /// so concatenating every shard's rows in shard order reproduces the
    /// exact pre-top-k score list of [`QueryEngine::execute`].
    ///
    /// Set retrieval runs in full (shard boundaries must agree across
    /// backends, and the measure's reference model needs the whole
    /// reference set), but materialization and scoring cover only the
    /// slice. Per-candidate scores are bit-identical to a single-box run:
    /// each score depends only on the candidate's own vector and the
    /// prepared reference model. Top-k is **not** applied — that is the
    /// merging caller's job (see `hin-service`'s coordinator).
    ///
    /// When the reference set equals the candidate set the full candidate
    /// vectors are still materialized (the reference model needs them);
    /// only scoring is sharded in that case. Multi-feature queries under
    /// [`CombineStrategy::BordaRank`] cannot be sharded (rank aggregation
    /// needs the full candidate set) and fail fast.
    pub fn execute_shard(
        &self,
        query: &BoundQuery,
        shard_index: usize,
        shard_count: usize,
    ) -> Result<ShardScores, EngineError> {
        if shard_count == 0 || shard_index >= shard_count {
            return Err(EngineError::BadMeasureParameter(format!(
                "shard {shard_index}/{shard_count} is out of range"
            )));
        }
        if query.features.len() > 1 && self.combine == CombineStrategy::BordaRank {
            return Err(EngineError::BadMeasureParameter(
                "BordaRank combination needs the full candidate set and cannot be sharded".into(),
            ));
        }
        let measure = self.measure.instantiate();
        let measure = measure.as_ref();
        let mut ctx = ExecCtx::new(&self.budget);
        ctx.set_threads(self.threads);
        let mut span = hin_telemetry::span!("query_shard", shard = shard_index);
        if span.recording() {
            span.field("of", shard_count);
        }

        ctx.set_phase(BudgetPhase::SetRetrieval);
        let candidates = eval_set(self.graph, self.source.as_ref(), &query.candidate, &mut ctx)?;
        if candidates.is_empty() {
            return Err(EngineError::EmptyCandidateSet);
        }
        ctx.check_candidates(candidates.len())?;
        let reference: Vec<VertexId> = match &query.reference {
            Some(r) => {
                let set = eval_set(self.graph, self.source.as_ref(), r, &mut ctx)?;
                if set.is_empty() {
                    return Err(EngineError::EmptyReferenceSet);
                }
                set
            }
            None => candidates.clone(),
        };
        ctx.check_reference(reference.len())?;

        let chunk = candidates.len().div_ceil(shard_count);
        let start = (shard_index * chunk).min(candidates.len());
        let end = ((shard_index + 1) * chunk).min(candidates.len());
        let slice = &candidates[start..end];
        let same_sets = reference == candidates;

        let mut per_feature: Vec<Vec<(VertexId, f64)>> = Vec::with_capacity(query.features.len());
        for feature in &query.features {
            ctx.set_phase(BudgetPhase::Materialization);
            let scores = if same_sets {
                let cand_vecs = self.materialize(&candidates, &feature.path, &mut ctx)?;
                self.score_feature(measure, &cand_vecs[start..end], &cand_vecs, &mut ctx)?
            } else {
                let slice_vecs = self.materialize(slice, &feature.path, &mut ctx)?;
                let ref_vecs =
                    self.materialize_with_cache(&reference, &feature.path, &slice_vecs, &mut ctx)?;
                self.score_feature(measure, &slice_vecs, &ref_vecs, &mut ctx)?
            };
            per_feature.push(scores);
        }

        ctx.set_phase(BudgetPhase::Scoring);
        ctx.checkpoint()?;
        let t = Instant::now();
        let weights: Vec<f64> = query.features.iter().map(|f| f.weight).collect();
        let (combined, order) =
            combine_scores(&per_feature, &weights, self.combine, measure.order());
        let zero_visibility = combined.iter().filter(|(_, s)| !s.is_finite()).count();
        let rows: Vec<OutlierResult> = combined
            .into_iter()
            .filter(|(_, s)| s.is_finite())
            .map(|(vertex, score)| OutlierResult {
                vertex,
                name: self.graph.vertex_name(vertex).to_string(),
                score,
            })
            .collect();
        ctx.stats.scoring += t.elapsed();

        Ok(ShardScores {
            rows,
            zero_visibility,
            candidate_count: candidates.len(),
            reference_count: reference.len(),
            top: query.top,
            order,
            measure: measure.name(),
            stats: ctx.stats,
        })
    }

    /// Score one feature path: prepare the measure once against the
    /// reference vectors (serial — reference sums, k-NN models), then score
    /// the candidate vectors, sharded across the context's threads.
    pub(crate) fn score_feature(
        &self,
        measure: &dyn OutlierMeasure,
        cand_vecs: &[(VertexId, SparseVec)],
        ref_vecs: &[(VertexId, SparseVec)],
        ctx: &mut ExecCtx,
    ) -> Result<Vec<(VertexId, f64)>, EngineError> {
        ctx.set_phase(BudgetPhase::Scoring);
        ctx.checkpoint()?;
        // Shard spans from run_sharded attach under this span when tracing.
        let _span = hin_telemetry::span!(
            "score",
            candidates = cand_vecs.len(),
            reference = ref_vecs.len()
        );
        let t = Instant::now();
        let prepared = measure.prepare(ref_vecs)?;
        ctx.stats.scoring += t.elapsed();
        run_sharded(cand_vecs, ctx, |shard, sctx| {
            sctx.checkpoint()?;
            let t = Instant::now();
            let out = prepared.score_slice(shard);
            sctx.stats.scoring += t.elapsed();
            out
        })
    }

    /// Materialize feature vectors for `ids`, in order, sharded across the
    /// context's threads (the output is identical to the serial order — see
    /// [`crate::engine::parallel`]).
    pub(crate) fn materialize(
        &self,
        ids: &[VertexId],
        path: &hin_graph::MetaPath,
        ctx: &mut ExecCtx,
    ) -> Result<Vec<(VertexId, SparseVec)>, EngineError> {
        let mut span = hin_telemetry::span!("materialize", vertices = ids.len());
        let before = self.source.subpath_stats();
        let out = run_sharded(ids, ctx, |shard, sctx| {
            shard
                .iter()
                .map(|&v| Ok((v, self.source.neighbor_vector(v, path, sctx)?)))
                .collect()
        });
        self.record_subpath_delta(&mut span, before);
        out
    }

    /// Attach sub-path cache hit/miss deltas to a materialize span, if the
    /// source stack contains a [`crate::engine::subpath::SubpathSource`] and
    /// the span is being recorded.
    fn record_subpath_delta(
        &self,
        span: &mut hin_telemetry::trace::Span,
        before: Option<crate::engine::subpath::SubpathStats>,
    ) {
        if !span.recording() {
            return;
        }
        if let (Some(before), Some(after)) = (before, self.source.subpath_stats()) {
            let delta = after.since(&before);
            span.field("subpath_hits", delta.hits);
            span.field("subpath_misses", delta.misses);
        }
    }

    /// Materialize feature vectors for `ids`, reusing any vectors already
    /// computed for the candidate set (overlapping S_c / S_r).
    fn materialize_with_cache(
        &self,
        ids: &[VertexId],
        path: &hin_graph::MetaPath,
        cached: &[(VertexId, SparseVec)],
        ctx: &mut ExecCtx,
    ) -> Result<Vec<(VertexId, SparseVec)>, EngineError> {
        let lookup: FxHashMap<VertexId, &SparseVec> =
            cached.iter().map(|(v, phi)| (*v, phi)).collect();
        let mut span =
            hin_telemetry::span!("materialize", vertices = ids.len(), reusable = cached.len());
        let before = self.source.subpath_stats();
        let out = run_sharded(ids, ctx, |shard, sctx| {
            shard
                .iter()
                .map(|&v| {
                    if let Some(&phi) = lookup.get(&v) {
                        Ok((v, phi.clone()))
                    } else {
                        Ok((v, self.source.neighbor_vector(v, path, sctx)?))
                    }
                })
                .collect()
        });
        self.record_subpath_delta(&mut span, before);
        out
    }
}

/// Combine per-feature scores. Returns the combined scores plus the order in
/// which they rank (Borda always ranks ascending).
fn combine_scores(
    per_feature: &[Vec<(VertexId, f64)>],
    weights: &[f64],
    strategy: CombineStrategy,
    measure_order: ScoreOrder,
) -> (Vec<(VertexId, f64)>, ScoreOrder) {
    debug_assert_eq!(per_feature.len(), weights.len());
    if per_feature.len() == 1 {
        // Single feature path: the measure's score is the final score under
        // every strategy (Borda over one list preserves the ranking but not
        // the Ω values, so short-circuit for friendlier output).
        return (per_feature[0].clone(), measure_order);
    }
    match strategy {
        CombineStrategy::WeightedAverage | CombineStrategy::WeightedSum => {
            let total_w: f64 = weights.iter().sum();
            let norm = if strategy == CombineStrategy::WeightedAverage {
                total_w
            } else {
                1.0
            };
            let combined = per_feature[0]
                .iter()
                .enumerate()
                .map(|(i, &(v, _))| {
                    let sum: f64 = per_feature
                        .iter()
                        .zip(weights)
                        .map(|(scores, w)| {
                            debug_assert_eq!(scores[i].0, v);
                            w * scores[i].1
                        })
                        .sum();
                    (v, sum / norm)
                })
                .collect();
            (combined, measure_order)
        }
        CombineStrategy::BordaRank => {
            let total_w: f64 = weights.iter().sum();
            let mut acc: FxHashMap<VertexId, f64> = FxHashMap::default();
            for (scores, &w) in per_feature.iter().zip(weights) {
                let ranked = top_k(scores.iter().copied(), None, measure_order);
                for (rank, (v, _)) in ranked.into_iter().enumerate() {
                    *acc.entry(v).or_insert(0.0) += w * rank as f64 / total_w;
                }
            }
            let combined = per_feature[0].iter().map(|&(v, _)| (v, acc[&v])).collect();
            (combined, ScoreOrder::AscendingIsOutlier)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hin_datagen::toy;

    #[test]
    fn figure2_normalized_connectivity_via_query() {
        // Figure 2: κ(Jim, Mary) = 0.5, κ(Mary, Jim) = 2, connectivity 28.
        // NetOut with S_r = {Mary} gives exactly κ(·, Mary).
        let g = toy::figure2_network();
        let engine = QueryEngine::baseline(&g);
        let r = engine
            .execute_str(
                "FIND OUTLIERS FROM author{\"Jim\"} COMPARED TO author{\"Mary\"} \
                 JUDGED BY author.paper.venue;",
            )
            .unwrap();
        assert_eq!(r.ranked.len(), 1);
        assert!((r.ranked[0].score - 0.5).abs() < 1e-12);
        let r = engine
            .execute_str(
                "FIND OUTLIERS FROM author{\"Mary\"} COMPARED TO author{\"Jim\"} \
                 JUDGED BY author.paper.venue;",
            )
            .unwrap();
        assert!((r.ranked[0].score - 2.0).abs() < 1e-12);
    }

    #[test]
    fn table2_scores_via_query() {
        let g = toy::table1_network();
        let engine = QueryEngine::baseline(&g);
        let r = engine.execute_str(&toy::table1_query()).unwrap();
        // Full ranking, Ω ascending: Emma 3.33, Rob 6.24, Lucy 31.11,
        // Joe 50, Sarah 100, then the 100 reference authors at 100.
        assert_eq!(r.measure, "NetOut");
        assert_eq!(r.candidate_count, 105);
        let names = r.names();
        assert_eq!(&names[..4], &["Emma", "Rob", "Lucy", "Joe"]);
        let scores: Vec<f64> = r.ranked.iter().map(|o| o.score).collect();
        assert!((scores[0] - 3.33).abs() < 0.005);
        assert!((scores[1] - 6.24).abs() < 0.005);
        assert!((scores[2] - 31.11).abs() < 0.005);
        assert!((scores[3] - 50.0).abs() < 0.005);
    }

    #[test]
    fn top_k_limits_results() {
        let g = toy::table1_network();
        let engine = QueryEngine::baseline(&g);
        let query = toy::table1_query().replace(';', " TOP 2;");
        let r = engine.execute_str(&query).unwrap();
        assert_eq!(r.ranked.len(), 2);
        assert_eq!(r.names(), vec!["Emma", "Rob"]);
    }

    #[test]
    fn default_reference_is_candidate_set() {
        let g = toy::figure1_network();
        let engine = QueryEngine::baseline(&g);
        let r = engine
            .execute_str(
                "FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author \
                 JUDGED BY author.paper.venue;",
            )
            .unwrap();
        assert_eq!(r.candidate_count, r.reference_count);
        assert_eq!(r.candidate_count, 3);
    }

    #[test]
    fn empty_candidate_set_is_error() {
        let g = toy::figure1_network();
        let engine = QueryEngine::baseline(&g);
        // Ava has no KDD papers and hence no KDD-coauthors... use an anchor
        // with a neighborhood that exists but filters to nothing.
        let err = engine
            .execute_str(
                "FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author AS A \
                 WHERE COUNT(A.paper) > 99 JUDGED BY author.paper.venue;",
            )
            .unwrap_err();
        assert_eq!(err, EngineError::EmptyCandidateSet);
    }

    #[test]
    fn zero_visibility_candidates_reported_not_ranked() {
        let g = toy::lonely_author_network();
        let engine = QueryEngine::baseline(&g);
        let r = engine
            .execute_str(
                "FIND OUTLIERS FROM venue{\"V1\"}.paper.author UNION author{\"Loner\"} \
                 JUDGED BY author.paper.venue.paper.author;",
            )
            .unwrap();
        // Loner has a paper but it has no venue ⇒ Φ over APVPA is empty.
        assert_eq!(r.zero_visibility.len(), 1);
        let author = g.schema().vertex_type_by_name("author").unwrap();
        assert_eq!(
            r.zero_visibility[0],
            g.vertex_by_name(author, "Loner").unwrap()
        );
        assert!(r.names().iter().all(|n| *n != "Loner"));
    }

    #[test]
    fn multi_feature_weighted_average() {
        let g = toy::figure1_network();
        let engine = QueryEngine::baseline(&g);
        let both = engine
            .execute_str(
                "FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author \
                 JUDGED BY author.paper.venue : 3.0, author.paper.author;",
            )
            .unwrap();
        let venue_only = engine
            .execute_str(
                "FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author \
                 JUDGED BY author.paper.venue;",
            )
            .unwrap();
        let coauthor_only = engine
            .execute_str(
                "FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author \
                 JUDGED BY author.paper.author;",
            )
            .unwrap();
        // Weighted average: (3·Ω_venue + 1·Ω_coauthor) / 4, per vertex.
        for o in &both.ranked {
            let sv = venue_only
                .ranked
                .iter()
                .find(|x| x.vertex == o.vertex)
                .unwrap();
            let sc = coauthor_only
                .ranked
                .iter()
                .find(|x| x.vertex == o.vertex)
                .unwrap();
            let want = (3.0 * sv.score + sc.score) / 4.0;
            assert!((o.score - want).abs() < 1e-9, "{} vs {want}", o.score);
        }
    }

    #[test]
    fn weighted_sum_scales_scores_not_order() {
        let g = toy::figure1_network();
        let q = "FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author \
                 JUDGED BY author.paper.venue : 2.0, author.paper.author : 2.0;";
        let avg = QueryEngine::baseline(&g).execute_str(q).unwrap();
        let sum = QueryEngine::baseline(&g)
            .combine_strategy(CombineStrategy::WeightedSum)
            .execute_str(q)
            .unwrap();
        let avg_names = avg.names();
        assert_eq!(avg_names, sum.names());
        for (a, s) in avg.ranked.iter().zip(&sum.ranked) {
            assert!((s.score - 4.0 * a.score).abs() < 1e-9);
        }
    }

    #[test]
    fn borda_rank_combination() {
        let g = toy::figure1_network();
        let q = "FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author \
                 JUDGED BY author.paper.venue, author.paper.author;";
        let r = QueryEngine::baseline(&g)
            .combine_strategy(CombineStrategy::BordaRank)
            .execute_str(q)
            .unwrap();
        // Scores are mean ranks: within [0, n-1].
        for o in &r.ranked {
            assert!((0.0..=2.0).contains(&o.score));
        }
    }

    #[test]
    fn measure_selection_via_engine() {
        let g = toy::table1_network();
        let r = QueryEngine::baseline(&g)
            .measure(MeasureKind::PathSim)
            .execute_str(&toy::table1_query())
            .unwrap();
        assert_eq!(r.measure, "PathSim");
        // Table 2 PathSim column: Joe (1.94) ranks before Emma (5.44).
        let names = r.names();
        let joe = names.iter().position(|n| *n == "Joe").unwrap();
        let emma = names.iter().position(|n| *n == "Emma").unwrap();
        assert!(joe < emma);
    }

    #[test]
    fn stats_buckets_populated() {
        let g = toy::table1_network();
        let r = QueryEngine::baseline(&g)
            .execute_str(&toy::table1_query())
            .unwrap();
        assert!(r.stats.unindexed_count > 0);
        assert_eq!(r.stats.indexed_count, 0);
        assert!(r.stats.total() > std::time::Duration::ZERO);
        assert!(r.stats.budget_checks() > 0);
        assert!(r.stats.peak_frontier_nnz > 0);
        assert!(r.degraded.is_none());
    }

    #[test]
    fn strict_execute_fails_hard_on_budget() {
        use crate::engine::budget::{Budget, BudgetLimit};
        let g = toy::table1_network();
        // 105 candidates against a cap of 10.
        let err = QueryEngine::baseline(&g)
            .budget(Budget::default().with_max_candidates(10))
            .execute_str(&toy::table1_query())
            .unwrap_err();
        match err {
            EngineError::BudgetExceeded {
                limit, observed, ..
            } => {
                assert_eq!(limit, BudgetLimit::Candidates);
                assert_eq!(observed, 105);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // A zero deadline fires at the very first checkpoint.
        let err = QueryEngine::baseline(&g)
            .budget(Budget::default().with_timeout_ms(0))
            .execute_str(&toy::table1_query())
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::BudgetExceeded {
                limit: BudgetLimit::WallClock,
                ..
            }
        ));
    }

    #[test]
    fn parallel_execution_is_bit_identical_to_serial() {
        let g = toy::table1_network();
        let serial = QueryEngine::baseline(&g)
            .execute_str(&toy::table1_query())
            .unwrap();
        for threads in [2, 4, 9] {
            let parallel = QueryEngine::baseline(&g)
                .threads(threads)
                .execute_str(&toy::table1_query())
                .unwrap();
            assert_eq!(parallel.ranked.len(), serial.ranked.len());
            for (a, b) in serial.ranked.iter().zip(&parallel.ranked) {
                assert_eq!(a.vertex, b.vertex, "{threads} threads reordered");
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
            assert_eq!(parallel.zero_visibility, serial.zero_visibility);
            assert_eq!(parallel.candidate_count, serial.candidate_count);
        }
    }

    #[test]
    fn shard_execution_concatenates_to_the_exact_single_box_ranking() {
        // Both set shapes: S_c != S_r (Table 1 query) and S_c == S_r.
        let queries = [
            (toy::table1_network(), toy::table1_query()),
            (
                toy::figure1_network(),
                "FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author \
                 JUDGED BY author.paper.venue TOP 2;"
                    .to_string(),
            ),
        ];
        for (g, query) in &queries {
            let bound = parse_and_bind(query, g.schema()).unwrap();
            let engine = QueryEngine::baseline(g);
            let whole = engine.execute(&bound).unwrap();
            for shard_count in [1usize, 2, 3, 7] {
                let mut rows: Vec<(VertexId, f64)> = Vec::new();
                let mut zero_visibility = 0;
                let mut order = None;
                for i in 0..shard_count {
                    let s = engine.execute_shard(&bound, i, shard_count).unwrap();
                    assert_eq!(s.candidate_count, whole.candidate_count);
                    assert_eq!(s.reference_count, whole.reference_count);
                    assert_eq!(s.top, bound.top);
                    zero_visibility += s.zero_visibility;
                    rows.extend(s.rows.iter().map(|r| (r.vertex, r.score)));
                    order = Some(s.order);
                }
                assert_eq!(zero_visibility, whole.zero_visibility.len());
                let merged = top_k(rows, bound.top, order.unwrap());
                assert_eq!(merged.len(), whole.ranked.len(), "{shard_count} shards");
                for (m, w) in merged.iter().zip(&whole.ranked) {
                    assert_eq!(m.0, w.vertex, "{shard_count} shards reordered");
                    assert_eq!(m.1.to_bits(), w.score.to_bits());
                }
            }
        }
    }

    #[test]
    fn shard_execution_rejects_bad_shards_and_borda() {
        let g = toy::figure1_network();
        let q = "FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author \
                 JUDGED BY author.paper.venue, author.paper.author;";
        let bound = parse_and_bind(q, g.schema()).unwrap();
        let engine = QueryEngine::baseline(&g);
        assert!(engine.execute_shard(&bound, 3, 3).is_err());
        assert!(engine.execute_shard(&bound, 0, 0).is_err());
        let borda = QueryEngine::baseline(&g).combine_strategy(CombineStrategy::BordaRank);
        let err = borda.execute_shard(&bound, 0, 2).unwrap_err();
        assert!(err.to_string().contains("sharded"), "{err}");
        // Weighted combines shard fine for multi-feature queries.
        let s = engine.execute_shard(&bound, 0, 2).unwrap();
        assert!(!s.rows.is_empty());
    }

    #[test]
    fn traced_execution_yields_phase_tree_and_identical_results() {
        let g = toy::table1_network();
        let untraced = QueryEngine::baseline(&g)
            .execute_str(&toy::table1_query())
            .unwrap();

        hin_telemetry::trace::install();
        let traced = QueryEngine::baseline(&g)
            .threads(4)
            .execute_str(&toy::table1_query())
            .unwrap();
        let buf = hin_telemetry::trace::take().expect("trace buffer installed");

        // Tracing observes, never perturbs: same ranking, same scores.
        assert_eq!(traced.names(), untraced.names());
        for (a, b) in untraced.ranked.iter().zip(&traced.ranked) {
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }

        let tree = buf.tree();
        assert_eq!(tree.len(), 1, "{tree:?}");
        let root = &tree[0];
        assert_eq!(root.name, "query");
        let phases: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(phases[0], "set_retrieval");
        assert!(phases.contains(&"feature"));
        assert!(phases.contains(&"combine"));
        let feature = root.children.iter().find(|c| c.name == "feature").unwrap();
        let stages: Vec<&str> = feature.children.iter().map(|c| c.name.as_str()).collect();
        // S_c != S_r in the Table 1 query, so the reference set gets its own
        // (cache-aware) materialization stage.
        assert_eq!(stages, ["materialize", "materialize", "score"]);
        // 105 candidates across 4 threads: shard spans under both stages.
        for stage in &feature.children {
            assert_eq!(stage.children.len(), 4, "{stage:?}");
            assert!(stage.children.iter().all(|c| c.name == "shard"));
        }
        // The root span carries the breakdown totals.
        assert!(root.fields.iter().any(|(k, _)| k == "budget_checks"));
        assert!(root.fields.iter().any(|(k, _)| k == "scoring_us"));
        assert!(root
            .fields
            .iter()
            .any(|(k, v)| k == "candidates" && v == "105"));
    }

    #[test]
    fn unbounded_budget_changes_nothing() {
        let g = toy::table1_network();
        let plain = QueryEngine::baseline(&g)
            .execute_str(&toy::table1_query())
            .unwrap();
        let budgeted = QueryEngine::baseline(&g)
            .budget(
                crate::engine::budget::Budget::default()
                    .with_timeout_ms(120_000)
                    .with_max_candidates(1_000_000)
                    .with_max_nnz(100_000_000),
            )
            .execute_str(&toy::table1_query())
            .unwrap();
        assert_eq!(plain.names(), budgeted.names());
        assert_eq!(plain.zero_visibility, budgeted.zero_visibility);
    }
}
