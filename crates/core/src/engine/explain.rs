//! `EXPLAIN` — a human-readable execution plan for a bound query.
//!
//! The paper's Section 8 argues exploratory analysts need to understand and
//! refine their queries quickly; an explain facility shows *what* a query
//! will do before paying for it: how each set is retrieved, how every
//! feature meta-path decomposes into length-2 chunks, and how much of each
//! chunk the active index covers.

use crate::engine::executor::QueryEngine;
use hin_graph::{HinGraph, MetaPath, Schema};
use hin_query::validate::{BoundCondition, BoundQuery, BoundSetExpr};
use std::fmt;

/// A rendered query plan. Produced by [`QueryEngine::explain`]; display with
/// `{}`.
#[derive(Debug, Clone)]
pub struct Explain {
    /// Strategy name (`baseline` / `pm` / `spm`).
    pub strategy: &'static str,
    /// Measure name.
    pub measure: &'static str,
    /// Rendered candidate-set plan lines.
    pub candidate: Vec<String>,
    /// Rendered reference-set plan lines (`None` = same as candidate).
    pub reference: Option<Vec<String>>,
    /// Rendered feature lines, one per meta-path.
    pub features: Vec<String>,
    /// The `TOP k` bound.
    pub top: Option<usize>,
    /// Index memory behind the engine, in bytes.
    pub index_bytes: usize,
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EXPLAIN (strategy {}, measure {}, index {} bytes)",
            self.strategy, self.measure, self.index_bytes
        )?;
        writeln!(f, "candidate set:")?;
        for line in &self.candidate {
            writeln!(f, "  {line}")?;
        }
        match &self.reference {
            None => writeln!(f, "reference set: same as candidate")?,
            Some(lines) => {
                writeln!(f, "reference set:")?;
                for line in lines {
                    writeln!(f, "  {line}")?;
                }
            }
        }
        writeln!(f, "features:")?;
        for line in &self.features {
            writeln!(f, "  {line}")?;
        }
        match self.top {
            Some(k) => writeln!(f, "return: top {k} by {} score", self.measure),
            None => writeln!(f, "return: full ranking by {} score", self.measure),
        }
    }
}

fn chunk_note(engine: &QueryEngine<'_>, chunk: &MetaPath, schema: &Schema) -> String {
    let rendered = chunk.display(schema).to_string();
    if chunk.len() != 2 {
        return format!("{rendered} (single hop, traversal)");
    }
    match engine.source().chunk_coverage(chunk) {
        None => format!("{rendered} (traversal)"),
        Some((rows, total)) => format!("{rendered} (index: {rows}/{total} rows)"),
    }
}

fn explain_path(engine: &QueryEngine<'_>, path: &MetaPath, schema: &Schema) -> String {
    if path.is_empty() {
        return "identity (the anchor itself)".to_string();
    }
    let chunks: Vec<String> = path
        .decompose_pairs()
        .iter()
        .map(|c| chunk_note(engine, c, schema))
        .collect();
    format!("{} = [{}]", path.display(schema), chunks.join(" ; "))
}

fn explain_condition(cond: &BoundCondition, schema: &Schema, out: &mut Vec<String>, depth: usize) {
    let pad = "  ".repeat(depth);
    match cond {
        BoundCondition::And(a, b) => {
            out.push(format!("{pad}AND"));
            explain_condition(a, schema, out, depth + 1);
            explain_condition(b, schema, out, depth + 1);
        }
        BoundCondition::Or(a, b) => {
            out.push(format!("{pad}OR"));
            explain_condition(a, schema, out, depth + 1);
            explain_condition(b, schema, out, depth + 1);
        }
        BoundCondition::Not(c) => {
            out.push(format!("{pad}NOT"));
            explain_condition(c, schema, out, depth + 1);
        }
        BoundCondition::Count { path, op, value } => {
            out.push(format!(
                "{pad}filter: COUNT over {} {op} {value}",
                path.display(schema)
            ));
        }
    }
}

fn explain_set(
    engine: &QueryEngine<'_>,
    graph: &HinGraph,
    expr: &BoundSetExpr,
    out: &mut Vec<String>,
    depth: usize,
) {
    let schema = graph.schema();
    let pad = "  ".repeat(depth);
    match expr {
        BoundSetExpr::Primary(p) => {
            let anchor_type = p.anchor_type();
            let resolved = graph.vertex_by_name(anchor_type, &p.anchor_name).is_some();
            out.push(format!(
                "{pad}walk from {}{{{:?}}} via {} [anchor {}]",
                schema.vertex_type_name(anchor_type),
                p.anchor_name,
                explain_path(engine, &p.path, schema),
                if resolved { "resolves" } else { "NOT FOUND" },
            ));
            if let Some(c) = &p.filter {
                explain_condition(c, schema, out, depth + 1);
            }
        }
        BoundSetExpr::Union(a, b) | BoundSetExpr::Intersect(a, b) | BoundSetExpr::Except(a, b) => {
            let op = match expr {
                BoundSetExpr::Union(..) => "UNION",
                BoundSetExpr::Intersect(..) => "INTERSECT",
                BoundSetExpr::Except(..) => "EXCEPT",
                // Invariant: the outer match arm only binds the three
                // binary-operator variants.
                BoundSetExpr::Primary(_) => unreachable!(),
            };
            out.push(format!("{pad}{op}"));
            explain_set(engine, graph, a, out, depth + 1);
            explain_set(engine, graph, b, out, depth + 1);
        }
    }
}

/// Build the plan for `query` on `engine` (no execution happens; anchor
/// resolution is checked, set sizes are not computed).
pub fn explain(engine: &QueryEngine<'_>, query: &BoundQuery) -> Explain {
    let graph = engine.graph();
    let schema = graph.schema();
    let mut candidate = Vec::new();
    explain_set(engine, graph, &query.candidate, &mut candidate, 0);
    let reference = query.reference.as_ref().map(|r| {
        let mut lines = Vec::new();
        explain_set(engine, graph, r, &mut lines, 0);
        lines
    });
    let features = query
        .features
        .iter()
        .map(|feature| {
            format!(
                "{} weight {}",
                explain_path(engine, &feature.path, schema),
                feature.weight
            )
        })
        .collect();
    Explain {
        strategy: engine.source_name(),
        measure: engine.measure_kind().name(),
        candidate,
        reference,
        features,
        top: query.top,
        index_bytes: engine.index_size_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use crate::detector::{IndexPolicy, OutlierDetector};
    use hin_datagen::toy;
    use hin_query::validate::parse_and_bind;

    const QUERY: &str = "FIND OUTLIERS \
        FROM venue{\"ICDE\"}.paper.author AS A WHERE COUNT(A.paper) > 1 \
        EXCEPT author{\"Zoe\"} \
        COMPARED TO venue{\"KDD\"}.paper.author \
        JUDGED BY author.paper.venue : 2.0, author.paper.venue.paper.author \
        TOP 4;";

    #[test]
    fn baseline_plan_mentions_traversal() {
        let g = toy::figure1_network();
        let engine = crate::QueryEngine::baseline(&g);
        let bound = parse_and_bind(QUERY, g.schema()).unwrap();
        let plan = engine.explain(&bound).to_string();
        assert!(plan.contains("strategy baseline"));
        assert!(plan.contains("(traversal)"), "{plan}");
        assert!(plan.contains("EXCEPT"), "{plan}");
        assert!(
            plan.contains("filter: COUNT over author.paper > 1"),
            "{plan}"
        );
        assert!(plan.contains("top 4"), "{plan}");
        assert!(plan.contains("weight 2"), "{plan}");
        assert!(!plan.contains("NOT FOUND"), "{plan}");
    }

    #[test]
    fn pm_plan_reports_index_coverage() {
        let detector =
            OutlierDetector::with_index(toy::figure1_network(), IndexPolicy::full()).unwrap();
        let plan = detector.explain(QUERY).unwrap().to_string();
        assert!(plan.contains("strategy pm"));
        // 3 authors in the network, all rows materialized.
        assert!(
            plan.contains("author.paper.venue (index: 3/3 rows)"),
            "{plan}"
        );
        // The long feature decomposes into two chunks.
        assert!(
            plan.contains("author.paper.venue.paper.author = ["),
            "{plan}"
        );
        assert!(
            plan.contains("venue.paper.author (index: 2/2 rows)"),
            "{plan}"
        );
    }

    #[test]
    fn missing_anchor_flagged_without_error() {
        let g = toy::figure1_network();
        let engine = crate::QueryEngine::baseline(&g);
        let bound = parse_and_bind(
            "FIND OUTLIERS FROM author{\"Ghost\"}.paper.author JUDGED BY author.paper.venue;",
            g.schema(),
        )
        .unwrap();
        let plan = engine.explain(&bound).to_string();
        assert!(plan.contains("NOT FOUND"), "{plan}");
        assert!(plan.contains("reference set: same as candidate"), "{plan}");
        assert!(plan.contains("full ranking"), "{plan}");
    }

    #[test]
    fn anchor_only_set_is_identity() {
        let g = toy::figure1_network();
        let engine = crate::QueryEngine::baseline(&g);
        let bound = parse_and_bind(
            "FIND OUTLIERS FROM author{\"Zoe\"} COMPARED TO author{\"Ava\"} \
             JUDGED BY author.paper.venue;",
            g.schema(),
        )
        .unwrap();
        let plan = engine.explain(&bound).to_string();
        assert!(plan.contains("identity (the anchor itself)"), "{plan}");
        assert!(plan.contains("reference set:\n"), "{plan}");
    }
}
