//! Vector materialization strategies.
//!
//! A [`VectorSource`] produces neighbor vectors `Φ_P(v)` and records where
//! the time went (index hit vs. traversal), which is the data behind the
//! paper's Figures 3 and 4.
//!
//! Every strategy runs budget checkpoints through the [`ExecCtx`] at
//! **propagation-step granularity**: a wall-clock deadline or `nnz` cap
//! fires mid-meta-path, not only between whole vectors.

use crate::engine::budget::ExecCtx;
use crate::engine::index::PmIndex;
use crate::error::EngineError;
use hin_graph::{traverse, GraphError, HinGraph, MetaPath, SparseVec, VertexId};
use std::time::Instant;

/// A strategy for materializing neighbor vectors.
pub trait VectorSource: Send + Sync {
    /// Materialize `Φ_path(v)`, attributing elapsed time into `ctx.stats`
    /// and honouring the context's budget (deadline, `nnz` cap,
    /// cancellation) at propagation-step granularity.
    fn neighbor_vector(
        &self,
        v: VertexId,
        path: &MetaPath,
        ctx: &mut ExecCtx,
    ) -> Result<SparseVec, EngineError>;

    /// Materialize `Φ_path(v)` together with its visibility `‖Φ_path(v)‖²`.
    ///
    /// Sources that store norms alongside vectors (the LRU cache, the PM
    /// index) override this to return the precomputed value; the default
    /// computes it from the fresh vector, which is still once per vector —
    /// never once per candidate pair.
    fn neighbor_vector_with_norm(
        &self,
        v: VertexId,
        path: &MetaPath,
        ctx: &mut ExecCtx,
    ) -> Result<(SparseVec, f64), EngineError> {
        let phi = self.neighbor_vector(v, path, ctx)?;
        let norm2_sq = phi.norm2_sq();
        Ok((phi, norm2_sq))
    }

    /// Short strategy name for reports (`"baseline"`, `"pm"`, `"spm"`).
    fn name(&self) -> &'static str;

    /// Bytes of index memory backing this source (0 for the baseline).
    /// Reproduces the paper's Figure 5b accounting.
    fn index_size_bytes(&self) -> usize {
        0
    }

    /// How well the source's index covers one length-2 chunk:
    /// `Some((materialized rows, vertices of the chunk's source type))`, or
    /// `None` when the source has no index for it (always for the
    /// baseline). Used by `EXPLAIN`.
    fn chunk_coverage(&self, _chunk: &MetaPath) -> Option<(usize, usize)> {
        None
    }

    /// Live counters of the sub-path product cache in this source stack
    /// (`None` when no [`SubpathCache`](crate::engine::subpath::SubpathCache)
    /// is layered in). Decorators delegate; the executor snapshots this
    /// around materialization to annotate spans with per-stage hit/miss
    /// deltas.
    fn subpath_stats(&self) -> Option<crate::engine::subpath::SubpathStats> {
        None
    }
}

/// Sparse traversal with budget checks after every propagation step.
///
/// Semantically identical to [`traverse::neighbor_vector`] (same start
/// validation, same propagation), but interleaved with
/// [`ExecCtx::check_frontier`] so a deadline, `nnz` cap, or cancellation
/// fires between hops of a long meta-path. Propagation scatters through the
/// context's reusable [`DenseAccumulator`](hin_graph::DenseAccumulator)
/// workspace, so repeated materializations on one context (or shard)
/// allocate nothing on the hot path.
fn guarded_traversal(
    graph: &HinGraph,
    v: VertexId,
    path: &MetaPath,
    ctx: &mut ExecCtx,
) -> Result<SparseVec, EngineError> {
    if !graph.contains(v) {
        return Err(GraphError::UnknownVertex(v).into());
    }
    let actual = graph.vertex_type(v);
    if actual != path.source_type() {
        return Err(GraphError::StartTypeMismatch {
            vertex: v,
            actual,
            expected: path.source_type(),
        }
        .into());
    }
    let mut ws = ctx.take_workspace();
    let result = (|| {
        let mut frontier = SparseVec::unit(v);
        for link in path.types().windows(2) {
            ctx.check_frontier(frontier.nnz())?;
            frontier = traverse::propagate_step_with(graph, &frontier, link[1], &mut ws);
            if frontier.is_empty() {
                break;
            }
        }
        ctx.check_frontier(frontier.nnz())?;
        Ok(frontier)
    })();
    // Restore even on error: `restore_workspace` clears any abandoned
    // scatter so the next traversal starts clean.
    ctx.restore_workspace(ws);
    result
}

/// The baseline strategy (Section 6.1): materialize every vector by sparse
/// graph traversal, no precomputation.
pub struct TraversalSource<'g> {
    graph: &'g HinGraph,
}

impl<'g> TraversalSource<'g> {
    /// Create a baseline source over `graph`.
    pub fn new(graph: &'g HinGraph) -> Self {
        TraversalSource { graph }
    }
}

impl VectorSource for TraversalSource<'_> {
    fn neighbor_vector(
        &self,
        v: VertexId,
        path: &MetaPath,
        ctx: &mut ExecCtx,
    ) -> Result<SparseVec, EngineError> {
        let t = Instant::now();
        let phi = guarded_traversal(self.graph, v, path, ctx)?;
        ctx.stats.unindexed_vectors += t.elapsed();
        ctx.stats.unindexed_count += 1;
        Ok(phi)
    }

    fn name(&self) -> &'static str {
        "baseline"
    }
}

/// The indexed strategy used by both PM and SPM (Section 6.2): decompose the
/// meta-path into length-2 chunks, serve each chunk from the index when the
/// needed row is materialized, and fall back to two-hop traversal per vertex
/// otherwise.
///
/// With a full PM index the fallback never fires; with a selective (SPM)
/// index both code paths run and are timed separately — exactly the
/// "Indexed" vs "Not indexed" split of Figure 4.
pub struct IndexedSource<'g> {
    graph: &'g HinGraph,
    index: &'g PmIndex,
    name: &'static str,
}

impl<'g> IndexedSource<'g> {
    /// Wrap a prebuilt index (borrowed, so one index can back many engines).
    /// `name` distinguishes PM from SPM in reports.
    pub fn new(graph: &'g HinGraph, index: &'g PmIndex, name: &'static str) -> Self {
        IndexedSource { graph, index, name }
    }

    /// Access the underlying index (for size reporting and tests).
    pub fn index(&self) -> &PmIndex {
        self.index
    }

    /// Serve one length-2 (or length-1 tail) chunk for a single *seed*
    /// vertex: index row if present, else traversal.
    fn seed_chunk(
        &self,
        v: VertexId,
        chunk: &MetaPath,
        ctx: &mut ExecCtx,
    ) -> Result<SparseVec, EngineError> {
        if chunk.len() == 2 {
            let t = Instant::now();
            if let Some(row) = self.index.row(chunk, v) {
                let phi = row;
                ctx.stats.indexed_vectors += t.elapsed();
                ctx.stats.indexed_count += 1;
                return Ok(phi);
            }
            // Not materialized for this vertex: fall back.
        }
        let t = Instant::now();
        let phi = guarded_traversal(self.graph, v, chunk, ctx)?;
        ctx.stats.unindexed_vectors += t.elapsed();
        ctx.stats.unindexed_count += 1;
        Ok(phi)
    }

    /// Propagate a frontier through one chunk: for every frontier vertex use
    /// its index row when present, traversal otherwise. Budget-checked per
    /// frontier vertex, so a huge frontier cannot run away between
    /// checkpoints.
    fn frontier_chunk(
        &self,
        frontier: &SparseVec,
        chunk: &MetaPath,
        ctx: &mut ExecCtx,
    ) -> Result<SparseVec, EngineError> {
        let mut acc = SparseVec::new();
        for (u, w) in frontier.iter() {
            let mut phi = self.seed_chunk(u, chunk, ctx)?;
            phi.scale(w);
            acc.add_assign(&phi);
            ctx.check_frontier(acc.nnz())?;
        }
        Ok(acc)
    }
}

impl VectorSource for IndexedSource<'_> {
    fn neighbor_vector(
        &self,
        v: VertexId,
        path: &MetaPath,
        ctx: &mut ExecCtx,
    ) -> Result<SparseVec, EngineError> {
        if path.is_empty() || path.len() == 1 {
            let t = Instant::now();
            let phi = guarded_traversal(self.graph, v, path, ctx)?;
            ctx.stats.unindexed_vectors += t.elapsed();
            ctx.stats.unindexed_count += 1;
            return Ok(phi);
        }
        // Start validation up front, mirroring the traversal path's errors.
        if !self.graph.contains(v) {
            return Err(GraphError::UnknownVertex(v).into());
        }
        let actual = self.graph.vertex_type(v);
        if actual != path.source_type() {
            return Err(GraphError::StartTypeMismatch {
                vertex: v,
                actual,
                expected: path.source_type(),
            }
            .into());
        }
        let chunks = path.decompose_pairs();
        let mut iter = chunks.iter();
        let Some(first) = iter.next() else {
            // Non-degenerate paths always decompose into at least one
            // chunk; if that invariant ever breaks, traversal is still
            // correct.
            return guarded_traversal(self.graph, v, path, ctx);
        };
        let mut frontier = self.seed_chunk(v, first, ctx)?;
        for chunk in iter {
            if frontier.is_empty() {
                break;
            }
            ctx.check_frontier(frontier.nnz())?;
            frontier = self.frontier_chunk(&frontier, chunk, ctx)?;
        }
        ctx.check_frontier(frontier.nnz())?;
        Ok(frontier)
    }

    fn neighbor_vector_with_norm(
        &self,
        v: VertexId,
        path: &MetaPath,
        ctx: &mut ExecCtx,
    ) -> Result<(SparseVec, f64), EngineError> {
        // Single-chunk feature paths are the common case in the paper's
        // workloads; their norms were precomputed at index-build time.
        if path.len() == 2 {
            if let Some(norm2_sq) = self.index.row_norm(path, v) {
                let t = Instant::now();
                if let Some(row) = self.index.row(path, v) {
                    ctx.stats.indexed_vectors += t.elapsed();
                    ctx.stats.indexed_count += 1;
                    return Ok((row, norm2_sq));
                }
            }
        }
        let phi = self.neighbor_vector(v, path, ctx)?;
        let norm2_sq = phi.norm2_sq();
        Ok((phi, norm2_sq))
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn index_size_bytes(&self) -> usize {
        self.index.size_bytes()
    }

    fn chunk_coverage(&self, chunk: &MetaPath) -> Option<(usize, usize)> {
        let rows = self.index.rows_for(chunk)?;
        let total = self.graph.count_of_type(chunk.source_type());
        Some((rows, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::budget::{Budget, BudgetLimit};
    use crate::engine::index::{ChunkSelection, PmIndex};
    use hin_datagen::toy;

    #[test]
    fn baseline_records_unindexed_time() {
        let g = toy::figure1_network();
        let src = TraversalSource::new(&g);
        let author = g.schema().vertex_type_by_name("author").unwrap();
        let zoe = g.vertex_by_name(author, "Zoe").unwrap();
        let apv = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
        let mut ctx = ExecCtx::unbounded();
        let phi = src.neighbor_vector(zoe, &apv, &mut ctx).unwrap();
        assert_eq!(phi.sum(), 5.0);
        assert_eq!(ctx.stats.unindexed_count, 1);
        assert_eq!(ctx.stats.indexed_count, 0);
        assert!(ctx.stats.peak_frontier_nnz >= 1);
        assert!(ctx.stats.budget_checks() > 0);
        assert_eq!(src.index_size_bytes(), 0);
        assert_eq!(src.name(), "baseline");
    }

    #[test]
    fn full_index_never_falls_back() {
        let g = toy::figure1_network();
        let index = PmIndex::build_full(&g, ChunkSelection::All, 1);
        let src = IndexedSource::new(&g, &index, "pm");
        let author = g.schema().vertex_type_by_name("author").unwrap();
        let zoe = g.vertex_by_name(author, "Zoe").unwrap();
        let apv = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
        let mut ctx = ExecCtx::unbounded();
        let phi = src.neighbor_vector(zoe, &apv, &mut ctx).unwrap();
        assert_eq!(phi.nnz(), 2);
        assert_eq!(ctx.stats.unindexed_count, 0);
        assert_eq!(ctx.stats.indexed_count, 1);
        assert!(src.index_size_bytes() > 0);
    }

    #[test]
    fn indexed_equals_traversal_on_long_paths() {
        let g = toy::figure1_network();
        let index = PmIndex::build_full(&g, ChunkSelection::All, 1);
        let idx_src = IndexedSource::new(&g, &index, "pm");
        let trv_src = TraversalSource::new(&g);
        let author = g.schema().vertex_type_by_name("author").unwrap();
        let apvpa = MetaPath::parse("author.paper.venue.paper.author", g.schema()).unwrap();
        let apvp = MetaPath::parse("author.paper.venue.paper", g.schema()).unwrap();
        for &a in g.vertices_of_type(author) {
            for path in [&apvpa, &apvp] {
                let mut c1 = ExecCtx::unbounded();
                let mut c2 = ExecCtx::unbounded();
                let phi_i = idx_src.neighbor_vector(a, path, &mut c1).unwrap();
                let phi_t = trv_src.neighbor_vector(a, path, &mut c2).unwrap();
                assert_eq!(phi_i, phi_t, "path {path:?} vertex {a:?}");
            }
        }
    }

    #[test]
    fn odd_tail_uses_traversal_hop() {
        let g = toy::figure1_network();
        let index = PmIndex::build_full(&g, ChunkSelection::All, 1);
        let src = IndexedSource::new(&g, &index, "pm");
        let author = g.schema().vertex_type_by_name("author").unwrap();
        let zoe = g.vertex_by_name(author, "Zoe").unwrap();
        // Length-3 path: one indexed chunk + one single-hop tail.
        let apvp = MetaPath::parse("author.paper.venue.paper", g.schema()).unwrap();
        let mut ctx = ExecCtx::unbounded();
        src.neighbor_vector(zoe, &apvp, &mut ctx).unwrap();
        assert!(ctx.stats.indexed_count >= 1);
        assert!(ctx.stats.unindexed_count >= 1, "tail hop is traversal");
    }

    #[test]
    fn single_hop_path_traverses() {
        let g = toy::figure1_network();
        let index = PmIndex::build_full(&g, ChunkSelection::All, 1);
        let src = IndexedSource::new(&g, &index, "pm");
        let author = g.schema().vertex_type_by_name("author").unwrap();
        let zoe = g.vertex_by_name(author, "Zoe").unwrap();
        let ap = MetaPath::parse("author.paper", g.schema()).unwrap();
        let mut ctx = ExecCtx::unbounded();
        let phi = src.neighbor_vector(zoe, &ap, &mut ctx).unwrap();
        assert_eq!(phi.sum(), 5.0);
        assert_eq!(ctx.stats.indexed_count, 0);
    }

    #[test]
    fn type_mismatch_error_matches_traversal() {
        let g = toy::figure1_network();
        let index = PmIndex::build_full(&g, ChunkSelection::All, 1);
        let src = IndexedSource::new(&g, &index, "pm");
        let venue = g.schema().vertex_type_by_name("venue").unwrap();
        let icde = g.vertex_by_name(venue, "ICDE").unwrap();
        let apv = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
        let mut ctx = ExecCtx::unbounded();
        assert!(src.neighbor_vector(icde, &apv, &mut ctx).is_err());
    }

    #[test]
    fn guarded_traversal_matches_unguarded() {
        let g = toy::figure1_network();
        let author = g.schema().vertex_type_by_name("author").unwrap();
        let apvpa = MetaPath::parse("author.paper.venue.paper.author", g.schema()).unwrap();
        for &a in g.vertices_of_type(author) {
            let mut ctx = ExecCtx::unbounded();
            let guarded = guarded_traversal(&g, a, &apvpa, &mut ctx).unwrap();
            let plain = traverse::neighbor_vector(&g, a, &apvpa).unwrap();
            assert_eq!(guarded, plain);
        }
    }

    #[test]
    fn with_norm_agrees_with_plain_materialization() {
        let g = toy::figure1_network();
        let index = PmIndex::build_full(&g, ChunkSelection::All, 1);
        let idx_src = IndexedSource::new(&g, &index, "pm");
        let trv_src = TraversalSource::new(&g);
        let author = g.schema().vertex_type_by_name("author").unwrap();
        let apv = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
        let apvpa = MetaPath::parse("author.paper.venue.paper.author", g.schema()).unwrap();
        for &a in g.vertices_of_type(author) {
            for path in [&apv, &apvpa] {
                let mut c1 = ExecCtx::unbounded();
                let mut c2 = ExecCtx::unbounded();
                let (phi_i, n_i) = idx_src.neighbor_vector_with_norm(a, path, &mut c1).unwrap();
                let (phi_t, n_t) = trv_src.neighbor_vector_with_norm(a, path, &mut c2).unwrap();
                assert_eq!(phi_i, phi_t);
                assert_eq!(n_i.to_bits(), n_t.to_bits());
                assert_eq!(n_i.to_bits(), phi_i.norm2_sq().to_bits());
            }
        }
        // The single-chunk path was served with its precomputed norm.
        let zoe = g.vertex_by_name(author, "Zoe").unwrap();
        let mut ctx = ExecCtx::unbounded();
        idx_src
            .neighbor_vector_with_norm(zoe, &apv, &mut ctx)
            .unwrap();
        assert_eq!(ctx.stats.indexed_count, 1);
        assert_eq!(ctx.stats.unindexed_count, 0);
    }

    #[test]
    fn nnz_cap_fires_mid_path() {
        let g = toy::figure1_network();
        let src = TraversalSource::new(&g);
        let author = g.schema().vertex_type_by_name("author").unwrap();
        let zoe = g.vertex_by_name(author, "Zoe").unwrap();
        let apvpa = MetaPath::parse("author.paper.venue.paper.author", g.schema()).unwrap();
        let mut ctx = ExecCtx::new(&Budget::default().with_max_nnz(1));
        match src.neighbor_vector(zoe, &apvpa, &mut ctx).unwrap_err() {
            EngineError::BudgetExceeded {
                limit, observed, ..
            } => {
                assert_eq!(limit, BudgetLimit::FrontierNnz);
                assert!(observed > 1);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}
