//! Execution budgets and cooperative cancellation.
//!
//! The paper's pitch (Section 6) is making ad-hoc outlier queries cheap
//! enough to run interactively. In a serving setting that is not enough: a
//! runaway query — huge candidate set, dense length-4 meta-path, LOF with a
//! large `k` — must not be able to pin a core for minutes or exhaust memory.
//! This module provides the guardrails:
//!
//! * [`Budget`] — declarative per-query limits: a wall-clock deadline,
//!   maximum candidate/reference-set cardinality, a cap on intermediate
//!   sparse-vector population (`nnz`, a memory proxy), and an optional
//!   shared [`CancelToken`].
//! * [`ExecCtx`] — the per-execution context threaded through set
//!   evaluation, every [`VectorSource`](crate::engine::source::VectorSource)
//!   strategy, and scoring. It owns the timing breakdown
//!   ([`ExecBreakdown`]) and enforces the armed budget at
//!   **propagation-step granularity**, so a deadline fires mid-meta-path
//!   rather than only between phases.
//! * [`Degraded`] — the marker attached to a
//!   [`QueryResult`](crate::engine::executor::QueryResult) when the
//!   progressive executor ran out of budget after scoring a prefix of the
//!   candidates: callers get best-effort top-k instead of nothing.
//!
//! Violations surface as
//! [`EngineError::BudgetExceeded`](crate::error::EngineError::BudgetExceeded)
//! carrying which limit fired ([`BudgetLimit`]), the observed value, and the
//! execution phase ([`BudgetPhase`]).

use crate::engine::stats::ExecBreakdown;
use crate::error::EngineError;
use hin_graph::DenseAccumulator;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared flag for cooperative cancellation.
///
/// Cloning is cheap (an [`Arc`] bump) and every clone observes the same
/// flag, so a serving layer can hand the engine a token and later cancel
/// the query from another thread. The engine polls the token at every
/// budget checkpoint — propagation steps, per-candidate set filtering, and
/// per-feature scoring — and aborts with
/// [`BudgetLimit::Cancelled`] once it is set.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Set the flag. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has [`cancel`](CancelToken::cancel) been called on any clone?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Which limit of a [`Budget`] was exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetLimit {
    /// The wall-clock deadline passed.
    WallClock,
    /// The candidate set was larger than allowed.
    Candidates,
    /// The reference set was larger than allowed.
    Reference,
    /// An intermediate sparse vector grew beyond the `nnz` cap.
    FrontierNnz,
    /// The shared [`CancelToken`] was triggered.
    Cancelled,
}

impl fmt::Display for BudgetLimit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BudgetLimit::WallClock => "wall-clock deadline",
            BudgetLimit::Candidates => "candidate-set cardinality",
            BudgetLimit::Reference => "reference-set cardinality",
            BudgetLimit::FrontierNnz => "frontier nnz",
            BudgetLimit::Cancelled => "cooperative cancellation",
        };
        f.write_str(s)
    }
}

/// The execution phase a budget check ran in.
///
/// Mirrors the buckets of [`ExecBreakdown`]: candidate/reference set
/// retrieval, neighbor-vector materialization, and measure scoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BudgetPhase {
    /// Evaluating candidate/reference set expressions.
    #[default]
    SetRetrieval,
    /// Materializing neighbor vectors `Φ_P(v)`.
    Materialization,
    /// Computing outlierness scores.
    Scoring,
}

impl fmt::Display for BudgetPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BudgetPhase::SetRetrieval => "set retrieval",
            BudgetPhase::Materialization => "materialization",
            BudgetPhase::Scoring => "scoring",
        };
        f.write_str(s)
    }
}

/// Declarative per-query execution limits.
///
/// The default budget is unbounded — every limit is `None` — so existing
/// callers pay nothing. Limits compose; whichever fires first wins.
///
/// ```
/// use netout::engine::budget::{Budget, CancelToken};
/// use std::time::Duration;
///
/// let token = CancelToken::new();
/// let budget = Budget::default()
///     .with_timeout(Duration::from_millis(250))
///     .with_max_candidates(50_000)
///     .with_max_nnz(2_000_000)
///     .with_cancel_token(token.clone());
/// assert!(!budget.is_unbounded());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// Wall-clock limit for the whole execution (set retrieval through
    /// scoring). Checked at every checkpoint; granularity is one
    /// propagation step / one scored batch.
    pub timeout: Option<Duration>,
    /// Maximum candidate-set cardinality, checked right after candidate
    /// retrieval.
    pub max_candidates: Option<usize>,
    /// Maximum reference-set cardinality, checked right after reference
    /// retrieval. Defaults to `max_candidates` semantics: `None` = no cap.
    pub max_reference: Option<usize>,
    /// Maximum population (`nnz`) of any intermediate sparse vector during
    /// traversal — a proxy for peak memory.
    pub max_nnz: Option<usize>,
    /// Cooperative cancellation flag shared with the caller.
    pub cancel: Option<CancelToken>,
}

impl Budget {
    /// An unbounded budget (the default).
    pub fn unbounded() -> Budget {
        Budget::default()
    }

    /// Set the wall-clock deadline.
    pub fn with_timeout(mut self, timeout: Duration) -> Budget {
        self.timeout = Some(timeout);
        self
    }

    /// Set the wall-clock deadline in milliseconds.
    pub fn with_timeout_ms(self, ms: u64) -> Budget {
        self.with_timeout(Duration::from_millis(ms))
    }

    /// Cap the candidate-set cardinality.
    pub fn with_max_candidates(mut self, max: usize) -> Budget {
        self.max_candidates = Some(max);
        self
    }

    /// Cap the reference-set cardinality.
    pub fn with_max_reference(mut self, max: usize) -> Budget {
        self.max_reference = Some(max);
        self
    }

    /// Cap intermediate sparse-vector `nnz`.
    pub fn with_max_nnz(mut self, max: usize) -> Budget {
        self.max_nnz = Some(max);
        self
    }

    /// Attach a cooperative cancellation token.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Budget {
        self.cancel = Some(token);
        self
    }

    /// Derive a child budget for one leg of a fan-out: the wall-clock
    /// deadline shrinks by `slack` (reserved for the caller's merge work),
    /// floored at 1 ms so the leg always gets a representable socket
    /// timeout. Cardinality/`nnz` caps and the cancellation token carry
    /// over unchanged; an unbounded deadline stays unbounded.
    pub fn carve(&self, slack: Duration) -> Budget {
        let mut child = self.clone();
        if let Some(t) = child.timeout {
            child.timeout = Some(t.saturating_sub(slack).max(Duration::from_millis(1)));
        }
        child
    }

    /// `true` when no limit of any kind is set.
    pub fn is_unbounded(&self) -> bool {
        self.timeout.is_none()
            && self.max_candidates.is_none()
            && self.max_reference.is_none()
            && self.max_nnz.is_none()
            && self.cancel.is_none()
    }
}

/// A [`Budget`] armed at a point in time: the relative timeout has been
/// converted into an absolute deadline.
#[derive(Debug, Clone, Default)]
struct ArmedBudget {
    deadline: Option<Instant>,
    max_candidates: Option<usize>,
    max_reference: Option<usize>,
    max_nnz: Option<usize>,
    cancel: Option<CancelToken>,
}

/// State shared by all shards of one parallel execution.
///
/// * `stop` — raised by a shard that hit a budget error so its siblings
///   abandon work early instead of running to their own deadline.
/// * `peak_nnz` — fleet-wide peak intermediate sparse-vector population,
///   maintained with `fetch_max` so budget accounting composes across
///   threads (each shard still enforces `max_nnz` against its own frontier,
///   which is the per-vector semantics of the serial engine).
#[derive(Debug, Default)]
pub(crate) struct ShardShared {
    stop: AtomicBool,
    peak_nnz: AtomicU64,
}

impl ShardShared {
    /// Fleet-wide peak frontier `nnz` observed so far.
    pub(crate) fn peak_nnz(&self) -> u64 {
        self.peak_nnz.load(Ordering::Relaxed)
    }
}

/// Per-execution context: the timing breakdown plus the armed budget.
///
/// One `ExecCtx` lives for the duration of one query execution and is
/// threaded by `&mut` through set evaluation, vector materialization, and
/// scoring. All strategy code records timings into [`ExecCtx::stats`] and
/// calls the `check*` methods at work-proportional intervals.
#[derive(Debug, Clone, Default)]
pub struct ExecCtx {
    /// Per-phase timing and counter breakdown, exposed on
    /// [`QueryResult`](crate::engine::executor::QueryResult).
    pub stats: ExecBreakdown,
    budget: ArmedBudget,
    phase: BudgetPhase,
    /// Worker-thread target for intra-query parallel stages (`0` = unset,
    /// treated as 1 by [`ExecCtx::threads`]).
    threads: usize,
    /// Reusable dense-accumulator workspace for sparse propagation; owned
    /// per context so every shard scatters into its own buffer.
    workspace: DenseAccumulator,
    /// Present only in forked shard contexts (and their parent while a
    /// parallel stage runs).
    shared: Option<Arc<ShardShared>>,
    /// Set when a checkpoint aborted because a *sibling* shard raised the
    /// stop flag; such errors are bookkeeping, not a real budget violation
    /// of this shard, and are filtered out during merge.
    stopped_by_peer: bool,
    /// Snapshot of `hin_telemetry::trace::installed()` taken when the
    /// context was created: the creating thread had a trace buffer, so
    /// forked shard workers must install one of their own and hand it back.
    tracing: bool,
    /// A finished shard's trace buffer, parked here by the shard worker for
    /// the coordinating thread to merge (in shard order) during absorb.
    trace_out: Option<hin_telemetry::trace::TraceBuf>,
    /// Running max of every `nnz` passed to [`check_frontier`]
    /// (ExecCtx::check_frontier) since the last [`swap_chunk_peak`]
    /// (ExecCtx::swap_chunk_peak). The sub-path cache stores this peak with
    /// each cached product so a later cache hit can replay the exact budget
    /// exposure of the computation it skipped (see `engine::subpath`).
    chunk_peak_nnz: usize,
}

impl ExecCtx {
    /// A context with no limits — checkpoints only count, never fail.
    pub fn unbounded() -> ExecCtx {
        ExecCtx {
            tracing: hin_telemetry::trace::installed(),
            ..ExecCtx::default()
        }
    }

    /// Arm `budget` now: the relative timeout becomes an absolute deadline.
    pub fn new(budget: &Budget) -> ExecCtx {
        ExecCtx {
            budget: ArmedBudget {
                // `checked_add` so an absurd user-supplied timeout saturates
                // to "no deadline" instead of panicking on Instant overflow.
                deadline: budget.timeout.and_then(|t| Instant::now().checked_add(t)),
                max_candidates: budget.max_candidates,
                max_reference: budget.max_reference,
                max_nnz: budget.max_nnz,
                cancel: budget.cancel.clone(),
            },
            tracing: hin_telemetry::trace::installed(),
            ..ExecCtx::default()
        }
    }

    /// Set the worker-thread target for intra-query parallel stages.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// Worker-thread target for intra-query parallel stages (at least 1).
    pub fn threads(&self) -> usize {
        self.threads.max(1)
    }

    /// Detach the reusable dense-accumulator workspace.
    ///
    /// Take/restore (rather than borrowing a field) lets callers pass the
    /// workspace to `hin-graph` kernels while still holding `&mut self` for
    /// budget checkpoints.
    pub(crate) fn take_workspace(&mut self) -> DenseAccumulator {
        std::mem::take(&mut self.workspace)
    }

    /// Return the workspace taken with [`ExecCtx::take_workspace`]. Clears
    /// it defensively: an error path may have abandoned a scatter midway.
    pub(crate) fn restore_workspace(&mut self, mut ws: DenseAccumulator) {
        ws.clear();
        self.workspace = ws;
    }

    /// Create a single-threaded shard context for one worker of a parallel
    /// stage: same armed budget (the *absolute* deadline and the shared
    /// cancellation flag carry over), same phase, fresh stats and workspace,
    /// wired to `shared` for peer-stop signalling and fleet-wide `nnz`
    /// accounting.
    pub(crate) fn fork(&self, shared: Arc<ShardShared>) -> ExecCtx {
        ExecCtx {
            stats: ExecBreakdown::default(),
            budget: self.budget.clone(),
            phase: self.phase,
            threads: 1,
            workspace: DenseAccumulator::new(),
            shared: Some(shared),
            stopped_by_peer: false,
            tracing: self.tracing,
            trace_out: None,
            chunk_peak_nnz: 0,
        }
    }

    /// Replace the chunk-peak accumulator with `value`, returning the old
    /// running max. Callers that need the peak of a nested computation save
    /// the current value with `swap_chunk_peak(0)`, run the computation, read
    /// [`chunk_peak`](ExecCtx::chunk_peak), and restore with
    /// `set_chunk_peak(saved.max(nested))` so enclosing collectors keep
    /// accumulating.
    pub(crate) fn swap_chunk_peak(&mut self, value: usize) -> usize {
        std::mem::replace(&mut self.chunk_peak_nnz, value)
    }

    /// The running max of frontier sizes checked since the last swap.
    pub(crate) fn chunk_peak(&self) -> usize {
        self.chunk_peak_nnz
    }

    /// Overwrite the chunk-peak accumulator (see
    /// [`swap_chunk_peak`](ExecCtx::swap_chunk_peak)).
    pub(crate) fn set_chunk_peak(&mut self, value: usize) {
        self.chunk_peak_nnz = value;
    }

    /// Merge a finished shard's accounting into this context: durations and
    /// counters sum, peak `nnz` maxes (see [`ExecBreakdown`]'s `Add`), and
    /// the shard's trace buffer (if any) attaches under the calling
    /// thread's currently-open span. Called in shard-index order, which is
    /// what keeps merged span trees deterministic.
    pub(crate) fn absorb(&mut self, shard: &mut ExecCtx) {
        self.stats += shard.stats;
        if let Some(buf) = shard.trace_out.take() {
            hin_telemetry::trace::absorb(buf);
        }
    }

    /// Is this execution being traced? Shard workers use this to decide
    /// whether to install a thread-local trace buffer of their own.
    pub(crate) fn tracing(&self) -> bool {
        self.tracing
    }

    /// Park a shard's finished trace buffer for the coordinator to merge.
    pub(crate) fn set_trace_out(&mut self, buf: Option<hin_telemetry::trace::TraceBuf>) {
        self.trace_out = buf;
    }

    /// Did this shard abort because a sibling raised the stop flag (rather
    /// than hitting a budget limit itself)?
    pub(crate) fn stopped_by_peer(&self) -> bool {
        self.stopped_by_peer
    }

    /// Raise the shared stop flag so sibling shards abandon work at their
    /// next checkpoint. No-op outside a parallel stage.
    pub(crate) fn signal_peers(&self) {
        if let Some(shared) = &self.shared {
            shared.stop.store(true, Ordering::Relaxed);
        }
    }

    /// Mark which execution phase subsequent checkpoints belong to.
    pub fn set_phase(&mut self, phase: BudgetPhase) {
        self.phase = phase;
    }

    /// The phase subsequent checkpoints will be attributed to.
    pub fn phase(&self) -> BudgetPhase {
        self.phase
    }

    /// One budget checkpoint: bump the per-phase check counter, then poll
    /// the cancellation token and the wall-clock deadline.
    pub fn checkpoint(&mut self) -> Result<(), EngineError> {
        match self.phase {
            BudgetPhase::SetRetrieval => self.stats.set_retrieval_checks += 1,
            BudgetPhase::Materialization => self.stats.materialization_checks += 1,
            BudgetPhase::Scoring => self.stats.scoring_checks += 1,
        }
        if let Some(token) = &self.budget.cancel {
            if token.is_cancelled() {
                return Err(EngineError::BudgetExceeded {
                    limit: BudgetLimit::Cancelled,
                    observed: 0,
                    phase: self.phase,
                });
            }
        }
        if let Some(deadline) = self.budget.deadline {
            let now = Instant::now();
            if now >= deadline {
                return Err(EngineError::BudgetExceeded {
                    limit: BudgetLimit::WallClock,
                    observed: now.duration_since(deadline).as_millis() as u64,
                    phase: self.phase,
                });
            }
        }
        // Checked last so a genuine budget violation of this shard is never
        // misreported as a peer stop.
        if let Some(shared) = &self.shared {
            if shared.stop.load(Ordering::Relaxed) {
                self.stopped_by_peer = true;
                return Err(EngineError::BudgetExceeded {
                    limit: BudgetLimit::Cancelled,
                    observed: 0,
                    phase: self.phase,
                });
            }
        }
        Ok(())
    }

    /// Record an intermediate frontier of `nnz` populated entries, enforce
    /// the `max_nnz` cap, then run a regular [`checkpoint`](ExecCtx::checkpoint).
    pub fn check_frontier(&mut self, nnz: usize) -> Result<(), EngineError> {
        self.chunk_peak_nnz = self.chunk_peak_nnz.max(nnz);
        self.stats.peak_frontier_nnz = self.stats.peak_frontier_nnz.max(nnz as u64);
        if let Some(shared) = &self.shared {
            shared.peak_nnz.fetch_max(nnz as u64, Ordering::Relaxed);
        }
        if let Some(max) = self.budget.max_nnz {
            if nnz > max {
                return Err(EngineError::BudgetExceeded {
                    limit: BudgetLimit::FrontierNnz,
                    observed: nnz as u64,
                    phase: self.phase,
                });
            }
        }
        self.checkpoint()
    }

    /// Enforce the candidate-set cardinality cap.
    pub fn check_candidates(&mut self, n: usize) -> Result<(), EngineError> {
        if let Some(max) = self.budget.max_candidates {
            if n > max {
                return Err(EngineError::BudgetExceeded {
                    limit: BudgetLimit::Candidates,
                    observed: n as u64,
                    phase: BudgetPhase::SetRetrieval,
                });
            }
        }
        Ok(())
    }

    /// Enforce the reference-set cardinality cap.
    pub fn check_reference(&mut self, n: usize) -> Result<(), EngineError> {
        if let Some(max) = self.budget.max_reference {
            if n > max {
                return Err(EngineError::BudgetExceeded {
                    limit: BudgetLimit::Reference,
                    observed: n as u64,
                    phase: BudgetPhase::SetRetrieval,
                });
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Unwind-safety audit. Serving layers (hin-service workers) and the parallel
// engine catch panics around code that holds these types. The assertions
// document — at compile time — that the budget machinery is structurally
// unwind-safe: `CancelToken` and `ShardShared` are bare atomics (every write
// is a single store, no half-updated invariant is observable), and `Budget`
// is plain data plus a token. `ExecCtx` is deliberately NOT asserted: it is
// per-request state that panic handlers must discard, never reuse.
const _: () = {
    const fn assert_unwind_safe<T: std::panic::UnwindSafe + std::panic::RefUnwindSafe>() {}
    const fn assert_all() {
        assert_unwind_safe::<CancelToken>();
        assert_unwind_safe::<Budget>();
        assert_unwind_safe::<ShardShared>();
    }
    let _ = assert_all;
};

/// Attached to a [`QueryResult`](crate::engine::executor::QueryResult) when
/// the progressive executor exhausted its budget after scoring a prefix of
/// the candidate set: the ranking is best-effort over `scored` of `total`
/// candidates rather than exact.
#[derive(Debug, Clone, PartialEq)]
pub struct Degraded {
    /// Which limit ended the run.
    pub limit: BudgetLimit,
    /// The phase the limit fired in.
    pub phase: BudgetPhase,
    /// How many candidates had been scored when the budget fired.
    pub scored: usize,
    /// Total candidate-set cardinality.
    pub total: usize,
}

impl fmt::Display for Degraded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "degraded: {} hit during {} after scoring {}/{} candidates",
            self.limit, self.phase, self.scored, self.total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_fails() {
        let mut ctx = ExecCtx::unbounded();
        for _ in 0..1000 {
            ctx.checkpoint().unwrap();
            ctx.check_frontier(usize::MAX).unwrap();
        }
        ctx.check_candidates(usize::MAX).unwrap();
        ctx.check_reference(usize::MAX).unwrap();
        assert_eq!(ctx.stats.peak_frontier_nnz, u64::MAX);
    }

    #[test]
    fn zero_timeout_fires_immediately() {
        let budget = Budget::default().with_timeout_ms(0);
        let mut ctx = ExecCtx::new(&budget);
        let err = ctx.checkpoint().unwrap_err();
        match err {
            EngineError::BudgetExceeded { limit, .. } => {
                assert_eq!(limit, BudgetLimit::WallClock);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());

        let budget = Budget::default().with_cancel_token(clone);
        let mut ctx = ExecCtx::new(&budget);
        ctx.set_phase(BudgetPhase::Scoring);
        match ctx.checkpoint().unwrap_err() {
            EngineError::BudgetExceeded { limit, phase, .. } => {
                assert_eq!(limit, BudgetLimit::Cancelled);
                assert_eq!(phase, BudgetPhase::Scoring);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn frontier_cap_enforced_and_peak_tracked() {
        let budget = Budget::default().with_max_nnz(10);
        let mut ctx = ExecCtx::new(&budget);
        ctx.set_phase(BudgetPhase::Materialization);
        ctx.check_frontier(10).unwrap();
        let err = ctx.check_frontier(11).unwrap_err();
        match err {
            EngineError::BudgetExceeded {
                limit, observed, ..
            } => {
                assert_eq!(limit, BudgetLimit::FrontierNnz);
                assert_eq!(observed, 11);
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert_eq!(ctx.stats.peak_frontier_nnz, 11);
        assert_eq!(ctx.stats.materialization_checks, 1);
    }

    #[test]
    fn cardinality_caps() {
        let budget = Budget::default()
            .with_max_candidates(5)
            .with_max_reference(3);
        let mut ctx = ExecCtx::new(&budget);
        ctx.check_candidates(5).unwrap();
        assert!(ctx.check_candidates(6).is_err());
        ctx.check_reference(3).unwrap();
        assert!(ctx.check_reference(4).is_err());
    }

    #[test]
    fn budget_builder_and_unbounded_flag() {
        assert!(Budget::unbounded().is_unbounded());
        assert!(!Budget::default().with_timeout_ms(1).is_unbounded());
        assert!(!Budget::default().with_max_candidates(1).is_unbounded());
        assert!(!Budget::default().with_max_nnz(1).is_unbounded());
        assert!(!Budget::default()
            .with_cancel_token(CancelToken::new())
            .is_unbounded());
    }

    #[test]
    fn fork_preserves_budget_and_phase() {
        let token = CancelToken::new();
        let budget = Budget::default()
            .with_timeout(Duration::from_secs(3600))
            .with_max_nnz(10)
            .with_cancel_token(token.clone());
        let mut parent = ExecCtx::new(&budget);
        parent.set_phase(BudgetPhase::Scoring);
        parent.set_threads(4);
        let shared = Arc::new(ShardShared::default());
        let mut shard = parent.fork(Arc::clone(&shared));
        assert_eq!(shard.phase(), BudgetPhase::Scoring);
        assert_eq!(shard.threads(), 1);
        // Limits carry over: the nnz cap still fires in the shard.
        assert!(shard.check_frontier(11).is_err());
        assert!(!shard.stopped_by_peer());
        // And so does the shared cancel token.
        token.cancel();
        assert!(shard.checkpoint().is_err());
        assert!(!shard.stopped_by_peer());
    }

    #[test]
    fn peer_stop_aborts_siblings_and_is_marked() {
        let parent = ExecCtx::unbounded();
        let shared = Arc::new(ShardShared::default());
        let mut a = parent.fork(Arc::clone(&shared));
        let mut b = parent.fork(Arc::clone(&shared));
        a.checkpoint().unwrap();
        b.checkpoint().unwrap();
        a.signal_peers();
        match b.checkpoint().unwrap_err() {
            EngineError::BudgetExceeded { limit, .. } => {
                assert_eq!(limit, BudgetLimit::Cancelled);
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(b.stopped_by_peer());
    }

    #[test]
    fn shared_peak_nnz_composes_across_shards() {
        let parent = ExecCtx::unbounded();
        let shared = Arc::new(ShardShared::default());
        let mut a = parent.fork(Arc::clone(&shared));
        let mut b = parent.fork(Arc::clone(&shared));
        a.check_frontier(100).unwrap();
        b.check_frontier(40).unwrap();
        assert_eq!(shared.peak_nnz(), 100);
        assert_eq!(a.stats.peak_frontier_nnz, 100);
        assert_eq!(b.stats.peak_frontier_nnz, 40);
        // Parent absorb: counters sum, peaks max.
        let mut parent = parent;
        parent.absorb(&mut a);
        parent.absorb(&mut b);
        assert_eq!(parent.stats.peak_frontier_nnz, 100);
        assert_eq!(parent.stats.budget_checks(), 2);
    }

    #[test]
    fn fork_carries_tracing_flag_and_absorb_consumes_trace() {
        // No buffer installed: contexts are created untraced and forks agree.
        let ctx = ExecCtx::unbounded();
        assert!(!ctx.tracing());
        let shared = Arc::new(ShardShared::default());
        assert!(!ctx.fork(Arc::clone(&shared)).tracing());

        // With a buffer installed the flag propagates through fork, and
        // absorb drains the shard's parked buffer into the thread-local one.
        hin_telemetry::trace::install();
        let mut parent = ExecCtx::unbounded();
        assert!(parent.tracing());
        let mut shard = parent.fork(Arc::clone(&shared));
        assert!(shard.tracing());
        shard.set_trace_out(Some(hin_telemetry::trace::TraceBuf::new()));
        parent.absorb(&mut shard);
        assert!(shard.trace_out.is_none());
        let _ = hin_telemetry::trace::take();
    }

    #[test]
    fn workspace_take_restore_round_trips() {
        let mut ctx = ExecCtx::unbounded();
        let mut ws = ctx.take_workspace();
        ws.add(hin_graph::VertexId(3), 1.5);
        // Restore mid-scatter: the context must hand back a clean workspace
        // next time.
        ctx.restore_workspace(ws);
        let mut ws = ctx.take_workspace();
        assert!(ws.is_empty());
        ws.add(hin_graph::VertexId(7), 2.0);
        let v = ws.finish();
        assert_eq!(v.get(hin_graph::VertexId(7)), 2.0);
        assert_eq!(v.nnz(), 1);
        ctx.restore_workspace(ws);
    }

    #[test]
    fn threads_default_to_one() {
        let ctx = ExecCtx::unbounded();
        assert_eq!(ctx.threads(), 1);
        let mut ctx = ExecCtx::unbounded();
        ctx.set_threads(0);
        assert_eq!(ctx.threads(), 1);
        ctx.set_threads(8);
        assert_eq!(ctx.threads(), 8);
    }

    #[test]
    fn displays_are_informative() {
        let d = Degraded {
            limit: BudgetLimit::WallClock,
            phase: BudgetPhase::Materialization,
            scored: 12,
            total: 99,
        };
        let s = d.to_string();
        assert!(s.contains("wall-clock"));
        assert!(s.contains("12/99"));
        assert!(BudgetLimit::Cancelled.to_string().contains("cancellation"));
        assert!(BudgetPhase::Scoring.to_string().contains("scoring"));
    }

    #[test]
    fn carve_reserves_slack_and_floors_at_one_ms() {
        let parent = Budget::default()
            .with_timeout_ms(100)
            .with_max_candidates(7)
            .with_max_nnz(11);
        let child = parent.carve(Duration::from_millis(30));
        assert_eq!(child.timeout, Some(Duration::from_millis(70)));
        assert_eq!(child.max_candidates, Some(7));
        assert_eq!(child.max_nnz, Some(11));
        // Slack larger than the deadline floors at 1 ms, never zero.
        let starved = parent.carve(Duration::from_millis(500));
        assert_eq!(starved.timeout, Some(Duration::from_millis(1)));
        // An unbounded deadline stays unbounded.
        let free = Budget::unbounded().carve(Duration::from_millis(30));
        assert_eq!(free.timeout, None);
        assert!(free.is_unbounded());
        // The cancellation token carries over.
        let token = CancelToken::new();
        let cancellable = Budget::unbounded().with_cancel_token(token.clone());
        let child = cancellable.carve(Duration::from_millis(1));
        token.cancel();
        assert!(child.cancel.unwrap().is_cancelled());
    }
}
