//! Progressive query execution — the "extensions" idea of the paper's
//! Section 8: *"the system could find the approximate top-k outliers, with
//! confidences, while the query is being processed so that users can
//! determine whether to continue processing the query."*
//!
//! A [`ProgressiveRun`] scores the candidate set in batches. After each
//! batch the caller gets a [`ProgressSnapshot`] holding the **exact** top-k
//! over the processed prefix, the fraction processed, and the *entry
//! threshold*: the score an unprocessed candidate would need to displace the
//! current k-th result. Because candidates are processed in arbitrary
//! (id) order, the prefix behaves like a uniform sample — the snapshot's
//! `stability` is the fraction of batches since the top-k set last changed,
//! a practical "keep going?" signal.

use crate::engine::budget::{BudgetPhase, Degraded, ExecCtx};
use crate::engine::executor::{OutlierResult, QueryResult};
use crate::engine::set_eval::eval_set;
use crate::engine::stats::ExecBreakdown;
use crate::engine::topk::top_k;
use crate::error::EngineError;
use crate::measures::OutlierMeasure;
use hin_graph::{SparseVec, VertexId};
use hin_query::validate::BoundQuery;

use super::executor::QueryEngine;

/// State of a progressive execution after one batch.
#[derive(Debug, Clone)]
pub struct ProgressSnapshot {
    /// Candidates scored so far.
    pub processed: usize,
    /// Total candidates in `S_c`.
    pub total: usize,
    /// Exact top-k over the processed prefix (most outlying first).
    pub top: Vec<OutlierResult>,
    /// Score an unprocessed candidate must beat to enter the current top-k
    /// (the k-th score), once k results exist.
    pub threshold: Option<f64>,
    /// Fraction of completed batches since the top-k *membership* last
    /// changed, in `[0, 1]`. High stability suggests the ranking has
    /// converged and processing could stop early.
    pub stability: f64,
}

impl ProgressSnapshot {
    /// Fraction of the candidate set processed, in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.processed as f64 / self.total as f64
        }
    }
}

/// A paused progressive execution; pull snapshots with [`Iterator::next`].
pub struct ProgressiveRun<'e, 'g> {
    engine: &'e QueryEngine<'g>,
    measure: Box<dyn OutlierMeasure>,
    query: BoundQuery,
    candidates: Vec<VertexId>,
    reference: Vec<(VertexId, SparseVec)>,
    /// Reference vectors for features beyond the first (multi-path queries
    /// score per feature then combine by weighted average).
    extra_reference: Vec<Vec<(VertexId, SparseVec)>>,
    batch_size: usize,
    cursor: usize,
    scored: Vec<(VertexId, f64)>,
    batches_done: usize,
    batches_since_change: usize,
    last_top_ids: Vec<VertexId>,
    /// Accumulated timing and budget state (exposed on
    /// [`ProgressiveRun::stats`]).
    pub(crate) ctx: ExecCtx,
    /// The error that ended the stream early, if any (budget violations
    /// land here so [`ProgressiveRun::finish`] can degrade gracefully).
    error: Option<EngineError>,
}

impl<'e, 'g> ProgressiveRun<'e, 'g> {
    pub(crate) fn start(
        engine: &'e QueryEngine<'g>,
        query: &BoundQuery,
        batch_size: usize,
    ) -> Result<Self, EngineError> {
        if batch_size == 0 {
            return Err(EngineError::BadMeasureParameter(
                "progressive batch size must be >= 1".into(),
            ));
        }
        let mut ctx = ExecCtx::new(&engine.budget);
        ctx.set_threads(engine.threads);
        let graph = engine.graph();
        let source = engine.source();
        ctx.set_phase(BudgetPhase::SetRetrieval);
        let candidates = eval_set(graph, source, &query.candidate, &mut ctx)?;
        if candidates.is_empty() {
            return Err(EngineError::EmptyCandidateSet);
        }
        ctx.check_candidates(candidates.len())?;
        let reference_ids = match &query.reference {
            Some(r) => {
                let set = eval_set(graph, source, r, &mut ctx)?;
                if set.is_empty() {
                    return Err(EngineError::EmptyReferenceSet);
                }
                set
            }
            None => candidates.clone(),
        };
        ctx.check_reference(reference_ids.len())?;
        // Materialize reference vectors once per feature (the hoistable part
        // of Equation (1); batches only pay for their own candidates).
        ctx.set_phase(BudgetPhase::Materialization);
        let mut features = query.features.iter();
        let Some(first) = features.next() else {
            // The validator guarantees at least one feature path; keep the
            // invariant panic-free regardless.
            return Err(EngineError::BadMeasureParameter(
                "query has no feature meta-paths".into(),
            ));
        };
        let reference = engine.materialize(&reference_ids, &first.path, &mut ctx)?;
        let extra_reference = features
            .map(|f| engine.materialize(&reference_ids, &f.path, &mut ctx))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ProgressiveRun {
            measure: engine.measure_kind().instantiate(),
            engine,
            query: query.clone(),
            candidates,
            reference,
            extra_reference,
            batch_size,
            cursor: 0,
            scored: Vec::new(),
            batches_done: 0,
            batches_since_change: 0,
            last_top_ids: Vec::new(),
            ctx,
            error: None,
        })
    }

    /// Timing accumulated so far.
    pub fn stats(&self) -> ExecBreakdown {
        self.ctx.stats
    }

    /// The error that ended the stream early (budget violations included),
    /// if any. Iteration simply stops on error; inspect this — or use
    /// [`ProgressiveRun::finish`] — to distinguish completion from abort.
    pub fn error(&self) -> Option<&EngineError> {
        self.error.as_ref()
    }

    /// Whether every candidate has been scored.
    pub fn is_complete(&self) -> bool {
        self.cursor >= self.candidates.len()
    }

    /// Run every remaining batch and return the final (exact) snapshot.
    pub fn run_to_completion(&mut self) -> ProgressSnapshot {
        let mut last = None;
        for snapshot in &mut *self {
            last = Some(snapshot);
        }
        last.unwrap_or_else(|| ProgressSnapshot {
            processed: self.cursor,
            total: self.candidates.len(),
            top: Vec::new(),
            threshold: None,
            stability: 1.0,
        })
    }

    fn score_batch(&mut self, batch: &[VertexId]) -> Result<Vec<(VertexId, f64)>, EngineError> {
        let features = &self.query.features;
        let mut combined: Vec<(VertexId, f64)> = Vec::with_capacity(batch.len());
        // First feature. Both materialization and scoring shard across the
        // engine's threads (batches stay atomic: any shard error discards
        // the whole batch, exactly like the serial path).
        self.ctx.set_phase(BudgetPhase::Materialization);
        let vecs = self
            .engine
            .materialize(batch, &features[0].path, &mut self.ctx)?;
        let mut scores = self.engine.score_feature(
            self.measure.as_ref(),
            &vecs,
            &self.reference,
            &mut self.ctx,
        )?;
        let total_w: f64 = features.iter().map(|f| f.weight).sum();
        for (_, s) in &mut scores {
            *s *= features[0].weight / total_w;
        }
        combined.extend(scores);
        // Remaining features, weighted-averaged in.
        for (fi, feature) in features.iter().enumerate().skip(1) {
            self.ctx.set_phase(BudgetPhase::Materialization);
            let vecs = self
                .engine
                .materialize(batch, &feature.path, &mut self.ctx)?;
            let scores = self.engine.score_feature(
                self.measure.as_ref(),
                &vecs,
                &self.extra_reference[fi - 1],
                &mut self.ctx,
            )?;
            for ((_, acc), (_, s)) in combined.iter_mut().zip(scores) {
                *acc += s * feature.weight / total_w;
            }
        }
        Ok(combined)
    }

    fn snapshot(&mut self) -> ProgressSnapshot {
        let k = self.query.top;
        let order = self.measure.order();
        let finite: Vec<(VertexId, f64)> = self
            .scored
            .iter()
            .copied()
            .filter(|(_, s)| s.is_finite())
            .collect();
        let ranked = top_k(finite, k, order);
        let threshold = match k {
            Some(k) if ranked.len() >= k => ranked.last().map(|(_, s)| *s),
            _ => None,
        };
        let top_ids: Vec<VertexId> = ranked.iter().map(|(v, _)| *v).collect();
        if top_ids == self.last_top_ids {
            self.batches_since_change += 1;
        } else {
            self.batches_since_change = 0;
            self.last_top_ids = top_ids;
        }
        let graph = self.engine.graph();
        ProgressSnapshot {
            processed: self.cursor,
            total: self.candidates.len(),
            top: ranked
                .into_iter()
                .map(|(vertex, score)| OutlierResult {
                    vertex,
                    name: graph.vertex_name(vertex).to_string(),
                    score,
                })
                .collect(),
            threshold,
            stability: if self.batches_done == 0 {
                0.0
            } else {
                self.batches_since_change as f64 / self.batches_done as f64
            },
        }
    }

    /// Drive the run to its end and produce a [`QueryResult`]:
    ///
    /// * no error → an exact result, `degraded: None`;
    /// * a budget violation after at least one candidate was scored → a
    ///   **partial** result ranked over the scored prefix, with
    ///   [`QueryResult::degraded`] describing what was truncated and why;
    /// * a budget violation before anything was scored, or any other
    ///   error → `Err`.
    pub fn finish(mut self) -> Result<QueryResult, EngineError> {
        while self.next().is_some() {}
        let total = self.candidates.len();
        let scored_n = self.scored.len();
        match self.error.take() {
            None => Ok(self.into_result()),
            Some(EngineError::BudgetExceeded { limit, phase, .. }) if scored_n > 0 => {
                let mut result = self.into_result();
                result.degraded = Some(Degraded {
                    limit,
                    phase,
                    scored: scored_n,
                    total,
                });
                Ok(result)
            }
            Some(e) => Err(e),
        }
    }

    /// Build a [`QueryResult`] from the scored (possibly partial) prefix,
    /// mirroring the strict executor's ranking and zero-visibility split.
    fn into_result(self) -> QueryResult {
        let order = self.measure.order();
        let mut zero_visibility: Vec<VertexId> = self
            .scored
            .iter()
            .filter(|(_, s)| !s.is_finite())
            .map(|(v, _)| *v)
            .collect();
        zero_visibility.sort_unstable();
        let finite: Vec<(VertexId, f64)> = self
            .scored
            .iter()
            .copied()
            .filter(|(_, s)| s.is_finite())
            .collect();
        let ranked = top_k(finite, self.query.top, order);
        let graph = self.engine.graph();
        QueryResult {
            ranked: ranked
                .into_iter()
                .map(|(vertex, score)| OutlierResult {
                    vertex,
                    name: graph.vertex_name(vertex).to_string(),
                    score,
                })
                .collect(),
            candidate_count: self.candidates.len(),
            reference_count: self.reference.len(),
            zero_visibility,
            stats: self.ctx.stats,
            measure: self.measure.name(),
            degraded: None,
        }
    }
}

impl Iterator for ProgressiveRun<'_, '_> {
    type Item = ProgressSnapshot;

    fn next(&mut self) -> Option<ProgressSnapshot> {
        if self.is_complete() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.candidates.len());
        let batch: Vec<VertexId> = self.candidates[self.cursor..end].to_vec();
        // Errors mid-stream (budget violations, measure-parameter problems)
        // end the stream; the error is recorded so `error()`/`finish()` can
        // distinguish an abort from completion and degrade gracefully.
        let scores = match self.score_batch(&batch) {
            Ok(s) => s,
            Err(e) => {
                self.cursor = self.candidates.len();
                self.error = Some(e);
                return None;
            }
        };
        self.scored.extend(scores);
        self.cursor = end;
        self.batches_done += 1;
        Some(self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::executor::QueryEngine;
    use hin_datagen::toy;
    use hin_query::validate::parse_and_bind;

    fn run_toy(batch: usize) -> (Vec<ProgressSnapshot>, Vec<OutlierResult>) {
        let g = toy::table1_network();
        let engine = QueryEngine::baseline(&g);
        let query = toy::table1_query().replace(';', " TOP 4;");
        let bound = parse_and_bind(&query, g.schema()).unwrap();
        let mut run = engine.execute_progressive(&bound, batch).unwrap();
        let snapshots: Vec<ProgressSnapshot> = (&mut run).collect();
        let exact = engine.execute(&bound).unwrap().ranked;
        (snapshots, exact)
    }

    #[test]
    fn final_snapshot_matches_exact_execution() {
        let (snapshots, exact) = run_toy(10);
        let last = snapshots.last().unwrap();
        assert_eq!(last.processed, last.total);
        assert_eq!(last.top.len(), exact.len());
        for (a, b) in last.top.iter().zip(&exact) {
            assert_eq!(a.vertex, b.vertex);
            assert!((a.score - b.score).abs() < 1e-12);
        }
    }

    #[test]
    fn snapshots_progress_monotonically() {
        let (snapshots, _) = run_toy(7);
        assert!(snapshots.len() > 1);
        let mut prev = 0;
        for s in &snapshots {
            assert!(s.processed > prev);
            prev = s.processed;
            assert!(s.progress() <= 1.0);
        }
        assert_eq!(snapshots.last().unwrap().progress(), 1.0);
    }

    #[test]
    fn threshold_appears_once_k_results_exist() {
        let (snapshots, _) = run_toy(2);
        // With TOP 4 and batch 2, the first snapshot has only 2 results.
        assert!(snapshots[0].threshold.is_none());
        let last = snapshots.last().unwrap();
        let thr = last.threshold.expect("full top-k has a threshold");
        assert_eq!(thr, last.top.last().unwrap().score);
    }

    #[test]
    fn stability_converges_on_toy() {
        // The 5 interesting candidates come early (low ids); the 100
        // identical reference authors that follow never change the top-k,
        // so stability climbs toward 1.
        let (snapshots, _) = run_toy(5);
        let last = snapshots.last().unwrap();
        assert!(
            last.stability > 0.5,
            "top-k should be stable long before the end: {}",
            last.stability
        );
    }

    #[test]
    fn run_to_completion_equivalent_to_iteration() {
        let g = toy::table1_network();
        let engine = QueryEngine::baseline(&g);
        let bound = parse_and_bind(&toy::table1_query(), g.schema()).unwrap();
        let mut run = engine.execute_progressive(&bound, 16).unwrap();
        let final_snapshot = run.run_to_completion();
        assert!(run.is_complete());
        let exact = engine.execute(&bound).unwrap();
        assert_eq!(final_snapshot.top.len(), exact.ranked.len());
        assert_eq!(final_snapshot.top[0].name, "Emma");
        assert!(run.stats().total() > std::time::Duration::ZERO);
    }

    #[test]
    fn multi_feature_progressive_matches_batch() {
        let g = toy::figure1_network();
        let engine = QueryEngine::baseline(&g);
        let bound = parse_and_bind(
            "FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author \
             JUDGED BY author.paper.venue : 3.0, author.paper.author;",
            g.schema(),
        )
        .unwrap();
        let mut run = engine.execute_progressive(&bound, 1).unwrap();
        let last = run.run_to_completion();
        let exact = engine.execute(&bound).unwrap();
        for (a, b) in last.top.iter().zip(&exact.ranked) {
            assert_eq!(a.vertex, b.vertex);
            assert!(
                (a.score - b.score).abs() < 1e-9,
                "{} vs {}",
                a.score,
                b.score
            );
        }
    }

    #[test]
    fn zero_batch_size_rejected() {
        let g = toy::figure1_network();
        let engine = QueryEngine::baseline(&g);
        let bound = parse_and_bind(
            "FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author JUDGED BY author.paper.venue;",
            g.schema(),
        )
        .unwrap();
        assert!(engine.execute_progressive(&bound, 0).is_err());
    }

    #[test]
    fn finish_without_budget_matches_exact() {
        let g = toy::table1_network();
        let engine = QueryEngine::baseline(&g);
        let bound = parse_and_bind(&toy::table1_query(), g.schema()).unwrap();
        let result = engine
            .execute_progressive(&bound, 16)
            .unwrap()
            .finish()
            .unwrap();
        let exact = engine.execute(&bound).unwrap();
        assert!(result.degraded.is_none());
        assert_eq!(result.names(), exact.names());
        assert_eq!(result.candidate_count, exact.candidate_count);
        assert_eq!(result.zero_visibility, exact.zero_visibility);
    }

    #[test]
    fn cancellation_mid_run_degrades_to_partial_result() {
        use crate::engine::budget::{Budget, BudgetLimit, CancelToken};
        let g = toy::table1_network();
        let token = CancelToken::new();
        let engine =
            QueryEngine::baseline(&g).budget(Budget::default().with_cancel_token(token.clone()));
        let bound = parse_and_bind(&toy::table1_query(), g.schema()).unwrap();
        let mut run = engine.execute_progressive(&bound, 5).unwrap();
        // Score one batch, then cancel from "another thread".
        assert!(run.next().is_some());
        token.cancel();
        assert!(run.next().is_none(), "stream ends after cancellation");
        assert!(matches!(
            run.error(),
            Some(EngineError::BudgetExceeded {
                limit: BudgetLimit::Cancelled,
                ..
            })
        ));
        let result = run.finish().unwrap();
        let degraded = result.degraded.expect("partial result is degraded");
        assert_eq!(degraded.limit, BudgetLimit::Cancelled);
        assert_eq!(degraded.scored, 5);
        assert_eq!(degraded.total, 105);
        assert!(!result.ranked.is_empty());
    }

    #[test]
    fn budget_violation_before_any_score_is_an_error() {
        use crate::engine::budget::{Budget, CancelToken};
        let g = toy::table1_network();
        let token = CancelToken::new();
        token.cancel();
        let engine = QueryEngine::baseline(&g).budget(Budget::default().with_cancel_token(token));
        let bound = parse_and_bind(&toy::table1_query(), g.schema()).unwrap();
        // Already cancelled: set retrieval fails at its first checkpoint.
        assert!(matches!(
            engine.execute_progressive(&bound, 5),
            Err(EngineError::BudgetExceeded { .. })
        ));
    }
}
