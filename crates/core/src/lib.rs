//! # netout — query-based outlier detection in heterogeneous information networks
//!
//! This crate implements the primary contribution of *Kuck, Zhuang, Yan, Cam,
//! Han. "Query-Based Outlier Detection in Heterogeneous Information
//! Networks", EDBT 2015*:
//!
//! * the **NetOut** outlierness measure (Section 5) built on *normalized
//!   connectivity*, plus the comparison measures the paper evaluates against
//!   (PathSim- and cosine-based variants, LOF, and distance-based kNN);
//! * the **query execution engine** (Section 6): candidate/reference set
//!   retrieval, meta-path materialization with the baseline traversal
//!   strategy, full **pre-materialization (PM)** and **selective
//!   pre-materialization (SPM)** indexes, and the `O(|S_r| + |S_c|)` NetOut
//!   evaluation of Equation (1);
//! * per-phase **timing breakdowns** matching the paper's efficiency study
//!   (Figures 3–5).
//!
//! ## Quickstart
//!
//! ```
//! use hin_datagen::toy;
//! use netout::OutlierDetector;
//!
//! // The toy network of the paper's Table 1, and the query whose NetOut
//! // scores reproduce Table 2.
//! let detector = OutlierDetector::new(toy::table1_network());
//! let result = detector.query(&toy::table1_query()).unwrap();
//! assert_eq!(result.ranked[0].name, "Emma"); // Ω = 3.33, the strongest outlier
//! assert!((result.ranked[0].score - 3.33).abs() < 0.005);
//! ```
//!
//! (The doc-test depends on `hin-datagen` being available; the library itself
//! only needs `hin-graph` and `hin-query`.)

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// Library code paths must report failures as `EngineError`, never panic;
// tests are free to unwrap. Intentional invariants carry local `#[allow]`s
// with a justification comment.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod engine;
pub mod measures;

mod detector;
mod error;

pub use detector::{IndexPolicy, OutlierDetector};
pub use engine::budget::{Budget, BudgetLimit, BudgetPhase, CancelToken, Degraded, ExecCtx};
pub use engine::cache::{CacheStats, CachedSource, VectorCache};
pub use engine::cost::{cost_estimate, meta_path_steps, CostModel};
pub use engine::executor::{CombineStrategy, OutlierResult, QueryEngine, QueryResult, ShardScores};
pub use engine::explain::Explain;
pub use engine::progressive::{ProgressSnapshot, ProgressiveRun};
pub use engine::stats::ExecBreakdown;
pub use engine::subpath::{SubpathCache, SubpathSource, SubpathStats};
pub use engine::topk::{top_k, ScoreOrder};
pub use error::{panic_message, EngineError};
pub use measures::MeasureKind;
