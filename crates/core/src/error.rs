//! Error type for query execution.

use crate::engine::budget::{BudgetLimit, BudgetPhase};
use hin_graph::GraphError;
use hin_query::QueryError;
use std::fmt;

/// Errors raised while executing an outlier query.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The query failed to parse or validate.
    Query(QueryError),
    /// A graph-level operation failed (bad meta-path, unknown vertex, …).
    Graph(GraphError),
    /// The anchor vertex named in a set expression does not exist in the
    /// graph.
    UnknownAnchor {
        /// The anchor's declared type name.
        type_name: String,
        /// The anchor's name as written in the query.
        name: String,
    },
    /// The candidate set evaluated to no vertices.
    EmptyCandidateSet,
    /// The reference set evaluated to no vertices.
    EmptyReferenceSet,
    /// A measure received parameters it cannot work with (e.g. LOF with
    /// `k = 0`, or `k` larger than the reference set).
    BadMeasureParameter(String),
    /// An execution [`Budget`](crate::engine::budget::Budget) limit was
    /// exceeded (wall-clock deadline, set cardinality, frontier `nnz`, or
    /// cooperative cancellation).
    BudgetExceeded {
        /// Which limit fired.
        limit: BudgetLimit,
        /// The observed value: milliseconds past the deadline, the
        /// offending cardinality or `nnz`, or `0` for cancellation.
        observed: u64,
        /// The execution phase the check ran in.
        phase: BudgetPhase,
    },
    /// Execution code panicked and the panic was caught at an isolation
    /// boundary (a parallel shard, or a serving-layer worker). The engine
    /// state for the request is discarded; shared state (graph, index,
    /// caches) is immutable or lock-protected and unaffected.
    Panicked {
        /// The panic payload, rendered as text when possible.
        message: String,
    },
}

/// Render a caught panic payload (`&str` or `String` payloads; anything
/// else becomes a generic marker). Shared by every `catch_unwind` isolation
/// boundary so panic text is reported uniformly.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "execution panicked (non-string payload)".to_string())
}

impl EngineError {
    /// Build a [`EngineError::Panicked`] from a payload caught by
    /// `std::panic::catch_unwind`.
    pub fn from_panic(payload: Box<dyn std::any::Any + Send>) -> EngineError {
        EngineError::Panicked {
            message: panic_message(payload.as_ref()),
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Query(e) => write!(f, "query error: {e}"),
            EngineError::Graph(e) => write!(f, "graph error: {e}"),
            EngineError::UnknownAnchor { type_name, name } => {
                write!(f, "no vertex {type_name}{{{name:?}}} in the network")
            }
            EngineError::EmptyCandidateSet => write!(f, "the candidate set is empty"),
            EngineError::EmptyReferenceSet => write!(f, "the reference set is empty"),
            EngineError::BadMeasureParameter(msg) => write!(f, "bad measure parameter: {msg}"),
            EngineError::BudgetExceeded {
                limit,
                observed,
                phase,
            } => write!(
                f,
                "budget exceeded during {phase}: {limit} limit hit (observed {observed})"
            ),
            EngineError::Panicked { message } => {
                write!(f, "execution panicked (isolated): {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Query(e) => Some(e),
            EngineError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for EngineError {
    fn from(e: QueryError) -> Self {
        EngineError::Query(e)
    }
}

impl From<GraphError> for EngineError {
    fn from(e: GraphError) -> Self {
        EngineError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = EngineError::UnknownAnchor {
            type_name: "author".into(),
            name: "Nobody".into(),
        };
        assert_eq!(e.to_string(), "no vertex author{\"Nobody\"} in the network");
        assert!(EngineError::EmptyCandidateSet
            .to_string()
            .contains("candidate"));
        let e = EngineError::BudgetExceeded {
            limit: BudgetLimit::WallClock,
            observed: 17,
            phase: BudgetPhase::Materialization,
        };
        let s = e.to_string();
        assert!(s.contains("wall-clock"));
        assert!(s.contains("materialization"));
        assert!(s.contains("17"));
    }

    #[test]
    fn panic_payloads_render_as_text() {
        assert_eq!(panic_message(&"boom"), "boom");
        assert_eq!(panic_message(&"boom".to_string()), "boom");
        assert!(panic_message(&42u32).contains("non-string"));
        let e = EngineError::from_panic(Box::new("shard died"));
        assert_eq!(
            e,
            EngineError::Panicked {
                message: "shard died".into()
            }
        );
        assert!(e.to_string().contains("isolated"));
    }

    #[test]
    fn conversion_preserves_source() {
        use std::error::Error;
        let ge = GraphError::EmptyMetaPath;
        let e: EngineError = ge.into();
        assert!(e.source().is_some());
    }
}
