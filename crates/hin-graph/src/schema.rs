//! Network schema: the closed set of vertex and edge types of a HIN.
//!
//! Definition 1 of the paper models a HIN as a graph with a vertex type
//! mapping `φ : V → T`. The schema captures `T` together with the permitted
//! link types between vertex types (the "network schema" of Sun & Han's HIN
//! framework, which the paper builds on).

use crate::error::GraphError;
use crate::ids::{EdgeTypeId, VertexTypeId};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// Metadata for a single vertex type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VertexTypeInfo {
    /// Human-readable, schema-unique name (e.g. `"author"`).
    pub name: String,
}

/// Metadata for a single edge type, connecting a source vertex type to a
/// destination vertex type.
///
/// Undirected relations (the common case in bibliographic networks) are
/// represented as a single edge type traversable in both directions; the
/// graph stores adjacency for both directions regardless.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeTypeInfo {
    /// Human-readable, schema-unique name (e.g. `"writes"`).
    pub name: String,
    /// Source vertex type.
    pub src: VertexTypeId,
    /// Destination vertex type.
    pub dst: VertexTypeId,
}

/// Immutable description of a HIN's type system.
///
/// Built with [`SchemaBuilder`]. Lookup by name is `O(1)`; lookups of the
/// edge types connecting an ordered pair of vertex types are `O(1)` via a
/// precomputed table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schema {
    vertex_types: Vec<VertexTypeInfo>,
    edge_types: Vec<EdgeTypeInfo>,
    #[serde(skip)]
    vertex_type_by_name: FxHashMap<String, VertexTypeId>,
    #[serde(skip)]
    edge_type_by_name: FxHashMap<String, EdgeTypeId>,
    /// `pair_table[src][dst]` lists the edge types from `src` to `dst`
    /// (forward) — reverse traversal is handled by the graph.
    #[serde(skip)]
    pair_table: Vec<Vec<Vec<EdgeTypeId>>>,
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.vertex_types == other.vertex_types && self.edge_types == other.edge_types
    }
}

impl Schema {
    /// (Re)build the derived lookup tables. Called by the builder and after
    /// deserialization.
    fn reindex(&mut self) {
        self.vertex_type_by_name = self
            .vertex_types
            .iter()
            .enumerate()
            .map(|(i, t)| (t.name.clone(), VertexTypeId(i as u8)))
            .collect();
        self.edge_type_by_name = self
            .edge_types
            .iter()
            .enumerate()
            .map(|(i, t)| (t.name.clone(), EdgeTypeId(i as u16)))
            .collect();
        let n = self.vertex_types.len();
        self.pair_table = vec![vec![Vec::new(); n]; n];
        for (i, et) in self.edge_types.iter().enumerate() {
            self.pair_table[et.src.index()][et.dst.index()].push(EdgeTypeId(i as u16));
        }
    }

    /// Restore derived indexes after deserialization with `serde`.
    pub fn rebuild_indexes(&mut self) {
        self.reindex();
    }

    /// Number of vertex types.
    pub fn vertex_type_count(&self) -> usize {
        self.vertex_types.len()
    }

    /// Number of edge types.
    pub fn edge_type_count(&self) -> usize {
        self.edge_types.len()
    }

    /// All vertex type ids, in declaration order.
    pub fn vertex_type_ids(&self) -> impl Iterator<Item = VertexTypeId> + '_ {
        (0..self.vertex_types.len()).map(|i| VertexTypeId(i as u8))
    }

    /// All edge type ids, in declaration order.
    pub fn edge_type_ids(&self) -> impl Iterator<Item = EdgeTypeId> + '_ {
        (0..self.edge_types.len()).map(|i| EdgeTypeId(i as u16))
    }

    /// Metadata for a vertex type.
    ///
    /// # Panics
    /// Panics if `t` is out of range (ids from this schema never are).
    pub fn vertex_type(&self, t: VertexTypeId) -> &VertexTypeInfo {
        &self.vertex_types[t.index()]
    }

    /// Metadata for an edge type.
    ///
    /// # Panics
    /// Panics if `t` is out of range (ids from this schema never are).
    pub fn edge_type(&self, t: EdgeTypeId) -> &EdgeTypeInfo {
        &self.edge_types[t.index()]
    }

    /// Look up a vertex type by name.
    pub fn vertex_type_by_name(&self, name: &str) -> Option<VertexTypeId> {
        self.vertex_type_by_name.get(name).copied()
    }

    /// Look up an edge type by name.
    pub fn edge_type_by_name(&self, name: &str) -> Option<EdgeTypeId> {
        self.edge_type_by_name.get(name).copied()
    }

    /// The name of a vertex type (convenience accessor).
    pub fn vertex_type_name(&self, t: VertexTypeId) -> &str {
        &self.vertex_types[t.index()].name
    }

    /// Edge types whose *source* is `src` and *destination* is `dst`
    /// (forward direction only).
    pub fn edge_types_from_to(&self, src: VertexTypeId, dst: VertexTypeId) -> &[EdgeTypeId] {
        &self.pair_table[src.index()][dst.index()]
    }

    /// Whether a meta-path link `from – to` is traversable: true when an edge
    /// type exists in either direction between the two vertex types.
    pub fn link_exists(&self, from: VertexTypeId, to: VertexTypeId) -> bool {
        !self.edge_types_from_to(from, to).is_empty()
            || !self.edge_types_from_to(to, from).is_empty()
    }
}

/// Builder for [`Schema`].
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    vertex_types: Vec<VertexTypeInfo>,
    edge_types: Vec<EdgeTypeInfo>,
}

impl SchemaBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a vertex type; returns its id. Declaring the same name twice
    /// is reported at [`SchemaBuilder::build`] time.
    pub fn vertex_type(&mut self, name: impl Into<String>) -> VertexTypeId {
        let id = VertexTypeId(self.vertex_types.len() as u8);
        self.vertex_types.push(VertexTypeInfo { name: name.into() });
        id
    }

    /// Declare an edge type from `src` to `dst`; returns its id.
    pub fn edge_type(
        &mut self,
        name: impl Into<String>,
        src: VertexTypeId,
        dst: VertexTypeId,
    ) -> EdgeTypeId {
        let id = EdgeTypeId(self.edge_types.len() as u16);
        self.edge_types.push(EdgeTypeInfo {
            name: name.into(),
            src,
            dst,
        });
        id
    }

    /// Names of the vertex types declared so far, in declaration order
    /// (used by the text-format reader to resolve etype endpoint names).
    pub(crate) fn declared_vertex_types(&self) -> impl Iterator<Item = &str> {
        self.vertex_types.iter().map(|t| t.name.as_str())
    }

    /// Validate and freeze the schema.
    pub fn build(self) -> Result<Schema, GraphError> {
        if self.vertex_types.len() > u8::MAX as usize {
            return Err(GraphError::TooManyVertexTypes);
        }
        if self.edge_types.len() > u16::MAX as usize {
            return Err(GraphError::TooManyEdgeTypes);
        }
        let mut seen = FxHashMap::default();
        for t in &self.vertex_types {
            if seen.insert(t.name.clone(), ()).is_some() {
                return Err(GraphError::DuplicateVertexType(t.name.clone()));
            }
        }
        let mut seen = FxHashMap::default();
        for t in &self.edge_types {
            if seen.insert(t.name.clone(), ()).is_some() {
                return Err(GraphError::DuplicateEdgeType(t.name.clone()));
            }
            for endpoint in [t.src, t.dst] {
                if endpoint.index() >= self.vertex_types.len() {
                    return Err(GraphError::UnknownVertexTypeId(endpoint));
                }
            }
        }
        let mut schema = Schema {
            vertex_types: self.vertex_types,
            edge_types: self.edge_types,
            vertex_type_by_name: FxHashMap::default(),
            edge_type_by_name: FxHashMap::default(),
            pair_table: Vec::new(),
        };
        schema.reindex();
        Ok(schema)
    }
}

/// The canonical bibliographic schema used throughout the paper:
/// vertex types `author`, `paper`, `venue`, `term` and edge types
/// `writes: author→paper`, `published_in: paper→venue`,
/// `has_term: paper→term`.
pub fn bibliographic_schema() -> Schema {
    let mut sb = SchemaBuilder::new();
    let author = sb.vertex_type("author");
    let paper = sb.vertex_type("paper");
    let venue = sb.vertex_type("venue");
    let term = sb.vertex_type("term");
    sb.edge_type("writes", author, paper);
    sb.edge_type("published_in", paper, venue);
    sb.edge_type("has_term", paper, term);
    sb.build().expect("bibliographic schema is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_bibliographic_schema() {
        let s = bibliographic_schema();
        assert_eq!(s.vertex_type_count(), 4);
        assert_eq!(s.edge_type_count(), 3);
        let a = s.vertex_type_by_name("author").unwrap();
        let p = s.vertex_type_by_name("paper").unwrap();
        let v = s.vertex_type_by_name("venue").unwrap();
        assert_eq!(s.vertex_type_name(a), "author");
        assert_eq!(s.edge_types_from_to(a, p).len(), 1);
        assert_eq!(s.edge_types_from_to(p, a).len(), 0);
        assert!(s.link_exists(p, a), "links are traversable both ways");
        assert!(s.link_exists(a, p));
        assert!(!s.link_exists(a, v), "author-venue has no direct link");
    }

    #[test]
    fn duplicate_vertex_type_rejected() {
        let mut sb = SchemaBuilder::new();
        sb.vertex_type("x");
        sb.vertex_type("x");
        assert_eq!(
            sb.build().unwrap_err(),
            GraphError::DuplicateVertexType("x".into())
        );
    }

    #[test]
    fn duplicate_edge_type_rejected() {
        let mut sb = SchemaBuilder::new();
        let a = sb.vertex_type("a");
        let b = sb.vertex_type("b");
        sb.edge_type("e", a, b);
        sb.edge_type("e", b, a);
        assert_eq!(
            sb.build().unwrap_err(),
            GraphError::DuplicateEdgeType("e".into())
        );
    }

    #[test]
    fn edge_type_with_bad_endpoint_rejected() {
        let mut sb = SchemaBuilder::new();
        let a = sb.vertex_type("a");
        sb.edge_type("e", a, VertexTypeId(9));
        assert_eq!(
            sb.build().unwrap_err(),
            GraphError::UnknownVertexTypeId(VertexTypeId(9))
        );
    }

    #[test]
    fn multiple_edge_types_between_same_pair() {
        let mut sb = SchemaBuilder::new();
        let a = sb.vertex_type("person");
        let b = sb.vertex_type("movie");
        sb.edge_type("acted_in", a, b);
        sb.edge_type("directed", a, b);
        let s = sb.build().unwrap();
        assert_eq!(s.edge_types_from_to(a, b).len(), 2);
    }

    #[test]
    fn name_lookup_misses_return_none() {
        let s = bibliographic_schema();
        assert!(s.vertex_type_by_name("conference").is_none());
        assert!(s.edge_type_by_name("cites").is_none());
    }

    #[test]
    fn self_loop_edge_type_allowed() {
        let mut sb = SchemaBuilder::new();
        let a = sb.vertex_type("author");
        sb.edge_type("advises", a, a);
        let s = sb.build().unwrap();
        assert!(s.link_exists(a, a));
    }

    #[test]
    fn schema_equality_ignores_indexes() {
        let s1 = bibliographic_schema();
        let mut s2 = bibliographic_schema();
        s2.rebuild_indexes();
        assert_eq!(s1, s2);
    }
}
