//! Meta-paths: ordered sequences of vertex types (Definitions 2–4).

use crate::error::GraphError;
use crate::ids::VertexTypeId;
use crate::schema::Schema;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A meta-path `P = (T₀ T₁ … T_l)` over a schema's vertex types
/// (Definition 2 of the paper).
///
/// A meta-path of *length* `l` has `l + 1` types and is instantiated by paths
/// of `l` edges. The degenerate single-type path (`l = 0`) is permitted: it
/// instantiates to single vertices and acts as the identity for
/// concatenation.
///
/// The textual form mirrors the paper's query language: type names joined by
/// dots, e.g. `author.paper.venue` for `(A P V)`.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MetaPath {
    types: Vec<VertexTypeId>,
}

impl MetaPath {
    /// Build from a non-empty type sequence, checking every consecutive pair
    /// is linked in the schema.
    pub fn new(types: Vec<VertexTypeId>, schema: &Schema) -> Result<Self, GraphError> {
        if types.is_empty() {
            return Err(GraphError::EmptyMetaPath);
        }
        for &t in &types {
            if t.index() >= schema.vertex_type_count() {
                return Err(GraphError::UnknownVertexTypeId(t));
            }
        }
        for (i, w) in types.windows(2).enumerate() {
            if !schema.link_exists(w[0], w[1]) {
                return Err(GraphError::MetaPathBrokenLink {
                    position: i,
                    from: w[0],
                    to: w[1],
                });
            }
        }
        Ok(MetaPath { types })
    }

    /// Parse dotted notation (`"author.paper.venue"`).
    pub fn parse(s: &str, schema: &Schema) -> Result<Self, GraphError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(GraphError::EmptyMetaPath);
        }
        let mut types = Vec::new();
        for part in s.split('.') {
            let part = part.trim();
            let t = schema
                .vertex_type_by_name(part)
                .ok_or_else(|| GraphError::MetaPathUnknownType(part.to_string()))?;
            types.push(t);
        }
        MetaPath::new(types, schema)
    }

    /// The type sequence.
    pub fn types(&self) -> &[VertexTypeId] {
        &self.types
    }

    /// Number of edges an instantiation traverses (`l`); the number of types
    /// is `len() + 1`.
    pub fn len(&self) -> usize {
        self.types.len() - 1
    }

    /// Whether the path is the degenerate single-type path.
    pub fn is_empty(&self) -> bool {
        self.types.len() == 1
    }

    /// First type `T₀` — the type of vertices the path starts from.
    pub fn source_type(&self) -> VertexTypeId {
        self.types[0]
    }

    /// Last type `T_l` — the type of vertices the path reaches.
    pub fn target_type(&self) -> VertexTypeId {
        // Invariant: every constructor rejects empty type sequences
        // (`EmptyMetaPath`), so `types` is never empty.
        #[allow(clippy::expect_used)]
        *self.types.last().expect("meta-path is non-empty")
    }

    /// Reversal `P⁻¹ = (T_l … T₀)` (Definition 3).
    pub fn reversed(&self) -> MetaPath {
        let mut types = self.types.clone();
        types.reverse();
        MetaPath { types }
    }

    /// Concatenation `(P₁ P₂)` (Definition 4): requires
    /// `self.target_type() == other.source_type()`; the shared type appears
    /// once in the result.
    pub fn concat(&self, other: &MetaPath) -> Result<MetaPath, GraphError> {
        if self.target_type() != other.source_type() {
            return Err(GraphError::ConcatTypeMismatch {
                left_end: self.target_type(),
                right_start: other.source_type(),
            });
        }
        let mut types = self.types.clone();
        types.extend_from_slice(&other.types[1..]);
        Ok(MetaPath { types })
    }

    /// The symmetric path `P_sym = (P P⁻¹)` used to compare two vertices of
    /// the source type (Section 5.1).
    pub fn symmetric(&self) -> MetaPath {
        // Invariant: `self.target_type()` equals `reversed().source_type()`
        // by construction, so concatenation cannot mismatch.
        #[allow(clippy::expect_used)]
        self.concat(&self.reversed())
            .expect("P and P⁻¹ always share the pivot type")
    }

    /// Whether the path is symmetric under reversal (palindromic type
    /// sequence), e.g. `(A P A)` or any `P_sym`.
    pub fn is_symmetric(&self) -> bool {
        self.types
            .iter()
            .zip(self.types.iter().rev())
            .all(|(a, b)| a == b)
    }

    /// Split into the decomposition used by the pre-materialization engine
    /// (Section 6.2): maximal length-2 chunks, plus a trailing length-1 hop
    /// for odd-length paths. A length-0 path yields no chunks.
    ///
    /// Each chunk is a sub-path sharing its first type with the previous
    /// chunk's last type.
    pub fn decompose_pairs(&self) -> Vec<MetaPath> {
        let mut chunks = Vec::new();
        let mut i = 0;
        while i + 2 < self.types.len() {
            chunks.push(MetaPath {
                types: self.types[i..=i + 2].to_vec(),
            });
            i += 2;
        }
        if i + 1 < self.types.len() {
            chunks.push(MetaPath {
                types: self.types[i..=i + 1].to_vec(),
            });
        }
        chunks
    }

    /// Render with the schema's type names (`author.paper.venue`).
    pub fn display<'a>(&'a self, schema: &'a Schema) -> MetaPathDisplay<'a> {
        MetaPathDisplay { path: self, schema }
    }
}

impl fmt::Debug for MetaPath {
    /// Prints `(T0 T1 T2)` — type ids only, since no schema is at hand.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, t) in self.types.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{t:?}")?;
        }
        write!(f, ")")
    }
}

/// Display adapter produced by [`MetaPath::display`].
pub struct MetaPathDisplay<'a> {
    path: &'a MetaPath,
    schema: &'a Schema,
}

impl fmt::Display for MetaPathDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, &t) in self.path.types.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{}", self.schema.vertex_type_name(t))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::bibliographic_schema;

    fn schema() -> Schema {
        bibliographic_schema()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let s = schema();
        let p = MetaPath::parse("author.paper.venue", &s).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.display(&s).to_string(), "author.paper.venue");
        assert_eq!(p.source_type(), s.vertex_type_by_name("author").unwrap());
        assert_eq!(p.target_type(), s.vertex_type_by_name("venue").unwrap());
    }

    #[test]
    fn parse_tolerates_whitespace() {
        let s = schema();
        let p = MetaPath::parse(" author . paper . author ", &s).unwrap();
        assert_eq!(p.display(&s).to_string(), "author.paper.author");
    }

    #[test]
    fn parse_unknown_type() {
        let s = schema();
        assert_eq!(
            MetaPath::parse("author.conference", &s).unwrap_err(),
            GraphError::MetaPathUnknownType("conference".into())
        );
    }

    #[test]
    fn parse_broken_link() {
        let s = schema();
        // author–venue has no direct edge type.
        let err = MetaPath::parse("author.venue", &s).unwrap_err();
        assert!(matches!(
            err,
            GraphError::MetaPathBrokenLink { position: 0, .. }
        ));
    }

    #[test]
    fn parse_empty() {
        let s = schema();
        assert_eq!(
            MetaPath::parse("   ", &s).unwrap_err(),
            GraphError::EmptyMetaPath
        );
    }

    #[test]
    fn single_type_path_is_identity() {
        let s = schema();
        let a = MetaPath::parse("author", &s).unwrap();
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
        let apv = MetaPath::parse("author.paper.venue", &s).unwrap();
        assert_eq!(a.concat(&apv).unwrap(), apv);
        assert_eq!(a.decompose_pairs().len(), 0);
    }

    #[test]
    fn reversal_definition3() {
        let s = schema();
        let apv = MetaPath::parse("author.paper.venue", &s).unwrap();
        let vpa = apv.reversed();
        assert_eq!(vpa.display(&s).to_string(), "venue.paper.author");
        assert_eq!(vpa.reversed(), apv);
    }

    #[test]
    fn concatenation_definition4() {
        let s = schema();
        let apv = MetaPath::parse("author.paper.venue", &s).unwrap();
        let vpt = MetaPath::parse("venue.paper.term", &s).unwrap();
        let joined = apv.concat(&vpt).unwrap();
        assert_eq!(
            joined.display(&s).to_string(),
            "author.paper.venue.paper.term"
        );
        // Mismatched concat rejected.
        assert!(matches!(
            vpt.concat(&apv),
            Err(GraphError::ConcatTypeMismatch { .. })
        ));
    }

    #[test]
    fn symmetric_path() {
        let s = schema();
        let apv = MetaPath::parse("author.paper.venue", &s).unwrap();
        let sym = apv.symmetric();
        assert_eq!(
            sym.display(&s).to_string(),
            "author.paper.venue.paper.author"
        );
        assert!(sym.is_symmetric());
        assert!(!apv.is_symmetric());
        let apa = MetaPath::parse("author.paper.author", &s).unwrap();
        assert!(apa.is_symmetric());
    }

    #[test]
    fn decompose_even_length() {
        let s = schema();
        let sym = MetaPath::parse("author.paper.venue", &s)
            .unwrap()
            .symmetric();
        let chunks = sym.decompose_pairs();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].display(&s).to_string(), "author.paper.venue");
        assert_eq!(chunks[1].display(&s).to_string(), "venue.paper.author");
    }

    #[test]
    fn decompose_odd_length() {
        let s = schema();
        let p = MetaPath::parse("author.paper.venue.paper", &s).unwrap();
        let chunks = p.decompose_pairs();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].len(), 2);
        assert_eq!(chunks[1].len(), 1);
        assert_eq!(chunks[1].display(&s).to_string(), "venue.paper");
    }

    #[test]
    fn decompose_reassembles() {
        let s = schema();
        let p = MetaPath::parse("author.paper.venue.paper.term", &s).unwrap();
        let chunks = p.decompose_pairs();
        let rebuilt = chunks
            .into_iter()
            .reduce(|a, b| a.concat(&b).unwrap())
            .unwrap();
        assert_eq!(rebuilt, p);
    }

    #[test]
    fn debug_format() {
        let s = schema();
        let p = MetaPath::parse("author.paper", &s).unwrap();
        assert_eq!(format!("{p:?}"), "(T0 T1)");
    }
}
