//! Compact binary persistence for heterogeneous networks.
//!
//! The text format ([`crate::io`]) is human-readable and diff-friendly; this
//! binary format is for large generated networks where load time matters
//! (the CLI and benchmark harnesses). Layout (all integers little-endian):
//!
//! ```text
//! magic "HINB"  u16 version (=1)
//! u8  vertex-type count      then per type:  u32 name-len, name bytes
//! u16 edge-type count        then per type:  u32 name-len, name bytes, u8 src, u8 dst
//! u32 vertex count           then per vertex: u8 type, u32 name-len, name bytes
//! u64 edge count             then per edge:  u16 etype, u32 src-id, u32 dst-id
//! ```
//!
//! Round-trips preserve vertex ids (vertices are written in id order), so
//! results computed before and after persistence are bit-identical.
//!
//! For large graphs prefer an `hin-snapshot` file (`hinout snapshot build`):
//! it memory-maps in microseconds instead of rebuilding CSR structures on
//! every load.

use crate::error::GraphError;
use crate::graph::{GraphBuilder, HinGraph};
use crate::ids::{EdgeTypeId, VertexId};
use crate::schema::SchemaBuilder;
use bytes::{Buf, BufMut, BytesMut};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"HINB";
const VERSION: u16 = 1;

fn ferr(message: impl Into<String>) -> GraphError {
    GraphError::Format {
        line: 0,
        message: message.into(),
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Serialize `graph` to an in-memory buffer.
pub fn encode_graph(graph: &HinGraph) -> BytesMut {
    let schema = graph.schema();
    let mut buf = BytesMut::with_capacity(64 + graph.vertex_count() * 16 + graph.edge_count() * 10);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u8(schema.vertex_type_count() as u8);
    for t in schema.vertex_type_ids() {
        put_str(&mut buf, schema.vertex_type_name(t));
    }
    buf.put_u16_le(schema.edge_type_count() as u16);
    for t in schema.edge_type_ids() {
        let info = schema.edge_type(t);
        put_str(&mut buf, &info.name);
        buf.put_u8(info.src.0);
        buf.put_u8(info.dst.0);
    }
    buf.put_u32_le(graph.vertex_count() as u32);
    for v in graph.vertices() {
        buf.put_u8(graph.vertex_type(v).0);
        put_str(&mut buf, graph.vertex_name(v));
    }
    buf.put_u64_le(graph.edge_count() as u64);
    for et in schema.edge_type_ids() {
        let info = schema.edge_type(et);
        for src in graph.vertices_of_type(info.src) {
            for dst in graph.neighbors_forward(*src, et) {
                buf.put_u16_le(et.0);
                buf.put_u32_le(src.0);
                buf.put_u32_le(dst.0);
            }
        }
    }
    buf
}

struct Cursor<'a> {
    buf: &'a [u8],
}

impl Cursor<'_> {
    fn need(&self, n: usize, what: &str) -> Result<(), GraphError> {
        if self.buf.remaining() < n {
            Err(ferr(format!("truncated input while reading {what}")))
        } else {
            Ok(())
        }
    }

    fn u8(&mut self, what: &str) -> Result<u8, GraphError> {
        self.need(1, what)?;
        Ok(self.buf.get_u8())
    }

    fn u16(&mut self, what: &str) -> Result<u16, GraphError> {
        self.need(2, what)?;
        Ok(self.buf.get_u16_le())
    }

    fn u32(&mut self, what: &str) -> Result<u32, GraphError> {
        self.need(4, what)?;
        Ok(self.buf.get_u32_le())
    }

    fn u64(&mut self, what: &str) -> Result<u64, GraphError> {
        self.need(8, what)?;
        Ok(self.buf.get_u64_le())
    }

    fn str(&mut self, what: &str) -> Result<String, GraphError> {
        let len = self.u32(what)? as usize;
        if len > 1 << 20 {
            return Err(ferr(format!("implausible {what} length {len}")));
        }
        self.need(len, what)?;
        let bytes = self.buf.copy_to_bytes(len);
        String::from_utf8(bytes.to_vec()).map_err(|_| ferr(format!("{what} is not UTF-8")))
    }

    /// Validate a record count against the remaining buffer *before* any
    /// allocation or decode loop: `count` records of at least `min_bytes`
    /// each must still fit. A corrupt count field is rejected here in O(1)
    /// instead of reserving huge buffers or looping toward the eventual
    /// truncation error.
    fn need_records(&self, count: u64, min_bytes: u64, what: &str) -> Result<(), GraphError> {
        let needed = count
            .checked_mul(min_bytes)
            .ok_or_else(|| ferr(format!("implausible {what} {count}")))?;
        if (self.buf.remaining() as u64) < needed {
            return Err(ferr(format!(
                "{what} {count} needs at least {needed} bytes but only {} remain",
                self.buf.remaining()
            )));
        }
        Ok(())
    }
}

/// Minimum encoded size of each record kind, used to sanity-check count
/// fields up front: a vertex-type record is a u32 name length (4); an
/// edge-type record adds two u8 endpoint types (6); a vertex record is a u8
/// type plus a u32 name length (5); an edge record is exactly
/// u16 + u32 + u32 (10).
const MIN_VTYPE_RECORD: u64 = 4;
const MIN_ETYPE_RECORD: u64 = 6;
const MIN_VERTEX_RECORD: u64 = 5;
const EDGE_RECORD: u64 = 10;

/// Deserialize a graph from a buffer produced by [`encode_graph`].
pub fn decode_graph(data: &[u8]) -> Result<HinGraph, GraphError> {
    let mut c = Cursor { buf: data };
    c.need(4, "magic")?;
    let mut magic = [0u8; 4];
    c.buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(ferr("not a HINB file (bad magic)"));
    }
    let version = c.u16("version")?;
    if version != VERSION {
        return Err(ferr(format!(
            "unsupported HINB version {version} (supported: {VERSION})"
        )));
    }
    let mut sb = SchemaBuilder::new();
    let n_vtypes = c.u8("vertex type count")?;
    c.need_records(n_vtypes as u64, MIN_VTYPE_RECORD, "vertex type count")?;
    let mut vtype_ids = Vec::with_capacity(n_vtypes as usize);
    for _ in 0..n_vtypes {
        let name = c.str("vertex type name")?;
        vtype_ids.push(sb.vertex_type(name));
    }
    let n_etypes = c.u16("edge type count")?;
    c.need_records(n_etypes as u64, MIN_ETYPE_RECORD, "edge type count")?;
    let mut etype_ids = Vec::with_capacity(n_etypes as usize);
    for _ in 0..n_etypes {
        let name = c.str("edge type name")?;
        let src = c.u8("edge src type")? as usize;
        let dst = c.u8("edge dst type")? as usize;
        let (src, dst) = (
            *vtype_ids
                .get(src)
                .ok_or_else(|| ferr("edge type references unknown src type"))?,
            *vtype_ids
                .get(dst)
                .ok_or_else(|| ferr("edge type references unknown dst type"))?,
        );
        etype_ids.push(sb.edge_type(name, src, dst));
    }
    let schema = sb
        .build()
        .map_err(|e| ferr(format!("invalid schema: {e}")))?;
    let mut gb = GraphBuilder::new(schema);
    let n_vertices = c.u32("vertex count")?;
    c.need_records(n_vertices as u64, MIN_VERTEX_RECORD, "vertex count")?;
    for _ in 0..n_vertices {
        let t = c.u8("vertex type")? as usize;
        let name = c.str("vertex name")?;
        let t = *vtype_ids
            .get(t)
            .ok_or_else(|| ferr("vertex references unknown type"))?;
        gb.add_vertex(t, name)
            .map_err(|e| ferr(format!("invalid vertex record: {e}")))?;
    }
    let n_edges = c.u64("edge count")?;
    c.need_records(n_edges, EDGE_RECORD, "edge count")?;
    for _ in 0..n_edges {
        let et = c.u16("edge type id")? as usize;
        let src = VertexId(c.u32("edge src")?);
        let dst = VertexId(c.u32("edge dst")?);
        let et: EdgeTypeId = *etype_ids
            .get(et)
            .ok_or_else(|| ferr("edge references unknown edge type"))?;
        gb.add_edge_typed(src, dst, et)
            .map_err(|e| ferr(format!("invalid edge record: {e}")))?;
    }
    if c.buf.has_remaining() {
        return Err(ferr(format!(
            "{} trailing bytes after the edge list",
            c.buf.remaining()
        )));
    }
    Ok(gb.build())
}

/// Write `graph` in binary form.
pub fn write_graph_binary<W: Write>(graph: &HinGraph, mut w: W) -> std::io::Result<()> {
    w.write_all(&encode_graph(graph))
}

/// Read a binary graph.
pub fn read_graph_binary<R: Read>(mut r: R) -> Result<HinGraph, GraphError> {
    let mut data = Vec::new();
    r.read_to_end(&mut data)
        .map_err(|e| ferr(format!("I/O error: {e}")))?;
    decode_graph(&data)
}

/// Save to a file.
pub fn save_graph_binary(graph: &HinGraph, path: impl AsRef<Path>) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_graph_binary(graph, std::io::BufWriter::new(f))
}

/// Load from a file.
pub fn load_graph_binary(path: impl AsRef<Path>) -> Result<HinGraph, GraphError> {
    let f = std::fs::File::open(&path)
        .map_err(|e| ferr(format!("cannot open {}: {e}", path.as_ref().display())))?;
    read_graph_binary(f)
}

/// Detect the format of a persisted network by its first bytes and load it:
/// binary when the `HINB` magic is present, text otherwise.
pub fn load_graph_auto(path: impl AsRef<Path>) -> Result<HinGraph, GraphError> {
    let path = path.as_ref();
    let mut f = std::fs::File::open(path)
        .map_err(|e| ferr(format!("cannot open {}: {e}", path.display())))?;
    let mut magic = [0u8; 4];
    let is_binary = {
        use std::io::Read as _;
        match f.read_exact(&mut magic) {
            Ok(()) => &magic == MAGIC,
            Err(_) => false,
        }
    };
    if is_binary {
        load_graph_binary(path)
    } else {
        crate::io::load_graph(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metapath::MetaPath;
    use crate::schema::bibliographic_schema;
    use crate::traverse;

    fn sample() -> HinGraph {
        let schema = bibliographic_schema();
        let author = schema.vertex_type_by_name("author").unwrap();
        let paper = schema.vertex_type_by_name("paper").unwrap();
        let venue = schema.vertex_type_by_name("venue").unwrap();
        let mut gb = GraphBuilder::new(schema);
        let a = gb.add_vertex(author, "Ann Example").unwrap();
        let b = gb.add_vertex(author, "Bob — Ünïcode").unwrap();
        let p1 = gb.add_vertex(paper, "p1").unwrap();
        let p2 = gb.add_vertex(paper, "p2").unwrap();
        let v = gb.add_vertex(venue, "KDD").unwrap();
        gb.add_edge(a, p1).unwrap();
        gb.add_edge(b, p1).unwrap();
        gb.add_edge(b, p2).unwrap();
        gb.add_edge(p1, v).unwrap();
        gb.add_edge(p2, v).unwrap();
        gb.build()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample();
        let buf = encode_graph(&g);
        let g2 = decode_graph(&buf).unwrap();
        assert_eq!(g2.vertex_count(), g.vertex_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        // Ids and names identical.
        for v in g.vertices() {
            assert_eq!(g.vertex_name(v), g2.vertex_name(v));
            assert_eq!(g.vertex_type(v), g2.vertex_type(v));
        }
        // Path counts identical.
        let apv = MetaPath::parse("author.paper.venue", g2.schema()).unwrap();
        let author = g2.schema().vertex_type_by_name("author").unwrap();
        for &a in g2.vertices_of_type(author) {
            assert_eq!(
                traverse::neighbor_vector(&g, a, &apv).unwrap(),
                traverse::neighbor_vector(&g2, a, &apv).unwrap()
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let err = decode_graph(b"NOPE....").unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let buf = encode_graph(&sample());
        // Any strict prefix must fail cleanly, never panic.
        for cut in 0..buf.len() {
            assert!(
                decode_graph(&buf[..cut]).is_err(),
                "prefix of {cut} bytes unexpectedly decoded"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut buf = encode_graph(&sample()).to_vec();
        buf.push(0xFF);
        let err = decode_graph(&buf).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut buf = encode_graph(&sample()).to_vec();
        buf[4] = 99; // version low byte
        let err = decode_graph(&buf).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn files_and_auto_detection() {
        // Unique per process so concurrent test runs never collide on the
        // same files or race the final remove_dir_all.
        let dir = std::env::temp_dir().join(format!("hin_binio_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = sample();
        let bin_path = dir.join("g.hinb");
        let txt_path = dir.join("g.hin");
        save_graph_binary(&g, &bin_path).unwrap();
        crate::io::save_graph(&g, &txt_path).unwrap();
        let from_bin = load_graph_auto(&bin_path).unwrap();
        let from_txt = load_graph_auto(&txt_path).unwrap();
        assert_eq!(from_bin.vertex_count(), g.vertex_count());
        assert_eq!(from_txt.vertex_count(), g.vertex_count());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Hand-assemble a buffer: valid magic + version, then `body`.
    fn raw(body: &[u8]) -> Vec<u8> {
        let mut buf = Vec::from(&MAGIC[..]);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(body);
        buf
    }

    fn put_len_str(body: &mut Vec<u8>, s: &str) {
        body.extend_from_slice(&(s.len() as u32).to_le_bytes());
        body.extend_from_slice(s.as_bytes());
    }

    #[test]
    fn huge_name_length_rejected_without_allocation() {
        // One vertex type whose name claims u32::MAX bytes.
        let mut body = vec![1u8];
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_graph(&raw(&body)).unwrap_err();
        assert!(matches!(err, GraphError::Format { .. }), "{err}");
        assert!(err.to_string().contains("implausible"));
    }

    #[test]
    fn huge_counts_rejected_before_looping() {
        // Valid empty schema, then a vertex count of u32::MAX with no data
        // behind it: rejected up front, not after ~4 billion iterations.
        let mut body = vec![0u8];
        body.extend_from_slice(&0u16.to_le_bytes());
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_graph(&raw(&body)).unwrap_err();
        assert!(err.to_string().contains("vertex count"), "{err}");
        // Same for an edge count that overflows the size computation.
        let mut body = vec![0u8];
        body.extend_from_slice(&0u16.to_le_bytes());
        body.extend_from_slice(&0u32.to_le_bytes());
        body.extend_from_slice(&u64::MAX.to_le_bytes());
        let err = decode_graph(&raw(&body)).unwrap_err();
        assert!(err.to_string().contains("edge count"), "{err}");
    }

    #[test]
    fn edge_with_out_of_range_vertex_rejected() {
        // Schema: types "a", "b" linked by "ab"; one vertex of each; then an
        // edge whose src id 99 does not exist.
        let mut body = vec![2u8];
        put_len_str(&mut body, "a");
        put_len_str(&mut body, "b");
        body.extend_from_slice(&1u16.to_le_bytes());
        put_len_str(&mut body, "ab");
        body.push(0);
        body.push(1);
        body.extend_from_slice(&2u32.to_le_bytes());
        body.push(0);
        put_len_str(&mut body, "x");
        body.push(1);
        put_len_str(&mut body, "y");
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&0u16.to_le_bytes());
        body.extend_from_slice(&99u32.to_le_bytes());
        body.extend_from_slice(&1u32.to_le_bytes());
        let err = decode_graph(&raw(&body)).unwrap_err();
        assert!(matches!(err, GraphError::Format { .. }), "{err}");
        assert!(err.to_string().contains("invalid edge record"), "{err}");
    }

    #[test]
    fn duplicate_type_names_rejected() {
        let mut body = vec![2u8];
        put_len_str(&mut body, "a");
        put_len_str(&mut body, "a");
        body.extend_from_slice(&0u16.to_le_bytes());
        body.extend_from_slice(&0u32.to_le_bytes());
        body.extend_from_slice(&0u64.to_le_bytes());
        let err = decode_graph(&raw(&body)).unwrap_err();
        assert!(matches!(err, GraphError::Format { .. }), "{err}");
        assert!(err.to_string().contains("invalid schema"), "{err}");
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = GraphBuilder::new(bibliographic_schema()).build();
        let g2 = decode_graph(&encode_graph(&g)).unwrap();
        assert_eq!(g2.vertex_count(), 0);
        assert_eq!(g2.schema().vertex_type_count(), 4);
    }
}
