//! Meta-path traversal: neighbor vectors, neighborhoods, path counting and
//! connectivity (Definitions 5–7 and Section 5.1 of the paper).
//!
//! All functions operate by sparse frontier propagation: the neighbor vector
//! `Φ_P(v)` is the row of the (implicit) product of per-link biadjacency
//! matrices, computed one hop at a time. This is exactly the identity the
//! paper uses in Section 6.2:
//!
//! ```text
//! Φ_{P₁P₂}(v) = Σ_u |π_{P₁}(v, u)| · Φ_{P₂}(u)
//! ```

use crate::error::GraphError;
use crate::graph::HinGraph;
use crate::ids::VertexId;
use crate::metapath::MetaPath;
use crate::sparse::{DenseAccumulator, SparseVec, SparseVecBuilder};

/// Check that `v` can be the start of an instantiation of `path`.
fn check_start(graph: &HinGraph, v: VertexId, path: &MetaPath) -> Result<(), GraphError> {
    if !graph.contains(v) {
        return Err(GraphError::UnknownVertex(v));
    }
    let actual = graph.vertex_type(v);
    if actual != path.source_type() {
        return Err(GraphError::StartTypeMismatch {
            vertex: v,
            actual,
            expected: path.source_type(),
        });
    }
    Ok(())
}

/// Propagate a sparse frontier one hop: every entry `(u, w)` scatters `w`
/// into each `to_type`-typed neighbor of `u` (with multiplicity).
///
/// Allocates a fresh workspace; hot loops should hold a
/// [`DenseAccumulator`] and call [`propagate_step_with`] instead.
pub fn propagate_step(
    graph: &HinGraph,
    frontier: &SparseVec,
    to_type: crate::ids::VertexTypeId,
) -> SparseVec {
    propagate_step_with(graph, frontier, to_type, &mut DenseAccumulator::new())
}

/// [`propagate_step`] scattering through a caller-provided workspace, so
/// repeated hops reuse one allocation.
pub fn propagate_step_with(
    graph: &HinGraph,
    frontier: &SparseVec,
    to_type: crate::ids::VertexTypeId,
    ws: &mut DenseAccumulator,
) -> SparseVec {
    for (u, w) in frontier.iter() {
        for n in graph.step_neighbors(u, to_type) {
            ws.add(n, w);
        }
    }
    ws.finish()
}

/// [`propagate_step`] through the legacy hash-map accumulator. Produces
/// identical output to the dense-workspace kernel; kept as the baseline for
/// kernel benchmarks (`exp_parallel`) and equivalence tests.
pub fn propagate_step_hashmap(
    graph: &HinGraph,
    frontier: &SparseVec,
    to_type: crate::ids::VertexTypeId,
) -> SparseVec {
    let mut acc = SparseVecBuilder::with_capacity(frontier.nnz().max(16));
    for (u, w) in frontier.iter() {
        for n in graph.step_neighbors(u, to_type) {
            acc.add(n, w);
        }
    }
    acc.finish()
}

/// The neighbor vector `Φ_P(v)` (Definition 7): entry `j` counts the path
/// instantiations of `P` from `v` to vertex `j`.
///
/// For the degenerate single-type path this is the unit vector `{v: 1}`.
pub fn neighbor_vector(
    graph: &HinGraph,
    v: VertexId,
    path: &MetaPath,
) -> Result<SparseVec, GraphError> {
    neighbor_vector_with(graph, v, path, &mut DenseAccumulator::new())
}

/// [`neighbor_vector`] propagating through a caller-provided workspace, so
/// one allocation serves every hop of every vertex in a batch.
pub fn neighbor_vector_with(
    graph: &HinGraph,
    v: VertexId,
    path: &MetaPath,
    ws: &mut DenseAccumulator,
) -> Result<SparseVec, GraphError> {
    check_start(graph, v, path)?;
    let mut frontier = SparseVec::unit(v);
    for link in path.types().windows(2) {
        frontier = propagate_step_with(graph, &frontier, link[1], ws);
        if frontier.is_empty() {
            break;
        }
    }
    Ok(frontier)
}

/// The neighborhood `N_P(v)` (Definition 6): vertices reachable by at least
/// one instantiation of `P`, in ascending id order.
pub fn neighborhood(
    graph: &HinGraph,
    v: VertexId,
    path: &MetaPath,
) -> Result<Vec<VertexId>, GraphError> {
    Ok(neighbor_vector(graph, v, path)?.support().collect())
}

/// `|π_P(u, v)|` — the number of instantiations of `P` between `u` and `v`
/// (Definition 5).
pub fn path_count(
    graph: &HinGraph,
    u: VertexId,
    v: VertexId,
    path: &MetaPath,
) -> Result<f64, GraphError> {
    Ok(neighbor_vector(graph, u, path)?.get(v))
}

/// Connectivity `χ(u, v) = |π_{P_sym}(u, v)|` along the symmetric path of a
/// feature meta-path `P` (Section 5.1). Computed as `Φ_P(u) · Φ_P(v)`,
/// which equals the symmetric path count because every instantiation of
/// `P_sym = (P P⁻¹)` factors through a unique pivot vertex.
pub fn connectivity(
    graph: &HinGraph,
    u: VertexId,
    v: VertexId,
    feature_path: &MetaPath,
) -> Result<f64, GraphError> {
    let pu = neighbor_vector(graph, u, feature_path)?;
    let pv = neighbor_vector(graph, v, feature_path)?;
    Ok(pu.dot(&pv))
}

/// Visibility `χ(v, v)` — a vertex's potential for connectivity
/// (Section 5.1). Equals `‖Φ_P(v)‖²`.
pub fn visibility(
    graph: &HinGraph,
    v: VertexId,
    feature_path: &MetaPath,
) -> Result<f64, GraphError> {
    Ok(neighbor_vector(graph, v, feature_path)?.norm2_sq())
}

/// Normalized connectivity `κ(u, v) = χ(u, v) / χ(u, u)` (Definition 9).
///
/// Returns `None` when `u` has zero visibility (no instantiations of the
/// feature path at all), in which case the measure is undefined; see the
/// NetOut implementation for how such vertices are ranked.
pub fn normalized_connectivity(
    graph: &HinGraph,
    u: VertexId,
    v: VertexId,
    feature_path: &MetaPath,
) -> Result<Option<f64>, GraphError> {
    let pu = neighbor_vector(graph, u, feature_path)?;
    let vis = pu.norm2_sq();
    if vis == 0.0 {
        return Ok(None);
    }
    let pv = neighbor_vector(graph, v, feature_path)?;
    Ok(Some(pu.dot(&pv) / vis))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::schema::bibliographic_schema;

    /// The Figure 1(b) network (see `graph::tests` for the layout):
    /// π_APA(Ava,Liam)=1, π_APA(Liam,Zoe)=2, Φ_APA(Zoe)=[Ava:1,Liam:2,Zoe:5],
    /// Φ_APV(Zoe)=[ICDE:2,KDD:3].
    fn figure1() -> HinGraph {
        let schema = bibliographic_schema();
        let author = schema.vertex_type_by_name("author").unwrap();
        let paper = schema.vertex_type_by_name("paper").unwrap();
        let venue = schema.vertex_type_by_name("venue").unwrap();
        let mut gb = GraphBuilder::new(schema);
        let ava = gb.add_vertex(author, "Ava").unwrap();
        let liam = gb.add_vertex(author, "Liam").unwrap();
        let zoe = gb.add_vertex(author, "Zoe").unwrap();
        let icde = gb.add_vertex(venue, "ICDE").unwrap();
        let kdd = gb.add_vertex(venue, "KDD").unwrap();
        let papers: [(&str, &[VertexId], VertexId); 6] = [
            ("p1", &[ava, zoe], icde),
            ("p2", &[liam, zoe], icde),
            ("p3", &[liam, zoe], kdd),
            ("p4", &[zoe], kdd),
            ("p5", &[zoe], kdd),
            ("p6", &[ava, liam], icde),
        ];
        for (name, authors, ven) in papers {
            let p = gb.add_vertex(paper, name).unwrap();
            for &a in authors {
                gb.add_edge(a, p).unwrap();
            }
            gb.add_edge(p, ven).unwrap();
        }
        gb.build()
    }

    fn ids(g: &HinGraph) -> (VertexId, VertexId, VertexId, VertexId, VertexId) {
        let author = g.schema().vertex_type_by_name("author").unwrap();
        let venue = g.schema().vertex_type_by_name("venue").unwrap();
        (
            g.vertex_by_name(author, "Ava").unwrap(),
            g.vertex_by_name(author, "Liam").unwrap(),
            g.vertex_by_name(author, "Zoe").unwrap(),
            g.vertex_by_name(venue, "ICDE").unwrap(),
            g.vertex_by_name(venue, "KDD").unwrap(),
        )
    }

    #[test]
    fn paper_example_coauthor_counts() {
        // |π_Pca(Ava, Liam)| = 1 and |π_Pca(Liam, Zoe)| = 2 (Definition 5
        // examples in Section 3).
        let g = figure1();
        let (ava, liam, zoe, _, _) = ids(&g);
        let pca = MetaPath::parse("author.paper.author", g.schema()).unwrap();
        assert_eq!(path_count(&g, ava, liam, &pca).unwrap(), 1.0);
        assert_eq!(path_count(&g, liam, zoe, &pca).unwrap(), 2.0);
    }

    #[test]
    fn paper_example_neighborhood() {
        // N_Pca(Zoe) = {Ava, Liam} — the paper's Definition 6 example
        // (plus Zoe herself: she coauthors with herself via her own papers;
        // the paper's Φ example indeed includes Zoe:5).
        let g = figure1();
        let (ava, liam, zoe, _, _) = ids(&g);
        let pca = MetaPath::parse("author.paper.author", g.schema()).unwrap();
        let nb = neighborhood(&g, zoe, &pca).unwrap();
        assert_eq!(nb, vec![ava, liam, zoe]);
    }

    #[test]
    fn paper_example_neighbor_vectors() {
        // Φ_Pca(Zoe) = [Ava:1, Liam:2, Zoe:5]; Φ_APV(Zoe) = [ICDE:2, KDD:3].
        let g = figure1();
        let (ava, liam, zoe, icde, kdd) = ids(&g);
        let pca = MetaPath::parse("author.paper.author", g.schema()).unwrap();
        let phi = neighbor_vector(&g, zoe, &pca).unwrap();
        assert_eq!(phi.get(ava), 1.0);
        assert_eq!(phi.get(liam), 2.0);
        assert_eq!(phi.get(zoe), 5.0);
        let pv = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
        let phi = neighbor_vector(&g, zoe, &pv).unwrap();
        assert_eq!(phi.get(icde), 2.0);
        assert_eq!(phi.get(kdd), 3.0);
        assert_eq!(phi.nnz(), 2);
    }

    #[test]
    fn long_path_propagation() {
        // APVPA: Zoe -> venues [ICDE:2, KDD:3] -> papers -> authors.
        let g = figure1();
        let (_, _, zoe, _, _) = ids(&g);
        let apvpa = MetaPath::parse("author.paper.venue.paper.author", g.schema()).unwrap();
        let phi = neighbor_vector(&g, zoe, &apvpa).unwrap();
        // Equivalent to Φ_APV(Zoe) · Φ_APV(x) for each author x.
        let apv = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
        let pz = neighbor_vector(&g, zoe, &apv).unwrap();
        for author in g.vertices_of_type(g.vertex_type(zoe)) {
            let px = neighbor_vector(&g, *author, &apv).unwrap();
            assert_eq!(phi.get(*author), pz.dot(&px));
        }
    }

    #[test]
    fn connectivity_matches_symmetric_path_count() {
        let g = figure1();
        let (ava, _, zoe, _, _) = ids(&g);
        let apv = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
        let sym = apv.symmetric();
        let chi = connectivity(&g, ava, zoe, &apv).unwrap();
        let direct = path_count(&g, ava, zoe, &sym).unwrap();
        assert_eq!(chi, direct);
    }

    #[test]
    fn visibility_is_self_connectivity() {
        let g = figure1();
        let (_, _, zoe, _, _) = ids(&g);
        let apv = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
        let vis = visibility(&g, zoe, &apv).unwrap();
        assert_eq!(vis, connectivity(&g, zoe, zoe, &apv).unwrap());
        assert_eq!(vis, 4.0 + 9.0); // [ICDE:2, KDD:3]
    }

    #[test]
    fn normalized_connectivity_asymmetric() {
        let g = figure1();
        let (ava, _, zoe, _, _) = ids(&g);
        let apv = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
        // Ava: [ICDE:2]; Zoe: [ICDE:2, KDD:3]. χ(Ava,Zoe)=4.
        let k_az = normalized_connectivity(&g, ava, zoe, &apv)
            .unwrap()
            .unwrap();
        let k_za = normalized_connectivity(&g, zoe, ava, &apv)
            .unwrap()
            .unwrap();
        assert_eq!(k_az, 4.0 / 4.0);
        assert_eq!(k_za, 4.0 / 13.0);
        assert_ne!(k_az, k_za);
        // κ(v, v) = 1 always (when defined).
        assert_eq!(
            normalized_connectivity(&g, zoe, zoe, &apv)
                .unwrap()
                .unwrap(),
            1.0
        );
    }

    #[test]
    fn zero_visibility_returns_none() {
        let g = {
            let schema = bibliographic_schema();
            let author = schema.vertex_type_by_name("author").unwrap();
            let mut gb = GraphBuilder::new(schema);
            gb.add_vertex(author, "loner").unwrap();
            gb.add_vertex(author, "other").unwrap();
            gb.build()
        };
        let author = g.schema().vertex_type_by_name("author").unwrap();
        let loner = g.vertex_by_name(author, "loner").unwrap();
        let other = g.vertex_by_name(author, "other").unwrap();
        let apv = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
        assert_eq!(
            normalized_connectivity(&g, loner, other, &apv).unwrap(),
            None
        );
    }

    #[test]
    fn start_type_mismatch_rejected() {
        let g = figure1();
        let (_, _, _, icde, _) = ids(&g);
        let apv = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
        assert!(matches!(
            neighbor_vector(&g, icde, &apv),
            Err(GraphError::StartTypeMismatch { .. })
        ));
    }

    #[test]
    fn unknown_vertex_rejected() {
        let g = figure1();
        let apv = MetaPath::parse("author.paper.venue", g.schema()).unwrap();
        assert!(matches!(
            neighbor_vector(&g, VertexId(9999), &apv),
            Err(GraphError::UnknownVertex(_))
        ));
    }

    #[test]
    fn dense_and_hashmap_kernels_agree() {
        // The workspace kernel must be bit-identical to the legacy hash-map
        // kernel on every hop, including shared-workspace reuse across
        // vertices and paths.
        let g = figure1();
        let mut ws = DenseAccumulator::new();
        for path in [
            "author.paper.author",
            "author.paper.venue",
            "author.paper.venue.paper.author",
        ] {
            let p = MetaPath::parse(path, g.schema()).unwrap();
            for v in 0..g.vertex_count() as u32 {
                let v = VertexId(v);
                if g.vertex_type(v) != p.source_type() {
                    continue;
                }
                let dense = neighbor_vector_with(&g, v, &p, &mut ws).unwrap();
                let mut frontier = SparseVec::unit(v);
                for link in p.types().windows(2) {
                    frontier = propagate_step_hashmap(&g, &frontier, link[1]);
                    if frontier.is_empty() {
                        break;
                    }
                }
                assert_eq!(dense, frontier, "{path} Φ({v:?})");
            }
        }
    }

    #[test]
    fn identity_path_is_unit_vector() {
        let g = figure1();
        let (_, _, zoe, _, _) = ids(&g);
        let a = MetaPath::parse("author", g.schema()).unwrap();
        let phi = neighbor_vector(&g, zoe, &a).unwrap();
        assert_eq!(phi, SparseVec::unit(zoe));
    }
}
