//! Sparse vector and matrix kernels.
//!
//! Neighbor vectors (`Φ_P(v)`, Definition 7 of the paper) are sparse: an
//! author connects to a handful of venues out of thousands. All outlierness
//! computation in the engine reduces to dot products and vector–matrix
//! products over these sparse structures, so they are kept deliberately
//! simple and cache-friendly: sorted coordinate lists for vectors and CSR for
//! matrices.

use crate::error::GraphError;
use crate::ids::VertexId;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// A sparse vector over vertex ids with `f64` values.
///
/// Entries are stored sorted by vertex id with no duplicates and no explicit
/// zeros, which makes merges, dot products and equality `O(nnz)`.
///
/// Values are `f64` even though path counts are integral, because weighted
/// feature meta-paths and normalized scores require real arithmetic.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SparseVec {
    entries: Vec<(VertexId, f64)>,
}

impl SparseVec {
    /// The empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A vector with a single unit entry (`{v: 1.0}`), the seed of a
    /// meta-path propagation.
    pub fn unit(v: VertexId) -> Self {
        SparseVec {
            entries: vec![(v, 1.0)],
        }
    }

    /// Build from an arbitrary `(id, value)` list: entries are sorted,
    /// duplicates summed, zeros dropped.
    pub fn from_entries(mut entries: Vec<(VertexId, f64)>) -> Self {
        entries.sort_unstable_by_key(|(v, _)| *v);
        let mut out: Vec<(VertexId, f64)> = Vec::with_capacity(entries.len());
        for (v, x) in entries {
            match out.last_mut() {
                Some((lv, lx)) if *lv == v => *lx += x,
                _ => out.push((v, x)),
            }
        }
        out.retain(|(_, x)| *x != 0.0);
        SparseVec { entries: out }
    }

    /// Build from a hash-map accumulator.
    ///
    /// Retained for tests and IO paths only: internal propagation goes
    /// through [`DenseAccumulator`], which produces identical output without
    /// hashing or re-sorting overhead on the hot path.
    pub fn from_map(map: FxHashMap<VertexId, f64>) -> Self {
        let mut entries: Vec<(VertexId, f64)> =
            map.into_iter().filter(|(_, x)| *x != 0.0).collect();
        entries.sort_unstable_by_key(|(v, _)| *v);
        SparseVec { entries }
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector has no non-zero entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The value at `v` (`0.0` if absent). `O(log nnz)`.
    pub fn get(&self, v: VertexId) -> f64 {
        match self.entries.binary_search_by_key(&v, |(u, _)| *u) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0.0,
        }
    }

    /// Iterate `(id, value)` pairs in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// The ids with non-zero values, in increasing order. This is the
    /// *neighborhood* `N_P(v)` of Definition 6 when the vector is `Φ_P(v)`.
    pub fn support(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.entries.iter().map(|(v, _)| *v)
    }

    /// Dot product with another sparse vector.
    ///
    /// Dispatches between a linear merge and a galloping search: when one
    /// operand's support is much larger than the other's (degree-skewed DBLP
    /// vectors — a prolific author against a niche one), probing the large
    /// side in `O(nnz_small · log nnz_large)` beats walking it linearly.
    /// Both paths accumulate matched products in ascending id order, so the
    /// result is bit-identical regardless of which path runs.
    pub fn dot(&self, other: &SparseVec) -> f64 {
        let (small, large) = if self.nnz() <= other.nnz() {
            (self, other)
        } else {
            (other, self)
        };
        if !small.is_empty() && large.nnz() >= GALLOP_FACTOR * small.nnz() {
            dot_gallop(&small.entries, &large.entries)
        } else {
            self.dot_merge(other)
        }
    }

    /// Dot product via the classic two-pointer merge: `O(nnz_a + nnz_b)`.
    ///
    /// The reference implementation [`SparseVec::dot`] dispatches to (and is
    /// property-tested against); exposed so benchmarks and tests can pin the
    /// kernel variant.
    pub fn dot_merge(&self, other: &SparseVec) -> f64 {
        let (mut i, mut j) = (0usize, 0usize);
        let (a, b) = (&self.entries, &other.entries);
        let mut acc = 0.0;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += a[i].1 * b[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Squared Euclidean norm, `‖x‖²`. Equals the *visibility* `χ(v, v)` of
    /// Section 5.1 when the vector is `Φ_P(v)`.
    pub fn norm2_sq(&self) -> f64 {
        self.entries.iter().map(|(_, x)| x * x).sum()
    }

    /// Euclidean norm `‖x‖₂`.
    pub fn norm2(&self) -> f64 {
        self.norm2_sq().sqrt()
    }

    /// Sum of values, `‖x‖₁` for non-negative vectors (path counts).
    pub fn sum(&self) -> f64 {
        self.entries.iter().map(|(_, x)| x).sum()
    }

    /// Squared Euclidean distance to `other`.
    pub fn dist2_sq(&self, other: &SparseVec) -> f64 {
        // ‖a‖² + ‖b‖² − 2·a·b computed entry-wise to avoid cancellation on
        // near-identical vectors.
        let (mut i, mut j) = (0usize, 0usize);
        let (a, b) = (&self.entries, &other.entries);
        let mut acc = 0.0;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    acc += a[i].1 * a[i].1;
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    acc += b[j].1 * b[j].1;
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let d = a[i].1 - b[j].1;
                    acc += d * d;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc += a[i..].iter().map(|(_, x)| x * x).sum::<f64>();
        acc += b[j..].iter().map(|(_, x)| x * x).sum::<f64>();
        acc
    }

    /// `self += other` (sparse merge).
    pub fn add_assign(&mut self, other: &SparseVec) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            self.entries = other.entries.clone();
            return;
        }
        let mut out = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut i, mut j) = (0usize, 0usize);
        let (a, b) = (&self.entries, &other.entries);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let x = a[i].1 + b[j].1;
                    if x != 0.0 {
                        out.push((a[i].0, x));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        self.entries = out;
    }

    /// `self *= s`. Scaling by zero empties the vector.
    pub fn scale(&mut self, s: f64) {
        if s == 0.0 {
            self.entries.clear();
        } else {
            for (_, x) in &mut self.entries {
                *x *= s;
            }
        }
    }

    /// Approximate heap footprint in bytes (used for index-size accounting,
    /// Figure 5b of the paper).
    pub fn size_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(VertexId, f64)>()
            + std::mem::size_of::<Self>()
    }
}

impl FromIterator<(VertexId, f64)> for SparseVec {
    fn from_iter<I: IntoIterator<Item = (VertexId, f64)>>(iter: I) -> Self {
        SparseVec::from_entries(iter.into_iter().collect())
    }
}

/// Nnz ratio above which [`SparseVec::dot`] switches from the linear merge
/// to galloping search of the larger operand.
const GALLOP_FACTOR: usize = 8;

/// Galloping dot product: for each entry of `small`, exponentially probe
/// forward in `large` from the last match position, then binary-search the
/// bracketed window. Matches are accumulated in ascending id order — the
/// same order as the merge — so the floating-point sum is identical.
fn dot_gallop(small: &[(VertexId, f64)], large: &[(VertexId, f64)]) -> f64 {
    let mut acc = 0.0;
    let mut base = 0usize;
    for &(id, x) in small {
        if base >= large.len() {
            break;
        }
        // Probe offsets base, base+1, base+3, base+7, … until we pass `id`
        // or run off the end. Invariant: every index below `lo` holds a
        // column id `< id`.
        let mut lo = base;
        let mut hi = base;
        let mut step = 1usize;
        while hi < large.len() && large[hi].0 < id {
            lo = hi + 1;
            hi = base + step;
            step = step.saturating_mul(2);
        }
        let upper = if hi < large.len() {
            hi + 1
        } else {
            large.len()
        };
        match large[lo..upper].binary_search_by_key(&id, |(u, _)| *u) {
            Ok(k) => {
                acc += x * large[lo + k].1;
                base = lo + k + 1;
            }
            Err(k) => base = lo + k,
        }
    }
    acc
}

/// Reusable dense scatter workspace for building [`SparseVec`]s on the hot
/// propagation path.
///
/// Additions scatter into a dense `values` array indexed by raw vertex id; a
/// `touched` list records which slots are live so [`DenseAccumulator::finish`]
/// can gather them back in sorted order without scanning the whole id space.
/// An epoch counter makes reuse O(touched) instead of O(id space): slots
/// stamped with an older epoch read as absent, so nothing needs re-zeroing
/// between queries.
///
/// Produces output identical to the [`SparseVecBuilder`] hash-map kernel
/// (same per-id addition order, id-sorted, exact zeros dropped) while
/// avoiding hashing and allocation once warm.
#[derive(Debug, Clone)]
pub struct DenseAccumulator {
    /// Dense value per raw vertex id; valid only when the epoch matches.
    values: Vec<f64>,
    /// Epoch stamp per slot; `epochs[i] == epoch` means `values[i]` is live.
    epochs: Vec<u32>,
    /// Current generation. Starts at 1 so zero-initialized slots are stale.
    epoch: u32,
    /// Raw ids of live slots, in first-touch order (sorted on `finish`).
    touched: Vec<u32>,
}

impl Default for DenseAccumulator {
    fn default() -> Self {
        DenseAccumulator {
            values: Vec::new(),
            epochs: Vec::new(),
            epoch: 1,
            touched: Vec::new(),
        }
    }
}

impl DenseAccumulator {
    /// Create an empty workspace. Slots grow on demand as ids are touched.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create with slots preallocated for ids `0..n`.
    pub fn with_capacity(n: usize) -> Self {
        DenseAccumulator {
            values: vec![0.0; n],
            epochs: vec![0; n],
            epoch: 1,
            touched: Vec::new(),
        }
    }

    /// `self[v] += x`.
    #[inline]
    pub fn add(&mut self, v: VertexId, x: f64) {
        let i = v.0 as usize;
        if i >= self.values.len() {
            self.values.resize(i + 1, 0.0);
            self.epochs.resize(i + 1, 0);
        }
        if self.epochs[i] == self.epoch {
            self.values[i] += x;
        } else {
            self.epochs[i] = self.epoch;
            self.values[i] = x;
            self.touched.push(v.0);
        }
    }

    /// Number of distinct ids touched this generation. An upper bound on the
    /// nnz of the vector [`DenseAccumulator::finish`] would produce (touched
    /// slots that cancelled to exactly zero still count).
    pub fn len(&self) -> usize {
        self.touched.len()
    }

    /// Whether nothing has been accumulated this generation.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Gather the accumulated entries into a [`SparseVec`] (id-sorted, exact
    /// zeros dropped) and reset the workspace for reuse.
    pub fn finish(&mut self) -> SparseVec {
        self.touched.sort_unstable();
        let mut entries = Vec::with_capacity(self.touched.len());
        for &i in &self.touched {
            let x = self.values[i as usize];
            if x != 0.0 {
                entries.push((VertexId(i), x));
            }
        }
        self.clear();
        SparseVec { entries }
    }

    /// Discard everything accumulated this generation, making the workspace
    /// ready for reuse. O(touched), except once every `u32::MAX` generations
    /// when the epoch wraps and every stamp is rewritten.
    pub fn clear(&mut self) {
        self.touched.clear();
        if self.epoch == u32::MAX {
            for e in &mut self.epochs {
                *e = 0;
            }
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.values.capacity() * std::mem::size_of::<f64>()
            + self.epochs.capacity() * std::mem::size_of::<u32>()
            + self.touched.capacity() * std::mem::size_of::<u32>()
            + std::mem::size_of::<Self>()
    }
}

/// Accumulator for building a [`SparseVec`] by scattered additions.
///
/// Uses a hash map internally and sorts once on
/// [`SparseVecBuilder::finish`]. Retained for tests, IO, and as the
/// benchmark baseline kernel; hot-path propagation uses the reusable
/// [`DenseAccumulator`] workspace instead.
#[derive(Debug, Default)]
pub struct SparseVecBuilder {
    map: FxHashMap<VertexId, f64>,
}

impl SparseVecBuilder {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create with capacity for `n` distinct ids.
    pub fn with_capacity(n: usize) -> Self {
        SparseVecBuilder {
            map: FxHashMap::with_capacity_and_hasher(n, Default::default()),
        }
    }

    /// `self[v] += x`.
    #[inline]
    pub fn add(&mut self, v: VertexId, x: f64) {
        *self.map.entry(v).or_insert(0.0) += x;
    }

    /// Number of distinct ids accumulated so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing has been accumulated.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Sort and freeze into a [`SparseVec`].
    pub fn finish(self) -> SparseVec {
        SparseVec::from_map(self.map)
    }
}

/// A sparse matrix in CSR form, mapping *row* vertex ids to sparse rows over
/// *column* vertex ids.
///
/// Rows are keyed by global vertex id but stored compactly: `row_index` maps
/// a vertex id to a row slot (dense `Vec` over the full id space would waste
/// memory for type-local matrices). Used to pre-materialize length-2
/// meta-path relations (Section 6.2).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SparseMatrix {
    /// Sorted list of row vertex ids present in the matrix.
    rows: Vec<VertexId>,
    /// CSR offsets: row `i` occupies `cols_vals[offsets[i]..offsets[i+1]]`.
    offsets: Vec<u32>,
    /// Concatenated (column id, value) pairs, sorted by column within a row.
    cols_vals: Vec<(VertexId, f64)>,
}

impl SparseMatrix {
    /// Build from per-row sparse vectors. `rows` need not be sorted;
    /// duplicate row ids are rejected by debug assertion.
    pub fn from_rows(mut rows: Vec<(VertexId, SparseVec)>) -> Self {
        rows.sort_unstable_by_key(|(v, _)| *v);
        debug_assert!(
            rows.windows(2).all(|w| w[0].0 != w[1].0),
            "duplicate row ids in SparseMatrix::from_rows"
        );
        let mut row_ids = Vec::with_capacity(rows.len());
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        let total: usize = rows.iter().map(|(_, r)| r.nnz()).sum();
        let mut cols_vals = Vec::with_capacity(total);
        offsets.push(0u32);
        for (v, row) in rows {
            row_ids.push(v);
            cols_vals.extend(row.iter());
            offsets.push(cols_vals.len() as u32);
        }
        SparseMatrix {
            rows: row_ids,
            offsets,
            cols_vals,
        }
    }

    /// The raw columns backing this matrix, for serialization:
    /// `(row ids, offsets, (column, value) pairs)`. Row ids are sorted
    /// ascending; `offsets` has `row_count() + 1` entries delimiting each
    /// row's pairs; columns are sorted within each row.
    pub fn raw_parts(&self) -> (&[VertexId], &[u32], &[(VertexId, f64)]) {
        (&self.rows, &self.offsets, &self.cols_vals)
    }

    /// Rebuild a matrix from raw columns (the inverse of
    /// [`SparseMatrix::raw_parts`]), validating the structural invariants
    /// the accessors rely on: strictly ascending row ids, a monotone offsets
    /// column of length `rows + 1` starting at 0 and ending at
    /// `cols_vals.len()`, and sorted columns within each row. Never panics
    /// on malformed input.
    pub fn from_raw_parts(
        rows: Vec<VertexId>,
        offsets: Vec<u32>,
        cols_vals: Vec<(VertexId, f64)>,
    ) -> Result<Self, GraphError> {
        let raw_err = |message: String| GraphError::Format { line: 0, message };
        if offsets.len() != rows.len() + 1 {
            return Err(raw_err(format!(
                "matrix offsets: expected {} entries, found {}",
                rows.len() + 1,
                offsets.len()
            )));
        }
        if rows.windows(2).any(|w| w[0] >= w[1]) {
            return Err(raw_err("matrix row ids not strictly ascending".into()));
        }
        if offsets.first() != Some(&0) || offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(raw_err("matrix offsets not monotone from 0".into()));
        }
        if offsets[rows.len()] as usize != cols_vals.len() {
            return Err(raw_err(format!(
                "matrix offsets end at {} but {} pairs are stored",
                offsets[rows.len()],
                cols_vals.len()
            )));
        }
        for (i, w) in offsets.windows(2).enumerate() {
            let row = &cols_vals[w[0] as usize..w[1] as usize];
            if row.windows(2).any(|p| p[0].0 > p[1].0) {
                return Err(raw_err(format!("matrix row {i}: columns not sorted")));
            }
        }
        Ok(SparseMatrix {
            rows,
            offsets,
            cols_vals,
        })
    }

    /// Number of stored rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Total stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.cols_vals.len()
    }

    /// Whether the matrix stores a row for vertex `v`.
    pub fn has_row(&self, v: VertexId) -> bool {
        self.rows.binary_search(&v).is_ok()
    }

    /// The row of vertex `v` as a slice of `(column, value)` pairs, or `None`
    /// if the row is not stored. A stored-but-empty row returns `Some(&[])`.
    pub fn row(&self, v: VertexId) -> Option<&[(VertexId, f64)]> {
        let i = self.rows.binary_search(&v).ok()?;
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        Some(&self.cols_vals[lo..hi])
    }

    /// The row of vertex `v` as an owned [`SparseVec`].
    pub fn row_vec(&self, v: VertexId) -> Option<SparseVec> {
        self.row(v)
            .map(|slice| SparseVec::from_entries(slice.to_vec()))
    }

    /// Iterate stored rows as `(row id, row slice)`.
    pub fn iter_rows(&self) -> impl Iterator<Item = (VertexId, &[(VertexId, f64)])> + '_ {
        self.rows.iter().enumerate().map(move |(i, v)| {
            let lo = self.offsets[i] as usize;
            let hi = self.offsets[i + 1] as usize;
            (*v, &self.cols_vals[lo..hi])
        })
    }

    /// Sparse vector–matrix product `x · M`: propagates a frontier one
    /// materialized hop. Rows of `M` absent from the index contribute
    /// nothing; callers that need exactness must ensure coverage (the SPM
    /// engine falls back to traversal instead).
    pub fn vec_mul(&self, x: &SparseVec) -> SparseVec {
        self.vec_mul_with(x, &mut DenseAccumulator::new())
    }

    /// [`SparseMatrix::vec_mul`] scattering through a caller-provided
    /// workspace, so repeated products reuse one allocation.
    pub fn vec_mul_with(&self, x: &SparseVec, ws: &mut DenseAccumulator) -> SparseVec {
        for (v, weight) in x.iter() {
            if let Some(row) = self.row(v) {
                for &(u, m) in row {
                    ws.add(u, weight * m);
                }
            }
        }
        ws.finish()
    }

    /// Approximate heap footprint in bytes (Figure 5b accounting).
    pub fn size_bytes(&self) -> usize {
        self.rows.capacity() * std::mem::size_of::<VertexId>()
            + self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.cols_vals.capacity() * std::mem::size_of::<(VertexId, f64)>()
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(id: u32) -> VertexId {
        VertexId(id)
    }

    fn sv(pairs: &[(u32, f64)]) -> SparseVec {
        SparseVec::from_entries(pairs.iter().map(|&(i, x)| (v(i), x)).collect())
    }

    #[test]
    fn from_entries_sorts_merges_drops_zeros() {
        let x = sv(&[(3, 1.0), (1, 2.0), (3, 4.0), (2, 0.0)]);
        assert_eq!(x.nnz(), 2);
        assert_eq!(x.get(v(1)), 2.0);
        assert_eq!(x.get(v(3)), 5.0);
        assert_eq!(x.get(v(2)), 0.0);
        let ids: Vec<u32> = x.support().map(|u| u.0).collect();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn unit_vector() {
        let x = SparseVec::unit(v(7));
        assert_eq!(x.nnz(), 1);
        assert_eq!(x.get(v(7)), 1.0);
        assert_eq!(x.sum(), 1.0);
    }

    #[test]
    fn dot_product_merge() {
        let a = sv(&[(1, 2.0), (3, 1.0), (5, 3.0)]);
        let b = sv(&[(1, 4.0), (2, 9.0), (5, 6.0)]);
        // 2*4 + 3*6 = 26
        assert_eq!(a.dot(&b), 26.0);
        assert_eq!(b.dot(&a), 26.0);
        assert_eq!(a.dot(&SparseVec::new()), 0.0);
    }

    #[test]
    fn norms() {
        let a = sv(&[(1, 3.0), (2, 4.0)]);
        assert_eq!(a.norm2_sq(), 25.0);
        assert_eq!(a.norm2(), 5.0);
        assert_eq!(a.sum(), 7.0);
    }

    #[test]
    fn distance_squared() {
        let a = sv(&[(1, 1.0), (2, 2.0)]);
        let b = sv(&[(2, 2.0), (3, 3.0)]);
        // (1-0)² + (2-2)² + (0-3)² = 10
        assert_eq!(a.dist2_sq(&b), 10.0);
        assert_eq!(b.dist2_sq(&a), 10.0);
        assert_eq!(a.dist2_sq(&a), 0.0);
    }

    #[test]
    fn add_assign_merges_and_cancels() {
        let mut a = sv(&[(1, 1.0), (2, -3.0)]);
        let b = sv(&[(2, 3.0), (4, 5.0)]);
        a.add_assign(&b);
        assert_eq!(a, sv(&[(1, 1.0), (4, 5.0)]));

        let mut empty = SparseVec::new();
        empty.add_assign(&b);
        assert_eq!(empty, b);
    }

    #[test]
    fn scale_and_zero_scale() {
        let mut a = sv(&[(1, 2.0)]);
        a.scale(3.0);
        assert_eq!(a.get(v(1)), 6.0);
        a.scale(0.0);
        assert!(a.is_empty());
    }

    #[test]
    fn builder_accumulates() {
        let mut b = SparseVecBuilder::new();
        assert!(b.is_empty());
        b.add(v(5), 1.0);
        b.add(v(2), 2.0);
        b.add(v(5), 1.5);
        assert_eq!(b.len(), 2);
        let x = b.finish();
        assert_eq!(x, sv(&[(2, 2.0), (5, 2.5)]));
    }

    #[test]
    fn from_iterator() {
        let x: SparseVec = [(v(2), 1.0), (v(1), 1.0)].into_iter().collect();
        assert_eq!(x.nnz(), 2);
    }

    #[test]
    fn matrix_rows_and_lookup() {
        let m = SparseMatrix::from_rows(vec![
            (v(10), sv(&[(1, 1.0), (2, 2.0)])),
            (v(5), sv(&[(3, 3.0)])),
        ]);
        assert_eq!(m.row_count(), 2);
        assert_eq!(m.nnz(), 3);
        assert!(m.has_row(v(5)));
        assert!(!m.has_row(v(6)));
        assert_eq!(m.row(v(10)).unwrap(), &[(v(1), 1.0), (v(2), 2.0)]);
        assert_eq!(m.row_vec(v(5)).unwrap(), sv(&[(3, 3.0)]));
        assert!(m.row(v(99)).is_none());
    }

    #[test]
    fn matrix_stored_empty_row_distinct_from_missing() {
        let m = SparseMatrix::from_rows(vec![(v(1), SparseVec::new())]);
        assert_eq!(m.row(v(1)).unwrap(), &[]);
        assert!(m.row(v(2)).is_none());
    }

    #[test]
    fn vec_mul_propagates() {
        // M: row 1 -> {10:2}, row 2 -> {10:1, 11:3}
        let m = SparseMatrix::from_rows(vec![
            (v(1), sv(&[(10, 2.0)])),
            (v(2), sv(&[(10, 1.0), (11, 3.0)])),
        ]);
        let x = sv(&[(1, 1.0), (2, 2.0)]);
        let y = m.vec_mul(&x);
        // y[10] = 1*2 + 2*1 = 4 ; y[11] = 2*3 = 6
        assert_eq!(y, sv(&[(10, 4.0), (11, 6.0)]));
    }

    #[test]
    fn vec_mul_missing_rows_contribute_nothing() {
        let m = SparseMatrix::from_rows(vec![(v(1), sv(&[(10, 2.0)]))]);
        let x = sv(&[(1, 1.0), (99, 5.0)]);
        assert_eq!(m.vec_mul(&x), sv(&[(10, 2.0)]));
    }

    #[test]
    fn size_accounting_nonzero() {
        let m = SparseMatrix::from_rows(vec![(v(1), sv(&[(10, 2.0)]))]);
        assert!(m.size_bytes() > 0);
        assert!(sv(&[(1, 1.0)]).size_bytes() > 0);
    }

    #[test]
    fn dense_accumulator_matches_builder() {
        let adds = [(5u32, 1.0), (2, 2.0), (5, 1.5), (9, -4.0), (2, -2.0)];
        let mut dense = DenseAccumulator::new();
        let mut hashed = SparseVecBuilder::new();
        for &(i, x) in &adds {
            dense.add(v(i), x);
            hashed.add(v(i), x);
        }
        assert_eq!(dense.len(), 3);
        // id 2 cancelled to exactly zero: dropped by both kernels.
        assert_eq!(dense.finish(), hashed.finish());
    }

    #[test]
    fn dense_accumulator_reuse_is_clean() {
        let mut ws = DenseAccumulator::new();
        ws.add(v(3), 7.0);
        ws.add(v(1), 1.0);
        assert_eq!(ws.finish(), sv(&[(1, 1.0), (3, 7.0)]));
        // Second generation must not see first-generation residue.
        assert!(ws.is_empty());
        ws.add(v(3), 2.0);
        assert_eq!(ws.finish(), sv(&[(3, 2.0)]));
        // Cleared mid-accumulation: nothing leaks into the next finish.
        ws.add(v(5), 9.0);
        ws.clear();
        ws.add(v(6), 1.0);
        assert_eq!(ws.finish(), sv(&[(6, 1.0)]));
    }

    #[test]
    fn dense_accumulator_epoch_wrap() {
        let mut ws = DenseAccumulator::with_capacity(4);
        ws.add(v(2), 5.0);
        let _ = ws.finish();
        // Force the wrap: the next clear() must rewrite stale stamps so old
        // generations cannot alias the restarted epoch.
        ws.epoch = u32::MAX;
        ws.add(v(2), 1.0);
        ws.add(v(3), 2.0);
        assert_eq!(ws.finish(), sv(&[(2, 1.0), (3, 2.0)]));
        assert_eq!(ws.epoch, 1);
        ws.add(v(3), 4.0);
        assert_eq!(ws.finish(), sv(&[(3, 4.0)]));
    }

    #[test]
    fn vec_mul_with_reuses_workspace() {
        let m = SparseMatrix::from_rows(vec![
            (v(1), sv(&[(10, 2.0)])),
            (v(2), sv(&[(10, 1.0), (11, 3.0)])),
        ]);
        let mut ws = DenseAccumulator::new();
        let x = sv(&[(1, 1.0), (2, 2.0)]);
        assert_eq!(m.vec_mul_with(&x, &mut ws), m.vec_mul(&x));
        // Reuse for a different frontier.
        let y = sv(&[(2, 1.0)]);
        assert_eq!(m.vec_mul_with(&y, &mut ws), sv(&[(10, 1.0), (11, 3.0)]));
    }

    #[test]
    fn dot_gallop_matches_merge_on_skewed_operands() {
        // `large` has 128 entries, `small` has 3 → gallop path taken.
        let large = SparseVec::from_entries((0..128).map(|i| (v(i * 3), 0.5 + i as f64)).collect());
        let small = sv(&[(0, 2.0), (9, 1.0), (300, 4.0)]);
        assert!(large.nnz() >= GALLOP_FACTOR * small.nnz());
        let expected = small.dot_merge(&large);
        assert_eq!(small.dot(&large), expected);
        assert_eq!(large.dot(&small), expected);
        // Disjoint supports gallop to zero.
        let disjoint = sv(&[(1, 1.0), (2, 1.0), (400, 1.0)]);
        assert_eq!(disjoint.dot(&large), 0.0);
    }

    #[test]
    fn dot_gallop_small_past_end_of_large() {
        let large = SparseVec::from_entries((0..64).map(|i| (v(i), 1.0)).collect());
        // Entries beyond the large vector's id range must not probe out of
        // bounds; the one overlapping id still counts.
        let small = sv(&[(63, 2.0), (100, 5.0), (200, 5.0)]);
        assert_eq!(small.dot(&large), 2.0);
    }

    #[test]
    fn iter_rows_in_sorted_order() {
        let m = SparseMatrix::from_rows(vec![(v(9), sv(&[(1, 1.0)])), (v(3), sv(&[(2, 2.0)]))]);
        let order: Vec<u32> = m.iter_rows().map(|(r, _)| r.0).collect();
        assert_eq!(order, vec![3, 9]);
    }
}
