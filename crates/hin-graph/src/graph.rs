//! The heterogeneous information network itself: typed vertices, named
//! lookup, and per-edge-type CSR adjacency in both directions.

use crate::error::GraphError;
use crate::ids::{EdgeTypeId, VertexId, VertexTypeId};
use crate::schema::Schema;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// Direction of an adjacency lookup relative to an edge type's declared
/// `src → dst` orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Forward,
    Reverse,
}

/// Compressed sparse row adjacency for one `(edge type, direction)`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct Csr {
    /// `offsets[v.index()]..offsets[v.index()+1]` indexes into `targets`.
    offsets: Vec<u32>,
    targets: Vec<VertexId>,
}

impl Csr {
    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let i = v.index();
        if i + 1 >= self.offsets.len() {
            return &[];
        }
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// An immutable heterogeneous information network (Definition 1).
///
/// Construct with [`GraphBuilder`]. Every vertex has a type from the
/// [`Schema`] and a name unique within its type. Adjacency is stored per edge
/// type in both directions, so meta-path traversal can walk links either way
/// (undirected semantics, as the paper's bibliographic network uses).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HinGraph {
    schema: Schema,
    vertex_types: Vec<VertexTypeId>,
    vertex_names: Vec<String>,
    /// Per vertex type: all vertex ids of that type, ascending.
    by_type: Vec<Vec<VertexId>>,
    /// Per vertex type: name → id.
    #[serde(skip)]
    name_index: Vec<FxHashMap<String, VertexId>>,
    /// Per edge type: forward CSR (src → dst).
    forward: Vec<Csr>,
    /// Per edge type: reverse CSR (dst → src).
    reverse: Vec<Csr>,
    edge_count: usize,
}

impl HinGraph {
    /// The schema this network conforms to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertex_types.len()
    }

    /// Total number of edges (each undirected link counted once).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The type of vertex `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn vertex_type(&self, v: VertexId) -> VertexTypeId {
        self.vertex_types[v.index()]
    }

    /// The name of vertex `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn vertex_name(&self, v: VertexId) -> &str {
        &self.vertex_names[v.index()]
    }

    /// Whether `v` is a valid vertex id in this graph.
    pub fn contains(&self, v: VertexId) -> bool {
        v.index() < self.vertex_types.len()
    }

    /// Look up a vertex by type and exact name.
    pub fn vertex_by_name(&self, vtype: VertexTypeId, name: &str) -> Option<VertexId> {
        self.name_index.get(vtype.index())?.get(name).copied()
    }

    /// All vertices of a type, in ascending id order.
    pub fn vertices_of_type(&self, vtype: VertexTypeId) -> &[VertexId] {
        self.by_type
            .get(vtype.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of vertices of a type.
    pub fn count_of_type(&self, vtype: VertexTypeId) -> usize {
        self.vertices_of_type(vtype).len()
    }

    /// Iterate all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertex_types.len()).map(|i| VertexId(i as u32))
    }

    /// Neighbors of `v` along one specific edge type, in its forward
    /// (`src → dst`) orientation.
    pub fn neighbors_forward(&self, v: VertexId, et: EdgeTypeId) -> &[VertexId] {
        self.forward[et.index()].neighbors(v)
    }

    /// Neighbors of `v` along one specific edge type, traversed backwards
    /// (`dst → src`).
    pub fn neighbors_reverse(&self, v: VertexId, et: EdgeTypeId) -> &[VertexId] {
        self.reverse[et.index()].neighbors(v)
    }

    /// Plan the adjacency lists needed to step from a vertex of type `from`
    /// to vertices of type `to`, considering every edge type in the schema
    /// that connects the pair in either orientation.
    fn step_plan(&self, from: VertexTypeId, to: VertexTypeId) -> Vec<(EdgeTypeId, Direction)> {
        let mut plan = Vec::new();
        for &et in self.schema.edge_types_from_to(from, to) {
            plan.push((et, Direction::Forward));
        }
        for &et in self.schema.edge_types_from_to(to, from) {
            // For a self-typed edge type (from == to) this adds the same edge
            // type again with Reverse, which is required: a stored edge x→y
            // appears in x's forward list and y's reverse list only, so both
            // directions are needed for undirected semantics. Each edge is
            // still seen exactly once per endpoint (a literal self-loop x→x
            // is seen twice, the usual undirected-degree convention).
            plan.push((et, Direction::Reverse));
        }
        plan
    }

    /// Iterate all neighbors of `v` that have type `to_type`, across every
    /// connecting edge type (both orientations). Multiplicity is preserved:
    /// parallel edges yield repeated ids.
    ///
    /// Returns an empty iterator when the schema has no link between the
    /// types — callers validating meta-paths up front never hit that case.
    pub fn step_neighbors<'g>(
        &'g self,
        v: VertexId,
        to_type: VertexTypeId,
    ) -> impl Iterator<Item = VertexId> + 'g {
        let from = self.vertex_type(v);
        let plan = self.step_plan(from, to_type);
        plan.into_iter().flat_map(move |(et, dir)| {
            match dir {
                Direction::Forward => self.neighbors_forward(v, et),
                Direction::Reverse => self.neighbors_reverse(v, et),
            }
            .iter()
            .copied()
        })
    }

    /// The number of `to_type`-typed neighbors of `v` (with multiplicity).
    pub fn step_degree(&self, v: VertexId, to_type: VertexTypeId) -> usize {
        let from = self.vertex_type(v);
        self.step_plan(from, to_type)
            .into_iter()
            .map(|(et, dir)| match dir {
                Direction::Forward => self.neighbors_forward(v, et).len(),
                Direction::Reverse => self.neighbors_reverse(v, et).len(),
            })
            .sum()
    }

    /// A lightweight display-friendly view of a vertex.
    pub fn vertex_ref(&self, v: VertexId) -> VertexRef<'_> {
        VertexRef { graph: self, id: v }
    }

    /// Restore derived indexes after deserialization with `serde`.
    pub fn rebuild_indexes(&mut self) {
        self.schema.rebuild_indexes();
        self.name_index = vec![FxHashMap::default(); self.schema.vertex_type_count()];
        for (i, name) in self.vertex_names.iter().enumerate() {
            let v = VertexId(i as u32);
            let t = self.vertex_types[i];
            self.name_index[t.index()].insert(name.clone(), v);
        }
    }
}

/// A borrowed view of one vertex, carrying its graph for name/type access.
#[derive(Clone, Copy)]
pub struct VertexRef<'g> {
    graph: &'g HinGraph,
    /// The vertex id this view refers to.
    pub id: VertexId,
}

impl VertexRef<'_> {
    /// The vertex's name.
    pub fn name(&self) -> &str {
        self.graph.vertex_name(self.id)
    }

    /// The vertex's type id.
    pub fn vtype(&self) -> VertexTypeId {
        self.graph.vertex_type(self.id)
    }

    /// The vertex's type name.
    pub fn type_name(&self) -> &str {
        self.graph.schema().vertex_type_name(self.vtype())
    }
}

impl std::fmt::Debug for VertexRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{{{:?}}}", self.type_name(), self.name())
    }
}

/// A resolved edge occurrence (used by iteration helpers and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef {
    /// Source endpoint (in the edge type's declared orientation).
    pub src: VertexId,
    /// Destination endpoint.
    pub dst: VertexId,
    /// The edge's type.
    pub etype: EdgeTypeId,
}

/// Mutable builder for [`HinGraph`].
#[derive(Debug)]
pub struct GraphBuilder {
    schema: Schema,
    vertex_types: Vec<VertexTypeId>,
    vertex_names: Vec<String>,
    name_index: Vec<FxHashMap<String, VertexId>>,
    edges: Vec<EdgeRef>,
}

impl GraphBuilder {
    /// Start building a network over `schema`.
    pub fn new(schema: Schema) -> Self {
        let n = schema.vertex_type_count();
        GraphBuilder {
            schema,
            vertex_types: Vec::new(),
            vertex_names: Vec::new(),
            name_index: vec![FxHashMap::default(); n],
            edges: Vec::new(),
        }
    }

    /// The schema being built against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of vertices added so far.
    pub fn vertex_count(&self) -> usize {
        self.vertex_types.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Add a vertex of `vtype` named `name`. Names must be unique within a
    /// type.
    pub fn add_vertex(
        &mut self,
        vtype: VertexTypeId,
        name: impl Into<String>,
    ) -> Result<VertexId, GraphError> {
        if vtype.index() >= self.schema.vertex_type_count() {
            return Err(GraphError::UnknownVertexTypeId(vtype));
        }
        if self.vertex_types.len() >= u32::MAX as usize {
            return Err(GraphError::TooManyVertices);
        }
        let name = name.into();
        let id = VertexId(self.vertex_types.len() as u32);
        match self.name_index[vtype.index()].entry(name.clone()) {
            std::collections::hash_map::Entry::Occupied(_) => {
                Err(GraphError::DuplicateVertex { vtype, name })
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(id);
                self.vertex_types.push(vtype);
                self.vertex_names.push(name);
                Ok(id)
            }
        }
    }

    /// Add the vertex if absent, otherwise return the existing id.
    pub fn get_or_add_vertex(
        &mut self,
        vtype: VertexTypeId,
        name: &str,
    ) -> Result<VertexId, GraphError> {
        if let Some(&id) = self.name_index.get(vtype.index()).and_then(|m| m.get(name)) {
            return Ok(id);
        }
        self.add_vertex(vtype, name)
    }

    /// Look up a vertex added earlier.
    pub fn vertex_by_name(&self, vtype: VertexTypeId, name: &str) -> Option<VertexId> {
        self.name_index.get(vtype.index())?.get(name).copied()
    }

    /// Add an edge between `u` and `v`, inferring the edge type from the
    /// endpoint types. Fails if the schema defines no edge type between the
    /// two types. If the schema declares the type as `type(v) → type(u)`, the
    /// edge is stored flipped so its orientation always matches its type.
    ///
    /// If multiple edge types connect the same type pair, the first declared
    /// one is used; call [`GraphBuilder::add_edge_typed`] to disambiguate.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<EdgeTypeId, GraphError> {
        let (ut, vt) = (self.vertex_type_of(u)?, self.vertex_type_of(v)?);
        if let Some(&et) = self.schema.edge_types_from_to(ut, vt).first() {
            self.edges.push(EdgeRef {
                src: u,
                dst: v,
                etype: et,
            });
            return Ok(et);
        }
        if let Some(&et) = self.schema.edge_types_from_to(vt, ut).first() {
            self.edges.push(EdgeRef {
                src: v,
                dst: u,
                etype: et,
            });
            return Ok(et);
        }
        Err(GraphError::NoEdgeTypeBetween { src: ut, dst: vt })
    }

    /// Add an edge with an explicit edge type. `u` must have the type's
    /// `src` type and `v` its `dst` type (or vice versa, in which case the
    /// edge is stored flipped).
    pub fn add_edge_typed(
        &mut self,
        u: VertexId,
        v: VertexId,
        etype: EdgeTypeId,
    ) -> Result<(), GraphError> {
        let (ut, vt) = (self.vertex_type_of(u)?, self.vertex_type_of(v)?);
        let info = self.schema.edge_type(etype);
        if info.src == ut && info.dst == vt {
            self.edges.push(EdgeRef {
                src: u,
                dst: v,
                etype,
            });
            Ok(())
        } else if info.src == vt && info.dst == ut {
            self.edges.push(EdgeRef {
                src: v,
                dst: u,
                etype,
            });
            Ok(())
        } else {
            Err(GraphError::NoEdgeTypeBetween { src: ut, dst: vt })
        }
    }

    fn vertex_type_of(&self, v: VertexId) -> Result<VertexTypeId, GraphError> {
        self.vertex_types
            .get(v.index())
            .copied()
            .ok_or(GraphError::UnknownVertex(v))
    }

    /// Freeze into an immutable [`HinGraph`] with CSR adjacency.
    pub fn build(self) -> HinGraph {
        let n = self.vertex_types.len();
        let et_count = self.schema.edge_type_count();

        // Degree counting pass.
        let mut fwd_deg = vec![vec![0u32; n]; et_count];
        let mut rev_deg = vec![vec![0u32; n]; et_count];
        for e in &self.edges {
            fwd_deg[e.etype.index()][e.src.index()] += 1;
            rev_deg[e.etype.index()][e.dst.index()] += 1;
        }

        let build_csr = |deg: &[u32], fill: &mut dyn FnMut(&mut Vec<u32>, &mut Vec<VertexId>)| {
            let mut offsets = Vec::with_capacity(n + 1);
            let mut total = 0u32;
            offsets.push(0);
            for &d in deg {
                total += d;
                offsets.push(total);
            }
            let mut targets = vec![VertexId(0); total as usize];
            fill(&mut offsets, &mut targets);
            Csr { offsets, targets }
        };

        let mut forward = Vec::with_capacity(et_count);
        let mut reverse = Vec::with_capacity(et_count);
        for et in 0..et_count {
            // Forward
            let mut cursor = {
                let mut c = Vec::with_capacity(n + 1);
                let mut acc = 0u32;
                c.push(0);
                for &d in &fwd_deg[et] {
                    acc += d;
                    c.push(acc);
                }
                c
            };
            let mut csr = build_csr(&fwd_deg[et], &mut |_off, targets| {
                for e in &self.edges {
                    if e.etype.index() != et {
                        continue;
                    }
                    let slot = cursor[e.src.index()];
                    targets[slot as usize] = e.dst;
                    cursor[e.src.index()] += 1;
                }
            });
            // Keep neighbor lists sorted for deterministic iteration.
            sort_csr(&mut csr, n);
            forward.push(csr);

            let mut cursor = {
                let mut c = Vec::with_capacity(n + 1);
                let mut acc = 0u32;
                c.push(0);
                for &d in &rev_deg[et] {
                    acc += d;
                    c.push(acc);
                }
                c
            };
            let mut csr = build_csr(&rev_deg[et], &mut |_off, targets| {
                for e in &self.edges {
                    if e.etype.index() != et {
                        continue;
                    }
                    let slot = cursor[e.dst.index()];
                    targets[slot as usize] = e.src;
                    cursor[e.dst.index()] += 1;
                }
            });
            sort_csr(&mut csr, n);
            reverse.push(csr);
        }

        let mut by_type = vec![Vec::new(); self.schema.vertex_type_count()];
        for (i, t) in self.vertex_types.iter().enumerate() {
            by_type[t.index()].push(VertexId(i as u32));
        }

        HinGraph {
            schema: self.schema,
            vertex_types: self.vertex_types,
            vertex_names: self.vertex_names,
            by_type,
            name_index: self.name_index,
            forward,
            reverse,
            edge_count: self.edges.len(),
        }
    }
}

fn sort_csr(csr: &mut Csr, n: usize) {
    for v in 0..n {
        let lo = csr.offsets[v] as usize;
        let hi = csr.offsets[v + 1] as usize;
        csr.targets[lo..hi].sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::bibliographic_schema;

    /// Builds the instantiated network of Figure 1(b): authors Ava, Liam,
    /// Zoe; venues ICDE, KDD; and enough papers that
    /// |π_APA(Ava, Liam)| = 1, |π_APA(Liam, Zoe)| = 2,
    /// Φ_APA(Zoe) = [Ava:1, Liam:2, Zoe:5], Φ_APV(Zoe) = [ICDE:2, KDD:3].
    pub(crate) fn figure1_network() -> HinGraph {
        let schema = bibliographic_schema();
        let author = schema.vertex_type_by_name("author").unwrap();
        let paper = schema.vertex_type_by_name("paper").unwrap();
        let venue = schema.vertex_type_by_name("venue").unwrap();
        let mut gb = GraphBuilder::new(schema);
        let ava = gb.add_vertex(author, "Ava").unwrap();
        let liam = gb.add_vertex(author, "Liam").unwrap();
        let zoe = gb.add_vertex(author, "Zoe").unwrap();
        let icde = gb.add_vertex(venue, "ICDE").unwrap();
        let kdd = gb.add_vertex(venue, "KDD").unwrap();
        // Zoe's 5 papers: p1 with Ava+Liam? — pick a layout satisfying the
        // counts: p1 (Ava, Zoe) ICDE; p2, p3 (Liam, Zoe) in ICDE, KDD;
        // p4, p5 (Zoe) KDD. Then π_APA(Ava,Zoe)=1, π_APA(Liam,Zoe)=2,
        // Φ_APV(Zoe) = [ICDE:2, KDD:3]. For π_APA(Ava,Liam)=1 we need one
        // joint Ava–Liam paper not involving Zoe: p6 (Ava, Liam) ICDE.
        let mk = |gb: &mut GraphBuilder, name: &str, authors: &[VertexId], ven: VertexId| {
            let p = gb.add_vertex(paper, name).unwrap();
            for &a in authors {
                gb.add_edge(a, p).unwrap();
            }
            gb.add_edge(p, ven).unwrap();
            p
        };
        mk(&mut gb, "p1", &[ava, zoe], icde);
        mk(&mut gb, "p2", &[liam, zoe], icde);
        mk(&mut gb, "p3", &[liam, zoe], kdd);
        mk(&mut gb, "p4", &[zoe], kdd);
        mk(&mut gb, "p5", &[zoe], kdd);
        mk(&mut gb, "p6", &[ava, liam], icde);
        gb.build()
    }

    #[test]
    fn build_and_lookup() {
        let g = figure1_network();
        let author = g.schema().vertex_type_by_name("author").unwrap();
        let venue = g.schema().vertex_type_by_name("venue").unwrap();
        assert_eq!(g.vertex_count(), 11);
        assert_eq!(g.count_of_type(author), 3);
        let zoe = g.vertex_by_name(author, "Zoe").unwrap();
        assert_eq!(g.vertex_name(zoe), "Zoe");
        assert_eq!(g.vertex_type(zoe), author);
        assert!(g.vertex_by_name(venue, "Zoe").is_none());
        assert!(g.vertex_by_name(author, "Nobody").is_none());
    }

    #[test]
    fn step_neighbors_both_directions() {
        let g = figure1_network();
        let author = g.schema().vertex_type_by_name("author").unwrap();
        let paper = g.schema().vertex_type_by_name("paper").unwrap();
        let venue = g.schema().vertex_type_by_name("venue").unwrap();
        let zoe = g.vertex_by_name(author, "Zoe").unwrap();
        // Zoe wrote 5 papers (author -> paper is reverse of writes? no,
        // forward: writes: author -> paper).
        let zoe_papers: Vec<_> = g.step_neighbors(zoe, paper).collect();
        assert_eq!(zoe_papers.len(), 5);
        // A paper's authors traverse writes backwards.
        let p2 = g.vertex_by_name(paper, "p2").unwrap();
        let p2_authors: Vec<_> = g.step_neighbors(p2, author).collect();
        assert_eq!(p2_authors.len(), 2);
        // Venue -> papers traverses published_in backwards.
        let kdd = g.vertex_by_name(venue, "KDD").unwrap();
        assert_eq!(g.step_degree(kdd, paper), 3);
        // No schema link author -> venue directly.
        assert_eq!(g.step_degree(zoe, venue), 0);
    }

    #[test]
    fn add_edge_infers_and_flips() {
        let schema = bibliographic_schema();
        let author = schema.vertex_type_by_name("author").unwrap();
        let paper = schema.vertex_type_by_name("paper").unwrap();
        let mut gb = GraphBuilder::new(schema);
        let a = gb.add_vertex(author, "A").unwrap();
        let p = gb.add_vertex(paper, "P").unwrap();
        // Add in "wrong" order: paper first, author second — still works.
        gb.add_edge(p, a).unwrap();
        let g = gb.build();
        assert_eq!(g.step_degree(a, paper), 1);
        assert_eq!(g.step_degree(p, author), 1);
    }

    #[test]
    fn add_edge_without_schema_link_fails() {
        let schema = bibliographic_schema();
        let author = schema.vertex_type_by_name("author").unwrap();
        let venue = schema.vertex_type_by_name("venue").unwrap();
        let mut gb = GraphBuilder::new(schema);
        let a = gb.add_vertex(author, "A").unwrap();
        let v = gb.add_vertex(venue, "V").unwrap();
        assert!(matches!(
            gb.add_edge(a, v),
            Err(GraphError::NoEdgeTypeBetween { .. })
        ));
    }

    #[test]
    fn duplicate_vertex_name_same_type_fails() {
        let schema = bibliographic_schema();
        let author = schema.vertex_type_by_name("author").unwrap();
        let mut gb = GraphBuilder::new(schema);
        gb.add_vertex(author, "A").unwrap();
        assert!(matches!(
            gb.add_vertex(author, "A"),
            Err(GraphError::DuplicateVertex { .. })
        ));
    }

    #[test]
    fn same_name_different_types_ok() {
        let schema = bibliographic_schema();
        let author = schema.vertex_type_by_name("author").unwrap();
        let term = schema.vertex_type_by_name("term").unwrap();
        let mut gb = GraphBuilder::new(schema);
        let a = gb.add_vertex(author, "graph").unwrap();
        let t = gb.add_vertex(term, "graph").unwrap();
        assert_ne!(a, t);
    }

    #[test]
    fn get_or_add_vertex_is_idempotent() {
        let schema = bibliographic_schema();
        let author = schema.vertex_type_by_name("author").unwrap();
        let mut gb = GraphBuilder::new(schema);
        let a1 = gb.get_or_add_vertex(author, "A").unwrap();
        let a2 = gb.get_or_add_vertex(author, "A").unwrap();
        assert_eq!(a1, a2);
        assert_eq!(gb.vertex_count(), 1);
    }

    #[test]
    fn parallel_edges_preserved() {
        let schema = bibliographic_schema();
        let author = schema.vertex_type_by_name("author").unwrap();
        let paper = schema.vertex_type_by_name("paper").unwrap();
        let mut gb = GraphBuilder::new(schema);
        let a = gb.add_vertex(author, "A").unwrap();
        let p = gb.add_vertex(paper, "P").unwrap();
        gb.add_edge(a, p).unwrap();
        gb.add_edge(a, p).unwrap();
        let g = gb.build();
        assert_eq!(g.step_degree(a, paper), 2);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn add_edge_typed_validates_endpoints() {
        let schema = bibliographic_schema();
        let author = schema.vertex_type_by_name("author").unwrap();
        let paper = schema.vertex_type_by_name("paper").unwrap();
        let venue = schema.vertex_type_by_name("venue").unwrap();
        let writes = schema.edge_type_by_name("writes").unwrap();
        let mut gb = GraphBuilder::new(schema);
        let a = gb.add_vertex(author, "A").unwrap();
        let p = gb.add_vertex(paper, "P").unwrap();
        let v = gb.add_vertex(venue, "V").unwrap();
        gb.add_edge_typed(p, a, writes).unwrap(); // flipped ok
        assert!(gb.add_edge_typed(a, v, writes).is_err());
    }

    #[test]
    fn self_loop_edge_type_traversed_once() {
        let mut sb = crate::schema::SchemaBuilder::new();
        let person = sb.vertex_type("person");
        sb.edge_type("knows", person, person);
        let schema = sb.build().unwrap();
        let mut gb = GraphBuilder::new(schema);
        let x = gb.add_vertex(person, "x").unwrap();
        let y = gb.add_vertex(person, "y").unwrap();
        gb.add_edge(x, y).unwrap();
        let g = gb.build();
        // x -> y forward; y -> x only via reverse. Each seen exactly once.
        assert_eq!(g.step_neighbors(x, person).collect::<Vec<_>>(), vec![y]);
        assert_eq!(g.step_neighbors(y, person).collect::<Vec<_>>(), vec![x]);
    }

    #[test]
    fn vertex_ref_formats() {
        let g = figure1_network();
        let author = g.schema().vertex_type_by_name("author").unwrap();
        let zoe = g.vertex_by_name(author, "Zoe").unwrap();
        let r = g.vertex_ref(zoe);
        assert_eq!(r.name(), "Zoe");
        assert_eq!(r.type_name(), "author");
        assert_eq!(format!("{r:?}"), "author{\"Zoe\"}");
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new(bibliographic_schema()).build();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}
