//! The heterogeneous information network itself: typed vertices, named
//! lookup, and per-edge-type CSR adjacency in both directions.
//!
//! All persistent columns live behind [`Store`]s, so a graph is either
//! heap-owned (built with [`GraphBuilder`]) or a zero-copy view into a
//! memory-mapped snapshot (reconstructed through [`HinGraph::from_store`],
//! which re-validates every structural invariant so the accessors below can
//! stay panic-free on well-typed ids).

use crate::error::GraphError;
use crate::ids::{EdgeTypeId, VertexId, VertexTypeId};
use crate::schema::Schema;
use crate::store::{CsrStore, GraphColumns, GraphStore, Store};
use rustc_hash::FxHashMap;

/// Direction of an adjacency lookup relative to an edge type's declared
/// `src → dst` orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Forward,
    Reverse,
}

/// Compressed sparse row adjacency for one `(edge type, direction)`.
#[derive(Debug, Clone, Default)]
struct Csr {
    /// `offsets[v.index()]..offsets[v.index()+1]` indexes into `targets`.
    offsets: Store<u32>,
    targets: Store<VertexId>,
}

impl Csr {
    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let i = v.index();
        if i + 1 >= self.offsets.len() {
            return &[];
        }
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// An immutable heterogeneous information network (Definition 1).
///
/// Construct with [`GraphBuilder`], or rehydrate from persisted columns with
/// [`HinGraph::from_store`]. Every vertex has a type from the [`Schema`] and
/// a name unique within its type. Adjacency is stored per edge type in both
/// directions, so meta-path traversal can walk links either way (undirected
/// semantics, as the paper's bibliographic network uses).
///
/// Vertex names are interned into one blob plus an offset column, and the
/// per-type name lookup is a binary search over a name-sorted permutation —
/// both columns persist byte-for-byte into snapshots, so a mapped graph
/// needs no index rebuilding at load time.
#[derive(Debug, Clone)]
pub struct HinGraph {
    schema: Schema,
    vertex_types: Store<VertexTypeId>,
    /// All vertex names concatenated (UTF-8), indexed by `name_offsets`.
    name_blob: Store<u8>,
    /// `name_offsets[v]..name_offsets[v+1]` bounds `v`'s name. Length `n+1`.
    name_offsets: Store<u32>,
    /// Per type `t`: `by_type_offsets[t]..by_type_offsets[t+1]` bounds `t`'s
    /// segment in `by_type_ids` / `name_order`. Length `T+1`.
    by_type_offsets: Store<u32>,
    /// Vertex ids grouped by type, ascending within each segment.
    by_type_ids: Store<VertexId>,
    /// Vertex ids grouped by type, sorted by name within each segment.
    name_order: Store<VertexId>,
    /// Per edge type: forward CSR (src → dst).
    forward: Vec<Csr>,
    /// Per edge type: reverse CSR (dst → src).
    reverse: Vec<Csr>,
    edge_count: usize,
}

fn verr(message: impl Into<String>) -> GraphError {
    GraphError::Format {
        line: 0,
        message: message.into(),
    }
}

impl HinGraph {
    /// The schema this network conforms to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertex_types.len()
    }

    /// Total number of edges (each undirected link counted once).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The type of vertex `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn vertex_type(&self, v: VertexId) -> VertexTypeId {
        self.vertex_types[v.index()]
    }

    /// The name of vertex `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn vertex_name(&self, v: VertexId) -> &str {
        let lo = self.name_offsets[v.index()] as usize;
        let hi = self.name_offsets[v.index() + 1] as usize;
        // Both construction paths guarantee valid UTF-8 on name boundaries
        // (GraphBuilder interns `String`s; `from_store` validates every
        // slice), so the failure arm is unreachable.
        match std::str::from_utf8(&self.name_blob[lo..hi]) {
            Ok(s) => s,
            Err(_) => {
                debug_assert!(false, "name blob invariant violated for {v:?}");
                ""
            }
        }
    }

    /// Whether `v` is a valid vertex id in this graph.
    pub fn contains(&self, v: VertexId) -> bool {
        v.index() < self.vertex_types.len()
    }

    /// Look up a vertex by type and exact name (binary search over the
    /// name-sorted per-type permutation).
    pub fn vertex_by_name(&self, vtype: VertexTypeId, name: &str) -> Option<VertexId> {
        let seg = self.type_segment(vtype, &self.name_order)?;
        seg.binary_search_by(|&v| self.vertex_name(v).cmp(name))
            .ok()
            .map(|i| seg[i])
    }

    /// All vertices of a type, in ascending id order.
    pub fn vertices_of_type(&self, vtype: VertexTypeId) -> &[VertexId] {
        self.type_segment(vtype, &self.by_type_ids).unwrap_or(&[])
    }

    /// The segment of `column` belonging to `vtype`, or `None` for an
    /// out-of-range type.
    fn type_segment<'g>(
        &'g self,
        vtype: VertexTypeId,
        column: &'g Store<VertexId>,
    ) -> Option<&'g [VertexId]> {
        let t = vtype.index();
        if t + 1 >= self.by_type_offsets.len() {
            return None;
        }
        let lo = self.by_type_offsets[t] as usize;
        let hi = self.by_type_offsets[t + 1] as usize;
        Some(&column[lo..hi])
    }

    /// Number of vertices of a type.
    pub fn count_of_type(&self, vtype: VertexTypeId) -> usize {
        self.vertices_of_type(vtype).len()
    }

    /// Iterate all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertex_types.len()).map(|i| VertexId(i as u32))
    }

    /// Neighbors of `v` along one specific edge type, in its forward
    /// (`src → dst`) orientation.
    pub fn neighbors_forward(&self, v: VertexId, et: EdgeTypeId) -> &[VertexId] {
        self.forward[et.index()].neighbors(v)
    }

    /// Neighbors of `v` along one specific edge type, traversed backwards
    /// (`dst → src`).
    pub fn neighbors_reverse(&self, v: VertexId, et: EdgeTypeId) -> &[VertexId] {
        self.reverse[et.index()].neighbors(v)
    }

    /// Plan the adjacency lists needed to step from a vertex of type `from`
    /// to vertices of type `to`, considering every edge type in the schema
    /// that connects the pair in either orientation.
    fn step_plan(&self, from: VertexTypeId, to: VertexTypeId) -> Vec<(EdgeTypeId, Direction)> {
        let mut plan = Vec::new();
        for &et in self.schema.edge_types_from_to(from, to) {
            plan.push((et, Direction::Forward));
        }
        for &et in self.schema.edge_types_from_to(to, from) {
            // For a self-typed edge type (from == to) this adds the same edge
            // type again with Reverse, which is required: a stored edge x→y
            // appears in x's forward list and y's reverse list only, so both
            // directions are needed for undirected semantics. Each edge is
            // still seen exactly once per endpoint (a literal self-loop x→x
            // is seen twice, the usual undirected-degree convention).
            plan.push((et, Direction::Reverse));
        }
        plan
    }

    /// Iterate all neighbors of `v` that have type `to_type`, across every
    /// connecting edge type (both orientations). Multiplicity is preserved:
    /// parallel edges yield repeated ids.
    ///
    /// Returns an empty iterator when the schema has no link between the
    /// types — callers validating meta-paths up front never hit that case.
    pub fn step_neighbors<'g>(
        &'g self,
        v: VertexId,
        to_type: VertexTypeId,
    ) -> impl Iterator<Item = VertexId> + 'g {
        let from = self.vertex_type(v);
        let plan = self.step_plan(from, to_type);
        plan.into_iter().flat_map(move |(et, dir)| {
            match dir {
                Direction::Forward => self.neighbors_forward(v, et),
                Direction::Reverse => self.neighbors_reverse(v, et),
            }
            .iter()
            .copied()
        })
    }

    /// The number of `to_type`-typed neighbors of `v` (with multiplicity).
    pub fn step_degree(&self, v: VertexId, to_type: VertexTypeId) -> usize {
        let from = self.vertex_type(v);
        self.step_plan(from, to_type)
            .into_iter()
            .map(|(et, dir)| match dir {
                Direction::Forward => self.neighbors_forward(v, et).len(),
                Direction::Reverse => self.neighbors_reverse(v, et).len(),
            })
            .sum()
    }

    /// A lightweight display-friendly view of a vertex.
    pub fn vertex_ref(&self, v: VertexId) -> VertexRef<'_> {
        VertexRef { graph: self, id: v }
    }

    /// Whether this graph's columns are views into a mapped snapshot region
    /// (true) or heap-owned (false for builder-produced graphs).
    pub fn is_mapped(&self) -> bool {
        self.vertex_types.is_mapped()
    }

    /// A borrowed view of every persistent column, in the exact layout a
    /// snapshot writer serializes. CSR blocks come two per edge type in
    /// schema order: forward, then reverse.
    pub fn columns(&self) -> GraphColumns<'_> {
        let mut csrs = Vec::with_capacity(self.forward.len() * 2);
        for (f, r) in self.forward.iter().zip(&self.reverse) {
            csrs.push((&*f.offsets, &*f.targets));
            csrs.push((&*r.offsets, &*r.targets));
        }
        GraphColumns {
            schema: &self.schema,
            vertex_types: &self.vertex_types,
            name_blob: &self.name_blob,
            name_offsets: &self.name_offsets,
            by_type_offsets: &self.by_type_offsets,
            by_type_ids: &self.by_type_ids,
            name_order: &self.name_order,
            csrs,
            edge_count: self.edge_count as u64,
        }
    }

    /// Rebuild a graph from persisted columns, validating every structural
    /// invariant the accessors rely on — offset monotonicity and bounds,
    /// UTF-8 names, per-type segment coverage and ordering, CSR shape,
    /// endpoint types, and sorted neighbor lists. `O(n + e)` in the column
    /// sizes; never panics on malformed input (structured [`GraphError`]s).
    ///
    /// This is the trust boundary for snapshot-backed storage: once a
    /// [`GraphStore`] passes, owned and mapped graphs are interchangeable.
    pub fn from_store(store: GraphStore) -> Result<HinGraph, GraphError> {
        let GraphStore {
            schema,
            vertex_types,
            name_blob,
            name_offsets,
            by_type_offsets,
            by_type_ids,
            name_order,
            csrs,
            edge_count,
        } = store;
        let n = vertex_types.len();
        let type_count = schema.vertex_type_count();
        let et_count = schema.edge_type_count();

        if n > u32::MAX as usize {
            return Err(GraphError::TooManyVertices);
        }
        for (i, t) in vertex_types.iter().enumerate() {
            if t.index() >= type_count {
                return Err(verr(format!("vertex {i} has out-of-range type {t:?}")));
            }
        }

        // Name offsets: length n+1, starts at 0, monotone, ends at blob len.
        check_offsets(&name_offsets, n, name_blob.len(), "name_offsets")?;
        for i in 0..n {
            let lo = name_offsets[i] as usize;
            let hi = name_offsets[i + 1] as usize;
            if std::str::from_utf8(&name_blob[lo..hi]).is_err() {
                return Err(verr(format!("vertex {i} name is not valid UTF-8")));
            }
        }

        // Per-type segments: cover all n vertices with the right counts.
        check_offsets(&by_type_offsets, type_count, n, "by_type_offsets")?;
        let mut counts = vec![0u32; type_count];
        for t in vertex_types.iter() {
            counts[t.index()] += 1;
        }
        for t in 0..type_count {
            let lo = by_type_offsets[t] as usize;
            let hi = by_type_offsets[t + 1] as usize;
            if hi - lo != counts[t] as usize {
                return Err(verr(format!(
                    "type {t} segment holds {} ids but the graph has {} vertices of that type",
                    hi - lo,
                    counts[t]
                )));
            }
        }
        if by_type_ids.len() != n || name_order.len() != n {
            return Err(verr("per-type id columns must list every vertex once"));
        }
        for t in 0..type_count {
            let lo = by_type_offsets[t] as usize;
            let hi = by_type_offsets[t + 1] as usize;
            for (which, column) in [("by_type_ids", &by_type_ids), ("name_order", &name_order)] {
                for &v in &column[lo..hi] {
                    if v.index() >= n {
                        return Err(verr(format!("{which}: id {v:?} out of range")));
                    }
                    if vertex_types[v.index()].index() != t {
                        return Err(verr(format!("{which}: {v:?} is not of type {t}")));
                    }
                }
            }
            // Ascending ids in by_type_ids; strictly ascending names in
            // name_order (names are unique within a type, so equality means
            // a duplicated or conflicting entry).
            if by_type_ids[lo..hi].windows(2).any(|w| w[0] >= w[1]) {
                return Err(verr(format!("type {t}: by_type_ids not strictly ascending")));
            }
            let seg = &name_order[lo..hi];
            for w in seg.windows(2) {
                let (a, b) = (w[0].index(), w[1].index());
                let name = |v: usize| {
                    &name_blob[name_offsets[v] as usize..name_offsets[v + 1] as usize]
                };
                if name(a) >= name(b) {
                    return Err(verr(format!(
                        "type {t}: name_order not strictly ascending by name"
                    )));
                }
            }
        }

        // CSR blocks: two per edge type, valid shape, typed endpoints,
        // sorted rows.
        if csrs.len() != 2 * et_count {
            return Err(verr(format!(
                "expected {} CSR blocks for {et_count} edge types, found {}",
                2 * et_count,
                csrs.len()
            )));
        }
        let mut forward = Vec::with_capacity(et_count);
        let mut reverse = Vec::with_capacity(et_count);
        let mut forward_nnz = 0u64;
        for (block, csr) in csrs.into_iter().enumerate() {
            let et = EdgeTypeId((block / 2) as u16);
            let info = schema.edge_type(et);
            let is_forward = block % 2 == 0;
            let (row_type, col_type) = if is_forward {
                (info.src, info.dst)
            } else {
                (info.dst, info.src)
            };
            check_offsets(&csr.offsets, n, csr.targets.len(), "csr offsets")?;
            for v in 0..n {
                let lo = csr.offsets[v] as usize;
                let hi = csr.offsets[v + 1] as usize;
                if lo < hi && vertex_types[v] != row_type {
                    return Err(verr(format!(
                        "csr block {block}: vertex {v} has neighbors but wrong row type"
                    )));
                }
                let row = &csr.targets[lo..hi];
                for &u in row {
                    if u.index() >= n {
                        return Err(verr(format!("csr block {block}: target {u:?} out of range")));
                    }
                    if vertex_types[u.index()] != col_type {
                        return Err(verr(format!(
                            "csr block {block}: target {u:?} has wrong column type"
                        )));
                    }
                }
                if row.windows(2).any(|w| w[0] > w[1]) {
                    return Err(verr(format!(
                        "csr block {block}: row {v} neighbor list not sorted"
                    )));
                }
            }
            if is_forward {
                forward_nnz += csr.targets.len() as u64;
                forward.push(Csr {
                    offsets: csr.offsets,
                    targets: csr.targets,
                });
            } else {
                let fwd: &Csr = &forward[et.index()];
                if csr.targets.len() != fwd.targets.len() {
                    return Err(verr(format!(
                        "edge type {et:?}: forward and reverse CSRs disagree on edge count"
                    )));
                }
                reverse.push(Csr {
                    offsets: csr.offsets,
                    targets: csr.targets,
                });
            }
        }
        if forward_nnz != edge_count {
            return Err(verr(format!(
                "edge_count {edge_count} does not match stored adjacency ({forward_nnz})"
            )));
        }

        Ok(HinGraph {
            schema,
            vertex_types,
            name_blob,
            name_offsets,
            by_type_offsets,
            by_type_ids,
            name_order,
            forward,
            reverse,
            edge_count: edge_count as usize,
        })
    }
}

/// Validate an offsets column: `count + 1` entries, starting at 0, monotone
/// nondecreasing, ending exactly at `total`.
fn check_offsets(
    offsets: &Store<u32>,
    count: usize,
    total: usize,
    what: &str,
) -> Result<(), GraphError> {
    if offsets.len() != count + 1 {
        return Err(verr(format!(
            "{what}: expected {} entries, found {}",
            count + 1,
            offsets.len()
        )));
    }
    if offsets[0] != 0 {
        return Err(verr(format!("{what}: first offset must be 0")));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(verr(format!("{what}: offsets must be nondecreasing")));
    }
    if offsets[count] as usize != total {
        return Err(verr(format!(
            "{what}: last offset {} does not match data length {total}",
            offsets[count]
        )));
    }
    Ok(())
}

/// A borrowed view of one vertex, carrying its graph for name/type access.
#[derive(Clone, Copy)]
pub struct VertexRef<'g> {
    graph: &'g HinGraph,
    /// The vertex id this view refers to.
    pub id: VertexId,
}

impl VertexRef<'_> {
    /// The vertex's name.
    pub fn name(&self) -> &str {
        self.graph.vertex_name(self.id)
    }

    /// The vertex's type id.
    pub fn vtype(&self) -> VertexTypeId {
        self.graph.vertex_type(self.id)
    }

    /// The vertex's type name.
    pub fn type_name(&self) -> &str {
        self.graph.schema().vertex_type_name(self.vtype())
    }
}

impl std::fmt::Debug for VertexRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{{{:?}}}", self.type_name(), self.name())
    }
}

/// A resolved edge occurrence (used by iteration helpers and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef {
    /// Source endpoint (in the edge type's declared orientation).
    pub src: VertexId,
    /// Destination endpoint.
    pub dst: VertexId,
    /// The edge's type.
    pub etype: EdgeTypeId,
}

/// Mutable builder for [`HinGraph`].
#[derive(Debug)]
pub struct GraphBuilder {
    schema: Schema,
    vertex_types: Vec<VertexTypeId>,
    vertex_names: Vec<String>,
    name_index: Vec<FxHashMap<String, VertexId>>,
    edges: Vec<EdgeRef>,
}

impl GraphBuilder {
    /// Start building a network over `schema`.
    pub fn new(schema: Schema) -> Self {
        let n = schema.vertex_type_count();
        GraphBuilder {
            schema,
            vertex_types: Vec::new(),
            vertex_names: Vec::new(),
            name_index: vec![FxHashMap::default(); n],
            edges: Vec::new(),
        }
    }

    /// The schema being built against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of vertices added so far.
    pub fn vertex_count(&self) -> usize {
        self.vertex_types.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Add a vertex of `vtype` named `name`. Names must be unique within a
    /// type.
    pub fn add_vertex(
        &mut self,
        vtype: VertexTypeId,
        name: impl Into<String>,
    ) -> Result<VertexId, GraphError> {
        if vtype.index() >= self.schema.vertex_type_count() {
            return Err(GraphError::UnknownVertexTypeId(vtype));
        }
        if self.vertex_types.len() >= u32::MAX as usize {
            return Err(GraphError::TooManyVertices);
        }
        let name = name.into();
        let id = VertexId(self.vertex_types.len() as u32);
        match self.name_index[vtype.index()].entry(name.clone()) {
            std::collections::hash_map::Entry::Occupied(_) => {
                Err(GraphError::DuplicateVertex { vtype, name })
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(id);
                self.vertex_types.push(vtype);
                self.vertex_names.push(name);
                Ok(id)
            }
        }
    }

    /// Add the vertex if absent, otherwise return the existing id.
    pub fn get_or_add_vertex(
        &mut self,
        vtype: VertexTypeId,
        name: &str,
    ) -> Result<VertexId, GraphError> {
        if let Some(&id) = self.name_index.get(vtype.index()).and_then(|m| m.get(name)) {
            return Ok(id);
        }
        self.add_vertex(vtype, name)
    }

    /// Look up a vertex added earlier.
    pub fn vertex_by_name(&self, vtype: VertexTypeId, name: &str) -> Option<VertexId> {
        self.name_index.get(vtype.index())?.get(name).copied()
    }

    /// Add an edge between `u` and `v`, inferring the edge type from the
    /// endpoint types. Fails if the schema defines no edge type between the
    /// two types. If the schema declares the type as `type(v) → type(u)`, the
    /// edge is stored flipped so its orientation always matches its type.
    ///
    /// If multiple edge types connect the same type pair, the first declared
    /// one is used; call [`GraphBuilder::add_edge_typed`] to disambiguate.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<EdgeTypeId, GraphError> {
        let (ut, vt) = (self.vertex_type_of(u)?, self.vertex_type_of(v)?);
        if let Some(&et) = self.schema.edge_types_from_to(ut, vt).first() {
            self.edges.push(EdgeRef {
                src: u,
                dst: v,
                etype: et,
            });
            return Ok(et);
        }
        if let Some(&et) = self.schema.edge_types_from_to(vt, ut).first() {
            self.edges.push(EdgeRef {
                src: v,
                dst: u,
                etype: et,
            });
            return Ok(et);
        }
        Err(GraphError::NoEdgeTypeBetween { src: ut, dst: vt })
    }

    /// Add an edge with an explicit edge type. `u` must have the type's
    /// `src` type and `v` its `dst` type (or vice versa, in which case the
    /// edge is stored flipped).
    pub fn add_edge_typed(
        &mut self,
        u: VertexId,
        v: VertexId,
        etype: EdgeTypeId,
    ) -> Result<(), GraphError> {
        let (ut, vt) = (self.vertex_type_of(u)?, self.vertex_type_of(v)?);
        let info = self.schema.edge_type(etype);
        if info.src == ut && info.dst == vt {
            self.edges.push(EdgeRef {
                src: u,
                dst: v,
                etype,
            });
            Ok(())
        } else if info.src == vt && info.dst == ut {
            self.edges.push(EdgeRef {
                src: v,
                dst: u,
                etype,
            });
            Ok(())
        } else {
            Err(GraphError::NoEdgeTypeBetween { src: ut, dst: vt })
        }
    }

    fn vertex_type_of(&self, v: VertexId) -> Result<VertexTypeId, GraphError> {
        self.vertex_types
            .get(v.index())
            .copied()
            .ok_or(GraphError::UnknownVertex(v))
    }

    /// Freeze into an immutable [`HinGraph`] with CSR adjacency.
    pub fn build(self) -> HinGraph {
        let n = self.vertex_types.len();
        let et_count = self.schema.edge_type_count();
        let type_count = self.schema.vertex_type_count();

        // Per-edge-type CSRs, both directions, neighbor lists sorted.
        let mut forward = Vec::with_capacity(et_count);
        let mut reverse = Vec::with_capacity(et_count);
        for et in 0..et_count {
            for dir in [Direction::Forward, Direction::Reverse] {
                let mut deg = vec![0u32; n];
                for e in &self.edges {
                    if e.etype.index() != et {
                        continue;
                    }
                    let row = match dir {
                        Direction::Forward => e.src,
                        Direction::Reverse => e.dst,
                    };
                    deg[row.index()] += 1;
                }
                let mut offsets = Vec::with_capacity(n + 1);
                let mut total = 0u32;
                offsets.push(0);
                for &d in &deg {
                    total += d;
                    offsets.push(total);
                }
                let mut cursor = offsets.clone();
                let mut targets = vec![VertexId(0); total as usize];
                for e in &self.edges {
                    if e.etype.index() != et {
                        continue;
                    }
                    let (row, col) = match dir {
                        Direction::Forward => (e.src, e.dst),
                        Direction::Reverse => (e.dst, e.src),
                    };
                    targets[cursor[row.index()] as usize] = col;
                    cursor[row.index()] += 1;
                }
                // Keep neighbor lists sorted for deterministic iteration.
                for v in 0..n {
                    targets[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
                }
                let csr = Csr {
                    offsets: offsets.into(),
                    targets: targets.into(),
                };
                match dir {
                    Direction::Forward => forward.push(csr),
                    Direction::Reverse => reverse.push(csr),
                }
            }
        }

        // Intern names into one blob + offsets.
        let blob_len: usize = self.vertex_names.iter().map(String::len).sum();
        let mut name_blob = Vec::with_capacity(blob_len);
        let mut name_offsets = Vec::with_capacity(n + 1);
        name_offsets.push(0u32);
        for name in &self.vertex_names {
            name_blob.extend_from_slice(name.as_bytes());
            name_offsets.push(name_blob.len() as u32);
        }

        // Group vertices by type (ascending ids) and, in parallel, a
        // name-sorted permutation per type for binary-search lookup.
        let mut by_type: Vec<Vec<VertexId>> = vec![Vec::new(); type_count];
        for (i, t) in self.vertex_types.iter().enumerate() {
            by_type[t.index()].push(VertexId(i as u32));
        }
        let mut by_type_offsets = Vec::with_capacity(type_count + 1);
        let mut by_type_ids = Vec::with_capacity(n);
        let mut name_order = Vec::with_capacity(n);
        by_type_offsets.push(0u32);
        for ids in &by_type {
            by_type_ids.extend_from_slice(ids);
            let mut sorted = ids.clone();
            sorted.sort_unstable_by(|&a, &b| {
                self.vertex_names[a.index()].cmp(&self.vertex_names[b.index()])
            });
            name_order.extend_from_slice(&sorted);
            by_type_offsets.push(by_type_ids.len() as u32);
        }

        HinGraph {
            schema: self.schema,
            vertex_types: self.vertex_types.into(),
            name_blob: name_blob.into(),
            name_offsets: name_offsets.into(),
            by_type_offsets: by_type_offsets.into(),
            by_type_ids: by_type_ids.into(),
            name_order: name_order.into(),
            forward,
            reverse,
            edge_count: self.edges.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::bibliographic_schema;

    /// Builds the instantiated network of Figure 1(b): authors Ava, Liam,
    /// Zoe; venues ICDE, KDD; and enough papers that
    /// |π_APA(Ava, Liam)| = 1, |π_APA(Liam, Zoe)| = 2,
    /// Φ_APA(Zoe) = [Ava:1, Liam:2, Zoe:5], Φ_APV(Zoe) = [ICDE:2, KDD:3].
    pub(crate) fn figure1_network() -> HinGraph {
        let schema = bibliographic_schema();
        let author = schema.vertex_type_by_name("author").unwrap();
        let paper = schema.vertex_type_by_name("paper").unwrap();
        let venue = schema.vertex_type_by_name("venue").unwrap();
        let mut gb = GraphBuilder::new(schema);
        let ava = gb.add_vertex(author, "Ava").unwrap();
        let liam = gb.add_vertex(author, "Liam").unwrap();
        let zoe = gb.add_vertex(author, "Zoe").unwrap();
        let icde = gb.add_vertex(venue, "ICDE").unwrap();
        let kdd = gb.add_vertex(venue, "KDD").unwrap();
        // Zoe's 5 papers: p1 with Ava+Liam? — pick a layout satisfying the
        // counts: p1 (Ava, Zoe) ICDE; p2, p3 (Liam, Zoe) in ICDE, KDD;
        // p4, p5 (Zoe) KDD. Then π_APA(Ava,Zoe)=1, π_APA(Liam,Zoe)=2,
        // Φ_APV(Zoe) = [ICDE:2, KDD:3]. For π_APA(Ava,Liam)=1 we need one
        // joint Ava–Liam paper not involving Zoe: p6 (Ava, Liam) ICDE.
        let mk = |gb: &mut GraphBuilder, name: &str, authors: &[VertexId], ven: VertexId| {
            let p = gb.add_vertex(paper, name).unwrap();
            for &a in authors {
                gb.add_edge(a, p).unwrap();
            }
            gb.add_edge(p, ven).unwrap();
            p
        };
        mk(&mut gb, "p1", &[ava, zoe], icde);
        mk(&mut gb, "p2", &[liam, zoe], icde);
        mk(&mut gb, "p3", &[liam, zoe], kdd);
        mk(&mut gb, "p4", &[zoe], kdd);
        mk(&mut gb, "p5", &[zoe], kdd);
        mk(&mut gb, "p6", &[ava, liam], icde);
        gb.build()
    }

    #[test]
    fn build_and_lookup() {
        let g = figure1_network();
        let author = g.schema().vertex_type_by_name("author").unwrap();
        let venue = g.schema().vertex_type_by_name("venue").unwrap();
        assert_eq!(g.vertex_count(), 11);
        assert_eq!(g.count_of_type(author), 3);
        let zoe = g.vertex_by_name(author, "Zoe").unwrap();
        assert_eq!(g.vertex_name(zoe), "Zoe");
        assert_eq!(g.vertex_type(zoe), author);
        assert!(g.vertex_by_name(venue, "Zoe").is_none());
        assert!(g.vertex_by_name(author, "Nobody").is_none());
        assert!(!g.is_mapped());
    }

    #[test]
    fn step_neighbors_both_directions() {
        let g = figure1_network();
        let author = g.schema().vertex_type_by_name("author").unwrap();
        let paper = g.schema().vertex_type_by_name("paper").unwrap();
        let venue = g.schema().vertex_type_by_name("venue").unwrap();
        let zoe = g.vertex_by_name(author, "Zoe").unwrap();
        // Zoe wrote 5 papers (author -> paper is reverse of writes? no,
        // forward: writes: author -> paper).
        let zoe_papers: Vec<_> = g.step_neighbors(zoe, paper).collect();
        assert_eq!(zoe_papers.len(), 5);
        // A paper's authors traverse writes backwards.
        let p2 = g.vertex_by_name(paper, "p2").unwrap();
        let p2_authors: Vec<_> = g.step_neighbors(p2, author).collect();
        assert_eq!(p2_authors.len(), 2);
        // Venue -> papers traverses published_in backwards.
        let kdd = g.vertex_by_name(venue, "KDD").unwrap();
        assert_eq!(g.step_degree(kdd, paper), 3);
        // No schema link author -> venue directly.
        assert_eq!(g.step_degree(zoe, venue), 0);
    }

    #[test]
    fn add_edge_infers_and_flips() {
        let schema = bibliographic_schema();
        let author = schema.vertex_type_by_name("author").unwrap();
        let paper = schema.vertex_type_by_name("paper").unwrap();
        let mut gb = GraphBuilder::new(schema);
        let a = gb.add_vertex(author, "A").unwrap();
        let p = gb.add_vertex(paper, "P").unwrap();
        // Add in "wrong" order: paper first, author second — still works.
        gb.add_edge(p, a).unwrap();
        let g = gb.build();
        assert_eq!(g.step_degree(a, paper), 1);
        assert_eq!(g.step_degree(p, author), 1);
    }

    #[test]
    fn add_edge_without_schema_link_fails() {
        let schema = bibliographic_schema();
        let author = schema.vertex_type_by_name("author").unwrap();
        let venue = schema.vertex_type_by_name("venue").unwrap();
        let mut gb = GraphBuilder::new(schema);
        let a = gb.add_vertex(author, "A").unwrap();
        let v = gb.add_vertex(venue, "V").unwrap();
        assert!(matches!(
            gb.add_edge(a, v),
            Err(GraphError::NoEdgeTypeBetween { .. })
        ));
    }

    #[test]
    fn duplicate_vertex_name_same_type_fails() {
        let schema = bibliographic_schema();
        let author = schema.vertex_type_by_name("author").unwrap();
        let mut gb = GraphBuilder::new(schema);
        gb.add_vertex(author, "A").unwrap();
        assert!(matches!(
            gb.add_vertex(author, "A"),
            Err(GraphError::DuplicateVertex { .. })
        ));
    }

    #[test]
    fn same_name_different_types_ok() {
        let schema = bibliographic_schema();
        let author = schema.vertex_type_by_name("author").unwrap();
        let term = schema.vertex_type_by_name("term").unwrap();
        let mut gb = GraphBuilder::new(schema);
        let a = gb.add_vertex(author, "graph").unwrap();
        let t = gb.add_vertex(term, "graph").unwrap();
        assert_ne!(a, t);
    }

    #[test]
    fn get_or_add_vertex_is_idempotent() {
        let schema = bibliographic_schema();
        let author = schema.vertex_type_by_name("author").unwrap();
        let mut gb = GraphBuilder::new(schema);
        let a1 = gb.get_or_add_vertex(author, "A").unwrap();
        let a2 = gb.get_or_add_vertex(author, "A").unwrap();
        assert_eq!(a1, a2);
        assert_eq!(gb.vertex_count(), 1);
    }

    #[test]
    fn parallel_edges_preserved() {
        let schema = bibliographic_schema();
        let author = schema.vertex_type_by_name("author").unwrap();
        let paper = schema.vertex_type_by_name("paper").unwrap();
        let mut gb = GraphBuilder::new(schema);
        let a = gb.add_vertex(author, "A").unwrap();
        let p = gb.add_vertex(paper, "P").unwrap();
        gb.add_edge(a, p).unwrap();
        gb.add_edge(a, p).unwrap();
        let g = gb.build();
        assert_eq!(g.step_degree(a, paper), 2);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn add_edge_typed_validates_endpoints() {
        let schema = bibliographic_schema();
        let author = schema.vertex_type_by_name("author").unwrap();
        let paper = schema.vertex_type_by_name("paper").unwrap();
        let venue = schema.vertex_type_by_name("venue").unwrap();
        let writes = schema.edge_type_by_name("writes").unwrap();
        let mut gb = GraphBuilder::new(schema);
        let a = gb.add_vertex(author, "A").unwrap();
        let p = gb.add_vertex(paper, "P").unwrap();
        let v = gb.add_vertex(venue, "V").unwrap();
        gb.add_edge_typed(p, a, writes).unwrap(); // flipped ok
        assert!(gb.add_edge_typed(a, v, writes).is_err());
    }

    #[test]
    fn self_loop_edge_type_traversed_once() {
        let mut sb = crate::schema::SchemaBuilder::new();
        let person = sb.vertex_type("person");
        sb.edge_type("knows", person, person);
        let schema = sb.build().unwrap();
        let mut gb = GraphBuilder::new(schema);
        let x = gb.add_vertex(person, "x").unwrap();
        let y = gb.add_vertex(person, "y").unwrap();
        gb.add_edge(x, y).unwrap();
        let g = gb.build();
        // x -> y forward; y -> x only via reverse. Each seen exactly once.
        assert_eq!(g.step_neighbors(x, person).collect::<Vec<_>>(), vec![y]);
        assert_eq!(g.step_neighbors(y, person).collect::<Vec<_>>(), vec![x]);
    }

    #[test]
    fn vertex_ref_formats() {
        let g = figure1_network();
        let author = g.schema().vertex_type_by_name("author").unwrap();
        let zoe = g.vertex_by_name(author, "Zoe").unwrap();
        let r = g.vertex_ref(zoe);
        assert_eq!(r.name(), "Zoe");
        assert_eq!(r.type_name(), "author");
        assert_eq!(format!("{r:?}"), "author{\"Zoe\"}");
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new(bibliographic_schema()).build();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    /// Reassemble a graph from its own columns (the writer→loader round
    /// trip minus serialization) and check behavior is identical.
    fn roundtrip_store(g: &HinGraph) -> GraphStore {
        let c = g.columns();
        GraphStore {
            schema: c.schema.clone(),
            vertex_types: c.vertex_types.to_vec().into(),
            name_blob: c.name_blob.to_vec().into(),
            name_offsets: c.name_offsets.to_vec().into(),
            by_type_offsets: c.by_type_offsets.to_vec().into(),
            by_type_ids: c.by_type_ids.to_vec().into(),
            name_order: c.name_order.to_vec().into(),
            csrs: c
                .csrs
                .iter()
                .map(|(o, t)| CsrStore {
                    offsets: o.to_vec().into(),
                    targets: t.to_vec().into(),
                })
                .collect(),
            edge_count: c.edge_count,
        }
    }

    #[test]
    fn from_store_roundtrip_preserves_everything() {
        let g = figure1_network();
        let h = HinGraph::from_store(roundtrip_store(&g)).unwrap();
        assert_eq!(g.vertex_count(), h.vertex_count());
        assert_eq!(g.edge_count(), h.edge_count());
        for v in g.vertices() {
            assert_eq!(g.vertex_name(v), h.vertex_name(v));
            assert_eq!(g.vertex_type(v), h.vertex_type(v));
        }
        for t in g.schema().vertex_type_ids() {
            assert_eq!(g.vertices_of_type(t), h.vertices_of_type(t));
            for &v in g.vertices_of_type(t) {
                assert_eq!(h.vertex_by_name(t, g.vertex_name(v)), Some(v));
            }
            for u in g.vertices() {
                assert_eq!(
                    g.step_neighbors(u, t).collect::<Vec<_>>(),
                    h.step_neighbors(u, t).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn from_store_rejects_tampered_columns() {
        let g = figure1_network();

        // Out-of-range vertex type.
        let mut s = roundtrip_store(&g);
        if let Store::Owned(v) = &mut s.vertex_types {
            v[0] = VertexTypeId(250);
        }
        assert!(HinGraph::from_store(s).is_err());

        // Broken name offsets (not monotone).
        let mut s = roundtrip_store(&g);
        if let Store::Owned(v) = &mut s.name_offsets {
            v[1] = u32::MAX;
        }
        assert!(HinGraph::from_store(s).is_err());

        // Invalid UTF-8 in the blob.
        let mut s = roundtrip_store(&g);
        if let Store::Owned(v) = &mut s.name_blob {
            v[0] = 0xFF;
        }
        assert!(HinGraph::from_store(s).is_err());

        // Wrong edge count.
        let mut s = roundtrip_store(&g);
        s.edge_count += 1;
        assert!(HinGraph::from_store(s).is_err());

        // CSR target out of range.
        let mut s = roundtrip_store(&g);
        if let Store::Owned(v) = &mut s.csrs[0].targets {
            v[0] = VertexId(u32::MAX);
        }
        assert!(HinGraph::from_store(s).is_err());

        // Missing CSR block.
        let mut s = roundtrip_store(&g);
        s.csrs.pop();
        assert!(HinGraph::from_store(s).is_err());

        // Shuffled name order breaks the sortedness invariant.
        let mut s = roundtrip_store(&g);
        if let Store::Owned(v) = &mut s.name_order {
            v.swap(0, 1);
        }
        assert!(HinGraph::from_store(s).is_err());

        // The untampered store still loads.
        assert!(HinGraph::from_store(roundtrip_store(&g)).is_ok());
    }
}
