//! Interchangeable array storage for graph columns: owned `Vec`s or
//! zero-copy views into a shared byte region (a memory-mapped snapshot).
//!
//! [`HinGraph`](crate::HinGraph) keeps every persistent column — vertex
//! types, interned names, per-type indexes, CSR adjacency — behind a
//! [`Store<T>`], which is either `Owned` (a plain `Vec`, the
//! [`GraphBuilder`](crate::GraphBuilder) path) or `Mapped` (a typed window
//! into an [`Arc<dyn ByteRegion>`], the snapshot path). Both deref to `&[T]`
//! so the engine above never sees the difference.
//!
//! The loader-facing bundle of columns is [`GraphStore`]; the writer-facing
//! borrowed view is [`GraphColumns`]. A validated round-trip goes
//! `HinGraph::columns()` → serialize → map → `GraphStore` →
//! `HinGraph::from_store()`.

use crate::error::GraphError;
use crate::ids::{VertexId, VertexTypeId};
use crate::schema::Schema;
use std::ops::Deref;
use std::sync::Arc;

/// Marker for types that can be reinterpreted directly from raw bytes.
///
/// # Safety
///
/// Implementors must guarantee that every bit pattern of `size_of::<Self>()`
/// bytes is a valid value of `Self` and that the type has no padding bytes.
/// All implementations here are integers, `f64`, or `repr(transparent)`
/// newtypes over them.
pub unsafe trait Pod: Copy + 'static {}

// Safety: primitive integers and floats accept every bit pattern and have no
// padding.
unsafe impl Pod for u8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for f64 {}
// Safety: `repr(transparent)` newtypes over `u32` / `u8` (see `ids.rs`).
unsafe impl Pod for VertexId {}
unsafe impl Pod for VertexTypeId {}

/// A stable, immutable byte buffer that outlives every [`Store`] borrowing
/// from it — typically a memory-mapped file, or a heap copy on platforms
/// without `mmap`.
///
/// # Safety
///
/// `bytes()` must return the *same* buffer (same address, same length) on
/// every call for the lifetime of the value, and the contents must never
/// change. `Store::mapped` validates offsets/alignment once against this
/// buffer and then trusts it.
pub unsafe trait ByteRegion: Send + Sync + 'static {
    /// The underlying bytes.
    fn bytes(&self) -> &[u8];
}

/// A heap-backed [`ByteRegion`] with 8-byte alignment — the portable
/// fallback when `mmap` is unavailable, and the in-memory path used by
/// tests. Alignment suffices for every [`Pod`] type stored in snapshots
/// (max align 8 for `u64`/`f64`).
pub struct HeapRegion {
    words: Vec<u64>,
    len: usize,
}

impl HeapRegion {
    /// Copy `bytes` into a fresh 8-byte-aligned buffer.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let words = vec![0u64; bytes.len().div_ceil(8)];
        let mut region = HeapRegion {
            words,
            len: bytes.len(),
        };
        // Safety: the Vec<u64> allocation is at least `len` bytes long.
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                region.words.as_mut_ptr() as *mut u8,
                bytes.len(),
            );
        }
        region
    }
}

// Safety: the buffer is allocated once in `from_bytes` and never mutated or
// reallocated afterwards (no `&mut` methods exist).
unsafe impl ByteRegion for HeapRegion {
    fn bytes(&self) -> &[u8] {
        // Safety: `words` owns at least `len` initialized bytes.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.len) }
    }
}

/// One typed graph column: either an owned `Vec<T>` or a zero-copy window
/// into a shared [`ByteRegion`]. Dereferences to `&[T]` either way.
pub enum Store<T: Pod> {
    /// Heap-owned storage (the [`crate::GraphBuilder`] path).
    Owned(Vec<T>),
    /// A validated `[offset, offset + len * size_of::<T>())` window into a
    /// shared region (the snapshot path).
    Mapped {
        /// The backing region, kept alive by this store.
        region: Arc<dyn ByteRegion>,
        /// Byte offset of the first element within the region.
        offset: usize,
        /// Number of `T` elements.
        len: usize,
    },
}

fn serr(message: impl Into<String>) -> GraphError {
    GraphError::Format {
        line: 0,
        message: message.into(),
    }
}

impl<T: Pod> Store<T> {
    /// A typed window into `region`, validated once: the window must lie
    /// inside the region and start at an address aligned for `T`.
    pub fn mapped(
        region: Arc<dyn ByteRegion>,
        offset: usize,
        len: usize,
    ) -> Result<Self, GraphError> {
        let byte_len = len
            .checked_mul(std::mem::size_of::<T>())
            .ok_or_else(|| serr("store length overflows"))?;
        let end = offset
            .checked_add(byte_len)
            .ok_or_else(|| serr("store window overflows"))?;
        let bytes = region.bytes();
        if end > bytes.len() {
            return Err(serr(format!(
                "store window {offset}..{end} exceeds region of {} bytes",
                bytes.len()
            )));
        }
        if (bytes.as_ptr() as usize + offset) % std::mem::align_of::<T>() != 0 {
            return Err(serr(format!(
                "store window at byte {offset} is misaligned for element size {}",
                std::mem::size_of::<T>()
            )));
        }
        Ok(Store::Mapped {
            region,
            offset,
            len,
        })
    }

    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match self {
            Store::Owned(v) => v.as_slice(),
            Store::Mapped {
                region,
                offset,
                len,
            } => {
                let bytes = region.bytes();
                // Safety: `mapped()` validated bounds and alignment against
                // this exact buffer, `ByteRegion` guarantees the buffer is
                // stable, and `Pod` guarantees any bytes are a valid `T`.
                unsafe { std::slice::from_raw_parts(bytes.as_ptr().add(*offset) as *const T, *len) }
            }
        }
    }

    /// Whether this store borrows from a mapped region (as opposed to
    /// owning heap memory).
    pub fn is_mapped(&self) -> bool {
        matches!(self, Store::Mapped { .. })
    }
}

impl<T: Pod> Deref for Store<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> From<Vec<T>> for Store<T> {
    fn from(v: Vec<T>) -> Self {
        Store::Owned(v)
    }
}

impl<T: Pod> Default for Store<T> {
    fn default() -> Self {
        Store::Owned(Vec::new())
    }
}

impl<T: Pod> Clone for Store<T> {
    fn clone(&self) -> Self {
        match self {
            Store::Owned(v) => Store::Owned(v.clone()),
            Store::Mapped {
                region,
                offset,
                len,
            } => Store::Mapped {
                region: Arc::clone(region),
                offset: *offset,
                len: *len,
            },
        }
    }
}

impl<T: Pod + std::fmt::Debug> std::fmt::Debug for Store<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = if self.is_mapped() { "mapped" } else { "owned" };
        write!(f, "Store<{kind}>({} elems)", self.len())
    }
}

/// One CSR adjacency block (one `(edge type, direction)` pair) as stores.
#[derive(Debug, Clone, Default)]
pub struct CsrStore {
    /// `offsets[v]..offsets[v+1]` indexes into `targets`; length `n + 1`.
    pub offsets: Store<u32>,
    /// Concatenated neighbor lists, sorted within each row.
    pub targets: Store<VertexId>,
}

/// Every persistent column of a graph, each independently owned or mapped —
/// the loader-side bridge into [`HinGraph::from_store`](crate::HinGraph::from_store),
/// which validates all invariants before wrapping the columns.
#[derive(Debug, Clone)]
pub struct GraphStore {
    /// The type system the columns conform to.
    pub schema: Schema,
    /// Per vertex: its type. Length `n`.
    pub vertex_types: Store<VertexTypeId>,
    /// All vertex names concatenated, UTF-8.
    pub name_blob: Store<u8>,
    /// Per vertex: byte range `name_offsets[v]..name_offsets[v+1]` of its
    /// name within `name_blob`. Length `n + 1`.
    pub name_offsets: Store<u32>,
    /// Per vertex type `t`: `by_type_offsets[t]..by_type_offsets[t+1]`
    /// bounds `t`'s segment in `by_type_ids` and `name_order`. Length
    /// `T + 1`.
    pub by_type_offsets: Store<u32>,
    /// Vertex ids grouped by type, ascending within each segment. Length `n`.
    pub by_type_ids: Store<VertexId>,
    /// Vertex ids grouped by type, sorted by *name* within each segment
    /// (the binary-search index replacing a per-type hash map). Length `n`.
    pub name_order: Store<VertexId>,
    /// CSR blocks, two per edge type in schema order: forward then reverse.
    pub csrs: Vec<CsrStore>,
    /// Total number of edges (each stored once, in its type's forward CSR).
    pub edge_count: u64,
}

/// A borrowed view of every persistent graph column — what a snapshot
/// writer serializes. Obtained from
/// [`HinGraph::columns`](crate::HinGraph::columns).
#[derive(Debug, Clone)]
pub struct GraphColumns<'g> {
    /// The type system.
    pub schema: &'g Schema,
    /// Per vertex: its type.
    pub vertex_types: &'g [VertexTypeId],
    /// Concatenated UTF-8 vertex names.
    pub name_blob: &'g [u8],
    /// Per vertex: byte range of its name in `name_blob`.
    pub name_offsets: &'g [u32],
    /// Per type: segment bounds in `by_type_ids` / `name_order`.
    pub by_type_offsets: &'g [u32],
    /// Vertex ids grouped by type, ascending.
    pub by_type_ids: &'g [VertexId],
    /// Vertex ids grouped by type, sorted by name.
    pub name_order: &'g [VertexId],
    /// `(offsets, targets)` per CSR block, two per edge type (fwd, rev).
    pub csrs: Vec<(&'g [u32], &'g [VertexId])>,
    /// Total edge count.
    pub edge_count: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_region_roundtrips_bytes() {
        let data: Vec<u8> = (0..=255).collect();
        let region = HeapRegion::from_bytes(&data);
        assert_eq!(region.bytes(), data.as_slice());
        assert_eq!(region.bytes().as_ptr() as usize % 8, 0, "8-byte aligned");
        assert!(HeapRegion::from_bytes(&[]).bytes().is_empty());
    }

    #[test]
    fn mapped_store_reads_typed_elements() {
        let mut bytes = Vec::new();
        for x in [1u32, 2, 3, 4] {
            bytes.extend_from_slice(&x.to_le_bytes());
        }
        let region: Arc<dyn ByteRegion> = Arc::new(HeapRegion::from_bytes(&bytes));
        let s: Store<u32> = Store::mapped(Arc::clone(&region), 4, 2).unwrap();
        assert_eq!(&*s, &[2, 3]);
        assert!(s.is_mapped());
        let ids: Store<VertexId> = Store::mapped(region, 0, 4).unwrap();
        assert_eq!(ids[3], VertexId(4));
    }

    #[test]
    fn mapped_store_rejects_out_of_bounds_and_misalignment() {
        let region: Arc<dyn ByteRegion> = Arc::new(HeapRegion::from_bytes(&[0u8; 16]));
        assert!(Store::<u32>::mapped(Arc::clone(&region), 8, 3).is_err());
        assert!(Store::<u32>::mapped(Arc::clone(&region), 2, 1).is_err());
        assert!(Store::<u64>::mapped(Arc::clone(&region), 4, 1).is_err());
        assert!(Store::<u32>::mapped(Arc::clone(&region), usize::MAX, 1).is_err());
        assert!(Store::<u64>::mapped(region, 0, usize::MAX / 2).is_err());
    }

    #[test]
    fn owned_store_derefs_and_clones() {
        let s: Store<u32> = vec![5, 6, 7].into();
        assert_eq!(s.len(), 3);
        assert!(!s.is_mapped());
        let c = s.clone();
        assert_eq!(&*c, &*s);
        assert_eq!(format!("{s:?}"), "Store<owned>(3 elems)");
        let d: Store<u32> = Store::default();
        assert!(d.is_empty());
    }
}
