//! # hin-graph
//!
//! Data model for **heterogeneous information networks** (HINs) as defined in
//! *Kuck et al., "Query-Based Outlier Detection in Heterogeneous Information
//! Networks", EDBT 2015* (Definitions 1–7).
//!
//! A HIN is a directed multigraph `G = (V, E; φ, T)` where every vertex
//! carries a type drawn from a small closed [`Schema`]. Relationships between
//! vertices that are several hops apart are described by [`MetaPath`]s —
//! ordered sequences of vertex types — and quantified by counting *path
//! instantiations* (Definition 5).
//!
//! The crate provides:
//!
//! * [`Schema`] / [`SchemaBuilder`] — vertex and edge type declarations,
//!   with name-based lookup.
//! * [`HinGraph`] / [`GraphBuilder`] — compact CSR adjacency per
//!   `(edge type, direction)`, name interning, and per-type vertex indexes.
//! * [`MetaPath`] — the meta-path algebra: reversal, concatenation,
//!   symmetrization (Definitions 3–4), parsing from `"author.paper.venue"`
//!   notation, and schema validation.
//! * [`SparseVec`] / [`SparseMatrix`] — the sparse kernels used to count path
//!   instantiations (`Φ_P(v)` of Definition 7) and to materialize length-2
//!   meta-path relations (Section 6.2 of the paper).
//! * [`traverse`] — neighbor-vector computation, neighborhoods, and pairwise
//!   path counting built on the sparse kernels.
//! * [`io`] / [`binio`] — text and compact binary persistence (with
//!   format auto-detection via [`binio::load_graph_auto`]).
//! * [`store`] — the column storage layer ([`Store`], [`GraphStore`],
//!   [`GraphColumns`]) that lets a graph be backed either by heap
//!   allocations or by borrowed views into a memory-mapped snapshot
//!   (see the `hin-snapshot` crate).
//!
//! ## Quickstart
//!
//! ```
//! use hin_graph::{SchemaBuilder, GraphBuilder, MetaPath};
//!
//! // The bibliographic schema of the paper: A, P, V, T.
//! let mut sb = SchemaBuilder::new();
//! let author = sb.vertex_type("author");
//! let paper = sb.vertex_type("paper");
//! let venue = sb.vertex_type("venue");
//! sb.edge_type("writes", author, paper);
//! sb.edge_type("published_in", paper, venue);
//! let schema = sb.build().unwrap();
//!
//! let mut gb = GraphBuilder::new(schema);
//! let ava = gb.add_vertex(author, "Ava").unwrap();
//! let p1 = gb.add_vertex(paper, "p1").unwrap();
//! let kdd = gb.add_vertex(venue, "KDD").unwrap();
//! gb.add_edge(ava, p1).unwrap();
//! gb.add_edge(p1, kdd).unwrap();
//! let graph = gb.build();
//!
//! let apv = MetaPath::parse("author.paper.venue", graph.schema()).unwrap();
//! let phi = hin_graph::traverse::neighbor_vector(&graph, ava, &apv).unwrap();
//! assert_eq!(phi.get(kdd), 1.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// Library code paths must report failures as `GraphError`, never panic;
// tests are free to unwrap. Intentional invariants carry local `#[allow]`s
// with a justification comment.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod binio;
mod error;
mod graph;
mod ids;
pub mod io;
mod metapath;
mod schema;
pub mod sparse;
pub mod stats;
pub mod store;
pub mod traverse;

pub use error::GraphError;
pub use graph::{EdgeRef, GraphBuilder, HinGraph, VertexRef};
pub use ids::{EdgeTypeId, VertexId, VertexTypeId};
pub use metapath::MetaPath;
pub use schema::{bibliographic_schema, EdgeTypeInfo, Schema, SchemaBuilder, VertexTypeInfo};
pub use sparse::{DenseAccumulator, SparseMatrix, SparseVec};
pub use store::{ByteRegion, CsrStore, GraphColumns, GraphStore, HeapRegion, Pod, Store};
