//! A simple line-oriented text format for persisting heterogeneous networks.
//!
//! The format is tab-separated so vertex names may contain spaces (author
//! names do). Lines starting with `#` and blank lines are ignored.
//!
//! ```text
//! vtype<TAB>author
//! vtype<TAB>paper
//! etype<TAB>writes<TAB>author<TAB>paper
//! v<TAB>author<TAB>Christos Faloutsos
//! v<TAB>paper<TAB>p123
//! e<TAB>author<TAB>Christos Faloutsos<TAB>paper<TAB>p123
//! ```
//!
//! Declarations must appear before use: `vtype`/`etype` lines define the
//! schema, `v` lines add vertices, `e` lines add edges (edge type inferred
//! from endpoint types, as in [`GraphBuilder::add_edge`]).

use crate::error::GraphError;
use crate::graph::{GraphBuilder, HinGraph};
use crate::schema::SchemaBuilder;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

fn format_err(line: usize, message: impl Into<String>) -> GraphError {
    GraphError::Format {
        line,
        message: message.into(),
    }
}

/// Write `graph` in the text format.
pub fn write_graph<W: Write>(graph: &HinGraph, mut w: W) -> std::io::Result<()> {
    let schema = graph.schema();
    writeln!(w, "# hin-graph text format v1")?;
    writeln!(
        w,
        "# {} vertices, {} edges",
        graph.vertex_count(),
        graph.edge_count()
    )?;
    for t in schema.vertex_type_ids() {
        writeln!(w, "vtype\t{}", schema.vertex_type_name(t))?;
    }
    for t in schema.edge_type_ids() {
        let info = schema.edge_type(t);
        writeln!(
            w,
            "etype\t{}\t{}\t{}",
            info.name,
            schema.vertex_type_name(info.src),
            schema.vertex_type_name(info.dst)
        )?;
    }
    for v in graph.vertices() {
        writeln!(
            w,
            "v\t{}\t{}",
            schema.vertex_type_name(graph.vertex_type(v)),
            graph.vertex_name(v)
        )?;
    }
    // Edges: iterate each edge type's forward CSR exactly once.
    for et in schema.edge_type_ids() {
        let info = schema.edge_type(et);
        for src in graph.vertices_of_type(info.src) {
            for dst in graph.neighbors_forward(*src, et) {
                writeln!(
                    w,
                    "e\t{}\t{}\t{}\t{}",
                    schema.vertex_type_name(info.src),
                    graph.vertex_name(*src),
                    schema.vertex_type_name(info.dst),
                    graph.vertex_name(*dst)
                )?;
            }
        }
    }
    Ok(())
}

/// Write `graph` to a file at `path`.
pub fn save_graph(graph: &HinGraph, path: impl AsRef<Path>) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_graph(graph, std::io::BufWriter::new(f))
}

/// Longest line the reader accepts. Legitimate records are tiny (a few
/// names and tabs); anything longer is corrupt or adversarial input that
/// would otherwise buffer without bound.
const MAX_LINE_BYTES: usize = 1 << 20;

/// Read one `\n`-terminated line into `buf`, stopping early once `cap`
/// bytes have accumulated (the caller then rejects the line). Bounds memory
/// to roughly `cap` regardless of input size, unlike `BufRead::read_until`.
fn read_line_capped<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    cap: usize,
) -> std::io::Result<usize> {
    buf.clear();
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(buf.len()); // EOF
        }
        if let Some(pos) = available.iter().position(|&b| b == b'\n') {
            buf.extend_from_slice(&available[..=pos]);
            reader.consume(pos + 1);
            return Ok(buf.len());
        }
        buf.extend_from_slice(available);
        let consumed = available.len();
        reader.consume(consumed);
        if buf.len() > cap {
            return Ok(buf.len());
        }
    }
}

/// Read a graph in the text format.
///
/// I/O failures surface as `GraphError::Format` with line 0.
pub fn read_graph<R: Read>(r: R) -> Result<HinGraph, GraphError> {
    let mut reader = BufReader::new(r);
    // Pass 1 collects everything (schema lines may legally be interleaved
    // before first use, but we keep it simple: schema lines must precede the
    // first v/e line, which the writer guarantees).
    let mut schema_builder = Some(SchemaBuilder::new());
    let mut gb: Option<GraphBuilder> = None;
    let mut line_no = 0usize;
    let mut raw = Vec::new();
    loop {
        line_no += 1;
        let n = read_line_capped(&mut reader, &mut raw, MAX_LINE_BYTES)
            .map_err(|e| format_err(line_no, format!("I/O error: {e}")))?;
        if n == 0 {
            break;
        }
        if n > MAX_LINE_BYTES {
            return Err(format_err(
                line_no,
                format!("line exceeds {MAX_LINE_BYTES} bytes"),
            ));
        }
        let line = std::str::from_utf8(&raw)
            .map_err(|_| format_err(line_no, "line is not valid UTF-8"))?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        match fields[0] {
            "vtype" => {
                let [_, name] = fields[..] else {
                    return Err(format_err(line_no, "vtype expects 1 field"));
                };
                let Some(sb) = schema_builder.as_mut() else {
                    return Err(format_err(line_no, "vtype after first v/e line"));
                };
                sb.vertex_type(name);
            }
            "etype" => {
                let [_, name, src, dst] = fields[..] else {
                    return Err(format_err(line_no, "etype expects 3 fields"));
                };
                let Some(sb) = schema_builder.as_mut() else {
                    return Err(format_err(line_no, "etype after first v/e line"));
                };
                // Resolve type names against what the builder has seen so
                // far. SchemaBuilder has no name lookup, so build a probe
                // schema — cheap, schemas are tiny. Instead, defer: stash and
                // resolve at build time would complicate; here we re-declare
                // via a scratch list.
                sb.edge_type_by_names(name, src, dst)
                    .map_err(|m| format_err(line_no, m))?;
            }
            "v" => {
                let [_, tname, vname] = fields[..] else {
                    return Err(format_err(line_no, "v expects 2 fields"));
                };
                let gb = ensure_graph(&mut schema_builder, &mut gb, line_no)?;
                let t = gb
                    .schema()
                    .vertex_type_by_name(tname)
                    .ok_or_else(|| format_err(line_no, format!("unknown vertex type {tname:?}")))?;
                gb.add_vertex(t, vname)
                    .map_err(|e| format_err(line_no, e.to_string()))?;
            }
            "e" => {
                let [_, t1, n1, t2, n2] = fields[..] else {
                    return Err(format_err(line_no, "e expects 4 fields"));
                };
                let gb = ensure_graph(&mut schema_builder, &mut gb, line_no)?;
                let lookup = |t: &str, n: &str| {
                    let tid = gb
                        .schema()
                        .vertex_type_by_name(t)
                        .ok_or_else(|| format_err(line_no, format!("unknown vertex type {t:?}")))?;
                    gb.vertex_by_name(tid, n)
                        .ok_or_else(|| format_err(line_no, format!("unknown vertex {t}:{n:?}")))
                };
                let u = lookup(t1, n1)?;
                let v = lookup(t2, n2)?;
                gb.add_edge(u, v)
                    .map_err(|e| format_err(line_no, e.to_string()))?;
            }
            other => {
                return Err(format_err(
                    line_no,
                    format!("unknown record kind {other:?}"),
                ));
            }
        }
    }
    match gb {
        Some(gb) => Ok(gb.build()),
        None => {
            // A schema-only (or empty) file yields an empty graph. The
            // builder is still present because `ensure_graph` (the only
            // taker) also sets `gb`.
            let sb = schema_builder
                .take()
                .ok_or_else(|| format_err(0, "internal: schema builder missing"))?;
            let schema = sb
                .build()
                .map_err(|e| format_err(0, format!("invalid schema: {e}")))?;
            Ok(GraphBuilder::new(schema).build())
        }
    }
}

/// Read a graph from a file at `path`.
pub fn load_graph(path: impl AsRef<Path>) -> Result<HinGraph, GraphError> {
    let f = std::fs::File::open(&path).map_err(|e| GraphError::Format {
        line: 0,
        message: format!("cannot open {}: {e}", path.as_ref().display()),
    })?;
    read_graph(f)
}

fn ensure_graph<'a>(
    schema_builder: &mut Option<SchemaBuilder>,
    gb: &'a mut Option<GraphBuilder>,
    line_no: usize,
) -> Result<&'a mut GraphBuilder, GraphError> {
    if gb.is_none() {
        let sb = schema_builder
            .take()
            .ok_or_else(|| format_err(line_no, "internal: schema already consumed"))?;
        let schema = sb
            .build()
            .map_err(|e| format_err(line_no, format!("invalid schema: {e}")))?;
        *gb = Some(GraphBuilder::new(schema));
    }
    gb.as_mut()
        .ok_or_else(|| format_err(line_no, "internal: graph builder missing"))
}

impl SchemaBuilder {
    /// Declare an edge type by endpoint type *names* (used by the reader;
    /// names must already be declared).
    fn edge_type_by_names(&mut self, name: &str, src: &str, dst: &str) -> Result<(), String> {
        let find = |this: &SchemaBuilder, n: &str| {
            this.declared_vertex_types()
                .position(|t| t == n)
                .map(|i| crate::ids::VertexTypeId(i as u8))
                .ok_or_else(|| format!("unknown vertex type {n:?} in etype"))
        };
        let s = find(self, src)?;
        let d = find(self, dst)?;
        self.edge_type(name, s, d);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metapath::MetaPath;
    use crate::schema::bibliographic_schema;
    use crate::traverse::neighbor_vector;

    fn sample() -> HinGraph {
        let schema = bibliographic_schema();
        let author = schema.vertex_type_by_name("author").unwrap();
        let paper = schema.vertex_type_by_name("paper").unwrap();
        let venue = schema.vertex_type_by_name("venue").unwrap();
        let mut gb = GraphBuilder::new(schema);
        let a = gb.add_vertex(author, "Ann Example").unwrap();
        let b = gb.add_vertex(author, "Bob O'Brien").unwrap();
        let p = gb.add_vertex(paper, "p1").unwrap();
        let v = gb.add_vertex(venue, "KDD").unwrap();
        gb.add_edge(a, p).unwrap();
        gb.add_edge(b, p).unwrap();
        gb.add_edge(p, v).unwrap();
        gb.build()
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let g = sample();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(&buf[..]).unwrap();
        assert_eq!(g2.vertex_count(), g.vertex_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        let author = g2.schema().vertex_type_by_name("author").unwrap();
        let ann = g2.vertex_by_name(author, "Ann Example").unwrap();
        let apv = MetaPath::parse("author.paper.venue", g2.schema()).unwrap();
        let phi = neighbor_vector(&g2, ann, &apv).unwrap();
        assert_eq!(phi.nnz(), 1);
    }

    #[test]
    fn names_with_spaces_survive() {
        let g = sample();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("Ann Example"));
        let g2 = read_graph(&buf[..]).unwrap();
        let author = g2.schema().vertex_type_by_name("author").unwrap();
        assert!(g2.vertex_by_name(author, "Bob O'Brien").is_some());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# hello\n\nvtype\tauthor\n\n# more\nv\tauthor\tX\n";
        let g = read_graph(text.as_bytes()).unwrap();
        assert_eq!(g.vertex_count(), 1);
    }

    #[test]
    fn schema_only_file_gives_empty_graph() {
        let text = "vtype\tauthor\nvtype\tpaper\netype\twrites\tauthor\tpaper\n";
        let g = read_graph(text.as_bytes()).unwrap();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.schema().vertex_type_count(), 2);
        assert_eq!(g.schema().edge_type_count(), 1);
    }

    #[test]
    fn bad_record_kind_reports_line() {
        let text = "vtype\tauthor\nxxx\tfoo\n";
        let err = read_graph(text.as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Format { line: 2, .. }));
    }

    #[test]
    fn edge_to_unknown_vertex_fails() {
        let text = "vtype\tauthor\nvtype\tpaper\netype\tw\tauthor\tpaper\n\
                    v\tauthor\tA\ne\tauthor\tA\tpaper\tmissing\n";
        let err = read_graph(text.as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Format { line: 5, .. }));
    }

    #[test]
    fn schema_line_after_data_fails() {
        let text = "vtype\tauthor\nv\tauthor\tA\nvtype\tpaper\n";
        let err = read_graph(text.as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Format { line: 3, .. }));
    }

    #[test]
    fn wrong_arity_fails() {
        let text = "vtype\tauthor\textra\n";
        assert!(read_graph(text.as_bytes()).is_err());
        let text = "vtype\tauthor\nv\tauthor\n";
        assert!(read_graph(text.as_bytes()).is_err());
    }

    #[test]
    fn oversized_line_rejected_with_bounded_memory() {
        // A single multi-megabyte "line" (no newline at all) is rejected as
        // soon as the cap trips rather than buffered whole.
        let mut data = b"vtype\tauthor\nv\tauthor\t".to_vec();
        data.extend(std::iter::repeat(b'x').take(MAX_LINE_BYTES + 128));
        let err = read_graph(&data[..]).unwrap_err();
        assert!(matches!(err, GraphError::Format { line: 2, .. }), "{err}");
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn non_utf8_line_rejected() {
        let data = b"vtype\tauthor\nv\tauthor\t\xFF\xFE\n";
        let err = read_graph(&data[..]).unwrap_err();
        assert!(matches!(err, GraphError::Format { line: 2, .. }), "{err}");
        assert!(err.to_string().contains("UTF-8"), "{err}");
    }

    #[test]
    fn save_and_load_files() {
        let dir = std::env::temp_dir().join("hin_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.hin");
        let g = sample();
        save_graph(&g, &path).unwrap();
        let g2 = load_graph(&path).unwrap();
        assert_eq!(g2.vertex_count(), g.vertex_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_reports() {
        let err = load_graph("/nonexistent/path/xyz.hin").unwrap_err();
        assert!(matches!(err, GraphError::Format { line: 0, .. }));
    }
}
