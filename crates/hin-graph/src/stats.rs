//! Descriptive statistics over a heterogeneous network — handy for sanity
//! checks on generated data and for reporting experiment setups (the paper
//! reports its network as "2,244,018 publications and 1,274,360 authors").

use crate::graph::HinGraph;
use crate::ids::VertexTypeId;
use std::fmt;

/// Per-vertex-type summary.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeStats {
    /// The vertex type.
    pub vtype: VertexTypeId,
    /// The vertex type's name.
    pub name: String,
    /// Number of vertices of this type.
    pub count: usize,
}

/// Degree summary for one `(source type, target type)` step.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum step-degree over source vertices.
    pub min: usize,
    /// Maximum step-degree over source vertices.
    pub max: usize,
    /// Mean step-degree over source vertices.
    pub mean: f64,
    /// Number of source vertices with zero step-degree.
    pub isolated: usize,
}

/// A full summary of a network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkStats {
    /// One entry per vertex type.
    pub types: Vec<TypeStats>,
    /// Total vertices.
    pub vertex_count: usize,
    /// Total edges.
    pub edge_count: usize,
}

/// Compute per-type counts and totals.
pub fn network_stats(graph: &HinGraph) -> NetworkStats {
    let schema = graph.schema();
    let types = schema
        .vertex_type_ids()
        .map(|t| TypeStats {
            vtype: t,
            name: schema.vertex_type_name(t).to_string(),
            count: graph.count_of_type(t),
        })
        .collect();
    NetworkStats {
        types,
        vertex_count: graph.vertex_count(),
        edge_count: graph.edge_count(),
    }
}

/// Degree distribution of one traversal step `from → to` (with
/// multiplicity), over all vertices of type `from`.
pub fn degree_stats(graph: &HinGraph, from: VertexTypeId, to: VertexTypeId) -> DegreeStats {
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut sum = 0usize;
    let mut isolated = 0usize;
    let vertices = graph.vertices_of_type(from);
    for &v in vertices {
        let d = graph.step_degree(v, to);
        min = min.min(d);
        max = max.max(d);
        sum += d;
        if d == 0 {
            isolated += 1;
        }
    }
    if vertices.is_empty() {
        min = 0;
    }
    DegreeStats {
        min,
        max,
        mean: if vertices.is_empty() {
            0.0
        } else {
            sum as f64 / vertices.len() as f64
        },
        isolated,
    }
}

/// Log-2-bucketed degree histogram of one traversal step: bucket 0 counts
/// isolated source vertices (`d = 0`); bucket `i ≥ 1` counts those with
/// `2^(i-1) ≤ d < 2^i` (so bucket 1 is `d = 1`, bucket 2 is `d ∈ {2, 3}`,
/// …).
///
/// Useful for eyeballing whether a generated network has the heavy-tailed
/// activity real bibliographic networks show.
pub fn degree_histogram(graph: &HinGraph, from: VertexTypeId, to: VertexTypeId) -> Vec<usize> {
    let mut buckets: Vec<usize> = Vec::new();
    for &v in graph.vertices_of_type(from) {
        let d = graph.step_degree(v, to);
        let bucket = (usize::BITS - d.leading_zeros()) as usize;
        if bucket >= buckets.len() {
            buckets.resize(bucket + 1, 0);
        }
        buckets[bucket] += 1;
    }
    buckets
}

impl fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} vertices, {} edges",
            self.vertex_count, self.edge_count
        )?;
        for t in &self.types {
            writeln!(f, "  {:<12} {:>10}", t.name, t.count)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::schema::bibliographic_schema;

    fn sample() -> HinGraph {
        let schema = bibliographic_schema();
        let author = schema.vertex_type_by_name("author").unwrap();
        let paper = schema.vertex_type_by_name("paper").unwrap();
        let mut gb = GraphBuilder::new(schema);
        let a = gb.add_vertex(author, "A").unwrap();
        let b = gb.add_vertex(author, "B").unwrap();
        let _lonely = gb.add_vertex(author, "C").unwrap();
        let p1 = gb.add_vertex(paper, "p1").unwrap();
        let p2 = gb.add_vertex(paper, "p2").unwrap();
        gb.add_edge(a, p1).unwrap();
        gb.add_edge(a, p2).unwrap();
        gb.add_edge(b, p1).unwrap();
        gb.build()
    }

    #[test]
    fn counts_by_type() {
        let g = sample();
        let s = network_stats(&g);
        assert_eq!(s.vertex_count, 5);
        assert_eq!(s.edge_count, 3);
        assert_eq!(s.types[0].name, "author");
        assert_eq!(s.types[0].count, 3);
        assert_eq!(s.types[1].count, 2);
        let text = s.to_string();
        assert!(text.contains("5 vertices"));
        assert!(text.contains("author"));
    }

    #[test]
    fn degree_distribution() {
        let g = sample();
        let author = g.schema().vertex_type_by_name("author").unwrap();
        let paper = g.schema().vertex_type_by_name("paper").unwrap();
        let d = degree_stats(&g, author, paper);
        assert_eq!(d.min, 0);
        assert_eq!(d.max, 2);
        assert_eq!(d.isolated, 1);
        assert!((d.mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets() {
        let g = sample();
        let author = g.schema().vertex_type_by_name("author").unwrap();
        let paper = g.schema().vertex_type_by_name("paper").unwrap();
        // A: d=2 -> bucket 2; B: d=1 -> bucket 1; C: d=0 -> bucket 0.
        let h = degree_histogram(&g, author, paper);
        assert_eq!(h, vec![1, 1, 1]);
        // No papers from venues in this fixture.
        let venue = g.schema().vertex_type_by_name("venue").unwrap();
        assert_eq!(degree_histogram(&g, venue, paper), Vec::<usize>::new());
    }

    #[test]
    fn degree_stats_empty_type() {
        let g = GraphBuilder::new(bibliographic_schema()).build();
        let author = g.schema().vertex_type_by_name("author").unwrap();
        let paper = g.schema().vertex_type_by_name("paper").unwrap();
        let d = degree_stats(&g, author, paper);
        assert_eq!(d.min, 0);
        assert_eq!(d.max, 0);
        assert_eq!(d.mean, 0.0);
    }
}
