//! Strongly typed identifiers for vertices, vertex types, and edge types.
//!
//! All identifiers are small integer newtypes so they can be used as dense
//! array indices on hot paths (per the Rust Performance Book guidance on
//! smaller integers), while remaining impossible to confuse with one another
//! at compile time.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a vertex in a [`crate::HinGraph`].
///
/// Vertex ids are dense: a graph with `n` vertices uses ids `0..n`. The id
/// space is shared across all vertex types (the type of a vertex is recovered
/// via [`crate::HinGraph::vertex_type`]).
///
/// `repr(transparent)` over `u32` is a layout guarantee the storage layer
/// relies on: arrays of ids can be reinterpreted as arrays of `u32` (and
/// back) when loading memory-mapped snapshots without copying.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct VertexId(pub u32);

/// Identifier of a vertex *type* (e.g. `author`, `paper`) in a [`crate::Schema`].
///
/// `repr(transparent)` over `u8`: see [`VertexId`] for why.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct VertexTypeId(pub u8);

/// Identifier of an edge *type* (e.g. `writes: author -> paper`) in a
/// [`crate::Schema`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct EdgeTypeId(pub u16);

impl VertexId {
    /// The id as a `usize`, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl VertexTypeId {
    /// The id as a `usize`, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeTypeId {
    /// The id as a `usize`, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for VertexId {
    #[inline]
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for VertexTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Debug for EdgeTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId(42);
        assert_eq!(v.index(), 42);
        assert_eq!(VertexId::from(42u32), v);
        assert_eq!(format!("{v:?}"), "v42");
        assert_eq!(format!("{v}"), "42");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let set: BTreeSet<VertexId> = [VertexId(3), VertexId(1), VertexId(2)].into();
        let sorted: Vec<u32> = set.into_iter().map(|v| v.0).collect();
        assert_eq!(sorted, vec![1, 2, 3]);
    }

    #[test]
    fn type_ids_debug() {
        assert_eq!(format!("{:?}", VertexTypeId(2)), "T2");
        assert_eq!(format!("{:?}", EdgeTypeId(7)), "E7");
    }
}
