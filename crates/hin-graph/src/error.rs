//! Error type for graph and meta-path operations.

use crate::ids::{VertexId, VertexTypeId};
use std::fmt;

/// Errors produced by schema construction, graph construction, meta-path
/// parsing/validation, and traversal.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A vertex type name was declared twice in a schema.
    DuplicateVertexType(String),
    /// An edge type name was declared twice in a schema.
    DuplicateEdgeType(String),
    /// An edge type referenced a vertex type id that does not exist.
    UnknownVertexTypeId(VertexTypeId),
    /// A vertex type name was not found in the schema.
    UnknownVertexTypeName(String),
    /// Too many vertex types for the `u8` id space.
    TooManyVertexTypes,
    /// Too many edge types for the `u16` id space.
    TooManyEdgeTypes,
    /// Too many vertices for the `u32` id space.
    TooManyVertices,
    /// A vertex with the same (type, name) already exists.
    DuplicateVertex {
        /// Type of the duplicated vertex.
        vtype: VertexTypeId,
        /// Name of the duplicated vertex.
        name: String,
    },
    /// An edge endpoint id is out of range.
    UnknownVertex(VertexId),
    /// No edge type in the schema connects the two endpoint types.
    NoEdgeTypeBetween {
        /// Source vertex type.
        src: VertexTypeId,
        /// Destination vertex type.
        dst: VertexTypeId,
    },
    /// A meta-path string was empty or malformed.
    EmptyMetaPath,
    /// A meta-path mentions a vertex type missing from the schema.
    MetaPathUnknownType(String),
    /// Two consecutive meta-path types have no connecting edge type.
    MetaPathBrokenLink {
        /// Position of the first type of the broken link within the path.
        position: usize,
        /// First type of the broken link.
        from: VertexTypeId,
        /// Second type of the broken link.
        to: VertexTypeId,
    },
    /// Meta-path concatenation requires the end type of the first path to
    /// equal the start type of the second.
    ConcatTypeMismatch {
        /// End type of the left path.
        left_end: VertexTypeId,
        /// Start type of the right path.
        right_start: VertexTypeId,
    },
    /// A traversal started from a vertex whose type does not match the
    /// meta-path's first type.
    StartTypeMismatch {
        /// The vertex the traversal started from.
        vertex: VertexId,
        /// The vertex's actual type.
        actual: VertexTypeId,
        /// The type required by the meta-path.
        expected: VertexTypeId,
    },
    /// An I/O-format error while reading a persisted network.
    Format {
        /// 1-based line number of the offending line.
        line: usize,
        /// Explanation of the problem.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DuplicateVertexType(name) => {
                write!(f, "duplicate vertex type name {name:?}")
            }
            GraphError::DuplicateEdgeType(name) => write!(f, "duplicate edge type name {name:?}"),
            GraphError::UnknownVertexTypeId(t) => write!(f, "unknown vertex type id {t:?}"),
            GraphError::UnknownVertexTypeName(name) => {
                write!(f, "unknown vertex type name {name:?}")
            }
            GraphError::TooManyVertexTypes => write!(f, "more than 255 vertex types"),
            GraphError::TooManyEdgeTypes => write!(f, "more than 65535 edge types"),
            GraphError::TooManyVertices => write!(f, "more than u32::MAX vertices"),
            GraphError::DuplicateVertex { vtype, name } => {
                write!(f, "vertex {name:?} of type {vtype:?} already exists")
            }
            GraphError::UnknownVertex(v) => write!(f, "unknown vertex {v:?}"),
            GraphError::NoEdgeTypeBetween { src, dst } => {
                write!(f, "schema has no edge type between {src:?} and {dst:?}")
            }
            GraphError::EmptyMetaPath => write!(f, "meta-path must contain at least one type"),
            GraphError::MetaPathUnknownType(name) => {
                write!(f, "meta-path mentions unknown vertex type {name:?}")
            }
            GraphError::MetaPathBrokenLink { position, from, to } => write!(
                f,
                "meta-path link {from:?}-{to:?} at position {position} has no edge type in the schema"
            ),
            GraphError::ConcatTypeMismatch {
                left_end,
                right_start,
            } => write!(
                f,
                "cannot concatenate: left path ends at {left_end:?} but right path starts at {right_start:?}"
            ),
            GraphError::StartTypeMismatch {
                vertex,
                actual,
                expected,
            } => write!(
                f,
                "vertex {vertex:?} has type {actual:?} but the meta-path starts at {expected:?}"
            ),
            GraphError::Format { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NoEdgeTypeBetween {
            src: VertexTypeId(0),
            dst: VertexTypeId(3),
        };
        assert!(e.to_string().contains("no edge type"));
        let e = GraphError::Format {
            line: 12,
            message: "bad record".into(),
        };
        assert_eq!(e.to_string(), "line 12: bad record");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&GraphError::EmptyMetaPath);
    }
}
