//! Property tests validating the sparse-propagation path counting against a
//! brute-force DFS oracle on randomly generated networks.
//!
//! The oracle literally enumerates every instantiation of a meta-path
//! (Definition 5) by depth-first search; `traverse::neighbor_vector` must
//! produce identical counts on every graph and path we can throw at it.

use hin_graph::{
    traverse, GraphBuilder, HinGraph, MetaPath, Schema, SchemaBuilder, VertexId, VertexTypeId,
};
use proptest::prelude::*;
use rustc_hash::FxHashMap;

/// Brute-force `Φ_P(v)`: enumerate all instantiations by DFS.
fn oracle_neighbor_vector(graph: &HinGraph, v: VertexId, path: &MetaPath) -> FxHashMap<VertexId, u64> {
    fn dfs(
        graph: &HinGraph,
        current: VertexId,
        remaining: &[VertexTypeId],
        counts: &mut FxHashMap<VertexId, u64>,
    ) {
        match remaining.first() {
            None => *counts.entry(current).or_insert(0) += 1,
            Some(&next_type) => {
                for n in graph.step_neighbors(current, next_type) {
                    dfs(graph, n, &remaining[1..], counts);
                }
            }
        }
    }
    let mut counts = FxHashMap::default();
    dfs(graph, v, &path.types()[1..], &mut counts);
    counts
}

/// A small random 3-type network: X–Y and Y–Z links.
#[derive(Debug, Clone)]
struct RandomNetwork {
    graph: HinGraph,
    x_type: VertexTypeId,
}

fn schema() -> (Schema, [VertexTypeId; 3]) {
    let mut sb = SchemaBuilder::new();
    let x = sb.vertex_type("x");
    let y = sb.vertex_type("y");
    let z = sb.vertex_type("z");
    sb.edge_type("xy", x, y);
    sb.edge_type("yz", y, z);
    (sb.build().unwrap(), [x, y, z])
}

fn random_network_strategy() -> impl Strategy<Value = RandomNetwork> {
    // Vertex counts per type and edge endpoint pairs by index.
    (
        1usize..6,
        1usize..6,
        1usize..6,
        proptest::collection::vec((0usize..6, 0usize..6), 0..30),
        proptest::collection::vec((0usize..6, 0usize..6), 0..30),
    )
        .prop_map(|(nx, ny, nz, xy_edges, yz_edges)| {
            let (schema, [x, y, z]) = schema();
            let mut gb = GraphBuilder::new(schema);
            let xs: Vec<VertexId> = (0..nx)
                .map(|i| gb.add_vertex(x, format!("x{i}")).unwrap())
                .collect();
            let ys: Vec<VertexId> = (0..ny)
                .map(|i| gb.add_vertex(y, format!("y{i}")).unwrap())
                .collect();
            let zs: Vec<VertexId> = (0..nz)
                .map(|i| gb.add_vertex(z, format!("z{i}")).unwrap())
                .collect();
            for (a, b) in xy_edges {
                // Parallel edges are intentionally possible: multiplicity
                // must be counted by both implementations.
                gb.add_edge(xs[a % nx], ys[b % ny]).unwrap();
            }
            for (a, b) in yz_edges {
                gb.add_edge(ys[a % ny], zs[b % nz]).unwrap();
            }
            RandomNetwork {
                graph: gb.build(),
                x_type: x,
            }
        })
}

fn check_against_oracle(net: &RandomNetwork, path_str: &str) -> Result<(), TestCaseError> {
    let path = MetaPath::parse(path_str, net.graph.schema()).unwrap();
    for &v in net.graph.vertices_of_type(path.source_type()) {
        let fast = traverse::neighbor_vector(&net.graph, v, &path).unwrap();
        let slow = oracle_neighbor_vector(&net.graph, v, &path);
        prop_assert_eq!(
            fast.nnz(),
            slow.len(),
            "support size mismatch for {:?} along {}",
            v,
            path_str
        );
        for (u, count) in fast.iter() {
            prop_assert_eq!(
                count,
                *slow.get(&u).unwrap_or(&0) as f64,
                "count mismatch at {:?} for {:?} along {}",
                u,
                v,
                path_str
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sparse propagation equals DFS enumeration on every random graph, for
    /// paths of length 1–4 including palindromes and the symmetric closure.
    #[test]
    fn propagation_matches_dfs_oracle(net in random_network_strategy()) {
        for path_str in [
            "x.y",
            "x.y.x",
            "x.y.z",
            "x.y.z.y",
            "x.y.z.y.x",
            "y.x.y.z",
        ] {
            check_against_oracle(&net, path_str)?;
        }
    }

    /// Connectivity is symmetric and equals the symmetric-path count.
    #[test]
    fn connectivity_consistency(net in random_network_strategy()) {
        let g = &net.graph;
        let path = MetaPath::parse("x.y.z", g.schema()).unwrap();
        let xs = g.vertices_of_type(net.x_type);
        for &u in xs {
            for &v in xs {
                let chi = traverse::connectivity(g, u, v, &path).unwrap();
                prop_assert_eq!(chi, traverse::connectivity(g, v, u, &path).unwrap());
                let sym = path.symmetric();
                prop_assert_eq!(chi, traverse::path_count(g, u, v, &sym).unwrap());
            }
        }
    }

    /// Visibility is the squared L2 norm of the neighbor vector, and the
    /// neighborhood is exactly the vector's support.
    #[test]
    fn visibility_and_neighborhood_consistency(net in random_network_strategy()) {
        let g = &net.graph;
        let path = MetaPath::parse("x.y", g.schema()).unwrap();
        for &v in g.vertices_of_type(net.x_type) {
            let phi = traverse::neighbor_vector(g, v, &path).unwrap();
            prop_assert_eq!(
                traverse::visibility(g, v, &path).unwrap(),
                phi.norm2_sq()
            );
            let nb = traverse::neighborhood(g, v, &path).unwrap();
            prop_assert_eq!(nb, phi.support().collect::<Vec<_>>());
        }
    }
}
