//! Corruption robustness: feeding damaged serialized graphs (binary and
//! text) to the loaders must produce `Err`, never a panic or a huge
//! allocation. Each property runs under an unwind-catching harness so a
//! latent panic in the decoder shows up as a test failure with the exact
//! corrupted offset, not an abort.

use hin_graph::{binio, io, GraphBuilder, HinGraph};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn sample_graph() -> HinGraph {
    let schema = hin_graph::bibliographic_schema();
    let author = schema.vertex_type_by_name("author").expect("schema type");
    let paper = schema.vertex_type_by_name("paper").expect("schema type");
    let venue = schema.vertex_type_by_name("venue").expect("schema type");
    let mut gb = GraphBuilder::new(schema);
    let a = gb.add_vertex(author, "Ann Example").expect("vertex");
    let b = gb.add_vertex(author, "Bob — Ünïcode").expect("vertex");
    let p1 = gb.add_vertex(paper, "p1").expect("vertex");
    let p2 = gb.add_vertex(paper, "p2").expect("vertex");
    let v = gb.add_vertex(venue, "KDD").expect("vertex");
    gb.add_edge(a, p1).expect("edge");
    gb.add_edge(b, p1).expect("edge");
    gb.add_edge(b, p2).expect("edge");
    gb.add_edge(p1, v).expect("edge");
    gb.add_edge(p2, v).expect("edge");
    gb.build()
}

fn encoded_binary() -> Vec<u8> {
    binio::encode_graph(&sample_graph()).to_vec()
}

fn encoded_text() -> Vec<u8> {
    let mut buf = Vec::new();
    io::write_graph(&sample_graph(), &mut buf).expect("in-memory write");
    buf
}

/// Run `f` under `catch_unwind`; `Err` means the decoder panicked.
fn no_panic(f: impl FnOnce()) -> bool {
    catch_unwind(AssertUnwindSafe(f)).is_ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn binary_byte_flip_never_panics(idx in 0usize..10_000, flip in 1u8..=255) {
        let mut buf = encoded_binary();
        let i = idx % buf.len();
        buf[i] ^= flip;
        prop_assert!(
            no_panic(|| {
                let _ = binio::decode_graph(&buf);
            }),
            "decode_graph panicked after flipping byte {i} with {flip:#04x}"
        );
    }

    #[test]
    fn binary_truncation_errors_without_panic(idx in 0usize..10_000) {
        let buf = encoded_binary();
        let cut = idx % buf.len(); // strict prefix
        let mut panicked = false;
        let mut decoded_ok = false;
        if no_panic(|| {
            decoded_ok = binio::decode_graph(&buf[..cut]).is_ok();
        }) {
            prop_assert!(!decoded_ok, "prefix of {cut} bytes unexpectedly decoded");
        } else {
            panicked = true;
        }
        prop_assert!(!panicked, "decode_graph panicked on a {cut}-byte prefix");
    }

    #[test]
    fn binary_random_garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert!(
            no_panic(|| {
                let _ = binio::decode_graph(&data);
            }),
            "decode_graph panicked on random garbage"
        );
    }

    #[test]
    fn text_byte_flip_never_panics(idx in 0usize..10_000, flip in 1u8..=255) {
        let mut buf = encoded_text();
        let i = idx % buf.len();
        buf[i] ^= flip;
        prop_assert!(
            no_panic(|| {
                let _ = io::read_graph(&buf[..]);
            }),
            "read_graph panicked after flipping byte {i} with {flip:#04x}"
        );
    }

    #[test]
    fn text_truncation_never_panics(idx in 0usize..10_000) {
        // A truncated text file may still be a *valid smaller* graph when
        // the cut lands on a line boundary, so only panics are failures.
        let buf = encoded_text();
        let cut = idx % buf.len();
        prop_assert!(
            no_panic(|| {
                let _ = io::read_graph(&buf[..cut]);
            }),
            "read_graph panicked on a {cut}-byte prefix"
        );
    }
}

#[test]
fn binary_every_prefix_rejected() {
    // Exhaustive (not sampled) sweep: every strict prefix must fail cleanly.
    let buf = encoded_binary();
    for cut in 0..buf.len() {
        let ok = no_panic(|| {
            assert!(
                binio::decode_graph(&buf[..cut]).is_err(),
                "prefix of {cut} bytes unexpectedly decoded"
            );
        });
        assert!(ok, "panic on a {cut}-byte prefix");
    }
}

#[test]
fn text_every_prefix_never_panics() {
    let buf = encoded_text();
    for cut in 0..buf.len() {
        let ok = no_panic(|| {
            let _ = io::read_graph(&buf[..cut]);
        });
        assert!(ok, "panic on a {cut}-byte prefix");
    }
}
