//! Property-based equivalence of the sparse kernel variants.
//!
//! The engine relies on all kernel variants being *bit-identical*, not just
//! approximately equal: N-thread query execution is only deterministic if
//! every path through `dot` and every accumulator produce the same floats.

use hin_graph::{DenseAccumulator, SparseVec, VertexId};
use proptest::prelude::*;

/// Arbitrary sparse vector with up to `max_nnz` entries over ids `0..id_span`.
fn sparse_vec(max_nnz: usize, id_span: u32) -> impl Strategy<Value = SparseVec> {
    prop::collection::vec((0..id_span, -100.0f64..100.0), 0..=max_nnz).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(i, x)| (VertexId(i), x))
            .collect::<SparseVec>()
    })
}

proptest! {
    /// `dot` (which dispatches to galloping on skewed operands) must equal
    /// the two-pointer merge bit-for-bit, in both argument orders.
    #[test]
    fn dot_dispatch_matches_merge(
        small in sparse_vec(6, 4096),
        large in sparse_vec(400, 4096),
    ) {
        let expected = small.dot_merge(&large);
        prop_assert_eq!(small.dot(&large).to_bits(), expected.to_bits());
        prop_assert_eq!(large.dot(&small).to_bits(), expected.to_bits());
    }

    /// Comparable-size operands (merge path) also agree — the dispatch
    /// boundary must not change results.
    #[test]
    fn dot_balanced_matches_merge(
        a in sparse_vec(64, 512),
        b in sparse_vec(64, 512),
    ) {
        prop_assert_eq!(a.dot(&b).to_bits(), a.dot_merge(&b).to_bits());
    }

    /// Scattering the same addition sequence through the dense workspace and
    /// through `from_entries` yields the same vector (the hash-map builder
    /// and `from_entries` agree by construction; the workspace must too),
    /// including across reuse generations.
    #[test]
    fn dense_accumulator_matches_from_entries(
        gen1 in prop::collection::vec((0..2048u32, -8.0f64..8.0), 0..200),
        gen2 in prop::collection::vec((0..2048u32, -8.0f64..8.0), 0..200),
    ) {
        let mut ws = DenseAccumulator::new();
        for adds in [&gen1, &gen2] {
            for &(i, x) in adds {
                ws.add(VertexId(i), x);
            }
            let got = ws.finish();
            let want = SparseVec::from_entries(
                adds.iter().map(|&(i, x)| (VertexId(i), x)).collect(),
            );
            // Sorted-id merge in `from_entries` and scatter order in the
            // workspace can differ in float addition order only when the
            // input has duplicate ids out of id order; restrict the check to
            // exact equality of supports plus value equality per id, which
            // for the generated magnitudes is still exact: addition of the
            // same multiset in different orders is only guaranteed bitwise
            // for <= 2 duplicates, so compare supports exactly and values
            // approximately.
            let gids: Vec<_> = got.support().collect();
            let wids: Vec<_> = want.support().collect();
            prop_assert_eq!(&gids, &wids);
            for v in gids {
                let (g, w) = (got.get(v), want.get(v));
                prop_assert!((g - w).abs() <= 1e-9 * w.abs().max(1.0), "{:?}: {} vs {}", v, g, w);
            }
        }
    }

    /// The workspace kernel must be bit-identical to the hash-map builder:
    /// both add duplicates in scatter order.
    #[test]
    fn dense_accumulator_matches_hashmap_builder(
        adds in prop::collection::vec((0..2048u32, -8.0f64..8.0), 0..200),
    ) {
        let mut ws = DenseAccumulator::new();
        let mut builder = hin_graph::sparse::SparseVecBuilder::new();
        for &(i, x) in &adds {
            ws.add(VertexId(i), x);
            builder.add(VertexId(i), x);
        }
        let got = ws.finish();
        let want = builder.finish();
        prop_assert_eq!(got.nnz(), want.nnz());
        for ((gv, gx), (wv, wx)) in got.iter().zip(want.iter()) {
            prop_assert_eq!(gv, wv);
            prop_assert_eq!(gx.to_bits(), wx.to_bits());
        }
    }
}
