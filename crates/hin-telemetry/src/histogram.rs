//! The workspace's one log₂-bucketed latency histogram.
//!
//! Bucket `i` counts observations in `[2^i, 2^(i+1))` microseconds; the
//! last bucket is open-ended. Everything is a relaxed atomic, so one
//! instance can be recorded into from many threads (server workers) or
//! used single-threaded (the load client) without a lock — there is no
//! separate "mutable" variant. Quantiles report the bucket's upper bound,
//! which bounds the error to 2× — fine for dashboards; tests pin the
//! bracketing property against [`exact_quantile_us`].

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets. 40 buckets cover up to
/// ~2^40 µs ≈ 12.7 days.
pub const BUCKETS: usize = 40;

/// A concurrently-recordable log₂ latency histogram over microseconds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        // A `const` item (not a `let`) so the array repeat is allowed.
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// The bucket index holding `us`: 0 and 1 µs land in bucket 0,
    /// otherwise `floor(log2(us))`, clamped to the open-ended last bucket.
    pub fn bucket_of(us: u64) -> usize {
        (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Record one observation.
    pub fn record(&self, d: Duration) {
        self.record_us(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Record one observation given directly in microseconds.
    pub fn record_us(&self, us: u64) {
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturate rather than wrap: a histogram that has absorbed u64::MAX
        // microseconds of latency has bigger problems than a stuck sum.
        let mut sum = self.sum_us.load(Ordering::Relaxed);
        loop {
            let next = sum.saturating_add(us);
            match self
                .sum_us
                .compare_exchange_weak(sum, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => sum = actual,
            }
        }
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in microseconds (saturating).
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Largest observation, in microseconds (exact).
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// A plain snapshot of the bucket counts (for exposition writers).
    pub fn buckets(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Upper bound (exclusive) of the bucket holding the `q`-quantile
    /// observation, in microseconds; `None` before any observation. The
    /// log₂ bucketing bounds the error to 2×.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the q-quantile observation, 1-based (nearest rank).
        let rank = ((q * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(1u64 << (i + 1).min(63));
            }
        }
        Some(self.max_us())
    }

    /// Mean latency in microseconds (`None` before any observation).
    pub fn mean_us(&self) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            None
        } else {
            Some(self.sum_us() / count)
        }
    }

    /// The serializable summary used in wire-format snapshots.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count(),
            mean_us: self.mean_us().unwrap_or(0),
            p50_us: self.quantile_us(0.50).unwrap_or(0),
            p95_us: self.quantile_us(0.95).unwrap_or(0),
            p99_us: self.quantile_us(0.99).unwrap_or(0),
            max_us: self.max_us(),
        }
    }
}

/// Serializable summary of one latency histogram. Field names and order
/// are wire format (`STATS` responses) — do not reorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct LatencySummary {
    /// Observations recorded.
    pub count: u64,
    /// Mean latency (µs).
    pub mean_us: u64,
    /// Median (µs, bucket upper bound).
    pub p50_us: u64,
    /// 95th percentile (µs, bucket upper bound).
    pub p95_us: u64,
    /// 99th percentile (µs, bucket upper bound).
    pub p99_us: u64,
    /// Largest observation (µs, exact).
    pub max_us: u64,
}

/// Exact nearest-rank quantile over an ascending-sorted sample, in
/// microseconds; `None` on an empty sample. This is the ground truth the
/// histogram's bucketed [`Histogram::quantile_us`] is property-tested
/// against: the bucketed value must bracket the exact one within its
/// power-of-two bucket.
pub fn exact_quantile_us(sorted_us: &[u64], q: f64) -> Option<u64> {
    if sorted_us.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).max(1);
    Some(sorted_us[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_and_quantiles_match_legacy_semantics() {
        let h = Histogram::new();
        assert_eq!(h.quantile_us(0.5), None);
        assert_eq!(h.mean_us(), None);
        for us in [1u64, 2, 4, 8, 100, 1000, 10_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 7);
        // p50 of 7 observations is the 4th (8 µs) → bucket bound 16.
        assert_eq!(h.quantile_us(0.5), Some(16));
        // p99 is the largest (10 000 µs) → its bucket bound 16384.
        assert_eq!(h.quantile_us(0.99), Some(16_384));
        assert_eq!(h.max_us(), 10_000);
        assert!(h.mean_us().unwrap() > 0);
    }

    #[test]
    fn bucket_of_edges() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(1024), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record_us(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.buckets().iter().sum::<u64>(), 4000);
        assert_eq!(h.max_us(), 3999);
    }

    #[test]
    fn exact_quantile_nearest_rank() {
        assert_eq!(exact_quantile_us(&[], 0.5), None);
        let sample = [10u64, 20, 30, 40, 50];
        assert_eq!(exact_quantile_us(&sample, 0.0), Some(10));
        assert_eq!(exact_quantile_us(&sample, 0.5), Some(30));
        assert_eq!(exact_quantile_us(&sample, 0.9), Some(50));
        assert_eq!(exact_quantile_us(&sample, 1.0), Some(50));
    }

    #[test]
    fn summary_fields() {
        let h = Histogram::new();
        h.record_us(100);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean_us, 100);
        assert_eq!(s.p50_us, 128);
        assert_eq!(s.max_us, 100);
    }
}
