//! # hin-telemetry — unified observability for the workspace
//!
//! After the engine grew timing breakdowns
//! ([`ExecBreakdown`](https://docs.rs/)-style per-phase totals), the server
//! grew ad-hoc counters, and the load client grew its own percentile
//! tracker, the workspace had three disjoint, non-scrapeable telemetry
//! surfaces and no way to answer "why was *this* query slow?" on a live
//! server. This crate is the single observability layer all of them now
//! sit on (DESIGN.md §12):
//!
//! * [`histogram`] — **the** log₂-bucketed latency histogram (atomic, so
//!   one instance is recorded into concurrently without locks), plus the
//!   exact nearest-rank quantile used as its ground truth in tests;
//! * [`registry`] — named counters, gauges, and histograms behind
//!   cheaply-clonable handles, with a Prometheus text exposition writer, a
//!   line parser for that format, and a serde-serializable JSON snapshot;
//! * [`trace`] — per-query span trees: thread-local span stacks
//!   ([`span!`]) record start/duration/parent and key-value fields into a
//!   bounded per-thread buffer; shard buffers merge deterministically
//!   through the engine's fork/absorb path. A disabled tracer costs one
//!   relaxed atomic load per span.
//! * [`logfmt`] — structured `key=value` event lines for worker
//!   lifecycle / fault events, replacing bare `eprintln!`s.
//!
//! The crate is intentionally dependency-free beyond `serde` (already a
//! workspace dependency), matching the repo's hand-rolled style: no
//! metrics facade, no tracing runtime, `std` atomics and thread-locals
//! only.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// Telemetry must never take a process down; tests are free to unwrap.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod histogram;
pub mod logfmt;
pub mod registry;
pub mod trace;

pub use histogram::{exact_quantile_us, Histogram, LatencySummary, BUCKETS};
pub use registry::{parse_exposition, Counter, Gauge, MetricsSnapshot, Registry, Sample};
pub use trace::{TraceBuf, TraceNode};
