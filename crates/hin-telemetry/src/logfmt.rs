//! Structured `key=value` event lines (logfmt).
//!
//! The service used bare `eprintln!`s for worker lifecycle and fault
//! events; those lines were unparseable and inconsistent. [`logfmt!`]
//! replaces them with one-line structured events:
//!
//! ```text
//! ts_ms=1722950000123 event=worker_respawn worker=3 epoch=2
//! ```
//!
//! Values containing spaces, quotes, or `=` are quoted with backslash
//! escapes, so lines always split back into pairs. Events go to stderr
//! (stdout stays reserved for protocol/CLI output); under `cargo test`
//! libtest captures stderr per-test, so servers started inside tests stay
//! quiet on success.

use std::fmt::Display;
use std::time::{SystemTime, UNIX_EPOCH};

/// Render one logfmt line (without trailing newline). Exposed separately
/// from [`emit`] so tests can assert on the exact formatting.
pub fn format_event(event: &str, fields: &[(&str, &dyn Display)]) -> String {
    use std::fmt::Write as _;
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let mut out = String::with_capacity(48 + fields.len() * 16);
    let _ = write!(out, "ts_ms={ts_ms} event=");
    push_value(&mut out, event);
    for (key, value) in fields {
        out.push(' ');
        out.push_str(key);
        out.push('=');
        push_value(&mut out, &value.to_string());
    }
    out
}

/// Append a value, quoting it if it contains characters that would break
/// `key=value` splitting.
fn push_value(out: &mut String, v: &str) {
    let needs_quote = v.is_empty() || v.contains([' ', '"', '=', '\n', '\t']);
    if !needs_quote {
        out.push_str(v);
        return;
    }
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Write one logfmt event line to stderr. Prefer the [`logfmt!`] macro.
pub fn emit(event: &str, fields: &[(&str, &dyn Display)]) {
    eprintln!("{}", format_event(event, fields));
}

/// Emit a structured logfmt event line to stderr:
/// `logfmt!("worker_respawn", worker = id, epoch = epoch);`
#[macro_export]
macro_rules! logfmt {
    ($event:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::logfmt::emit(
            $event,
            &[$((stringify!($key), &$value as &dyn ::std::fmt::Display)),*],
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_values_stay_bare() {
        let line = format_event("worker_respawn", &[("worker", &3u64), ("epoch", &2u64)]);
        assert!(line.starts_with("ts_ms="), "{line}");
        assert!(
            line.ends_with("event=worker_respawn worker=3 epoch=2"),
            "{line}"
        );
    }

    #[test]
    fn awkward_values_are_quoted_and_escaped() {
        let line = format_event("slow_query", &[("query", &"QUERY k=5 \"x\"")]);
        assert!(line.contains(r#"query="QUERY k=5 \"x\"""#), "{line}");
    }

    #[test]
    fn macro_compiles_with_and_without_fields() {
        logfmt!("bare_event");
        let id = 7;
        logfmt!("with_fields", id = id, kind = "test");
    }
}
