//! Per-query span tracing with deterministic shard merging.
//!
//! A trace is a tree of named spans recorded into a thread-local
//! [`TraceBuf`]. The buffer is *installed* around a unit of work
//! ([`install`] / [`take`]), spans are opened with the [`span!`] macro (an
//! RAII guard closes them), and sharded workers hand their buffers back to
//! the coordinating thread which merges them in shard order with
//! [`absorb`] — so the span tree for a query is deterministic for a given
//! thread count even though shards run concurrently.
//!
//! Cost when no trace is active: [`start`] is one relaxed atomic load
//! (`ACTIVE == 0`) and the returned guard is inert. There is no feature
//! flag — tracing is always compiled in and paid for only when a buffer is
//! installed. The buffer is bounded ([`SPAN_CAP`] locally-opened spans);
//! once full, further spans are counted as dropped rather than grown, so a
//! pathological query cannot balloon server memory.

use serde::Serialize;
use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Maximum spans opened locally into one [`TraceBuf`]. Absorbing shard
/// buffers may exceed this (each shard is itself bounded by the same cap),
/// which keeps merged trees structurally intact.
pub const SPAN_CAP: usize = 4096;

/// Number of installed trace buffers across all threads. The `span!` fast
/// path is a single relaxed load of this; zero means tracing is off
/// everywhere and spans cost nothing else.
static ACTIVE: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static CURRENT: RefCell<Option<TraceBuf>> = const { RefCell::new(None) };
}

/// A span field value. `From` impls cover the types used at call sites so
/// `span!("x", n = 3u64)` just works.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Text.
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v.into())
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One recorded span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name (static so recording never allocates for it).
    pub name: &'static str,
    /// Index of the parent span within the same buffer, if any.
    pub parent: Option<u32>,
    /// Start offset from the buffer's epoch, µs.
    pub start_us: u64,
    /// Duration, µs. Zero until the span closes.
    pub dur_us: u64,
    /// Key-value fields attached while the span was open.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// A bounded buffer of spans for one traced unit of work.
#[derive(Debug, Clone)]
pub struct TraceBuf {
    epoch: Instant,
    spans: Vec<SpanRecord>,
    open: Vec<u32>,
    dropped: u64,
}

impl Default for TraceBuf {
    fn default() -> Self {
        TraceBuf::new()
    }
}

impl TraceBuf {
    /// An empty buffer with its epoch set to now.
    pub fn new() -> TraceBuf {
        TraceBuf {
            epoch: Instant::now(),
            spans: Vec::new(),
            open: Vec::new(),
            dropped: 0,
        }
    }

    fn open_span(&mut self, name: &'static str) -> Option<u32> {
        if self.spans.len() >= SPAN_CAP {
            self.dropped += 1;
            return None;
        }
        let idx = self.spans.len() as u32;
        self.spans.push(SpanRecord {
            name,
            parent: self.open.last().copied(),
            start_us: self.epoch.elapsed().as_micros() as u64,
            dur_us: 0,
            fields: Vec::new(),
        });
        self.open.push(idx);
        Some(idx)
    }

    fn close_span(&mut self, idx: u32, dur: Duration) {
        if let Some(span) = self.spans.get_mut(idx as usize) {
            span.dur_us = dur.as_micros() as u64;
        }
        // Well-nested guards always close the top of the stack; tolerate
        // mismatches (a guard outliving a sibling) by removing anywhere.
        if self.open.last() == Some(&idx) {
            self.open.pop();
        } else {
            self.open.retain(|&o| o != idx);
        }
    }

    /// Merge another buffer's spans under the currently-open span (or at
    /// the root). Spans keep their relative order, so merging shard
    /// buffers in shard index order yields a deterministic tree.
    pub fn absorb(&mut self, shard: TraceBuf) {
        let base = self.spans.len() as u32;
        let attach = self.open.last().copied();
        let offset_us = shard
            .epoch
            .saturating_duration_since(self.epoch)
            .as_micros() as u64;
        for mut span in shard.spans {
            span.parent = match span.parent {
                Some(p) => Some(p + base),
                None => attach,
            };
            span.start_us += offset_us;
            self.spans.push(span);
        }
        self.dropped += shard.dropped;
    }

    /// Spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` if no span has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans rejected because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The raw records, in open order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Build the span tree: root spans in open order, children nested
    /// under their parents in open order.
    pub fn tree(&self) -> Vec<TraceNode> {
        // children[i] lists the indices whose parent is i; roots go to a
        // separate list. One pass, order-preserving.
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); self.spans.len()];
        let mut roots = Vec::new();
        for (i, span) in self.spans.iter().enumerate() {
            match span.parent {
                Some(p) if (p as usize) < self.spans.len() => children[p as usize].push(i as u32),
                _ => roots.push(i as u32),
            }
        }
        fn build(spans: &[SpanRecord], children: &[Vec<u32>], idx: u32) -> TraceNode {
            let span = &spans[idx as usize];
            TraceNode {
                name: span.name.to_string(),
                start_us: span.start_us,
                dur_us: span.dur_us,
                fields: span
                    .fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                children: children[idx as usize]
                    .iter()
                    .map(|&c| build(spans, children, c))
                    .collect(),
            }
        }
        roots
            .into_iter()
            .map(|r| build(&self.spans, &children, r))
            .collect()
    }
}

/// A rendered span-tree node: serializable for the `TRACE` protocol verb
/// and printable for `--trace` CLI output.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceNode {
    /// Span name.
    pub name: String,
    /// Start offset from the trace root's epoch, µs.
    pub start_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
    /// Fields, rendered to strings.
    pub fields: Vec<(String, String)>,
    /// Child spans in open order.
    pub children: Vec<TraceNode>,
}

/// Render a span tree as an indented text block, one span per line:
/// `name dur_us [k=v ...]`.
pub fn render_tree(roots: &[TraceNode]) -> String {
    fn walk(out: &mut String, node: &TraceNode, depth: usize) {
        use std::fmt::Write as _;
        for _ in 0..depth {
            out.push_str("  ");
        }
        let _ = write!(out, "{} {}us", node.name, node.dur_us);
        for (k, v) in &node.fields {
            let _ = write!(out, " {k}={v}");
        }
        out.push('\n');
        for child in &node.children {
            walk(out, child, depth + 1);
        }
    }
    let mut out = String::new();
    for root in roots {
        walk(&mut out, root, 0);
    }
    out
}

/// Install a fresh trace buffer on this thread. Replaces any existing one.
pub fn install() {
    CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        if cur.is_none() {
            ACTIVE.fetch_add(1, Ordering::Relaxed);
        }
        *cur = Some(TraceBuf::new());
    });
}

/// Remove and return this thread's trace buffer, if installed.
pub fn take() -> Option<TraceBuf> {
    CURRENT.with(|c| {
        let buf = c.borrow_mut().take();
        if buf.is_some() {
            ACTIVE.fetch_sub(1, Ordering::Relaxed);
        }
        buf
    })
}

/// `true` if this thread currently has a trace buffer installed.
pub fn installed() -> bool {
    ACTIVE.load(Ordering::Relaxed) > 0 && CURRENT.with(|c| c.borrow().is_some())
}

/// Merge a shard's buffer into this thread's installed buffer, attaching
/// its roots under the currently-open span. No-op (buffer discarded) if
/// this thread traces nothing.
pub fn absorb(shard: TraceBuf) {
    CURRENT.with(|c| {
        if let Some(buf) = c.borrow_mut().as_mut() {
            buf.absorb(shard);
        }
    });
}

/// Open a span. Prefer the [`span!`] macro, which also attaches fields.
/// Returns an inert guard costing nothing further when tracing is off.
pub fn start(name: &'static str) -> Span {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return Span {
            idx: None,
            start: None,
        };
    }
    CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        match cur.as_mut().and_then(|buf| buf.open_span(name)) {
            Some(idx) => Span {
                idx: Some(idx),
                start: Some(Instant::now()),
            },
            None => Span {
                idx: None,
                start: None,
            },
        }
    })
}

/// RAII guard for an open span; dropping it records the duration and pops
/// the thread's open-span stack.
#[derive(Debug)]
pub struct Span {
    idx: Option<u32>,
    start: Option<Instant>,
}

impl Span {
    /// Attach a key-value field to the span. No-op when inert.
    pub fn field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(idx) = self.idx {
            let value = value.into();
            CURRENT.with(|c| {
                if let Some(buf) = c.borrow_mut().as_mut() {
                    if let Some(span) = buf.spans.get_mut(idx as usize) {
                        span.fields.push((key, value));
                    }
                }
            });
        }
    }

    /// `true` when the span is actually recording.
    pub fn recording(&self) -> bool {
        self.idx.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let (Some(idx), Some(start)) = (self.idx, self.start) {
            let dur = start.elapsed();
            CURRENT.with(|c| {
                // try_borrow: a Drop must never panic, even if it fires
                // inside another borrow (it cannot today, but cheap).
                if let Ok(mut cur) = c.try_borrow_mut() {
                    if let Some(buf) = cur.as_mut() {
                        buf.close_span(idx, dur);
                    }
                }
            });
        }
    }
}

/// Open a span with optional fields:
/// `let _s = span!("materialize", feature = i, vertices = n);`
/// The guard must be bound (`let _s`, not `let _`) to cover a scope.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        #[allow(unused_mut)]
        let mut __hin_span = $crate::trace::start($name);
        $(__hin_span.field(stringify!($key), $value);)*
        __hin_span
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_are_inert() {
        assert!(!installed());
        let s = span!("noop", n = 1u64);
        assert!(!s.recording());
        drop(s);
        assert!(take().is_none());
    }

    #[test]
    fn spans_nest_and_record_fields() {
        install();
        {
            let _root = span!("query", id = 7u64);
            {
                let _child = span!("materialize", feature = 0usize);
            }
            let _sibling = span!("scoring");
        }
        let buf = take().unwrap();
        assert_eq!(buf.len(), 3);
        let tree = buf.tree();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].name, "query");
        assert_eq!(tree[0].fields, vec![("id".to_string(), "7".to_string())]);
        assert_eq!(tree[0].children.len(), 2);
        assert_eq!(tree[0].children[0].name, "materialize");
        assert_eq!(tree[0].children[1].name, "scoring");
        let text = render_tree(&tree);
        assert!(text.contains("query"), "{text}");
        assert!(text.contains("  materialize"), "{text}");
    }

    #[test]
    fn absorb_attaches_shard_roots_under_open_span() {
        install();
        {
            let _parent = span!("feature");
            // Simulate two shards tracing into their own buffers.
            for shard_idx in 0..2u64 {
                let shard = {
                    install_shard(shard_idx);
                    take_shard()
                };
                absorb(shard);
            }
        }
        let buf = take().unwrap();
        let tree = buf.tree();
        assert_eq!(tree.len(), 1);
        let children: Vec<&str> = tree[0].children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(children, ["shard", "shard"]);
        assert_eq!(tree[0].children[0].fields[0].1, "0");
        assert_eq!(tree[0].children[1].fields[0].1, "1");
    }

    // Build a shard-local buffer by hand (the real shards are on other
    // threads with their own thread-locals; here one thread plays both
    // roles so swap the buffers explicitly).
    fn install_shard(idx: u64) {
        SHARD_STASH.with(|s| *s.borrow_mut() = take());
        install();
        let _s = span!("shard", shard = idx);
    }
    fn take_shard() -> TraceBuf {
        let shard = take().unwrap();
        SHARD_STASH.with(|s| {
            if let Some(parent) = s.borrow_mut().take() {
                CURRENT.with(|c| *c.borrow_mut() = Some(parent));
                ACTIVE.fetch_add(1, Ordering::Relaxed);
            }
        });
        shard
    }
    thread_local! {
        static SHARD_STASH: RefCell<Option<TraceBuf>> = const { RefCell::new(None) };
    }

    #[test]
    fn buffer_is_bounded() {
        let mut buf = TraceBuf::new();
        for _ in 0..SPAN_CAP + 10 {
            if let Some(idx) = buf.open_span("s") {
                buf.close_span(idx, Duration::from_micros(1));
            }
        }
        assert_eq!(buf.len(), SPAN_CAP);
        assert_eq!(buf.dropped(), 10);
    }

    #[test]
    fn absorb_without_install_discards() {
        let mut shard = TraceBuf::new();
        shard.open_span("orphan");
        absorb(shard); // no buffer installed on this thread
        assert!(take().is_none());
    }
}
