//! A named-metric registry with Prometheus text exposition.
//!
//! Metrics are registered once by name (plus an optional fixed label set)
//! and handed back as cheaply-clonable handles — an [`Arc`] around the
//! atomics — so hot paths never touch the registry lock. Registration is
//! idempotent: asking for an existing `(name, labels)` pair returns a
//! handle to the same storage, which is what lets a server's stats block
//! and its `METRICS` endpoint share one set of counters.
//!
//! The exposition writer produces the Prometheus text format (`# HELP` /
//! `# TYPE` comments, `name{label="value"} value` samples, cumulative
//! `_bucket{le="..."}` lines for histograms); [`parse_exposition`] is the
//! matching line parser, used by the round-trip property tests and by
//! integration tests that scrape a live server.

use crate::histogram::Histogram;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one; returns the new value.
    pub fn inc(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down. Stored as `f64` bits so one
/// type serves integer levels (in-flight jobs) and ratios (cache hit
/// rate); integer reads go through [`Gauge::get`] and round-trip exactly
/// up to 2^53.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (may be negative). Lock-free CAS loop; gauges are
    /// updated at job granularity, not in inner loops.
    pub fn add(&self, delta: f64) -> f64 {
        let mut bits = self.0.load(Ordering::Relaxed);
        loop {
            let next = f64::from_bits(bits) + delta;
            match self.0.compare_exchange_weak(
                bits,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return next,
                Err(actual) => bits = actual,
            }
        }
    }

    /// Add one.
    pub fn inc(&self) -> f64 {
        self.add(1.0)
    }

    /// Subtract one.
    pub fn dec(&self) -> f64 {
        self.add(-1.0)
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Clone)]
enum Kind {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<Histogram>),
}

impl Kind {
    fn type_name(&self) -> &'static str {
        match self {
            Kind::Counter(_) => "counter",
            Kind::Gauge(_) => "gauge",
            Kind::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Metric {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    kind: Kind,
}

/// The metric registry. One per server (not a process-global), so test
/// suites can run many servers in one process without crosstalk.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<Vec<Metric>>,
}

/// `true` for names Prometheus accepts: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl Fn() -> Kind,
    ) -> Kind {
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        // Registration is cold; a linear scan beats a map for the handful
        // of metrics a server registers.
        #[allow(clippy::unwrap_used)] // lock poisoning: no panics while held
        let mut metrics = self.metrics.lock().unwrap();
        if let Some(m) = metrics
            .iter()
            .find(|m| m.name == name && m.labels == labels)
        {
            return m.kind.clone();
        }
        let kind = make();
        metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            kind: kind.clone(),
        });
        kind
    }

    /// Register (or look up) a counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Register (or look up) a counter with a fixed label set.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, labels, || Kind::Counter(Counter::default())) {
            Kind::Counter(c) => c,
            // A name registered under a different type is a programming
            // error; hand back a detached handle rather than panicking.
            _ => Counter::default(),
        }
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Register (or look up) a gauge with a fixed label set.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, labels, || Kind::Gauge(Gauge::default())) {
            Kind::Gauge(g) => g,
            _ => Gauge::default(),
        }
    }

    /// Register (or look up) a log₂ latency histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        match self.register(name, help, &[], || {
            Kind::Histogram(Arc::new(Histogram::new()))
        }) {
            Kind::Histogram(h) => h,
            _ => Arc::new(Histogram::new()),
        }
    }

    /// Render the Prometheus text exposition of every registered metric.
    pub fn render_prometheus(&self) -> String {
        #[allow(clippy::unwrap_used)] // lock poisoning: no panics while held
        let metrics = self.metrics.lock().unwrap();
        let mut out = String::with_capacity(metrics.len() * 64);
        let mut last_name: Option<&str> = None;
        for m in metrics.iter() {
            // HELP/TYPE once per metric family; consecutive registrations
            // of the same name (label variants) share the header.
            if last_name != Some(m.name.as_str()) {
                if !m.help.is_empty() {
                    out.push_str("# HELP ");
                    out.push_str(&m.name);
                    out.push(' ');
                    out.push_str(&m.help);
                    out.push('\n');
                }
                out.push_str("# TYPE ");
                out.push_str(&m.name);
                out.push(' ');
                out.push_str(m.kind.type_name());
                out.push('\n');
                last_name = Some(m.name.as_str());
            }
            match &m.kind {
                Kind::Counter(c) => {
                    sample_line(&mut out, &m.name, &m.labels, &[], c.get() as f64);
                }
                Kind::Gauge(g) => {
                    sample_line(&mut out, &m.name, &m.labels, &[], g.get());
                }
                Kind::Histogram(h) => {
                    let buckets = h.buckets();
                    let mut cumulative = 0u64;
                    let last = buckets.iter().rposition(|&n| n > 0).unwrap_or(0);
                    let bucket_name = format!("{}_bucket", m.name);
                    for (i, &n) in buckets.iter().enumerate().take(last + 1) {
                        cumulative += n;
                        let le = (1u128 << (i + 1)).to_string();
                        sample_line(
                            &mut out,
                            &bucket_name,
                            &m.labels,
                            &[("le", &le)],
                            cumulative as f64,
                        );
                    }
                    sample_line(
                        &mut out,
                        &bucket_name,
                        &m.labels,
                        &[("le", "+Inf")],
                        h.count() as f64,
                    );
                    sample_line(
                        &mut out,
                        &format!("{}_sum", m.name),
                        &m.labels,
                        &[],
                        h.sum_us() as f64,
                    );
                    sample_line(
                        &mut out,
                        &format!("{}_count", m.name),
                        &m.labels,
                        &[],
                        h.count() as f64,
                    );
                }
            }
        }
        out
    }

    /// A serializable snapshot: one entry per sample, the JSON twin of the
    /// text exposition (histograms surface as their summaries).
    pub fn snapshot(&self) -> MetricsSnapshot {
        #[allow(clippy::unwrap_used)] // lock poisoning: no panics while held
        let metrics = self.metrics.lock().unwrap();
        MetricsSnapshot {
            samples: metrics
                .iter()
                .filter_map(|m| match &m.kind {
                    Kind::Counter(c) => Some(SampleOut {
                        name: m.name.clone(),
                        labels: m.labels.clone(),
                        kind: "counter",
                        value: c.get() as f64,
                        summary: None,
                    }),
                    Kind::Gauge(g) => Some(SampleOut {
                        name: m.name.clone(),
                        labels: m.labels.clone(),
                        kind: "gauge",
                        value: g.get(),
                        summary: None,
                    }),
                    Kind::Histogram(h) => Some(SampleOut {
                        name: m.name.clone(),
                        labels: m.labels.clone(),
                        kind: "histogram",
                        value: h.count() as f64,
                        summary: Some(h.summary()),
                    }),
                })
                .collect(),
        }
    }
}

/// One metric sample in the JSON snapshot.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SampleOut {
    /// Metric name.
    pub name: String,
    /// Fixed label pairs.
    pub labels: Vec<(String, String)>,
    /// `"counter"`, `"gauge"`, or `"histogram"`.
    pub kind: &'static str,
    /// Counter/gauge value; observation count for histograms.
    pub value: f64,
    /// Histogram quantile summary (`null` for counters/gauges).
    pub summary: Option<crate::histogram::LatencySummary>,
}

/// The JSON form of a metrics scrape.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// Every registered sample.
    pub samples: Vec<SampleOut>,
}

/// Append one `name{labels} value` exposition line.
fn sample_line(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    extra: &[(&str, &str)],
    value: f64,
) {
    out.push_str(name);
    if !labels.is_empty() || !extra.is_empty() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra.iter().copied())
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            escape_label_into(out, v);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    format_value(out, value);
    out.push('\n');
}

/// Prometheus label-value escaping: backslash, double quote, newline.
fn escape_label_into(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Format a sample value: integers without a fraction, everything else via
/// the shortest round-trippable float, non-finite as Prometheus spells it.
fn format_value(out: &mut String, v: f64) {
    use std::fmt::Write as _;
    if v.is_nan() {
        out.push_str("NaN");
    } else if v.is_infinite() {
        out.push_str(if v > 0.0 { "+Inf" } else { "-Inf" });
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

/// One parsed exposition sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric (or `_bucket`/`_sum`/`_count` series) name.
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// Parse Prometheus text exposition into its samples. Comment (`#`) and
/// blank lines are skipped; any malformed line is an error naming the
/// offending content. The inverse of [`Registry::render_prometheus`] —
/// property tests round-trip names, labels, and values through this.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_sample_line(line)?);
    }
    Ok(samples)
}

fn parse_sample_line(line: &str) -> Result<Sample, String> {
    let (series, value_text) = match line.find('{') {
        Some(open) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| format!("unclosed label set: {line:?}"))?;
            (
                (&line[..open], &line[open + 1..close]),
                line[close + 1..].trim(),
            )
        }
        None => {
            let mut parts = line.splitn(2, ' ');
            let name = parts.next().unwrap_or("");
            let value = parts.next().unwrap_or("").trim();
            ((name, ""), value)
        }
    };
    let (name, label_text) = series;
    if !valid_name(name) {
        return Err(format!("invalid metric name in line {line:?}"));
    }
    let labels = parse_labels(label_text).map_err(|e| format!("{e} in line {line:?}"))?;
    let value = match value_text {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v
            .parse::<f64>()
            .map_err(|_| format!("bad sample value {v:?} in line {line:?}"))?,
    };
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_labels(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = text.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| "label without '='".to_string())?;
        let key = rest[..eq].trim().to_string();
        if !valid_name(&key) {
            return Err(format!("invalid label name {key:?}"));
        }
        rest = rest[eq + 1..].trim_start();
        if !rest.starts_with('"') {
            return Err("unquoted label value".to_string());
        }
        // Scan the quoted value, honouring backslash escapes.
        let mut value = String::new();
        let mut chars = rest[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    end = Some(i);
                    break;
                }
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => return Err(format!("bad escape {other:?}")),
                },
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| "unterminated label value".to_string())?;
        labels.push((key, value));
        rest = rest[1 + end + 1..].trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("junk after label value: {rest:?}"));
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn handles_are_shared_by_name() {
        let r = Registry::new();
        let a = r.counter("hin_requests_total", "requests");
        let b = r.counter("hin_requests_total", "requests");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let g = r.gauge("hin_in_flight", "jobs");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(r.gauge("hin_in_flight", "jobs").get(), 1.0);
    }

    #[test]
    fn label_variants_are_distinct() {
        let r = Registry::new();
        let q1 = r.counter_with("hin_queries_total", "by template", &[("template", "q1")]);
        let q2 = r.counter_with("hin_queries_total", "by template", &[("template", "q2")]);
        q1.inc();
        assert_eq!(q1.get(), 1);
        assert_eq!(q2.get(), 0);
    }

    #[test]
    fn exposition_renders_and_parses() {
        let r = Registry::new();
        r.counter("hin_requests_total", "requests").add(5);
        r.gauge("hin_hit_ratio", "cache").set(0.75);
        let h = r.histogram("hin_exec_us", "exec latency");
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(3000));
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE hin_requests_total counter"), "{text}");
        assert!(text.contains("hin_requests_total 5"), "{text}");
        assert!(text.contains("hin_hit_ratio 0.75"), "{text}");
        assert!(text.contains("hin_exec_us_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("hin_exec_us_sum 3100"), "{text}");
        assert!(text.contains("hin_exec_us_count 2"), "{text}");
        let samples = parse_exposition(&text).unwrap();
        let req = samples
            .iter()
            .find(|s| s.name == "hin_requests_total")
            .unwrap();
        assert_eq!(req.value, 5.0);
        let inf = samples
            .iter()
            .find(|s| s.name == "hin_exec_us_bucket" && s.labels == [("le".into(), "+Inf".into())])
            .unwrap();
        assert_eq!(inf.value, 2.0);
        // Cumulative bucket counts are monotone.
        let mut last = 0.0;
        for s in samples.iter().filter(|s| s.name == "hin_exec_us_bucket") {
            assert!(s.value >= last, "{s:?}");
            last = s.value;
        }
    }

    #[test]
    fn label_escaping_round_trips() {
        let mut out = String::new();
        sample_line(
            &mut out,
            "m",
            &[("k".to_string(), "a\"b\\c\nd".to_string())],
            &[],
            1.0,
        );
        let samples = parse_exposition(&out).unwrap();
        assert_eq!(samples[0].labels[0].1, "a\"b\\c\nd");
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(parse_exposition("no_value").is_err());
        assert!(parse_exposition("1bad_name 2").is_err());
        assert!(parse_exposition("m{k=unquoted} 1").is_err());
        assert!(parse_exposition("m{k=\"open} 1").is_err());
        assert!(parse_exposition("m{k=\"v\"} not_a_number").is_err());
        assert!(parse_exposition("# a comment\n\nm 4").unwrap().len() == 1);
    }

    #[test]
    fn snapshot_serializes_histogram_summaries() {
        let r = Registry::new();
        r.counter("hin_requests_total", "requests").inc();
        r.histogram("hin_exec_us", "exec").record_us(50);
        let snap = r.snapshot();
        assert_eq!(snap.samples.len(), 2);
        let h = snap.samples.iter().find(|s| s.kind == "histogram").unwrap();
        assert_eq!(h.summary.unwrap().count, 1);
    }
}
