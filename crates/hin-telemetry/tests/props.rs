//! Property tests for the telemetry crate (ISSUE 5 satellite):
//!
//! 1. The bucketed histogram quantile brackets the exact nearest-rank
//!    quantile of the same sample within its power-of-two bucket.
//! 2. Prometheus exposition output round-trips through the line parser
//!    (names, labels, values).

use hin_telemetry::{exact_quantile_us, parse_exposition, Histogram, Registry};
use proptest::prelude::*;

proptest! {
    /// The histogram's quantile is the upper bound of the bucket holding
    /// the exact quantile observation: exact <= bucketed <= 2 * exact
    /// (for exact >= 1; 0 µs observations land in the [1, 2) bucket).
    #[test]
    fn quantile_brackets_exact(
        mut sample in prop::collection::vec(0u64..=10_000_000, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let h = Histogram::new();
        for &us in &sample {
            h.record_us(us);
        }
        sample.sort_unstable();
        let exact = exact_quantile_us(&sample, q).expect("non-empty");
        let bucketed = h.quantile_us(q).expect("non-empty");
        // The bucketed answer is the upper bound of exact's bucket.
        let expected = 1u64 << (Histogram::bucket_of(exact) + 1).min(63);
        prop_assert_eq!(bucketed, expected);
        prop_assert!(bucketed > exact);
        prop_assert!(bucketed <= 2 * exact.max(1));
    }

    /// Sum/count/max track the sample exactly.
    #[test]
    fn aggregates_are_exact(sample in prop::collection::vec(0u64..=1_000_000, 1..100)) {
        let h = Histogram::new();
        for &us in &sample {
            h.record_us(us);
        }
        prop_assert_eq!(h.count(), sample.len() as u64);
        prop_assert_eq!(h.sum_us(), sample.iter().sum::<u64>());
        prop_assert_eq!(h.max_us(), *sample.iter().max().expect("non-empty"));
    }

    /// Rendering a registry of random counters/gauges/histogram
    /// observations and parsing it back recovers every sample: names,
    /// labels (including awkward label values), and values.
    #[test]
    fn exposition_round_trips(
        counters in prop::collection::vec((0usize..8, 0u64..1_000_000_000), 0..12),
        gauge in prop::num::f64::NORMAL,
        label_value in "[ -~]{0,24}",
        observations in prop::collection::vec(0u64..=100_000_000, 0..50),
    ) {
        let names = [
            "hin_a_total", "hin_b_total", "hin_c_total", "hin_d_total",
            "hin_e_total", "hin_f_total", "hin_g_total", "hin_h_total",
        ];
        let r = Registry::new();
        let mut expected: Vec<(usize, u64)> = Vec::new();
        for &(which, n) in &counters {
            r.counter(names[which], "help").add(n);
        }
        for (i, name) in names.iter().enumerate() {
            let total: u64 = counters.iter().filter(|(w, _)| *w == i).map(|(_, n)| n).sum();
            if counters.iter().any(|(w, _)| *w == i) {
                expected.push((i, total));
            }
            let _ = name;
        }
        r.gauge("hin_gauge", "help").set(gauge);
        r.counter_with("hin_labeled_total", "help", &[("tag", &label_value)]).add(3);
        let h = r.histogram("hin_lat_us", "help");
        for &us in &observations {
            h.record_us(us);
        }

        let text = r.render_prometheus();
        let samples = parse_exposition(&text).expect("render output must parse");

        for (i, total) in expected {
            let s = samples.iter().find(|s| s.name == names[i] && s.labels.is_empty())
                .expect("counter sample present");
            prop_assert_eq!(s.value, total as f64);
        }
        let g = samples.iter().find(|s| s.name == "hin_gauge").expect("gauge present");
        // f64 -> text -> f64 must be exact ({} prints shortest round-trip form).
        prop_assert_eq!(g.value, gauge);
        let labeled = samples.iter().find(|s| s.name == "hin_labeled_total")
            .expect("labeled counter present");
        prop_assert_eq!(&labeled.labels, &vec![("tag".to_string(), label_value.clone())]);
        prop_assert_eq!(labeled.value, 3.0);

        let count = samples.iter().find(|s| s.name == "hin_lat_us_count")
            .expect("histogram count present");
        prop_assert_eq!(count.value, observations.len() as f64);
        let sum = samples.iter().find(|s| s.name == "hin_lat_us_sum")
            .expect("histogram sum present");
        prop_assert_eq!(sum.value, observations.iter().sum::<u64>() as f64);
        let inf = samples.iter().find(|s| {
            s.name == "hin_lat_us_bucket"
                && s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf")
        }).expect("+Inf bucket present");
        prop_assert_eq!(inf.value, observations.len() as f64);
        // Cumulative buckets are monotone non-decreasing.
        let mut last = 0.0;
        for s in samples.iter().filter(|s| s.name == "hin_lat_us_bucket") {
            prop_assert!(s.value >= last);
            last = s.value;
        }
    }
}
