//! Deterministic fault injection for chaos testing, plus the server-side
//! request-id dedup cache.
//!
//! A [`FaultPlan`] is parsed from a compact text spec (DESIGN.md §11) and
//! decides — **purely from the request index and a seed** — whether a
//! worker-pool request gets a fault injected. No wall clock, no global RNG:
//! the same plan against the same request sequence produces the same fault
//! set on every run, the same way `tests/determinism.rs` pins parallelism.
//!
//! ```text
//! spec  := entry (';' entry)*            ; whitespace around entries ignored
//! entry := 'seed=' u64                   ; seed for '~' entries (default 0)
//!        | kind '@' index (':' millis)?  ; fire at request #index (0-based)
//!        | kind '~' n (':' millis)?      ; fire ~once per n requests, seeded
//! kind  := 'panic'                       ; request execution panics
//!        | 'kill'                        ; the worker thread itself dies
//!        | 'drop'                        ; connection closed, response eaten
//!        | 'alloc'                       ; forced allocation-cap failure
//!        | 'delay'                       ; delayed execution (millis required)
//! ```
//!
//! `millis` is required for `delay` and rejected for every other kind. The
//! first matching entry (in spec order) wins. Only worker-pool requests
//! (`QUERY`/`EXPLAIN`/`SLEEP`) consume request indices; inline verbs and
//! dedup-cache hits do not, so planned indices stay predictable for test
//! orchestration.

use serde::Serialize;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A tiny, fast xorshift64* PRNG. Deterministic, seedable, `no_std`-grade —
/// used for fault-plan sampling and client retry jitter so neither depends
/// on wall-clock entropy.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seed the generator; a zero seed is remapped to a fixed odd constant
    /// (xorshift has an all-zero fixed point).
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → the full double mantissa.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform integer in `[0, n)`; returns 0 when `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Modulo bias is ≤ 2⁻⁴⁰ for any plausible n; fine for jitter and
        // fault sampling (not cryptography).
        self.next_u64() % n
    }
}

/// Stateless mix of `(seed, lane, index)` into 64 uniform-ish bits.
///
/// Used for per-index sampling (`kind~n` entries): the decision for request
/// `i` must not depend on how many other requests were sampled before it,
/// otherwise concurrent arrival order would change the fault set.
pub fn mix(seed: u64, lane: u64, index: u64) -> u64 {
    let mut rng = XorShift64::new(
        seed ^ lane.wrapping_mul(0xA076_1D64_78BD_642F) ^ index.wrapping_mul(0xE703_7ED1_A0B4_28DB),
    );
    // A few rounds decorrelate consecutive indices.
    rng.next_u64();
    rng.next_u64();
    rng.next_u64()
}

/// What kind of fault to inject into one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside request execution: the worker's `catch_unwind` converts
    /// it into a structured `PANIC` error response; the worker survives.
    PanicRequest,
    /// Panic *outside* the per-request isolation boundary: the worker thread
    /// dies and the supervisor must respawn it.
    KillWorker,
    /// Close the connection after executing the request, without delivering
    /// the response (the response is still dedup-cached when the request
    /// carried an id).
    DropConnection,
    /// Tighten the request budget to a zero allocation cap (`max_nnz = 0`),
    /// forcing a structured Budget error through the real enforcement path.
    AllocCap,
    /// Sleep for the given milliseconds before executing (cancellation-aware).
    Delay(u64),
}

impl FaultKind {
    fn name(&self) -> &'static str {
        match self {
            FaultKind::PanicRequest => "panic",
            FaultKind::KillWorker => "kill",
            FaultKind::DropConnection => "drop",
            FaultKind::AllocCap => "alloc",
            FaultKind::Delay(_) => "delay",
        }
    }
}

/// When one plan entry fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Trigger {
    /// At exactly this 0-based request index.
    At(u64),
    /// Pseudo-randomly, ~once per `n` requests, decided per-index from the
    /// plan seed (deterministic and order-independent).
    Rate(u64),
}

/// One `kind@index` / `kind~n` entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    kind: FaultKind,
    trigger: Trigger,
}

/// A parsed, immutable fault-injection plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    entries: Vec<Entry>,
}

impl FaultPlan {
    /// Parse a plan spec (see the module docs for the grammar). Never
    /// panics; malformed specs return a human-readable error.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut seed = 0u64;
        let mut entries = Vec::new();
        for raw in spec.split(';') {
            let item = raw.trim();
            if item.is_empty() {
                continue;
            }
            if let Some(value) = item.strip_prefix("seed=") {
                seed = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad seed value {value:?}"))?;
                continue;
            }
            let (kind_str, sep, rest) = match (item.find('@'), item.find('~')) {
                (Some(a), Some(t)) if a < t => (&item[..a], '@', &item[a + 1..]),
                (Some(a), None) => (&item[..a], '@', &item[a + 1..]),
                (_, Some(t)) => (&item[..t], '~', &item[t + 1..]),
                (None, None) => {
                    return Err(format!(
                        "fault entry {item:?} needs '@index' or '~n' (or 'seed=N')"
                    ))
                }
            };
            let (num_str, millis) = match rest.split_once(':') {
                Some((n, ms)) => {
                    let ms: u64 = ms
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad delay millis in {item:?}"))?;
                    (n.trim(), Some(ms))
                }
                None => (rest.trim(), None),
            };
            let num: u64 = num_str
                .parse()
                .map_err(|_| format!("bad index/rate in fault entry {item:?}"))?;
            let kind = match (kind_str.trim(), millis) {
                ("panic", None) => FaultKind::PanicRequest,
                ("kill", None) => FaultKind::KillWorker,
                ("drop", None) => FaultKind::DropConnection,
                ("alloc", None) => FaultKind::AllocCap,
                ("delay", Some(ms)) => FaultKind::Delay(ms),
                ("delay", None) => return Err(format!("delay entry {item:?} needs ':millis'")),
                (k @ ("panic" | "kill" | "drop" | "alloc"), Some(_)) => {
                    return Err(format!("{k} entry {item:?} does not take ':millis'"))
                }
                (other, _) => {
                    return Err(format!(
                        "unknown fault kind {other:?} (panic|kill|drop|alloc|delay)"
                    ))
                }
            };
            let trigger = match sep {
                '@' => Trigger::At(num),
                _ => {
                    if num == 0 {
                        return Err(format!("rate in {item:?} must be >= 1"));
                    }
                    Trigger::Rate(num)
                }
            };
            entries.push(Entry { kind, trigger });
        }
        if entries.is_empty() {
            return Err("fault plan has no entries".to_string());
        }
        Ok(FaultPlan { seed, entries })
    }

    /// Decide the fault (if any) for the request at `index`. Pure: the same
    /// `(plan, index)` always yields the same decision. The first matching
    /// entry in spec order wins.
    pub fn decide(&self, index: u64) -> Option<FaultKind> {
        self.entries
            .iter()
            .enumerate()
            .find(|(lane, e)| match e.trigger {
                Trigger::At(i) => i == index,
                Trigger::Rate(n) => mix(self.seed, *lane as u64, index) % n == 0,
            })
            .map(|(_, e)| e.kind)
    }

    /// The canonical spec string (round-trips through [`FaultPlan::parse`]).
    pub fn spec(&self) -> String {
        let mut parts = vec![format!("seed={}", self.seed)];
        for e in &self.entries {
            let head = match e.trigger {
                Trigger::At(i) => format!("{}@{i}", e.kind.name()),
                Trigger::Rate(n) => format!("{}~{n}", e.kind.name()),
            };
            match e.kind {
                FaultKind::Delay(ms) => parts.push(format!("{head}:{ms}")),
                _ => parts.push(head),
            }
        }
        parts.join(";")
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.spec())
    }
}

/// Injection counters, by fault kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct FaultCounts {
    /// Request-scoped panics injected.
    pub panics: u64,
    /// Worker kills injected.
    pub kills: u64,
    /// Connection drops injected.
    pub drops: u64,
    /// Allocation-cap failures injected.
    pub allocs: u64,
    /// Execution delays injected.
    pub delays: u64,
}

impl FaultCounts {
    /// Total faults injected across all kinds.
    pub fn total(&self) -> u64 {
        self.panics + self.kills + self.drops + self.allocs + self.delays
    }
}

/// Live fault-injection state shared by every connection handler and worker:
/// the installed plan (swappable at runtime via the `FAULTS` verb), the
/// request-index sequence, and per-kind injection counters.
#[derive(Debug, Default)]
pub struct FaultState {
    plan: parking_lot::Mutex<Option<Arc<FaultPlan>>>,
    seq: AtomicU64,
    panics: AtomicU64,
    kills: AtomicU64,
    drops: AtomicU64,
    allocs: AtomicU64,
    delays: AtomicU64,
}

impl FaultState {
    /// Fresh state with an optional initial plan (from `serve --fault-plan`).
    pub fn new(initial: Option<FaultPlan>) -> FaultState {
        let state = FaultState::default();
        *state.plan.lock() = initial.map(Arc::new);
        state
    }

    /// Install (or, with `None`, clear) the active plan. Resets the request
    /// sequence and the injection counters so planned indices and expected
    /// counts are predictable from this point on.
    pub fn install(&self, plan: Option<FaultPlan>) {
        let mut guard = self.plan.lock();
        *guard = plan.map(Arc::new);
        // Reset under the lock so a concurrent `claim` cannot interleave an
        // old-plan decision with the new sequence.
        self.seq.store(0, Ordering::Relaxed);
        for c in [
            &self.panics,
            &self.kills,
            &self.drops,
            &self.allocs,
            &self.delays,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Claim the next request index and decide its fault. Bumps the
    /// matching injection counter. Without an installed plan this still
    /// advances the sequence (indices must reflect real request order).
    pub fn claim(&self) -> Option<FaultKind> {
        let plan = self.plan.lock().clone();
        let index = self.seq.fetch_add(1, Ordering::Relaxed);
        let fault = plan.as_ref().and_then(|p| p.decide(index));
        if let Some(kind) = fault {
            let counter = match kind {
                FaultKind::PanicRequest => &self.panics,
                FaultKind::KillWorker => &self.kills,
                FaultKind::DropConnection => &self.drops,
                FaultKind::AllocCap => &self.allocs,
                FaultKind::Delay(_) => &self.delays,
            };
            counter.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }

    /// The active plan's canonical spec, if one is installed.
    pub fn spec(&self) -> Option<String> {
        self.plan.lock().as_ref().map(|p| p.spec())
    }

    /// Worker-pool requests sequenced since the last (re)install.
    pub fn requests_seen(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Injection counters since the last (re)install.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            panics: self.panics.load(Ordering::Relaxed),
            kills: self.kills.load(Ordering::Relaxed),
            drops: self.drops.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
        }
    }
}

/// A small LRU of `request id → serialized response line`, used to
/// deduplicate client retries of already-executed idempotent requests: a
/// replay returns the **byte-identical** response the original produced.
#[derive(Debug)]
pub struct DedupCache {
    cap: usize,
    map: HashMap<u64, String>,
    /// Recency order, oldest first. O(cap) maintenance — fine for the small
    /// caps this cache runs at (hundreds).
    order: VecDeque<u64>,
}

impl DedupCache {
    /// A cache holding at most `cap` responses (`0` disables caching).
    pub fn new(cap: usize) -> DedupCache {
        DedupCache {
            cap,
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    /// Look up a cached response, refreshing its recency.
    pub fn get(&mut self, id: u64) -> Option<String> {
        let line = self.map.get(&id).cloned()?;
        self.touch(id);
        Some(line)
    }

    /// Insert (or overwrite) the response for `id`, evicting the least
    /// recently used entry when over capacity.
    pub fn insert(&mut self, id: u64, line: String) {
        if self.cap == 0 {
            return;
        }
        if self.map.insert(id, line).is_some() {
            self.touch(id);
            return;
        }
        self.order.push_back(id);
        while self.map.len() > self.cap {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
            } else {
                break;
            }
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn touch(&mut self, id: u64) {
        if let Some(pos) = self.order.iter().position(|&x| x == id) {
            self.order.remove(pos);
            self.order.push_back(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_nonzero() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().any(|&x| x != xs[0]), "generator is stuck");
        // Zero seed is remapped, not a fixed point.
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), 0);
        for _ in 0..1000 {
            let f = z.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(z.next_below(10) < 10);
        }
        assert_eq!(XorShift64::new(1).next_below(0), 0);
    }

    #[test]
    fn parse_decide_round_trip() {
        let plan =
            FaultPlan::parse("seed=9; panic@3; kill@5; drop@0; alloc@2; delay@1:150").unwrap();
        assert_eq!(plan.decide(0), Some(FaultKind::DropConnection));
        assert_eq!(plan.decide(1), Some(FaultKind::Delay(150)));
        assert_eq!(plan.decide(2), Some(FaultKind::AllocCap));
        assert_eq!(plan.decide(3), Some(FaultKind::PanicRequest));
        assert_eq!(plan.decide(4), None);
        assert_eq!(plan.decide(5), Some(FaultKind::KillWorker));
        let reparsed = FaultPlan::parse(&plan.spec()).unwrap();
        assert_eq!(reparsed, plan);
        assert_eq!(reparsed.spec(), plan.spec());
    }

    #[test]
    fn first_matching_entry_wins() {
        let plan = FaultPlan::parse("panic@2;kill@2").unwrap();
        assert_eq!(plan.decide(2), Some(FaultKind::PanicRequest));
    }

    #[test]
    fn rate_entries_are_deterministic_and_order_independent() {
        let plan = FaultPlan::parse("seed=42;panic~10").unwrap();
        let forward: Vec<bool> = (0..500).map(|i| plan.decide(i).is_some()).collect();
        let backward: Vec<bool> = (0..500).rev().map(|i| plan.decide(i).is_some()).collect();
        let backward_forward: Vec<bool> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward_forward, "decisions depend on query order");
        let fired = forward.iter().filter(|&&b| b).count();
        // ~1 in 10 over 500 draws: a loose band that still catches a broken
        // sampler (always / never firing).
        assert!((10..=150).contains(&fired), "fired {fired}/500");
        // A different seed gives a different fault set.
        let other = FaultPlan::parse("seed=43;panic~10").unwrap();
        let other_fired: Vec<bool> = (0..500).map(|i| other.decide(i).is_some()).collect();
        assert_ne!(forward, other_fired);
    }

    #[test]
    fn malformed_specs_are_errors_not_panics() {
        for bad in [
            "",
            "  ;  ",
            "panic",
            "panic@",
            "panic@x",
            "panic@1:50",
            "kill~0",
            "delay@3",
            "delay@3:soon",
            "frob@1",
            "seed=abc;panic@1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "spec {bad:?} parsed");
        }
    }

    #[test]
    fn fault_state_claims_count_and_reset() {
        let state = FaultState::new(Some(FaultPlan::parse("panic@0;drop@2").unwrap()));
        assert_eq!(state.claim(), Some(FaultKind::PanicRequest));
        assert_eq!(state.claim(), None);
        assert_eq!(state.claim(), Some(FaultKind::DropConnection));
        assert_eq!(state.requests_seen(), 3);
        let counts = state.counts();
        assert_eq!(counts.panics, 1);
        assert_eq!(counts.drops, 1);
        assert_eq!(counts.total(), 2);
        // Reinstall resets the sequence and the counters.
        state.install(Some(FaultPlan::parse("kill@0").unwrap()));
        assert_eq!(state.requests_seen(), 0);
        assert_eq!(state.counts().total(), 0);
        assert_eq!(state.claim(), Some(FaultKind::KillWorker));
        assert_eq!(state.spec().as_deref(), Some("seed=0;kill@0"));
        // Clearing stops injection but the sequence still advances.
        state.install(None);
        assert_eq!(state.claim(), None);
        assert_eq!(state.requests_seen(), 1);
        assert_eq!(state.spec(), None);
    }

    #[test]
    fn dedup_cache_lru_semantics() {
        let mut cache = DedupCache::new(2);
        assert!(cache.is_empty());
        cache.insert(1, "one".into());
        cache.insert(2, "two".into());
        assert_eq!(cache.get(1).as_deref(), Some("one"));
        // 2 is now least-recent; inserting 3 evicts it.
        cache.insert(3, "three".into());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(2), None);
        assert_eq!(cache.get(1).as_deref(), Some("one"));
        assert_eq!(cache.get(3).as_deref(), Some("three"));
        // Overwrite refreshes, never grows.
        cache.insert(1, "uno".into());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(1).as_deref(), Some("uno"));
        // cap 0 disables storage entirely.
        let mut off = DedupCache::new(0);
        off.insert(9, "x".into());
        assert_eq!(off.get(9), None);
        assert!(off.is_empty());
    }
}
