//! Blocking client for the wire protocol, plus a closed-loop load
//! generator used by `hin bench-client` and the `exp_service` benchmark.

use crate::json;
use crate::protocol::Request;
use serde::Serialize;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A blocking, single-connection protocol client.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    /// Send one raw request line and read one response line (the JSON,
    /// without the trailing newline).
    pub fn send_line(&mut self, line: &str) -> std::io::Result<String> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        self.read_response()
    }

    /// Send a typed [`Request`].
    pub fn send(&mut self, request: &Request) -> std::io::Result<String> {
        self.send_line(&request.to_line())
    }

    /// Write a request line without waiting for the response (pipelining /
    /// abandonment tests).
    pub fn send_no_wait(&mut self, line: &str) -> std::io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()
    }

    /// Read the next response line.
    pub fn read_response(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end().to_string())
    }
}

/// The kind tag of a response line (`"result"`, `"busy"`, `"err"`, …):
/// the first JSON object key. `None` when the line is not shaped like a
/// response.
pub fn response_kind(line: &str) -> Option<&str> {
    let rest = line.strip_prefix("{\"")?;
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Scan a flat JSON line for `"field":<integer>` and return the integer.
/// A shallow convenience for tests and load generators (first match wins);
/// not a JSON parser.
pub fn json_u64_field(line: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let at = line.find(&needle)? + needle.len();
    let digits: String = line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Closed-loop load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests each client sends before disconnecting.
    pub requests_per_client: usize,
    /// Request lines, assigned round-robin across the whole run.
    pub lines: Vec<String>,
}

/// Aggregated result of a load-generation run.
#[derive(Debug, Clone, Serialize)]
pub struct LoadReport {
    /// Concurrent connections used.
    pub clients: usize,
    /// Requests that received any response.
    pub requests: u64,
    /// `result`/`explain`/`slept` responses.
    pub ok: u64,
    /// `busy` rejections.
    pub busy: u64,
    /// `err` responses.
    pub errors: u64,
    /// Degraded (partial) results among `ok`.
    pub degraded: u64,
    /// Transport failures (connect/read/write).
    pub io_errors: u64,
    /// Wall-clock duration of the whole run, milliseconds.
    pub elapsed_ms: u64,
    /// Completed requests per second (all response kinds).
    pub throughput_rps: f64,
    /// Client-observed latency percentiles, microseconds (exact, computed
    /// from the full sample set — unlike the server's bucketed histograms).
    pub p50_us: u64,
    /// 95th percentile latency (µs).
    pub p95_us: u64,
    /// 99th percentile latency (µs).
    pub p99_us: u64,
    /// Mean latency (µs).
    pub mean_us: u64,
}

/// Exact percentile over a sorted latency sample (nearest-rank).
fn percentile_us(sorted: &[Duration], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1].as_micros() as u64
}

/// Run a closed loop: `clients` connections each send
/// `requests_per_client` lines back-to-back (next request only after the
/// previous response), then the per-request latencies are aggregated.
pub fn run_closed_loop(addr: impl ToSocketAddrs, spec: &LoadSpec) -> LoadReport {
    let addrs: Vec<_> = addr
        .to_socket_addrs()
        .map(|a| a.collect())
        .unwrap_or_default();
    let started = Instant::now();
    let per_client: Vec<(Vec<Duration>, u64, u64, u64, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.clients)
            .map(|c| {
                let addrs = addrs.clone();
                let lines = &spec.lines;
                let n = spec.requests_per_client;
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(n);
                    let (mut ok, mut busy, mut errors, mut degraded, mut io_errors) =
                        (0u64, 0u64, 0u64, 0u64, 0u64);
                    let mut client = match Client::connect(addrs.as_slice()) {
                        Ok(cl) => cl,
                        Err(_) => {
                            return (latencies, ok, busy, errors, degraded, n as u64);
                        }
                    };
                    for i in 0..n {
                        let line = &lines[(c * n + i) % lines.len()];
                        let t = Instant::now();
                        match client.send_line(line) {
                            Ok(response) => {
                                latencies.push(t.elapsed());
                                match response_kind(&response) {
                                    Some("busy") => busy += 1,
                                    Some("err") => errors += 1,
                                    Some(_) => {
                                        ok += 1;
                                        if response.contains("\"degraded\":{") {
                                            degraded += 1;
                                        }
                                    }
                                    None => errors += 1,
                                }
                            }
                            Err(_) => {
                                io_errors += 1;
                                break;
                            }
                        }
                    }
                    (latencies, ok, busy, errors, degraded, io_errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| (Vec::new(), 0, 0, 0, 0, 1)))
            .collect()
    });
    let elapsed = started.elapsed();

    let mut all: Vec<Duration> = Vec::new();
    let (mut ok, mut busy, mut errors, mut degraded, mut io_errors) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for (lat, o, b, e, d, io) in per_client {
        all.extend(lat);
        ok += o;
        busy += b;
        errors += e;
        degraded += d;
        io_errors += io;
    }
    all.sort_unstable();
    let requests = all.len() as u64;
    let mean_us = if all.is_empty() {
        0
    } else {
        (all.iter().map(Duration::as_micros).sum::<u128>() / all.len() as u128) as u64
    };
    LoadReport {
        clients: spec.clients,
        requests,
        ok,
        busy,
        errors,
        degraded,
        io_errors,
        elapsed_ms: elapsed.as_millis() as u64,
        throughput_rps: if elapsed.as_secs_f64() > 0.0 {
            requests as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        },
        p50_us: percentile_us(&all, 0.50),
        p95_us: percentile_us(&all, 0.95),
        p99_us: percentile_us(&all, 0.99),
        mean_us,
    }
}

/// Render a [`LoadReport`] as a human-readable block (the JSON form is
/// [`json::to_string`]).
pub fn render_report(r: &LoadReport) -> String {
    format!(
        "clients {:>3} | {:>7} requests in {:>6} ms | {:>9.1} req/s | \
         ok {} busy {} err {} degraded {} io-err {}\n\
         latency µs: mean {} p50 {} p95 {} p99 {}\n",
        r.clients,
        r.requests,
        r.elapsed_ms,
        r.throughput_rps,
        r.ok,
        r.busy,
        r.errors,
        r.degraded,
        r.io_errors,
        r.mean_us,
        r.p50_us,
        r.p95_us,
        r.p99_us
    )
}

/// Serialize a [`LoadReport`] to compact JSON.
pub fn report_to_json(r: &LoadReport) -> String {
    json::to_string(r).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_kind_extraction() {
        assert_eq!(response_kind(r#"{"pong":{"uptime_ms":1}}"#), Some("pong"));
        assert_eq!(response_kind(r#"{"err":{"code":"Query"}}"#), Some("err"));
        assert_eq!(response_kind("not json"), None);
        assert_eq!(response_kind(""), None);
    }

    #[test]
    fn u64_field_scan() {
        let line = r#"{"stats":{"cancelled":7,"completed":12}}"#;
        assert_eq!(json_u64_field(line, "cancelled"), Some(7));
        assert_eq!(json_u64_field(line, "completed"), Some(12));
        assert_eq!(json_u64_field(line, "missing"), None);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let sorted: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        assert_eq!(percentile_us(&sorted, 0.50), 50);
        assert_eq!(percentile_us(&sorted, 0.95), 95);
        assert_eq!(percentile_us(&sorted, 0.99), 99);
        assert_eq!(percentile_us(&[], 0.5), 0);
    }

    #[test]
    fn report_serializes() {
        let spec = LoadSpec {
            clients: 1,
            requests_per_client: 0,
            lines: vec!["PING".into()],
        };
        // Closed loop against a dead address: all IO errors, no panic.
        let report = run_closed_loop("127.0.0.1:1", &spec);
        assert_eq!(report.requests, 0);
        let json = report_to_json(&report);
        assert!(json.contains("\"clients\":1"), "{json}");
        assert!(!render_report(&report).is_empty());
    }
}
