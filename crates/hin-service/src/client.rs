//! Blocking client for the wire protocol, plus a self-healing
//! [`RetryClient`] and a closed-loop load generator used by
//! `hin bench-client` and the `exp_service` benchmark.
//!
//! The retry layer (DESIGN.md §11) recovers from dropped connections and
//! transient failures without double-executing work: every request gets an
//! idempotency id, attempts are spaced by exponential backoff with **full
//! jitter** (deterministic, seeded — no wall-clock entropy), each attempt
//! gets a deadline carved out of the caller's overall budget, and a retry
//! of a request the server already executed is answered byte-identically
//! from the server's dedup cache.

use crate::fault::XorShift64;
use crate::json;
use crate::protocol::Request;
use serde::Serialize;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A blocking, single-connection protocol client.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Client::from_stream(stream)
    }

    /// Connect with a bound on how long connection establishment may take.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> std::io::Result<Client> {
        let stream = TcpStream::connect_timeout(addr, timeout.max(Duration::from_millis(1)))?;
        Client::from_stream(stream)
    }

    fn from_stream(stream: TcpStream) -> std::io::Result<Client> {
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    /// Bound how long a single read/write may block (`None` = forever).
    /// A timed-out read leaves the connection in an unknown framing state —
    /// callers should drop and reconnect, as [`RetryClient`] does.
    pub fn set_io_timeouts(
        &mut self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> std::io::Result<()> {
        let floor = |d: Duration| d.max(Duration::from_millis(1));
        self.stream.set_read_timeout(read.map(floor))?;
        self.stream.set_write_timeout(write.map(floor))
    }

    /// Send one raw request line and read one response line (the JSON,
    /// without the trailing newline).
    pub fn send_line(&mut self, line: &str) -> std::io::Result<String> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        self.read_response()
    }

    /// Send a typed [`Request`].
    pub fn send(&mut self, request: &Request) -> std::io::Result<String> {
        self.send_line(&request.to_line())
    }

    /// Write a request line without waiting for the response (pipelining /
    /// abandonment tests).
    pub fn send_no_wait(&mut self, line: &str) -> std::io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()
    }

    /// Read the next response line.
    pub fn read_response(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end().to_string())
    }

    /// Read a blank-line-terminated text block — the framing of the raw
    /// Prometheus `METRICS` exposition. Returns the block without the
    /// terminating blank line (one trailing `\n` per content line).
    pub fn read_text_block(&mut self) -> std::io::Result<String> {
        let mut block = String::new();
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-block",
                ));
            }
            let line = line.trim_end_matches(['\r', '\n']);
            if line.is_empty() {
                return Ok(block);
            }
            block.push_str(line);
            block.push('\n');
        }
    }

    /// A handle that can abort this client's in-flight request from
    /// another thread. Used by the coordinator to cancel the loser of a
    /// hedged request pair: the disconnect fires the server-side cancel
    /// token of whatever that connection was running.
    pub fn cancel_handle(&self) -> std::io::Result<CancelHandle> {
        Ok(CancelHandle {
            stream: self.stream.try_clone()?,
        })
    }
}

/// Aborts a [`Client`]'s in-flight request by shutting its socket down
/// (see [`Client::cancel_handle`]).
pub struct CancelHandle {
    stream: TcpStream,
}

impl CancelHandle {
    /// Shut both directions of the connection down: the owning client's
    /// blocked read fails immediately and the server observes the
    /// disconnect. Idempotent; errors from an already-closed socket are
    /// ignored.
    pub fn cancel(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// Retry behavior for [`RetryClient`]: bounded attempts under one overall
/// deadline, spaced by exponential backoff with full jitter.
///
/// All randomness comes from a seeded [`XorShift64`], so a retry schedule
/// is reproducible from `(policy, seed)` alone. **Give each concurrent
/// client a distinct `seed`** — the seed also drives idempotency-id
/// assignment, and two clients on the same seed would collide in the
/// server's dedup cache and receive each other's responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff envelope before attempt `n+1` is `base_backoff · 2ⁿ`…
    pub base_backoff: Duration,
    /// …capped at this.
    pub backoff_cap: Duration,
    /// Overall budget for one `send_idempotent` call: connects, request
    /// attempts, and backoff sleeps all draw from it.
    pub overall_deadline: Duration,
    /// Seed for jitter and idempotency ids.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            overall_deadline: Duration::from_secs(10),
            seed: 1,
        }
    }
}

impl RetryPolicy {
    /// The deterministic backoff envelope for 0-based `attempt`:
    /// `min(backoff_cap, base_backoff · 2^attempt)`. Monotone
    /// non-decreasing in `attempt`.
    pub fn envelope(&self, attempt: u32) -> Duration {
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        let nanos = self
            .base_backoff
            .as_nanos()
            .saturating_mul(u128::from(factor));
        let envelope = if nanos > u128::from(u64::MAX) {
            Duration::from_nanos(u64::MAX)
        } else {
            Duration::from_nanos(nanos as u64)
        };
        envelope.min(self.backoff_cap)
    }

    /// Full jitter: a uniform draw from `[0, envelope(attempt)]`. Full (as
    /// opposed to partial) jitter decorrelates clients that fail at the
    /// same moment, so they do not retry in lockstep against a recovering
    /// server.
    pub fn jitter(&self, attempt: u32, rng: &mut XorShift64) -> Duration {
        let envelope_us = self.envelope(attempt).as_micros() as u64;
        Duration::from_micros(rng.next_below(envelope_us.saturating_add(1)))
    }

    /// Carve a per-attempt deadline out of the remaining overall budget:
    /// an even split across the attempts still available, floored at 1 ms
    /// (zero socket timeouts are rejected by the OS).
    pub fn attempt_timeout(remaining: Duration, attempts_left: u32) -> Duration {
        (remaining / attempts_left.max(1)).max(Duration::from_millis(1))
    }

    /// Backoff honoring a server-provided `retry_after_ms` hint: full
    /// jitter over the top half, `[hint/2, hint]`. The floor keeps the
    /// server's pacing meaningful (it sized the hint from its own
    /// backlog), while the jitter de-synchronizes clients that were shed
    /// at the same instant. A zero hint yields zero — callers fall back
    /// to the exponential [`envelope`](RetryPolicy::envelope).
    pub fn hint_jitter(&self, hint_ms: u64, rng: &mut XorShift64) -> Duration {
        if hint_ms == 0 {
            return Duration::ZERO;
        }
        let hint_us = hint_ms.saturating_mul(1_000);
        let half = hint_us / 2;
        Duration::from_micros(half + rng.next_below(hint_us - half + 1))
    }
}

/// A self-healing client: wraps [`Client`] with reconnect-on-drop,
/// deadline-bounded retries, and idempotency ids (see [`RetryPolicy`]).
pub struct RetryClient {
    addrs: Vec<SocketAddr>,
    policy: RetryPolicy,
    rng: XorShift64,
    conn: Option<Client>,
}

impl RetryClient {
    /// Resolve `addr` and prepare a client. Connection is lazy: the first
    /// `send_idempotent` connects (and reconnects whenever the transport
    /// fails mid-request).
    pub fn new(addr: impl ToSocketAddrs, policy: RetryPolicy) -> std::io::Result<RetryClient> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(std::io::Error::new(
                ErrorKind::InvalidInput,
                "address resolved to nothing",
            ));
        }
        let rng = XorShift64::new(policy.seed);
        Ok(RetryClient {
            addrs,
            policy,
            rng,
            conn: None,
        })
    }

    /// Send one request line, retrying transport failures and `busy`/
    /// `expired` sheds until a definitive response arrives, the attempt
    /// budget is spent, or the overall deadline passes. A shed response
    /// carrying a `retry_after_ms` hint paces the next attempt with
    /// [`RetryPolicy::hint_jitter`] instead of the exponential envelope;
    /// backoffs are always clipped to the overall deadline, so a large
    /// hint can never stretch the call past its budget.
    ///
    /// Worker-pool requests (`QUERY`/`EXPLAIN`/`SLEEP`) that do not already
    /// carry an `id=` option get a fresh idempotency id, so a retry of a
    /// request the server already executed is replayed from the server's
    /// dedup cache **byte-identically** instead of running twice. Inline
    /// verbs are naturally idempotent and sent as-is.
    ///
    /// Transport errors are classified before replay: a failure to
    /// *connect* can never have executed anything and is always retried,
    /// but once the request bytes may have reached the server (a
    /// mid-response drop or read timeout), a retry is only attempted when
    /// the request is replay-safe — it carries an idempotency id the
    /// server's dedup cache honors, or it is a read-only inline verb.
    /// State-changing requests that cannot carry an id (`FAULTS OFF`,
    /// `FAULTS <spec>`, `SHUTDOWN`) fail fast with the transport error
    /// instead of being blindly re-executed.
    ///
    /// On deadline/attempt exhaustion: the last shed (`busy`/`expired`)
    /// response is returned if one was seen (the server was alive, just
    /// saturated), otherwise the last transport error.
    pub fn send_idempotent(&mut self, line: &str) -> std::io::Result<String> {
        let request_id = self.rng.next_u64();
        let line = inject_id(line, request_id);
        let replayable = replay_safe(&line);
        let deadline = Instant::now() + self.policy.overall_deadline;
        let max_attempts = self.policy.max_attempts.max(1);
        let mut last_err: Option<std::io::Error> = None;
        let mut last_shed: Option<String> = None;
        let mut retry_hint_ms: Option<u64> = None;
        for attempt in 0..max_attempts {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                break;
            };
            let per_attempt = RetryPolicy::attempt_timeout(remaining, max_attempts - attempt);
            match self.try_once(&line, per_attempt) {
                Ok(response) => {
                    if matches!(response_kind(&response), Some("busy" | "expired")) {
                        // Both sheds are retry-safe by construction: busy
                        // was never admitted, expired was dropped from the
                        // queue without executing.
                        retry_hint_ms = json_u64_field(&response, "retry_after_ms");
                        last_shed = Some(response);
                    } else {
                        return Ok(response);
                    }
                }
                Err(e) => {
                    // The transport is suspect (dropped, timed out, framing
                    // unknown): heal by reconnecting on the next attempt.
                    self.conn = None;
                    if e.maybe_executed && !replayable {
                        // The server may already have acted on a request we
                        // cannot safely replay: surface the error instead
                        // of double-executing.
                        return Err(e.error);
                    }
                    last_err = Some(e.error);
                }
            }
            if attempt + 1 < max_attempts {
                let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                    break;
                };
                let backoff = match retry_hint_ms.take() {
                    Some(hint) if hint > 0 => self.policy.hint_jitter(hint, &mut self.rng),
                    _ => self.policy.jitter(attempt, &mut self.rng),
                }
                .min(remaining);
                std::thread::sleep(backoff);
            }
        }
        if let Some(shed) = last_shed {
            return Ok(shed);
        }
        Err(last_err
            .unwrap_or_else(|| std::io::Error::new(ErrorKind::TimedOut, "retry budget exhausted")))
    }

    /// One attempt under its own deadline slice: connect if needed, send,
    /// read one response line.
    fn try_once(&mut self, line: &str, per_attempt: Duration) -> Result<String, AttemptError> {
        let attempt_deadline = Instant::now() + per_attempt;
        if self.conn.is_none() {
            let mut connect_err: Option<std::io::Error> = None;
            for addr in &self.addrs {
                let budget = attempt_deadline
                    .checked_duration_since(Instant::now())
                    .unwrap_or(Duration::from_millis(1));
                match Client::connect_timeout(addr, budget) {
                    Ok(client) => {
                        self.conn = Some(client);
                        connect_err = None;
                        break;
                    }
                    Err(e) => connect_err = Some(e),
                }
            }
            if let Some(e) = connect_err {
                return Err(AttemptError::before_send(e));
            }
        }
        let Some(conn) = self.conn.as_mut() else {
            return Err(AttemptError::before_send(std::io::Error::new(
                ErrorKind::NotConnected,
                "no connection",
            )));
        };
        let io_budget = attempt_deadline
            .checked_duration_since(Instant::now())
            .unwrap_or(Duration::from_millis(1));
        conn.set_io_timeouts(Some(io_budget), Some(io_budget))
            .map_err(AttemptError::before_send)?;
        // From here on the request may reach the server even if the call
        // fails (a write can land before the connection drops, a read can
        // time out after execution started).
        conn.send_line(line).map_err(AttemptError::after_send)
    }
}

/// A failed attempt, classified by whether the request may have executed.
struct AttemptError {
    /// The underlying transport error.
    error: std::io::Error,
    /// `true` when the request bytes may have reached the server before
    /// the failure — a connect failure can never have executed anything,
    /// but a mid-response drop or read timeout may have.
    maybe_executed: bool,
}

impl AttemptError {
    fn before_send(error: std::io::Error) -> AttemptError {
        AttemptError {
            error,
            maybe_executed: false,
        }
    }

    fn after_send(error: std::io::Error) -> AttemptError {
        AttemptError {
            error,
            maybe_executed: true,
        }
    }
}

/// Whether retrying `line` after a possible partial execution is safe:
/// worker-pool requests carrying an `id=` replay byte-identically from the
/// server's dedup cache, and read-only inline verbs (`PING`, `STATS`,
/// `METRICS`, `TRACE`, bare `FAULTS`) have no effect to duplicate.
/// State-changing id-less requests (`FAULTS OFF`/`FAULTS <spec>`,
/// `SHUTDOWN`, pool verbs without an id) are not replay-safe. Unparseable
/// lines are: the server answers them with a protocol error either way.
fn replay_safe(line: &str) -> bool {
    use crate::protocol::FaultCommand;
    match Request::parse(line) {
        Ok(Request::Query { options, .. }) | Ok(Request::Explain { options, .. }) => {
            options.id.is_some()
        }
        Ok(Request::Sleep { id, .. }) => id.is_some(),
        Ok(Request::Ping)
        | Ok(Request::Stats)
        | Ok(Request::Metrics { .. })
        | Ok(Request::Trace { .. })
        | Ok(Request::Faults(FaultCommand::Status)) => true,
        Ok(Request::Shutdown)
        | Ok(Request::Faults(FaultCommand::Clear))
        | Ok(Request::Faults(FaultCommand::Install(_))) => false,
        Err(_) => true,
    }
}

/// Inject `id=<id>` into a worker-pool request line that does not already
/// carry one. Inline verbs and unparseable lines pass through untouched
/// (the server will answer the latter with a protocol error — retrying
/// that is harmless).
fn inject_id(line: &str, id: u64) -> String {
    match Request::parse(line) {
        Ok(mut request) => {
            match &mut request {
                Request::Query { options, .. } | Request::Explain { options, .. } => {
                    if options.id.is_none() {
                        options.id = Some(id);
                    }
                }
                Request::Sleep { id: slot, .. } => {
                    if slot.is_none() {
                        *slot = Some(id);
                    }
                }
                _ => return line.to_string(),
            }
            request.to_line()
        }
        Err(_) => line.to_string(),
    }
}

/// The kind tag of a response line (`"result"`, `"busy"`, `"err"`, …):
/// the first JSON object key. `None` when the line is not shaped like a
/// response.
pub fn response_kind(line: &str) -> Option<&str> {
    let rest = line.strip_prefix("{\"")?;
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Scan a flat JSON line for `"field":<integer>` and return the integer.
/// A shallow convenience for tests and load generators (first match wins);
/// not a JSON parser.
pub fn json_u64_field(line: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let at = line.find(&needle)? + needle.len();
    let digits: String = line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// One slow-query ring entry fetched over the wire and decoded for
/// client-side rendering (`bench-client --trace`).
#[derive(Debug, Clone)]
pub struct FetchedTrace {
    /// Entry id (`TRACE <id>`).
    pub id: u64,
    /// The request line the server logged.
    pub request: String,
    /// Admission → response written, µs.
    pub total_us: u64,
    /// Spans dropped because a trace buffer was full (on a coordinator
    /// entry: summed over the backend payloads).
    pub spans_dropped: u64,
    /// The decoded span tree, renderable with
    /// [`hin_telemetry::trace::render_tree`].
    pub spans: Vec<hin_telemetry::TraceNode>,
}

/// Fetch the most recent slow-query ring entry from `addr`: `TRACE` lists
/// the ring (oldest first), the newest entry is fetched with `TRACE <id>`,
/// and its span tree is decoded. `Ok(None)` when the ring is empty.
pub fn fetch_latest_trace(addr: impl ToSocketAddrs) -> std::io::Result<Option<FetchedTrace>> {
    let bad = |msg: String| std::io::Error::new(ErrorKind::InvalidData, msg);
    let mut client = Client::connect(addr)?;
    let listing = client.send_line("TRACE")?;
    let value = json::parse_value(&listing).map_err(&bad)?;
    let entries = value
        .get("traces")
        .and_then(|t| t.get("entries"))
        .and_then(json::Value::as_array)
        .ok_or_else(|| bad(format!("unexpected TRACE listing: {listing}")))?;
    let Some(id) = entries
        .last()
        .and_then(|e| e.get("id"))
        .and_then(json::Value::as_u64)
    else {
        return Ok(None);
    };
    let line = client.send_line(&format!("TRACE {id}"))?;
    let value = json::parse_value(&line).map_err(&bad)?;
    let body = value
        .get("trace")
        .ok_or_else(|| bad(format!("unexpected TRACE {id} response: {line}")))?;
    let field = |key: &str| {
        body.get(key)
            .and_then(json::Value::as_u64)
            .ok_or_else(|| bad(format!("trace entry missing {key:?}")))
    };
    let request = body
        .get("request")
        .and_then(json::Value::as_str)
        .ok_or_else(|| bad("trace entry missing \"request\"".to_string()))?
        .to_string();
    let mut spans = Vec::new();
    if let Some(roots) = body.get("spans").and_then(json::Value::as_array) {
        for root in roots {
            spans.push(crate::protocol::trace_node_from_value(root).map_err(&bad)?);
        }
    }
    Ok(Some(FetchedTrace {
        id,
        request,
        total_us: field("total_us")?,
        spans_dropped: field("spans_dropped")?,
        spans,
    }))
}

/// Closed-loop load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests each client sends before disconnecting.
    pub requests_per_client: usize,
    /// Request lines, assigned round-robin across the whole run.
    pub lines: Vec<String>,
    /// When set, each client sends through a [`RetryClient`] (seeded
    /// `policy.seed + client_index` so idempotency ids never collide)
    /// instead of a bare [`Client`]; transport failures are retried rather
    /// than ending the client's run.
    pub retry: Option<RetryPolicy>,
}

/// Aggregated result of a load-generation run.
#[derive(Debug, Clone, Serialize)]
pub struct LoadReport {
    /// Concurrent connections used.
    pub clients: usize,
    /// Requests that received any response.
    pub requests: u64,
    /// `result`/`explain`/`slept` responses.
    pub ok: u64,
    /// `busy` rejections.
    pub busy: u64,
    /// `expired` sheds (deadline passed while queued; never executed).
    pub expired: u64,
    /// `err` responses.
    pub errors: u64,
    /// Degraded (partial) results among `ok`.
    pub degraded: u64,
    /// Transport failures (connect/read/write).
    pub io_errors: u64,
    /// Wall-clock duration of the whole run, milliseconds.
    pub elapsed_ms: u64,
    /// Completed requests per second (all response kinds).
    pub throughput_rps: f64,
    /// Client-observed latency percentiles, microseconds (exact, computed
    /// from the full sample set — unlike the server's bucketed histograms).
    pub p50_us: u64,
    /// 95th percentile latency (µs).
    pub p95_us: u64,
    /// 99th percentile latency (µs).
    pub p99_us: u64,
    /// Mean latency (µs).
    pub mean_us: u64,
}

/// One load-generator connection: bare, or wrapped in the retry layer.
enum LoadConn {
    Plain(Client),
    Retry(RetryClient),
}

/// Run a closed loop: `clients` connections each send
/// `requests_per_client` lines back-to-back (next request only after the
/// previous response), then the per-request latencies are aggregated.
pub fn run_closed_loop(addr: impl ToSocketAddrs, spec: &LoadSpec) -> LoadReport {
    let addrs: Vec<_> = addr
        .to_socket_addrs()
        .map(|a| a.collect())
        .unwrap_or_default();
    let started = Instant::now();
    type ClientTally = (Vec<Duration>, u64, u64, u64, u64, u64, u64);
    let per_client: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.clients)
            .map(|c| {
                let addrs = addrs.clone();
                let lines = &spec.lines;
                let n = spec.requests_per_client;
                let retry = spec.retry.clone();
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(n);
                    let (mut ok, mut busy, mut expired, mut errors, mut degraded, mut io_errors) =
                        (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
                    let mut conn = match retry {
                        Some(policy) => {
                            // Distinct per-client seed: ids must not collide
                            // across clients (see `RetryPolicy::seed`).
                            let policy = RetryPolicy {
                                seed: policy.seed.wrapping_add(c as u64),
                                ..policy
                            };
                            match RetryClient::new(addrs.as_slice(), policy) {
                                Ok(rc) => LoadConn::Retry(rc),
                                Err(_) => {
                                    return (
                                        latencies, ok, busy, expired, errors, degraded, n as u64,
                                    );
                                }
                            }
                        }
                        None => match Client::connect(addrs.as_slice()) {
                            Ok(cl) => LoadConn::Plain(cl),
                            Err(_) => {
                                return (latencies, ok, busy, expired, errors, degraded, n as u64);
                            }
                        },
                    };
                    for i in 0..n {
                        let line = &lines[(c * n + i) % lines.len()];
                        let t = Instant::now();
                        let sent = match &mut conn {
                            LoadConn::Plain(client) => client.send_line(line),
                            LoadConn::Retry(client) => client.send_idempotent(line),
                        };
                        match sent {
                            Ok(response) => {
                                latencies.push(t.elapsed());
                                match response_kind(&response) {
                                    Some("busy") => busy += 1,
                                    Some("expired") => expired += 1,
                                    Some("err") => errors += 1,
                                    Some(_) => {
                                        ok += 1;
                                        if response.contains("\"degraded\":{") {
                                            degraded += 1;
                                        }
                                    }
                                    None => errors += 1,
                                }
                            }
                            Err(_) => {
                                io_errors += 1;
                                // A retrying client heals its own transport:
                                // keep going. A bare client's framing is
                                // unknown after an error: stop.
                                if matches!(conn, LoadConn::Plain(_)) {
                                    break;
                                }
                            }
                        }
                    }
                    (latencies, ok, busy, expired, errors, degraded, io_errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| (Vec::new(), 0, 0, 0, 0, 0, 1)))
            .collect()
    });
    let elapsed = started.elapsed();

    let mut all: Vec<Duration> = Vec::new();
    let (mut ok, mut busy, mut expired, mut errors, mut degraded, mut io_errors) =
        (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
    for (lat, o, b, x, e, d, io) in per_client {
        all.extend(lat);
        ok += o;
        busy += b;
        expired += x;
        errors += e;
        degraded += d;
        io_errors += io;
    }
    all.sort_unstable();
    // Nearest-rank quantiles over the exact sorted sample, via the shared
    // telemetry helper (the same definition the bucketed server histograms
    // approximate — see `hin_telemetry::histogram`).
    let all_us: Vec<u64> = all.iter().map(|d| d.as_micros() as u64).collect();
    let quantile = |q: f64| hin_telemetry::exact_quantile_us(&all_us, q).unwrap_or(0);
    let requests = all.len() as u64;
    let mean_us = if all.is_empty() {
        0
    } else {
        (all.iter().map(Duration::as_micros).sum::<u128>() / all.len() as u128) as u64
    };
    LoadReport {
        clients: spec.clients,
        requests,
        ok,
        busy,
        expired,
        errors,
        degraded,
        io_errors,
        elapsed_ms: elapsed.as_millis() as u64,
        throughput_rps: if elapsed.as_secs_f64() > 0.0 {
            requests as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        },
        p50_us: quantile(0.50),
        p95_us: quantile(0.95),
        p99_us: quantile(0.99),
        mean_us,
    }
}

/// Render a [`LoadReport`] as a human-readable block (the JSON form is
/// [`json::to_string`]).
pub fn render_report(r: &LoadReport) -> String {
    format!(
        "clients {:>3} | {:>7} requests in {:>6} ms | {:>9.1} req/s | \
         ok {} busy {} expired {} err {} degraded {} io-err {}\n\
         latency µs: mean {} p50 {} p95 {} p99 {}\n",
        r.clients,
        r.requests,
        r.elapsed_ms,
        r.throughput_rps,
        r.ok,
        r.busy,
        r.expired,
        r.errors,
        r.degraded,
        r.io_errors,
        r.mean_us,
        r.p50_us,
        r.p95_us,
        r.p99_us
    )
}

/// Serialize a [`LoadReport`] to compact JSON.
pub fn report_to_json(r: &LoadReport) -> String {
    json::to_string(r).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_kind_extraction() {
        assert_eq!(response_kind(r#"{"pong":{"uptime_ms":1}}"#), Some("pong"));
        assert_eq!(response_kind(r#"{"err":{"code":"Query"}}"#), Some("err"));
        assert_eq!(response_kind("not json"), None);
        assert_eq!(response_kind(""), None);
    }

    #[test]
    fn u64_field_scan() {
        let line = r#"{"stats":{"cancelled":7,"completed":12}}"#;
        assert_eq!(json_u64_field(line, "cancelled"), Some(7));
        assert_eq!(json_u64_field(line, "completed"), Some(12));
        assert_eq!(json_u64_field(line, "missing"), None);
    }

    #[test]
    fn percentiles_nearest_rank() {
        // The client reports exact nearest-rank quantiles via the shared
        // telemetry helper; pin the definition here so the wire fields
        // (p50_us/p95_us/p99_us) keep their meaning.
        let sorted_us: Vec<u64> = (1..=100).collect();
        assert_eq!(hin_telemetry::exact_quantile_us(&sorted_us, 0.50), Some(50));
        assert_eq!(hin_telemetry::exact_quantile_us(&sorted_us, 0.95), Some(95));
        assert_eq!(hin_telemetry::exact_quantile_us(&sorted_us, 0.99), Some(99));
        assert_eq!(hin_telemetry::exact_quantile_us(&[], 0.5), None);
    }

    #[test]
    fn report_serializes() {
        let spec = LoadSpec {
            clients: 1,
            requests_per_client: 0,
            lines: vec!["PING".into()],
            retry: None,
        };
        // Closed loop against a dead address: all IO errors, no panic.
        let report = run_closed_loop("127.0.0.1:1", &spec);
        assert_eq!(report.requests, 0);
        let json = report_to_json(&report);
        assert!(json.contains("\"clients\":1"), "{json}");
        assert!(!render_report(&report).is_empty());
    }

    #[test]
    fn envelope_doubles_then_caps() {
        let policy = RetryPolicy {
            base_backoff: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(70),
            ..RetryPolicy::default()
        };
        assert_eq!(policy.envelope(0), Duration::from_millis(10));
        assert_eq!(policy.envelope(1), Duration::from_millis(20));
        assert_eq!(policy.envelope(2), Duration::from_millis(40));
        assert_eq!(policy.envelope(3), Duration::from_millis(70));
        assert_eq!(policy.envelope(40), Duration::from_millis(70));
        // Shift overflow saturates instead of wrapping back down.
        assert_eq!(policy.envelope(200), Duration::from_millis(70));
    }

    #[test]
    fn jitter_is_deterministic_and_within_envelope() {
        let policy = RetryPolicy::default();
        let mut a = XorShift64::new(9);
        let mut b = XorShift64::new(9);
        for attempt in 0..6 {
            let ja = policy.jitter(attempt, &mut a);
            assert_eq!(ja, policy.jitter(attempt, &mut b));
            assert!(ja <= policy.envelope(attempt), "attempt {attempt}: {ja:?}");
        }
    }

    #[test]
    fn hint_jitter_stays_in_top_half_and_is_deterministic() {
        let policy = RetryPolicy::default();
        let mut rng = XorShift64::new(5);
        for _ in 0..100 {
            let backoff = policy.hint_jitter(40, &mut rng);
            assert!(
                (Duration::from_millis(20)..=Duration::from_millis(40)).contains(&backoff),
                "hint jitter must stay in [hint/2, hint]: {backoff:?}"
            );
        }
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        assert_eq!(
            policy.hint_jitter(100, &mut a),
            policy.hint_jitter(100, &mut b)
        );
        // Zero hint defers to the exponential envelope.
        assert_eq!(policy.hint_jitter(0, &mut rng), Duration::ZERO);
    }

    #[test]
    fn shed_responses_are_retried_then_returned_verbatim() {
        use std::io::Read as _;
        use std::net::TcpListener;
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        // A saturated server: every request line draws an `expired` shed
        // with a small retry hint.
        let shed = "{\"expired\":{\"waited_ms\":9,\"deadline_ms\":5,\"retry_after_ms\":4}}\n";
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hits = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&hits);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { break };
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    let mut byte = [0u8; 1];
                    loop {
                        // Read one request line byte-by-byte (tiny volumes).
                        loop {
                            match stream.read(&mut byte) {
                                Ok(1) if byte[0] == b'\n' => break,
                                Ok(1) => {}
                                _ => return,
                            }
                        }
                        counter.fetch_add(1, Ordering::SeqCst);
                        if stream.write_all(shed.as_bytes()).is_err() {
                            return;
                        }
                    }
                });
            }
        });
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            overall_deadline: Duration::from_secs(5),
            seed: 21,
        };
        let mut client = RetryClient::new(addr, policy).unwrap();
        let response = client.send_idempotent("QUERY FIND paper P1;").unwrap();
        // Every attempt was shed: the last shed response is surfaced so
        // the caller sees the structured body (and its retry hint).
        assert_eq!(response_kind(&response), Some("expired"));
        assert_eq!(json_u64_field(&response, "retry_after_ms"), Some(4));
        assert_eq!(
            hits.load(Ordering::SeqCst),
            3,
            "all attempts must be spent on shed responses"
        );
    }

    #[test]
    fn attempt_timeout_splits_budget_with_floor() {
        let t = RetryPolicy::attempt_timeout(Duration::from_millis(100), 4);
        assert_eq!(t, Duration::from_millis(25));
        // Exhausted budget still yields the 1 ms socket-timeout floor.
        assert_eq!(
            RetryPolicy::attempt_timeout(Duration::ZERO, 3),
            Duration::from_millis(1)
        );
        assert_eq!(
            RetryPolicy::attempt_timeout(Duration::from_secs(1), 0),
            Duration::from_secs(1)
        );
    }

    #[test]
    fn inject_id_covers_pool_verbs_only() {
        assert_eq!(inject_id("SLEEP 5", 7), "SLEEP id=7 5");
        let q = inject_id("QUERY FIND paper P1;", 7);
        assert!(q.contains("id=7"), "{q}");
        // An explicit id is the caller's: never overwritten.
        assert_eq!(inject_id("SLEEP id=3 5", 7), "SLEEP id=3 5");
        // Inline verbs and garbage pass through untouched.
        assert_eq!(inject_id("PING", 7), "PING");
        assert_eq!(inject_id("no such verb", 7), "no such verb");
    }

    #[test]
    fn replay_safety_classification() {
        // Read-only inline verbs have nothing to duplicate.
        for line in [
            "PING",
            "STATS",
            "METRICS",
            "METRICS JSON",
            "TRACE",
            "TRACE 7",
            "FAULTS",
        ] {
            assert!(replay_safe(line), "{line}");
        }
        // State-changing requests without an idempotency id must not be
        // blindly replayed.
        for line in [
            "FAULTS OFF",
            "FAULTS kill@1",
            "SHUTDOWN",
            "SLEEP 5",
            "QUERY FIND paper P1;",
        ] {
            assert!(!replay_safe(line), "{line}");
        }
        // With an id, the server's dedup cache makes the replay safe —
        // and `inject_id` always supplies one for pool verbs.
        assert!(replay_safe("SLEEP id=3 5"));
        assert!(replay_safe(&inject_id("QUERY FIND paper P1;", 9)));
        // Garbage draws a protocol error either way: replaying is harmless.
        assert!(replay_safe("no such verb"));
    }

    #[test]
    fn mid_response_drop_is_not_replayed_unless_safe() {
        use std::io::Read as _;
        use std::net::TcpListener;
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        // A hostile server: accepts, reads the request, hangs up without
        // answering — the client cannot know whether it executed.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hits = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&hits);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { break };
                counter.fetch_add(1, Ordering::SeqCst);
                let mut buf = [0u8; 1024];
                let _ = stream.read(&mut buf);
            }
        });
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            overall_deadline: Duration::from_secs(10),
            seed: 11,
        };
        // FAULTS OFF mutates server state and cannot carry an id: exactly
        // one attempt, then the transport error surfaces.
        let mut client = RetryClient::new(addr, policy.clone()).unwrap();
        assert!(client.send_idempotent("FAULTS OFF").is_err());
        assert_eq!(hits.load(Ordering::SeqCst), 1, "FAULTS OFF was replayed");
        // A QUERY picks up an injected id, so every attempt is spent (the
        // server-side dedup cache would make the replays byte-identical).
        let mut client = RetryClient::new(addr, policy).unwrap();
        assert!(client.send_idempotent("QUERY FIND paper P1;").is_err());
        assert_eq!(hits.load(Ordering::SeqCst), 4, "QUERY was not retried");
    }

    #[test]
    fn cancel_handle_unblocks_a_pending_read() {
        use std::net::TcpListener;
        // A server that accepts and then never answers.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let mut client = Client::connect(addr).unwrap();
        let handle = client.cancel_handle().unwrap();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            handle.cancel();
        });
        // Without the cancel this read would block forever.
        assert!(client.send_line("PING").is_err());
        canceller.join().unwrap();
        drop(hold);
    }

    #[test]
    fn retry_client_reports_last_error_on_dead_server() {
        let policy = RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            overall_deadline: Duration::from_millis(300),
            seed: 3,
        };
        // TEST-NET address: connects fail fast and exercise the retry loop.
        let mut client = match RetryClient::new("127.0.0.1:1", policy) {
            Ok(c) => c,
            Err(e) => panic!("resolve failed: {e}"),
        };
        let err = match client.send_idempotent("PING") {
            Err(e) => e,
            Ok(r) => panic!("dead server answered: {r}"),
        };
        // Whatever the OS error, it must be the transport's, not our
        // "budget exhausted" placeholder (a real attempt was made).
        assert_ne!(err.to_string(), "retry budget exhausted");
    }
}
