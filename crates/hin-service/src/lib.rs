//! # hin-service — a concurrent query-serving subsystem
//!
//! The paper frames outlier queries as an interactive, analyst-facing
//! workload (Section 4.2's query language, Section 6's latency study), and
//! the one-shot CLI pays full process startup and graph load per query.
//! This crate turns the engine into a **long-running, multi-threaded
//! server**: the graph (plus optional PM/SPM index and the shared
//! neighbor-vector cache) is loaded once, and many clients are served
//! concurrently over a newline-delimited text protocol on TCP — `std::net`
//! only, no async runtime.
//!
//! Architecture (DESIGN.md §9):
//!
//! * [`server::Server`] — acceptor + per-connection handler threads + a
//!   fixed worker pool fed by a bounded crossbeam channel;
//! * admission control — a full queue answers a structured `busy` response
//!   (backpressure instead of unbounded memory growth); per-request
//!   [`netout::Budget`]s derive from server defaults with per-request
//!   overrides; client disconnects trip the request's
//!   [`netout::CancelToken`];
//! * [`protocol`] — `QUERY` / `EXPLAIN` / `STATS` / `PING` / `SHUTDOWN`
//!   (plus `SLEEP` for drills) with machine-readable compact-JSON
//!   responses including degraded/partial-result markers;
//! * [`stats::ServerStats`] — per-phase latency histograms, queue depth,
//!   in-flight count, cache hit ratio, rejected/cancelled/degraded
//!   counters, served via `STATS` and returned on graceful shutdown;
//! * [`client`] — a blocking client plus the closed-loop load generator
//!   behind `hin bench-client` and the `exp_service` benchmark;
//! * [`json`] — the hand-rolled compact serde JSON serializer shared by
//!   the server and the one-shot CLI's `--format json`.
//!
//! Fault tolerance (DESIGN.md §11):
//!
//! * [`fault`] — deterministic, seeded fault injection ([`FaultPlan`],
//!   `serve --fault-plan` / the `FAULTS` verb) plus the server-side
//!   idempotency [`fault::DedupCache`];
//! * [`supervisor`] — heartbeat-based worker supervision: dead workers are
//!   respawned, hung workers replaced, so the admission queue keeps
//!   draining through panics;
//! * [`client::RetryClient`] — the self-healing client: reconnect-on-drop,
//!   seeded full-jitter exponential backoff, per-attempt deadlines carved
//!   from an overall budget, and idempotency ids the server deduplicates.
//!
//! Observability (DESIGN.md §12):
//!
//! * [`stats::ServerStats`] now fronts a `hin_telemetry::Registry` — the
//!   `METRICS` verb serves Prometheus text exposition (or a JSON snapshot
//!   with `METRICS JSON`) built from the same counters and histograms that
//!   back `STATS`;
//! * `serve --slow-query-ms` installs the `hin_telemetry` span tracer
//!   around query execution; completed slow queries land in a bounded
//!   server-side ring (`--slow-log-cap` entries) with their full phase
//!   tree, query text, and cache state, listed and fetched via the `TRACE`
//!   verb;
//! * distributed tracing (DESIGN.md §17) — a `trace=1` request option
//!   makes backends attach their span tree to `shard` responses and the
//!   coordinator stitch them under its own scatter/attempt/merge spans
//!   into one cross-process trace, served from the coordinator's own
//!   slow-query ring (`TRACE`, `TRACE <id>`, `TRACE BACKEND <i>`);
//! * worker lifecycle and fault events emit structured logfmt lines
//!   (`hin_telemetry::logfmt!`) on stderr.
//!
//! Scale-out serving (DESIGN.md §13):
//!
//! * [`coordinator::Coordinator`] — a scatter-gather front-end speaking the
//!   same protocol: each `QUERY` fans out to N backends by candidate-set
//!   sharding (`shard=i/n`), with per-shard deadline carving, bounded-retry
//!   failover, hedged requests, a heartbeat-driven backend health registry,
//!   and degraded partial results when a shard stays unrecoverable — while
//!   merged rankings stay byte-identical to a single-box run.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// Library code paths must report failures as structured responses, never
// panic; tests are free to unwrap. Intentional invariants carry local
// `#[allow]`s with a justification comment.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod coordinator;
pub mod fault;
pub mod json;
pub mod protocol;
pub mod server;
pub mod stats;
pub mod supervisor;

pub use client::{
    fetch_latest_trace, CancelHandle, Client, FetchedTrace, LoadReport, LoadSpec, RetryClient,
    RetryPolicy,
};
pub use coordinator::{BackendStatus, CoordSnapshot, Coordinator, CoordinatorConfig};
pub use fault::{DedupCache, FaultCounts, FaultKind, FaultPlan, FaultState, XorShift64};
pub use protocol::{
    trace_node_from_value, BusyBody, ExecMode, ExpiredBody, FaultCommand, FaultsBody, Request,
    RequestOptions, Response, ShardTrace, TraceBody, TraceListEntry, DEFAULT_PRIORITY,
};
pub use server::{
    bind_listener_retry, write_addr_file, OverloadConfig, Server, ServerConfig,
    SLOW_LOG_CAP_DEFAULT,
};
pub use stats::{ServerStats, StatsSnapshot, SubpathSnapshot};
pub use supervisor::{SupervisorConfig, WorkerSlot};
