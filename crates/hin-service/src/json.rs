//! A hand-rolled compact JSON serializer for [`serde::Serialize`] types.
//!
//! The workspace deliberately avoids heavyweight external dependencies;
//! `serde` (derive only) is already in the tree, so the wire format is
//! produced by this ~300-line [`serde::Serializer`] instead of `serde_json`.
//! Output is compact (no whitespace), UTF-8, one value per call — exactly
//! what the newline-delimited protocol needs.
//!
//! Representation choices (all standard serde defaults):
//!
//! * structs and maps → objects, sequences/tuples → arrays;
//! * `Option::None` and unit → `null`;
//! * unit enum variants → `"Name"`, data-carrying variants →
//!   `{"Name": …}` (externally tagged);
//! * non-finite floats → `null` (JSON has no NaN/Infinity);
//! * strings escaped per RFC 8259 (control characters as `\u00XX`).

use serde::ser::{self, Serialize};
use std::fmt;

/// Serialization failure (a custom `Serialize` impl reported an error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl ser::Error for JsonError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        JsonError(msg.to_string())
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, JsonError> {
    let mut ser = Serializer { out: String::new() };
    value.serialize(&mut ser)?;
    Ok(ser.out)
}

/// Append `s` to `out` as a JSON string literal.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Serializer {
    out: String,
}

impl Serializer {
    fn write_f64(&mut self, v: f64) {
        if v.is_finite() {
            // Rust's Display for floats is the shortest representation that
            // round-trips, which is valid JSON for finite values.
            self.out.push_str(&v.to_string());
        } else {
            self.out.push_str("null");
        }
    }
}

/// Writes `,`-separated elements inside a `[`…`]` or `{`…`}` opened by the
/// parent call.
struct Compound<'a> {
    ser: &'a mut Serializer,
    first: bool,
    close: char,
}

impl Compound<'_> {
    fn comma(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.ser.out.push(',');
        }
    }
}

impl<'a> ser::Serializer for &'a mut Serializer {
    type Ok = ();
    type Error = JsonError;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), JsonError> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<(), JsonError> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i16(self, v: i16) -> Result<(), JsonError> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i32(self, v: i32) -> Result<(), JsonError> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i64(self, v: i64) -> Result<(), JsonError> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), JsonError> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u16(self, v: u16) -> Result<(), JsonError> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u32(self, v: u32) -> Result<(), JsonError> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u64(self, v: u64) -> Result<(), JsonError> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), JsonError> {
        self.write_f64(v as f64);
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), JsonError> {
        self.write_f64(v);
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), JsonError> {
        escape_into(&mut self.out, &v.to_string());
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), JsonError> {
        escape_into(&mut self.out, v);
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), JsonError> {
        // Byte strings serialize as arrays of numbers (serde's fallback).
        let mut seq = self.serialize_seq(Some(v.len()))?;
        for b in v {
            ser::SerializeSeq::serialize_element(&mut seq, b)?;
        }
        ser::SerializeSeq::end(seq)
    }

    fn serialize_none(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), JsonError> {
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), JsonError> {
        self.serialize_unit()
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
    ) -> Result<(), JsonError> {
        self.serialize_str(variant)
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        self.out.push('{');
        escape_into(&mut self.out, variant);
        self.out.push(':');
        value.serialize(&mut *self)?;
        self.out.push('}');
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Compound<'a>, JsonError> {
        self.out.push('[');
        Ok(Compound {
            ser: self,
            first: true,
            close: ']',
        })
    }
    fn serialize_tuple(self, len: usize) -> Result<Compound<'a>, JsonError> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<Compound<'a>, JsonError> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, JsonError> {
        self.out.push('{');
        escape_into(&mut self.out, variant);
        self.out.push_str(":[");
        Ok(Compound {
            ser: self,
            first: true,
            close: ']',
        })
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<Compound<'a>, JsonError> {
        self.out.push('{');
        Ok(Compound {
            ser: self,
            first: true,
            close: '}',
        })
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Compound<'a>, JsonError> {
        self.serialize_map(None)
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, JsonError> {
        self.out.push('{');
        escape_into(&mut self.out, variant);
        self.out.push_str(":{");
        Ok(Compound {
            ser: self,
            first: true,
            close: '}',
        })
    }
}

impl ser::SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        self.comma();
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), JsonError> {
        self.ser.out.push(self.close);
        Ok(())
    }
}

impl ser::SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), JsonError> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeTupleStruct for Compound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), JsonError> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), JsonError> {
        self.ser.out.push(self.close);
        self.ser.out.push('}');
        Ok(())
    }
}

impl ser::SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), JsonError> {
        self.comma();
        // JSON object keys must be strings; serialize the key and require
        // that it came out as a string literal.
        let start = self.ser.out.len();
        key.serialize(&mut *self.ser)?;
        if !self.ser.out[start..].starts_with('"') {
            return Err(ser::Error::custom("map key must serialize to a string"));
        }
        Ok(())
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        self.ser.out.push(':');
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), JsonError> {
        self.ser.out.push(self.close);
        Ok(())
    }
}

impl ser::SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        self.comma();
        escape_into(&mut self.ser.out, key);
        self.ser.out.push(':');
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), JsonError> {
        self.ser.out.push(self.close);
        Ok(())
    }
}

impl ser::SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        ser::SerializeStruct::serialize_field(self, key, value)
    }
    fn end(self) -> Result<(), JsonError> {
        self.ser.out.push(self.close);
        self.ser.out.push('}');
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;
    use std::collections::BTreeMap;

    #[derive(Serialize)]
    struct Nested {
        name: String,
        score: f64,
        tags: Vec<u32>,
        missing: Option<i32>,
        present: Option<bool>,
    }

    #[derive(Serialize)]
    enum Kind {
        Unit,
        Newtype(u64),
        Tuple(u8, u8),
        Struct { a: i32 },
    }

    #[test]
    fn scalars_and_structs() {
        let v = Nested {
            name: "he said \"hi\"\n".into(),
            score: 2.5,
            tags: vec![1, 2, 3],
            missing: None,
            present: Some(true),
        };
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"he said \"hi\"\n","score":2.5,"tags":[1,2,3],"missing":null,"present":true}"#
        );
    }

    #[test]
    fn enum_representations() {
        assert_eq!(to_string(&Kind::Unit).unwrap(), r#""Unit""#);
        assert_eq!(to_string(&Kind::Newtype(7)).unwrap(), r#"{"Newtype":7}"#);
        assert_eq!(to_string(&Kind::Tuple(1, 2)).unwrap(), r#"{"Tuple":[1,2]}"#);
        assert_eq!(
            to_string(&Kind::Struct { a: -3 }).unwrap(),
            r#"{"Struct":{"a":-3}}"#
        );
    }

    #[test]
    fn maps_and_floats() {
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 1.0f64);
        assert_eq!(to_string(&m).unwrap(), r#"{"k":1}"#);
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert_eq!(to_string(&1.5e300f64).unwrap(), "1.5e300");
    }

    #[test]
    fn control_characters_escaped() {
        assert_eq!(to_string("\u{1}\t").unwrap(), r#""\t""#);
    }

    #[test]
    fn non_string_map_key_rejected() {
        let mut m = BTreeMap::new();
        m.insert(3u32, "x");
        assert!(to_string(&m).is_err());
    }

    /// The `FAULTS` status body round-trips through the serializer: nested
    /// counter struct, `Option<String>` spec in both states.
    #[test]
    fn faults_body_serializes() {
        use crate::fault::FaultCounts;
        use crate::protocol::FaultsBody;

        let body = FaultsBody {
            spec: Some("seed=7;panic@3;drop~50".to_string()),
            requests_seen: 9,
            injected: FaultCounts {
                panics: 1,
                ..FaultCounts::default()
            },
        };
        assert_eq!(
            to_string(&body).unwrap(),
            r#"{"spec":"seed=7;panic@3;drop~50","requests_seen":9,"injected":{"panics":1,"kills":0,"drops":0,"allocs":0,"delays":0}}"#
        );
        let cleared = FaultsBody {
            spec: None,
            requests_seen: 0,
            injected: FaultCounts::default(),
        };
        assert!(to_string(&cleared).unwrap().starts_with(r#"{"spec":null"#));
    }
}
