//! A hand-rolled compact JSON serializer for [`serde::Serialize`] types.
//!
//! The workspace deliberately avoids heavyweight external dependencies;
//! `serde` (derive only) is already in the tree, so the wire format is
//! produced by this ~300-line [`serde::Serializer`] instead of `serde_json`.
//! Output is compact (no whitespace), UTF-8, one value per call — exactly
//! what the newline-delimited protocol needs.
//!
//! Representation choices (all standard serde defaults):
//!
//! * structs and maps → objects, sequences/tuples → arrays;
//! * `Option::None` and unit → `null`;
//! * unit enum variants → `"Name"`, data-carrying variants →
//!   `{"Name": …}` (externally tagged);
//! * non-finite floats → `null` (JSON has no NaN/Infinity);
//! * strings escaped per RFC 8259 (control characters as `\u00XX`).

use serde::ser::{self, Serialize};
use std::fmt;

/// Serialization failure (a custom `Serialize` impl reported an error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl ser::Error for JsonError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        JsonError(msg.to_string())
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, JsonError> {
    let mut ser = Serializer { out: String::new() };
    value.serialize(&mut ser)?;
    Ok(ser.out)
}

/// Append `s` to `out` as a JSON string literal.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Serializer {
    out: String,
}

impl Serializer {
    fn write_f64(&mut self, v: f64) {
        if v.is_finite() {
            // Rust's Display for floats is the shortest representation that
            // round-trips, which is valid JSON for finite values.
            self.out.push_str(&v.to_string());
        } else {
            self.out.push_str("null");
        }
    }
}

/// Writes `,`-separated elements inside a `[`…`]` or `{`…`}` opened by the
/// parent call.
struct Compound<'a> {
    ser: &'a mut Serializer,
    first: bool,
    close: char,
}

impl Compound<'_> {
    fn comma(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.ser.out.push(',');
        }
    }
}

impl<'a> ser::Serializer for &'a mut Serializer {
    type Ok = ();
    type Error = JsonError;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), JsonError> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<(), JsonError> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i16(self, v: i16) -> Result<(), JsonError> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i32(self, v: i32) -> Result<(), JsonError> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i64(self, v: i64) -> Result<(), JsonError> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), JsonError> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u16(self, v: u16) -> Result<(), JsonError> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u32(self, v: u32) -> Result<(), JsonError> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u64(self, v: u64) -> Result<(), JsonError> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), JsonError> {
        self.write_f64(v as f64);
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), JsonError> {
        self.write_f64(v);
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), JsonError> {
        escape_into(&mut self.out, &v.to_string());
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), JsonError> {
        escape_into(&mut self.out, v);
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), JsonError> {
        // Byte strings serialize as arrays of numbers (serde's fallback).
        let mut seq = self.serialize_seq(Some(v.len()))?;
        for b in v {
            ser::SerializeSeq::serialize_element(&mut seq, b)?;
        }
        ser::SerializeSeq::end(seq)
    }

    fn serialize_none(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), JsonError> {
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), JsonError> {
        self.serialize_unit()
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
    ) -> Result<(), JsonError> {
        self.serialize_str(variant)
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        self.out.push('{');
        escape_into(&mut self.out, variant);
        self.out.push(':');
        value.serialize(&mut *self)?;
        self.out.push('}');
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Compound<'a>, JsonError> {
        self.out.push('[');
        Ok(Compound {
            ser: self,
            first: true,
            close: ']',
        })
    }
    fn serialize_tuple(self, len: usize) -> Result<Compound<'a>, JsonError> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<Compound<'a>, JsonError> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, JsonError> {
        self.out.push('{');
        escape_into(&mut self.out, variant);
        self.out.push_str(":[");
        Ok(Compound {
            ser: self,
            first: true,
            close: ']',
        })
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<Compound<'a>, JsonError> {
        self.out.push('{');
        Ok(Compound {
            ser: self,
            first: true,
            close: '}',
        })
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Compound<'a>, JsonError> {
        self.serialize_map(None)
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, JsonError> {
        self.out.push('{');
        escape_into(&mut self.out, variant);
        self.out.push_str(":{");
        Ok(Compound {
            ser: self,
            first: true,
            close: '}',
        })
    }
}

impl ser::SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        self.comma();
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), JsonError> {
        self.ser.out.push(self.close);
        Ok(())
    }
}

impl ser::SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), JsonError> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeTupleStruct for Compound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), JsonError> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), JsonError> {
        self.ser.out.push(self.close);
        self.ser.out.push('}');
        Ok(())
    }
}

impl ser::SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), JsonError> {
        self.comma();
        // JSON object keys must be strings; serialize the key and require
        // that it came out as a string literal.
        let start = self.ser.out.len();
        key.serialize(&mut *self.ser)?;
        if !self.ser.out[start..].starts_with('"') {
            return Err(ser::Error::custom("map key must serialize to a string"));
        }
        Ok(())
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        self.ser.out.push(':');
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), JsonError> {
        self.ser.out.push(self.close);
        Ok(())
    }
}

impl ser::SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        self.comma();
        escape_into(&mut self.ser.out, key);
        self.ser.out.push(':');
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), JsonError> {
        self.ser.out.push(self.close);
        Ok(())
    }
}

impl ser::SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        ser::SerializeStruct::serialize_field(self, key, value)
    }
    fn end(self) -> Result<(), JsonError> {
        self.ser.out.push(self.close);
        self.ser.out.push('}');
        Ok(())
    }
}

/// A parsed JSON value, as read by the coordinator from backend response
/// lines. Numbers keep their raw source text ([`Value::Num`]) instead of
/// eagerly converting: `u64` ids above 2^53 and shortest-round-trip floats
/// both survive a parse → re-serialize cycle bit-for-bit, which the
/// coordinator's byte-identical merge discipline depends on.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw source text (e.g. `"3.33"`, `"-1e-9"`).
    Num(String),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order preserved (JSON objects on this wire
    /// have no duplicate keys).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `usize`, if this is a non-negative integer in range.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `f64` (exact for shortest-round-trip output).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Nesting cap for [`parse_value`]: backend responses are a few levels
/// deep, so anything deeper is garbage, not data — and bounding recursion
/// keeps a malformed line from overflowing the stack.
const MAX_PARSE_DEPTH: usize = 128;

/// Parse one complete JSON value from `text` (surrounding whitespace
/// allowed, trailing data rejected). Never panics: malformed input is an
/// `Err` with a byte offset.
pub fn parse_value(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        text,
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn eat(&mut self, token: &str) -> Result<(), String> {
        if self.text[self.pos..].starts_with(token) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected {token:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_PARSE_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.bytes.get(self.pos) {
            Some(b'n') => self.eat("null").map(|()| Value::Null),
            Some(b't') => self.eat("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(self.err("expected digits"));
        }
        let raw = &self.text[start..self.pos];
        // Validate by parsing once; the raw text is what we keep.
        raw.parse::<f64>()
            .map_err(|_| format!("bad number {raw:?} at byte {start}"))?;
        Ok(Value::Num(raw.to_string()))
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.pos += 1; // consume '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat("\"")?;
        let mut out = String::new();
        loop {
            let rest = &self.text[self.pos..];
            let mut chars = rest.char_indices();
            let (_, c) = chars
                .next()
                .ok_or_else(|| self.err("unterminated string"))?;
            match c {
                '"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                '\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: require a \uXXXX low half.
                                self.eat("\\u")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("bad \\u escape"))?);
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                c if (c as u32) < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                c => {
                    self.pos += c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .text
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("non-hex \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;
    use std::collections::BTreeMap;

    #[derive(Serialize)]
    struct Nested {
        name: String,
        score: f64,
        tags: Vec<u32>,
        missing: Option<i32>,
        present: Option<bool>,
    }

    #[derive(Serialize)]
    enum Kind {
        Unit,
        Newtype(u64),
        Tuple(u8, u8),
        Struct { a: i32 },
    }

    #[test]
    fn scalars_and_structs() {
        let v = Nested {
            name: "he said \"hi\"\n".into(),
            score: 2.5,
            tags: vec![1, 2, 3],
            missing: None,
            present: Some(true),
        };
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"he said \"hi\"\n","score":2.5,"tags":[1,2,3],"missing":null,"present":true}"#
        );
    }

    #[test]
    fn enum_representations() {
        assert_eq!(to_string(&Kind::Unit).unwrap(), r#""Unit""#);
        assert_eq!(to_string(&Kind::Newtype(7)).unwrap(), r#"{"Newtype":7}"#);
        assert_eq!(to_string(&Kind::Tuple(1, 2)).unwrap(), r#"{"Tuple":[1,2]}"#);
        assert_eq!(
            to_string(&Kind::Struct { a: -3 }).unwrap(),
            r#"{"Struct":{"a":-3}}"#
        );
    }

    #[test]
    fn maps_and_floats() {
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 1.0f64);
        assert_eq!(to_string(&m).unwrap(), r#"{"k":1}"#);
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert_eq!(to_string(&1.5e300f64).unwrap(), "1.5e300");
    }

    #[test]
    fn control_characters_escaped() {
        assert_eq!(to_string("\u{1}\t").unwrap(), r#""\t""#);
    }

    #[test]
    fn non_string_map_key_rejected() {
        let mut m = BTreeMap::new();
        m.insert(3u32, "x");
        assert!(to_string(&m).is_err());
    }

    #[test]
    fn parses_scalars_arrays_and_objects() {
        assert_eq!(parse_value("null").unwrap(), Value::Null);
        assert_eq!(parse_value(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse_value("false").unwrap(), Value::Bool(false));
        assert_eq!(parse_value("-12").unwrap(), Value::Num("-12".into()));
        assert_eq!(
            parse_value(r#""a\"b\\c\nAé""#).unwrap(),
            Value::Str("a\"b\\c\nAé".into())
        );
        assert_eq!(
            parse_value("[1, 2,[3]]").unwrap(),
            Value::Arr(vec![
                Value::Num("1".into()),
                Value::Num("2".into()),
                Value::Arr(vec![Value::Num("3".into())]),
            ])
        );
        let v = parse_value(r#"{"a": 1, "b": {"c": "x"}, "d": null}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Value::as_str),
            Some("x")
        );
        assert!(v.get("d").is_some_and(Value::is_null));
        assert!(v.get("missing").is_none());
        assert_eq!(parse_value("{}").unwrap(), Value::Obj(Vec::new()));
        assert_eq!(parse_value("[]").unwrap(), Value::Arr(Vec::new()));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse_value("\"\\ud83d\\ude00\"").unwrap(),
            Value::Str("😀".into()),
            "escaped pair"
        );
        assert_eq!(
            parse_value(r#""😀""#).unwrap(),
            Value::Str("😀".into()),
            "raw UTF-8"
        );
        assert_eq!(
            parse_value("\"\\u00e9\"").unwrap(),
            Value::Str("é".into()),
            "BMP escape"
        );
        assert!(parse_value(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(parse_value(r#""\ud83dA""#).is_err(), "bad low half");
    }

    #[test]
    fn malformed_inputs_are_errors_not_panics() {
        for text in [
            "",
            "   ",
            "{",
            "}",
            "[1,",
            "[1 2]",
            r#"{"a" 1}"#,
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"ctl \u{1} raw\"",
            "nul",
            "tru",
            "01x",
            "-",
            "1 2",
            "1.2.3",
            "\"tail\" 1",
            &format!("{}1{}", "[".repeat(200), "]".repeat(200)),
        ] {
            assert!(parse_value(text).is_err(), "input {text:?} parsed");
        }
    }

    /// The property the coordinator's merge depends on: a float serialized
    /// by this module, parsed back, and re-serialized is bit-identical.
    #[test]
    fn float_bits_survive_parse_round_trip() {
        for &f in &[0.1 + 0.2, 3.33, -1.0e-9, f64::MAX, 5.0, 1.0 / 3.0] {
            let wire = to_string(&f).unwrap();
            let back = parse_value(&wire).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "wire {wire}");
            assert_eq!(to_string(&back).unwrap(), wire);
        }
        // u64 ids above 2^53 survive via the raw-text representation.
        let wire = to_string(&u64::MAX).unwrap();
        let v = parse_value(&wire).unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(v, Value::Num(wire));
    }

    /// The `FAULTS` status body round-trips through the serializer: nested
    /// counter struct, `Option<String>` spec in both states.
    #[test]
    fn faults_body_serializes() {
        use crate::fault::FaultCounts;
        use crate::protocol::FaultsBody;

        let body = FaultsBody {
            spec: Some("seed=7;panic@3;drop~50".to_string()),
            requests_seen: 9,
            injected: FaultCounts {
                panics: 1,
                ..FaultCounts::default()
            },
        };
        assert_eq!(
            to_string(&body).unwrap(),
            r#"{"spec":"seed=7;panic@3;drop~50","requests_seen":9,"injected":{"panics":1,"kills":0,"drops":0,"allocs":0,"delays":0}}"#
        );
        let cleared = FaultsBody {
            spec: None,
            requests_seen: 0,
            injected: FaultCounts::default(),
        };
        assert!(to_string(&cleared).unwrap().starts_with(r#"{"spec":null"#));
    }
}
