//! Worker supervision: keep the pool at full strength even when workers
//! die or wedge.
//!
//! Each worker owns a [`WorkerSlot`] — a tiny atomics block it updates as
//! it runs: a heartbeat timestamp (touched on every queue poll and job
//! boundary), a busy-since timestamp while a job executes, and a
//! clean-exit flag set as the very last statement of a normal return. The
//! supervisor thread polls the roster and:
//!
//! * **dead worker** (thread finished without the clean-exit flag — i.e.
//!   the worker loop panicked outside the per-request isolation boundary):
//!   joined and replaced with a fresh worker, so the admission queue keeps
//!   draining. Queued jobs are untouched (the MPMC channel is shared);
//!   only the job the dead worker held is lost, and its connection handler
//!   reports `worker dropped the request` to that one client.
//! * **hung worker** (optional, off by default: busy on a single job for
//!   longer than `hang_timeout`): a *replacement* is spawned so capacity
//!   recovers, and the wedged thread is parked on a zombie list. If it
//!   ever finishes it is reaped; at shutdown, zombies get a bounded grace
//!   period and are then detached rather than blocking shutdown forever.
//! * **clean exit** (the job channel disconnected — server drain): joined
//!   and *not* replaced; when the roster empties the supervisor returns.
//!
//! Respawns and replacements are counted in
//! [`ServerStats::respawns`](crate::stats::ServerStats). The supervisor
//! never blocks on a worker that has not finished, so one wedged thread
//! cannot stall supervision of the others.

use crate::stats::ServerStats;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Supervision knobs.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Roster poll interval.
    pub poll: Duration,
    /// Replace a worker busy on one job for longer than this (`None`
    /// disables hang detection — a long-running query under a generous
    /// budget is indistinguishable from a wedge, so this is opt-in).
    pub hang_timeout: Option<Duration>,
    /// At shutdown, how long to wait for zombie (hung-then-replaced)
    /// workers to finish before detaching them.
    pub zombie_grace: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            poll: Duration::from_millis(10),
            hang_timeout: None,
            zombie_grace: Duration::from_secs(2),
        }
    }
}

/// Liveness state one worker shares with the supervisor. All fields are
/// plain atomics: workers write, the supervisor reads, nothing blocks.
#[derive(Debug, Default)]
pub struct WorkerSlot {
    /// Milliseconds since the server epoch of the last sign of life
    /// (queue poll, job pickup, job completion, sleep slice).
    heartbeat_ms: AtomicU64,
    /// `0` when idle; `ms + 1` since the epoch when the current job
    /// started (the `+1` keeps `0` unambiguous).
    busy_since_ms: AtomicU64,
    /// Set as the final statement of a normal worker-loop return. A
    /// finished thread without this flag died by panic.
    exited_clean: AtomicBool,
}

fn now_ms(epoch: Instant) -> u64 {
    epoch.elapsed().as_millis() as u64
}

impl WorkerSlot {
    /// A fresh slot, shared between one worker and the supervisor.
    pub fn new() -> Arc<WorkerSlot> {
        Arc::new(WorkerSlot::default())
    }

    /// Record a sign of life.
    pub fn beat(&self, epoch: Instant) {
        self.heartbeat_ms.store(now_ms(epoch), Ordering::Relaxed);
    }

    /// Mark the start of a job (also beats).
    pub fn set_busy(&self, epoch: Instant) {
        let now = now_ms(epoch);
        self.heartbeat_ms.store(now, Ordering::Relaxed);
        self.busy_since_ms.store(now + 1, Ordering::Relaxed);
    }

    /// Mark the end of a job (also beats).
    pub fn set_idle(&self, epoch: Instant) {
        self.busy_since_ms.store(0, Ordering::Relaxed);
        self.heartbeat_ms.store(now_ms(epoch), Ordering::Relaxed);
    }

    /// Record a normal (non-panic) worker-loop return. Must be the last
    /// thing the loop does.
    pub fn mark_clean_exit(&self) {
        self.exited_clean.store(true, Ordering::Release);
    }

    /// Did the worker loop return normally?
    pub fn exited_clean(&self) -> bool {
        self.exited_clean.load(Ordering::Acquire)
    }

    /// How long the current job has been executing (`None` when idle).
    pub fn busy_for(&self, epoch: Instant) -> Option<Duration> {
        let v = self.busy_since_ms.load(Ordering::Relaxed);
        if v == 0 {
            return None;
        }
        Some(Duration::from_millis(now_ms(epoch).saturating_sub(v - 1)))
    }

    /// Milliseconds since the epoch of the last heartbeat.
    pub fn last_beat_ms(&self) -> u64 {
        self.heartbeat_ms.load(Ordering::Relaxed)
    }
}

struct Member {
    slot: Arc<WorkerSlot>,
    handle: JoinHandle<()>,
}

/// Give up on a respawn after this many consecutive spawn failures (spawn
/// failing means thread creation itself errors — resource exhaustion). The
/// cap keeps a shutdown from spinning forever if spawning never recovers.
const MAX_SPAWN_FAILURES: u32 = 1000;

/// Run the supervision loop (call on a dedicated thread). Spawns the
/// initial `workers` workers via `spawn(worker_id, slot)`, then supervises
/// until every live worker has exited cleanly (which happens exactly when
/// the job channel disconnects at server drain). Returns after reaping —
/// or, past the grace period, detaching — any zombies.
///
/// # Panics
///
/// Panics if an *initial* worker cannot be spawned: a server that cannot
/// start its pool is unrecoverable. Later respawn failures are retried.
pub fn supervise<F>(
    workers: usize,
    config: &SupervisorConfig,
    epoch: Instant,
    stats: &ServerStats,
    spawn: F,
) where
    F: Fn(usize, Arc<WorkerSlot>) -> std::io::Result<JoinHandle<()>>,
{
    let mut next_id = 0usize;
    let mut roster: Vec<Member> = (0..workers)
        .map(|_| {
            let slot = WorkerSlot::new();
            let id = next_id;
            next_id += 1;
            let handle = spawn(id, Arc::clone(&slot))
                .unwrap_or_else(|e| panic!("spawning initial worker {id}: {e}"));
            Member { slot, handle }
        })
        .collect();
    let mut zombies: Vec<Member> = Vec::new();
    let mut pending_respawns = 0usize;
    let mut spawn_failures = 0u32;

    loop {
        // Reap finished workers. Dead ones (no clean-exit flag) queue a
        // respawn; clean ones shrink the roster (server drain).
        let mut i = 0;
        while i < roster.len() {
            if roster[i].handle.is_finished() {
                let member = roster.swap_remove(i);
                let clean = member.slot.exited_clean();
                let _ = member.handle.join(); // panic payload already accounted
                if !clean {
                    pending_respawns += 1;
                    hin_telemetry::logfmt!(
                        "worker_died",
                        last_beat_ms = member.slot.last_beat_ms()
                    );
                }
            } else {
                i += 1;
            }
        }

        // Hung workers: move to the zombie list and queue a replacement.
        if let Some(timeout) = config.hang_timeout {
            let mut i = 0;
            while i < roster.len() {
                let hung = roster[i]
                    .slot
                    .busy_for(epoch)
                    .is_some_and(|busy| busy > timeout);
                if hung {
                    let busy_ms = roster[i]
                        .slot
                        .busy_for(epoch)
                        .unwrap_or(Duration::ZERO)
                        .as_millis() as u64;
                    hin_telemetry::logfmt!(
                        "worker_hung",
                        busy_ms = busy_ms,
                        timeout_ms = timeout.as_millis() as u64
                    );
                    zombies.push(roster.swap_remove(i));
                    pending_respawns += 1;
                } else {
                    i += 1;
                }
            }
        }

        // Respawn. Failures are retried next tick (bounded).
        while pending_respawns > 0 {
            let slot = WorkerSlot::new();
            let id = next_id;
            match spawn(id, Arc::clone(&slot)) {
                Ok(handle) => {
                    next_id += 1;
                    roster.push(Member { slot, handle });
                    pending_respawns -= 1;
                    spawn_failures = 0;
                    let respawns = stats.inc(&stats.respawns);
                    hin_telemetry::logfmt!("worker_respawn", id = id, respawns = respawns);
                }
                Err(e) => {
                    spawn_failures += 1;
                    hin_telemetry::logfmt!(
                        "worker_spawn_failed",
                        id = id,
                        failures = spawn_failures,
                        error = e
                    );
                    if spawn_failures >= MAX_SPAWN_FAILURES {
                        // Give up on this replacement rather than spin
                        // forever; the pool runs degraded.
                        pending_respawns -= 1;
                        spawn_failures = 0;
                    }
                    break;
                }
            }
        }

        // Reap any zombie that came back to life and finished.
        reap_finished(&mut zombies);

        if roster.is_empty() && pending_respawns == 0 {
            break;
        }
        std::thread::sleep(config.poll);
    }

    // Drain zombies with a bounded grace period, then detach the rest —
    // a truly wedged thread must not block server shutdown.
    let deadline = Instant::now() + config.zombie_grace;
    while !zombies.is_empty() && Instant::now() < deadline {
        reap_finished(&mut zombies);
        if zombies.is_empty() {
            break;
        }
        std::thread::sleep(config.poll.min(Duration::from_millis(10)));
    }
    drop(zombies); // detach whatever is left
}

fn reap_finished(zombies: &mut Vec<Member>) {
    let mut i = 0;
    while i < zombies.len() {
        if zombies[i].handle.is_finished() {
            let member = zombies.swap_remove(i);
            let _ = member.handle.join();
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel;

    /// Drive the supervisor with toy workers that pull `u64` jobs from a
    /// channel: `0` = do nothing, `1` = panic (die), `2` = wedge busy
    /// until told to stop.
    struct Harness {
        tx: channel::Sender<u64>,
        rx: channel::Receiver<u64>,
        stats: Arc<ServerStats>,
        epoch: Instant,
        processed: Arc<AtomicU64>,
        release_wedged: Arc<AtomicBool>,
    }

    impl Harness {
        fn new() -> Harness {
            let (tx, rx) = channel::bounded::<u64>(64);
            Harness {
                tx,
                rx,
                stats: Arc::new(ServerStats::new()),
                epoch: Instant::now(),
                processed: Arc::new(AtomicU64::new(0)),
                release_wedged: Arc::new(AtomicBool::new(false)),
            }
        }

        fn start(&self, workers: usize, config: SupervisorConfig) -> JoinHandle<()> {
            let rx = self.rx.clone();
            let stats = Arc::clone(&self.stats);
            let epoch = self.epoch;
            let processed = Arc::clone(&self.processed);
            let release = Arc::clone(&self.release_wedged);
            std::thread::spawn(move || {
                supervise(workers, &config, epoch, &stats, |id, slot| {
                    let rx = rx.clone();
                    let processed = Arc::clone(&processed);
                    let release = Arc::clone(&release);
                    std::thread::Builder::new()
                        .name(format!("test-worker-{id}"))
                        .spawn(move || {
                            loop {
                                slot.beat(epoch);
                                match rx.recv_timeout(Duration::from_millis(5)) {
                                    Ok(job) => {
                                        slot.set_busy(epoch);
                                        match job {
                                            1 => panic!("injected worker death"),
                                            2 => {
                                                while !release.load(Ordering::Relaxed) {
                                                    std::thread::sleep(Duration::from_millis(2));
                                                }
                                            }
                                            _ => {}
                                        }
                                        processed.fetch_add(1, Ordering::Relaxed);
                                        slot.set_idle(epoch);
                                    }
                                    Err(channel::RecvTimeoutError::Timeout) => {}
                                    Err(channel::RecvTimeoutError::Disconnected) => break,
                                }
                            }
                            slot.mark_clean_exit();
                        })
                })
            })
        }

        fn wait_processed(&self, n: u64) {
            let deadline = Instant::now() + Duration::from_secs(10);
            while self.processed.load(Ordering::Relaxed) < n {
                assert!(Instant::now() < deadline, "timed out waiting for {n} jobs");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }

    #[test]
    fn clean_drain_joins_all_workers_without_respawns() {
        let h = Harness::new();
        let sup = h.start(3, SupervisorConfig::default());
        for _ in 0..10 {
            h.tx.send(0).unwrap();
        }
        h.wait_processed(10);
        drop(h.tx); // disconnect → workers exit clean → supervisor returns
        sup.join().expect("supervisor");
        assert_eq!(h.stats.respawns.get(), 0);
    }

    #[test]
    fn dead_workers_are_respawned_and_queue_keeps_draining() {
        let h = Harness::new();
        let sup = h.start(2, SupervisorConfig::default());
        // Kill both workers twice over, interleaved with real work. Without
        // respawn the pool would die and the later jobs would strand.
        for job in [0u64, 1, 1, 0, 1, 1, 0, 0] {
            h.tx.send(job).unwrap();
        }
        h.wait_processed(4); // the four `0` jobs all complete
        let deadline = Instant::now() + Duration::from_secs(10);
        while h.stats.respawns.get() < 4 {
            assert!(Instant::now() < deadline, "respawns never reached 4");
            std::thread::sleep(Duration::from_millis(2));
        }
        drop(h.tx);
        sup.join().expect("supervisor");
        assert_eq!(h.stats.respawns.get(), 4);
    }

    #[test]
    fn hung_worker_gets_replacement_and_detaches_at_shutdown() {
        let h = Harness::new();
        let sup = h.start(
            1,
            SupervisorConfig {
                poll: Duration::from_millis(5),
                hang_timeout: Some(Duration::from_millis(40)),
                zombie_grace: Duration::from_millis(300),
            },
        );
        h.tx.send(2).unwrap(); // wedge the only worker
        h.tx.send(0).unwrap(); // must still complete via the replacement
        h.wait_processed(1);
        assert!(h.stats.respawns.get() >= 1);
        // Let the zombie recover inside the grace window, then drain.
        h.release_wedged.store(true, Ordering::Relaxed);
        h.wait_processed(2);
        drop(h.tx);
        sup.join().expect("supervisor");
    }

    #[test]
    fn slot_busy_and_heartbeat_accounting() {
        let epoch = Instant::now();
        let slot = WorkerSlot::new();
        assert_eq!(slot.busy_for(epoch), None);
        assert!(!slot.exited_clean());
        slot.set_busy(epoch);
        std::thread::sleep(Duration::from_millis(15));
        let busy = slot.busy_for(epoch).expect("busy");
        assert!(busy >= Duration::from_millis(10), "{busy:?}");
        slot.set_idle(epoch);
        assert_eq!(slot.busy_for(epoch), None);
        assert!(slot.last_beat_ms() <= epoch.elapsed().as_millis() as u64);
        slot.mark_clean_exit();
        assert!(slot.exited_clean());
    }
}
