//! The long-running, multi-threaded query server.
//!
//! One process loads the graph (plus optional PM/SPM index) once and serves
//! many clients over newline-delimited TCP:
//!
//! * an **acceptor** loop takes connections and spawns one handler thread
//!   per connection;
//! * connection handlers parse request lines and either answer inline
//!   (`PING`, `STATS`, `SHUTDOWN`) or submit a [`Job`] to a **bounded
//!   crossbeam channel** feeding a fixed **worker pool**;
//! * **admission control**: when the queue is full, the request is rejected
//!   immediately with a structured `busy` response instead of queueing
//!   unboundedly;
//! * while a job is queued/executing, the connection handler keeps polling
//!   the socket; a client that hangs up trips the job's
//!   [`netout::CancelToken`], so abandoned queries stop consuming workers
//!   at the next budget checkpoint;
//! * `SHUTDOWN` drains: the acceptor stops, queued jobs finish, workers
//!   exit, and [`Server::run`] returns the final statistics snapshot.
//!
//! ## Fault tolerance (DESIGN.md §11)
//!
//! * each request executes inside a `catch_unwind` boundary: a panic in
//!   engine/measure code becomes a structured `PANIC` error response and
//!   the worker keeps serving;
//! * a **supervisor** thread ([`crate::supervisor`]) owns the worker pool
//!   and respawns workers that die outright (or, optionally, hang), so the
//!   admission queue keeps draining no matter what happens to individual
//!   workers;
//! * a deterministic **fault-injection plan** ([`crate::fault`]) can be
//!   installed at startup (`ServerConfig::fault_plan`) or at runtime (the
//!   `FAULTS` verb) to drill exactly these paths;
//! * requests carrying an `id=N` option are **idempotent**: the serialized
//!   response is remembered in a small LRU and a retry of the same id is
//!   replayed byte-identically without re-executing.
//!
//! All execution state shared across threads is either immutable
//! (`HinGraph`, `PmIndex`), atomic (counters), or lock-protected
//! (`VectorCache`, histograms, the dedup cache) — see the compile-time
//! `Send + Sync` assertions at the bottom of this file.

use crate::fault::{DedupCache, FaultKind, FaultPlan, FaultState};
use crate::protocol::{
    BusyBody, ErrorCode, ExecMode, ExpiredBody, FaultCommand, FaultsBody, Request, RequestOptions,
    Response, ResultBody, ShardBody, TraceBody, TraceListEntry, DEFAULT_PRIORITY, MAX_LINE_BYTES,
};
use crate::stats::{CacheSnapshot, ServerStats, StatsSnapshot, SubpathSnapshot};
use crate::supervisor::{self, SupervisorConfig, WorkerSlot};
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use netout::{Budget, BudgetLimit, CancelToken, CostModel, EngineError, OutlierDetector};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Scoring batch size for best-effort execution (matches the detector's
/// internal default: small enough to notice cancellation promptly).
const BATCH: usize = 64;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing queries (≥ 1).
    pub workers: usize,
    /// Admission queue capacity; a full queue answers `busy` (≥ 1).
    pub queue_cap: usize,
    /// Intra-query worker threads for each executing query (≥ 1; default 1
    /// = serial queries). Overrides the detector's own thread setting. Total
    /// CPU parallelism is up to `workers × threads_per_query`, so keep the
    /// product near the core count: many concurrent queries want
    /// `workers = cores, threads_per_query = 1`; a few latency-sensitive
    /// clients want the opposite split. Results are bit-identical either
    /// way.
    pub threads_per_query: usize,
    /// Execution mode when a request does not say otherwise.
    pub default_mode: ExecMode,
    /// How often waiting connection handlers poll for client disconnect
    /// and shutdown. Smaller = faster cancellation, more syscalls.
    pub poll_interval: Duration,
    /// Deterministic fault-injection plan installed at startup (chaos
    /// drills; `None` in production). Swappable at runtime via `FAULTS`.
    pub fault_plan: Option<FaultPlan>,
    /// Capacity of the idempotent-request dedup cache (`id=N` responses
    /// replayed byte-identically on retry); `0` disables deduplication.
    pub dedup_cap: usize,
    /// Replace a worker stuck on a single job for longer than this (`None`
    /// disables hang detection — see
    /// [`SupervisorConfig`](crate::supervisor::SupervisorConfig)).
    pub hang_timeout: Option<Duration>,
    /// Slow-query threshold: worker-pool queries are span-traced and those
    /// whose admission-to-completion time reaches this land in the
    /// slow-query log (inspect with `TRACE`). `None` disables threshold
    /// tracing — the engine's span hooks reduce to one atomic load each,
    /// except for requests that opt in with `trace=1`, which are traced
    /// (and force-logged) regardless. `Some(ZERO)` traces and logs every
    /// query.
    pub slow_query: Option<Duration>,
    /// Slow-query ring capacity (`TRACE` serves the most recent entries;
    /// older ones are evicted oldest-first). `0` disables the log.
    pub slow_log_cap: usize,
    /// Overload-resilience knobs (DESIGN.md §16): deadline shedding is
    /// always on (it only fires for requests carrying a deadline); cost
    /// admission and the brownout controller are configured here.
    pub overload: OverloadConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(2),
            queue_cap: 64,
            threads_per_query: 1,
            default_mode: ExecMode::BestEffort,
            poll_interval: Duration::from_millis(20),
            fault_plan: None,
            dedup_cap: 256,
            hang_timeout: None,
            slow_query: None,
            slow_log_cap: SLOW_LOG_CAP_DEFAULT,
            overload: OverloadConfig::default(),
        }
    }
}

/// Overload-resilience knobs (DESIGN.md §16): cost-based admission, the
/// brownout controller, and retry-after hint shaping.
///
/// The defaults are conservative: cost admission only acts once the cost
/// model has warmed up *and* the request carries a deadline, and the
/// brownout controller is disabled until an enter threshold is set — a
/// server configured like the pre-overload releases behaves identically.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Reject a query at admission when its estimated execution time
    /// exceeds `cost_reject_factor ×` its deadline (`0.0` disables
    /// rejection; down-tiering to best-effort at `1×` still applies).
    pub cost_reject_factor: f64,
    /// Cost-model observations required before admission trusts it.
    pub cost_min_observations: u64,
    /// Brownout enter threshold: when the rolling queue-wait p95 exceeds
    /// this, the controller raises the degradation level one step. `None`
    /// disables the controller entirely.
    pub brownout_enter: Option<Duration>,
    /// Brownout exit threshold (hysteresis): the level drops only once
    /// the rolling queue-wait p95 falls below this. Keep it well under
    /// the enter threshold so the controller cannot flap at the boundary.
    pub brownout_exit: Duration,
    /// Minimum dwell between brownout level transitions (either
    /// direction), so one noisy window cannot swing the level repeatedly.
    pub brownout_dwell: Duration,
    /// Frontier-nnz cap applied to every non-shard query at brownout
    /// level ≥ 1. Tightening only: a stricter per-request cap wins.
    pub brownout_max_nnz: usize,
    /// Candidate-set cap applied at brownout level ≥ 1 (tightening only).
    pub brownout_max_candidates: usize,
    /// At brownout level 3, shed queries whose priority (the `priority=`
    /// option, default [`DEFAULT_PRIORITY`]) is below this threshold.
    pub shed_below_priority: u8,
    /// Upper bound for `retry_after_ms` hints in busy/expired responses.
    pub retry_after_cap: Duration,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            cost_reject_factor: 8.0,
            cost_min_observations: 8,
            brownout_enter: None,
            brownout_exit: Duration::from_millis(5),
            brownout_dwell: Duration::from_millis(250),
            brownout_max_nnz: 1 << 20,
            brownout_max_candidates: 1 << 16,
            shed_below_priority: DEFAULT_PRIORITY,
            retry_after_cap: Duration::from_secs(5),
        }
    }
}

/// Default slow-query log capacity (`ServerConfig::slow_log_cap`,
/// `--slow-log-cap`): the `TRACE` verb serves the most recent entries;
/// older ones are evicted.
pub const SLOW_LOG_CAP_DEFAULT: usize = 32;

/// Queue-wait samples kept for the brownout controller's rolling p95.
const OVERLOAD_WINDOW: usize = 128;
/// Minimum window fill before the brownout controller acts on p95.
const OVERLOAD_MIN_SAMPLES: usize = 16;
/// Deepest brownout level: 0 normal, 1 cap shrink, 2 force best-effort,
/// 3 additionally shed low-priority requests.
const BROWNOUT_MAX_LEVEL: u8 = 3;
/// Per-queued-job drain estimate (µs) used for retry-after hints before
/// the execution-time EWMA has its first observation.
const RETRY_AFTER_COLD_US: u64 = 5_000;

/// Shared overload-control state (DESIGN.md §16): the execution cost
/// model, an execution-time EWMA shaping retry-after hints, and the
/// brownout controller fed by a rolling window of queue waits.
struct OverloadState {
    /// EWMA cost-units-per-microsecond model fed by completed queries.
    cost_model: CostModel,
    /// Integer EWMA of execution time (µs) for retry-after hints
    /// (α = 1/8); zero = no observation yet.
    exec_ewma_us: AtomicU64,
    /// Current brownout level (0–[`BROWNOUT_MAX_LEVEL`]).
    level: AtomicU8,
    window: Mutex<OverloadWindow>,
}

struct OverloadWindow {
    /// Most recent queue waits (µs), oldest first.
    samples: VecDeque<u64>,
    /// Last brownout transition (either direction), for dwell enforcement.
    last_transition: Instant,
}

impl OverloadState {
    fn new() -> OverloadState {
        OverloadState {
            cost_model: CostModel::new(),
            exec_ewma_us: AtomicU64::new(0),
            level: AtomicU8::new(0),
            window: Mutex::new(OverloadWindow {
                samples: VecDeque::with_capacity(OVERLOAD_WINDOW),
                last_transition: Instant::now(),
            }),
        }
    }

    /// Current brownout level (relaxed: admission decisions may lag a
    /// transition by one request).
    fn level(&self) -> u8 {
        self.level.load(Ordering::Relaxed)
    }

    /// Record one queue wait into the rolling window. Workers call this
    /// for every job they pick up — shed or executed — so the controller
    /// sees exactly the waits clients experienced.
    fn record_queue_wait(&self, wait: Duration) {
        let mut window = self.window.lock();
        if window.samples.len() >= OVERLOAD_WINDOW {
            window.samples.pop_front();
        }
        window.samples.push_back(wait.as_micros() as u64);
    }

    /// Feed one fully-executed query into the cost and execution-time
    /// models and refresh the exported rate gauge.
    fn observe_exec(&self, cost: u64, exec: Duration, stats: &ServerStats) {
        let micros = exec.as_micros() as u64;
        self.cost_model.observe(cost, micros);
        if let Some(rate) = self.cost_model.rate() {
            stats.cost_rate.set(rate);
        }
        // Racy read-modify-write is deliberate: the EWMA only shapes retry
        // hints, and a lost update just slows convergence by one sample.
        let old = self.exec_ewma_us.load(Ordering::Relaxed);
        let new = if old == 0 {
            micros
        } else {
            old - old / 8 + micros / 8
        };
        self.exec_ewma_us.store(new.max(1), Ordering::Relaxed);
    }

    /// Estimated execution time for `cost` cost-units, once the model has
    /// enough observations to be trusted.
    fn estimate_micros(&self, cost: u64, min_observations: u64) -> Option<u64> {
        if self.cost_model.observations() < min_observations {
            return None;
        }
        self.cost_model.micros_for(cost)
    }

    /// How long a shed client should wait before retrying: roughly the
    /// time the current backlog needs to drain (queue depth × EWMA
    /// execution time), clamped to `[1, retry_after_cap]` ms — so a storm
    /// of rejected clients spreads its retries over the drain window
    /// instead of stampeding back at once.
    fn retry_after_ms(&self, queue_depth: usize, config: &OverloadConfig) -> u64 {
        let per_job_us = match self.exec_ewma_us.load(Ordering::Relaxed) {
            0 => RETRY_AFTER_COLD_US,
            us => us,
        };
        let drain_ms = (queue_depth as u64 + 1).saturating_mul(per_job_us) / 1_000;
        drain_ms.clamp(1, config.retry_after_cap.as_millis() as u64)
    }

    /// One brownout-controller evaluation: compute the rolling queue-wait
    /// p95 and move the level one step per dwell period, hysteretically
    /// (raise above `enter`, lower below `exit`, hold in between). Called
    /// on every admission; skips without blocking when another thread
    /// holds the window.
    fn maybe_transition(&self, config: &OverloadConfig, stats: &ServerStats) {
        let Some(enter) = config.brownout_enter else {
            return;
        };
        let Some(mut window) = self.window.try_lock() else {
            return;
        };
        if window.samples.len() < OVERLOAD_MIN_SAMPLES
            || window.last_transition.elapsed() < config.brownout_dwell
        {
            return;
        }
        let mut sorted: Vec<u64> = window.samples.iter().copied().collect();
        sorted.sort_unstable();
        let p95 = sorted[(sorted.len() * 95 / 100).min(sorted.len() - 1)];
        let level = self.level.load(Ordering::Relaxed);
        let next = if p95 >= enter.as_micros() as u64 && level < BROWNOUT_MAX_LEVEL {
            level + 1
        } else if p95 < config.brownout_exit.as_micros() as u64 && level > 0 {
            level - 1
        } else {
            return;
        };
        self.level.store(next, Ordering::Relaxed);
        window.last_transition = Instant::now();
        drop(window);
        stats.inc(&stats.brownout_transitions);
        stats.brownout_level.set(f64::from(next));
        hin_telemetry::logfmt!(
            "brownout_transition",
            from = level,
            to = next,
            queue_wait_p95_us = p95
        );
    }
}

/// A unit of work queued for the worker pool.
struct Job {
    request: Request,
    cancel: CancelToken,
    respond: Sender<Response>,
    admitted: Instant,
    /// Admission-time deadline for queue-wait shedding (the request's
    /// `timeout-ms=` or the server default budget's timeout); `None` for
    /// requests without a wall-clock budget (those never expire).
    deadline: Option<Duration>,
    /// Admission-time execution cost estimate (cost units; `0` for
    /// non-query work, which is not cost-modeled).
    cost: u64,
    /// Cost-based admission decided this request must run best-effort to
    /// have a chance of fitting its deadline.
    downtier: bool,
    /// Fault injected into this request (claimed at admission time from the
    /// plan's request sequence), if any.
    fault: Option<FaultKind>,
}

/// State shared by the acceptor, connection handlers, and workers.
struct Shared {
    detector: OutlierDetector,
    stats: ServerStats,
    config: ServerConfig,
    shutdown: AtomicBool,
    /// Fault-injection plan + request sequence + injection counters.
    faults: FaultState,
    /// Idempotent-request response cache (`id=N` → serialized line).
    dedup: Mutex<DedupCache>,
    /// Server start instant; worker heartbeats are milliseconds since this.
    epoch: Instant,
    /// Receiver clone used only for queue-depth reporting (crossbeam
    /// channels are MPMC; holding a receiver does not keep the queue alive
    /// from the sender side).
    queue_probe: Receiver<Job>,
    /// Ring of the last `config.slow_log_cap` slow-query entries, oldest
    /// first.
    slow_log: Mutex<std::collections::VecDeque<TraceBody>>,
    /// Server-assigned entry ids for slow queries without an `id=N` option.
    slow_seq: std::sync::atomic::AtomicU64,
    /// Overload-resilience state: cost model, brownout controller, and the
    /// rolling queue-wait window feeding it.
    overload: OverloadState,
}

impl Shared {
    fn queue_depth(&self) -> usize {
        self.queue_probe.len()
    }

    fn cache_snapshot(&self) -> CacheSnapshot {
        match (self.detector.cache_stats(), self.detector.shared_cache()) {
            (Some(stats), Some(cache)) => {
                let mut snap = CacheSnapshot::from(stats);
                snap.len = cache.len();
                snap.size_bytes = cache.size_bytes();
                snap
            }
            _ => CacheSnapshot::default(),
        }
    }

    fn subpath_snapshot(&self) -> Option<SubpathSnapshot> {
        self.detector.subpath_stats().map(SubpathSnapshot::from)
    }

    fn stats_response(&self) -> Response {
        Response::Stats(self.stats.snapshot(
            self.queue_depth(),
            self.config.queue_cap,
            self.cache_snapshot(),
            self.subpath_snapshot(),
        ))
    }

    fn faults_response(&self) -> Response {
        Response::Faults(FaultsBody {
            spec: self.faults.spec(),
            requests_seen: self.faults.requests_seen(),
            injected: self.faults.counts(),
        })
    }

    /// The `METRICS` text form: Prometheus exposition of every metric.
    fn metrics_text(&self) -> String {
        self.stats.render_metrics(
            self.queue_depth(),
            self.config.queue_cap,
            self.cache_snapshot(),
            self.subpath_snapshot(),
        )
    }

    /// The `METRICS JSON` form.
    fn metrics_response(&self) -> Response {
        Response::Metrics(self.stats.metrics_snapshot(
            self.queue_depth(),
            self.config.queue_cap,
            self.cache_snapshot(),
            self.subpath_snapshot(),
        ))
    }

    /// Answer `TRACE` (list the slow-query log) or `TRACE <id>` (one entry
    /// with its span tree).
    fn trace_response(&self, id: Option<u64>) -> Response {
        let log = self.slow_log.lock();
        match id {
            None => Response::Traces {
                entries: log
                    .iter()
                    .map(|e| TraceListEntry {
                        id: e.id,
                        total_us: e.total_us,
                        request: e.request.clone(),
                    })
                    .collect(),
            },
            Some(id) => match log.iter().rev().find(|e| e.id == id) {
                Some(e) => Response::Trace(e.clone()),
                None => Response::err(
                    ErrorCode::Protocol,
                    format!("no slow-query entry with id {id} (TRACE lists available entries)"),
                ),
            },
        }
    }

    /// Append one slow query to the log (evicting the oldest past
    /// capacity) and emit a structured log line.
    fn log_slow_query(
        &self,
        request: &Request,
        queue_wait: Duration,
        exec: Duration,
        total: Duration,
        response: &Response,
        trace: hin_telemetry::TraceBuf,
    ) {
        let id = request.id().unwrap_or_else(|| {
            self.slow_seq
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        });
        let degraded = matches!(response, Response::Result(b) if b.degraded.is_some());
        let total_us = total.as_micros() as u64;
        let entry = TraceBody {
            id,
            request: request.to_line(),
            queue_wait_us: queue_wait.as_micros() as u64,
            exec_us: exec.as_micros() as u64,
            total_us,
            degraded,
            cache: self.cache_snapshot(),
            subpath: self.subpath_snapshot(),
            spans_dropped: trace.dropped(),
            spans: trace.tree(),
        };
        hin_telemetry::logfmt!(
            "slow_query",
            id = id,
            total_us = total_us,
            queue_wait_us = entry.queue_wait_us,
            exec_us = entry.exec_us,
            degraded = degraded,
            spans = entry.spans.len()
        );
        let cap = self.config.slow_log_cap;
        if cap == 0 {
            return;
        }
        let mut log = self.slow_log.lock();
        while log.len() >= cap {
            log.pop_front();
        }
        log.push_back(entry);
    }
}

/// A bound, not-yet-running query server. Construct with [`Server::bind`],
/// then call [`Server::run`] (blocking) — typically from a dedicated
/// thread when embedding (tests, benches).
pub struct Server {
    shared: Arc<Shared>,
    listener: TcpListener,
    job_tx: Sender<Job>,
    job_rx: Receiver<Job>,
    addr: SocketAddr,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and prepare
    /// the worker pool around `detector` (whose graph, index, cache, budget,
    /// and measure configuration the server serves).
    pub fn bind(
        detector: OutlierDetector,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Server::from_listener(detector, listener, config)
    }

    /// Like [`Server::bind`], but retry `AddrInUse` up to `attempts` times
    /// with doubling backoff (starting at `initial_backoff`, capped at 2 s).
    /// A restarting server often races its predecessor's socket still in
    /// `TIME_WAIT`; retrying with backoff rides that out. Other bind errors
    /// (permission, bad address) fail immediately.
    pub fn bind_retry(
        detector: OutlierDetector,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        attempts: usize,
        initial_backoff: Duration,
    ) -> std::io::Result<Server> {
        let listener = bind_listener_retry(addr, attempts, initial_backoff)?;
        Server::from_listener(detector, listener, config)
    }

    /// Wrap an already-bound listener (useful when the caller wants to
    /// manage socket options or binding strategy itself).
    pub fn from_listener(
        detector: OutlierDetector,
        listener: TcpListener,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let addr = listener.local_addr()?;
        let config = ServerConfig {
            workers: config.workers.max(1),
            queue_cap: config.queue_cap.max(1),
            threads_per_query: config.threads_per_query.max(1),
            ..config
        };
        let (job_tx, job_rx) = channel::bounded::<Job>(config.queue_cap);
        let faults = FaultState::new(config.fault_plan.clone());
        let dedup = Mutex::new(DedupCache::new(config.dedup_cap));
        let shared = Arc::new(Shared {
            detector,
            stats: ServerStats::new(),
            config,
            shutdown: AtomicBool::new(false),
            faults,
            dedup,
            epoch: Instant::now(),
            queue_probe: job_rx.clone(),
            slow_log: Mutex::new(std::collections::VecDeque::new()),
            slow_seq: std::sync::atomic::AtomicU64::new(1),
            overload: OverloadState::new(),
        });
        Ok(Server {
            shared,
            listener,
            job_tx,
            job_rx,
            addr,
        })
    }

    /// The bound address (resolves the port when bound to `:0`).
    /// The live statistics block — lets the embedding process set startup
    /// gauges (e.g. `hin_snapshot_load_us`) before calling [`Server::run`].
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serve until a client sends `SHUTDOWN`. Returns the final statistics
    /// snapshot after draining queued work and joining every worker.
    pub fn run(self) -> StatsSnapshot {
        let Server {
            shared,
            listener,
            job_tx,
            job_rx,
            addr,
        } = self;
        hin_telemetry::logfmt!(
            "server_start",
            addr = addr,
            workers = shared.config.workers,
            queue_cap = shared.config.queue_cap,
            slow_query_ms = shared
                .config
                .slow_query
                .map(|d| d.as_millis() as i64)
                .unwrap_or(-1)
        );

        // The supervisor thread owns the worker pool: it spawns the initial
        // workers, respawns any that die (worker-kill faults, engine bugs
        // escaping request isolation), replaces hung ones, and joins them
        // all once the job channel disconnects at drain.
        let supervisor = {
            let shared = Arc::clone(&shared);
            let rx = job_rx.clone();
            let sup_config = SupervisorConfig {
                poll: shared.config.poll_interval.min(Duration::from_millis(10)),
                hang_timeout: shared.config.hang_timeout,
                ..SupervisorConfig::default()
            };
            std::thread::Builder::new()
                .name("hin-supervisor".to_string())
                .spawn(move || {
                    supervisor::supervise(
                        shared.config.workers,
                        &sup_config,
                        shared.epoch,
                        &shared.stats,
                        |id, slot| {
                            let shared = Arc::clone(&shared);
                            let rx = rx.clone();
                            std::thread::Builder::new()
                                .name(format!("hin-worker-{id}"))
                                .spawn(move || worker_loop(&shared, &rx, &slot))
                        },
                    );
                })
                .unwrap_or_else(|e| {
                    // Thread spawn failing at startup is unrecoverable for
                    // a server; surface it loudly.
                    panic!("spawning supervisor: {e}")
                })
        };
        drop(job_rx);

        listener
            .set_nonblocking(true)
            .unwrap_or_else(|e| panic!("set_nonblocking on listener: {e}"));
        let mut handlers = Vec::new();
        while !shared.shutdown.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    shared.stats.inc(&shared.stats.connections);
                    let shared = Arc::clone(&shared);
                    let tx = job_tx.clone();
                    if let Ok(h) = std::thread::Builder::new()
                        .name("hin-conn".to_string())
                        .spawn(move || handle_connection(&shared, stream, &tx))
                    {
                        handlers.push(h);
                    }
                    // Occasionally reap finished handler threads so a
                    // long-lived server does not accumulate join handles.
                    if handlers.len() >= 128 {
                        handlers.retain(|h| !h.is_finished());
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }

        // Drain: release our sender; the job channel disconnects once every
        // connection handler (each holding a clone) has finished its
        // in-flight work, workers then exit cleanly, and the supervisor —
        // seeing clean exits, not deaths — joins them and returns.
        drop(job_tx);
        for h in handlers {
            let _ = h.join();
        }
        let _ = supervisor.join();
        let snapshot = shared.stats.snapshot(
            shared.queue_depth(),
            shared.config.queue_cap,
            shared.cache_snapshot(),
            shared.subpath_snapshot(),
        );
        hin_telemetry::logfmt!(
            "server_stop",
            addr = addr,
            uptime_ms = snapshot.uptime_ms,
            requests = snapshot.requests,
            completed = snapshot.completed,
            errors = snapshot.errors
        );
        snapshot
    }
}

/// Bind `addr`, retrying `AddrInUse` up to `attempts` times with doubling
/// backoff (starting at `initial_backoff`, capped at 2 s). A restarting
/// process often races its predecessor's socket still in `TIME_WAIT`;
/// retrying with backoff rides that out. Other bind errors (permission,
/// bad address) fail immediately. Shared by [`Server::bind_retry`] and the
/// coordinator's front-end listener.
pub fn bind_listener_retry(
    addr: impl ToSocketAddrs,
    attempts: usize,
    initial_backoff: Duration,
) -> std::io::Result<TcpListener> {
    let attempts = attempts.max(1);
    let mut backoff = initial_backoff.max(Duration::from_millis(1));
    let mut attempt = 0;
    loop {
        match TcpListener::bind(&addr) {
            Ok(listener) => return Ok(listener),
            Err(e) if e.kind() == ErrorKind::AddrInUse && attempt + 1 < attempts => {
                attempt += 1;
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_secs(2));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Atomically publish a bound address for scripts and tests binding port 0:
/// write `addr` to a temp file next to `path`, then rename it into place,
/// so a polling reader never observes a half-written file. Shared by the
/// `serve` and `coordinate` CLI verbs.
pub fn write_addr_file(path: &str, addr: SocketAddr) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp.{}", std::process::id());
    std::fs::write(&tmp, addr.to_string())?;
    std::fs::rename(&tmp, path)
}

/// The worker loop: execute jobs until the channel closes.
///
/// Liveness protocol with the supervisor: the loop heartbeats its
/// [`WorkerSlot`] on every queue poll, marks itself busy for the span of
/// each job, and sets the clean-exit flag as its very last act — so a
/// finished thread *without* that flag is a worker that died by panic and
/// must be respawned.
fn worker_loop(shared: &Shared, rx: &Receiver<Job>, slot: &WorkerSlot) {
    let epoch = shared.epoch;
    loop {
        slot.beat(epoch);
        let job = match rx.recv_timeout(shared.config.poll_interval) {
            Ok(job) => job,
            Err(channel::RecvTimeoutError::Timeout) => continue,
            Err(channel::RecvTimeoutError::Disconnected) => break,
        };
        slot.set_busy(epoch);
        let queue_wait = job.admitted.elapsed();
        shared.overload.record_queue_wait(queue_wait);
        // Deadline-aware shedding: a request whose deadline already passed
        // while it sat in the queue is answered with a structured `expired`
        // response and *never executed* — the client gets a retry-safe
        // answer immediately instead of a guaranteed budget failure after
        // burning a worker, and the freed capacity drains the backlog.
        if let Some(deadline) = job.deadline {
            if queue_wait >= deadline {
                shared.stats.inc(&shared.stats.expired);
                let body = ExpiredBody {
                    waited_ms: queue_wait.as_millis() as u64,
                    deadline_ms: deadline.as_millis() as u64,
                    retry_after_ms: shared
                        .overload
                        .retry_after_ms(shared.queue_depth(), &shared.config.overload),
                };
                hin_telemetry::logfmt!(
                    "request_expired",
                    waited_ms = body.waited_ms,
                    deadline_ms = body.deadline_ms,
                    retry_after_ms = body.retry_after_ms
                );
                // Not dedup-cached even with an id: the request never
                // executed, so a retry of the same id must be allowed to.
                let _ = job.respond.send(Response::Expired(body));
                slot.set_idle(epoch);
                continue;
            }
        }
        shared.stats.in_flight.inc();
        let exec_started = Instant::now();

        // Worker-kill fault: die *outside* the per-request isolation
        // boundary, exercising the supervisor's respawn path end to end.
        // The job is dropped first so its response channel disconnects and
        // the connection handler reports "worker dropped the request" to
        // that one client instead of waiting forever.
        if job.fault == Some(FaultKind::KillWorker) {
            shared.stats.in_flight.dec();
            drop(job);
            panic!("fault injection: worker killed");
        }
        // Delay fault: stall before executing, cancellation-aware so a
        // disconnected client still releases the worker promptly.
        if let Some(FaultKind::Delay(ms)) = job.fault {
            let _ = cancellable_sleep(
                Duration::from_millis(ms),
                &job.cancel,
                shared.config.poll_interval,
            );
        }

        // Span tracing: install a per-job trace buffer when the slow-query
        // log is enabled, so a query that turns out slow can be explained
        // after the fact. The engine picks the buffer up through its
        // thread-local hooks (shards report through fork/absorb). A
        // `trace=1` option opts one request in regardless of the server's
        // threshold — that is how the coordinator asks backends for the
        // span trees it stitches into cross-process traces.
        let requested_trace = match &job.request {
            Request::Query { options, .. } | Request::Explain { options, .. } => options.trace,
            _ => false,
        };
        let tracing = (shared.config.slow_query.is_some() || requested_trace)
            && matches!(job.request, Request::Query { .. } | Request::Explain { .. });
        if tracing {
            hin_telemetry::trace::install();
        }

        // Per-request panic isolation: a panic in measure/engine code (or
        // an injected one) must not kill the worker. It becomes a
        // structured `PANIC` error response and the worker keeps serving.
        // Unwind safety: request execution only touches immutable shared
        // state (graph, index), lock-protected caches whose guards restore
        // invariants on unwind, and per-request values dropped here.
        let mut response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_request(shared, &job, queue_wait)
        }))
        .unwrap_or_else(|payload| {
            shared.stats.inc(&shared.stats.panics);
            shared.stats.inc(&shared.stats.errors);
            let e = EngineError::from_panic(payload);
            hin_telemetry::logfmt!("request_panic_isolated", error = e);
            Response::from_engine_error(&e)
        });
        // Uninstall unconditionally (also after a panic, so a poisoned
        // buffer never leaks into the next job on this worker).
        let mut trace = if tracing {
            hin_telemetry::trace::take()
        } else {
            None
        };
        if let Some(buf) = &trace {
            shared.stats.trace_dropped.add(buf.dropped());
        }
        let exec = exec_started.elapsed();
        // Feed the cost model: full (non-degraded) executions give a clean
        // cost-per-microsecond sample; degraded runs were truncated by the
        // budget and would bias the rate upward.
        if job.cost > 0 {
            if let Response::Result(body) = &response {
                if body.degraded.is_none() {
                    shared.overload.observe_exec(job.cost, exec, &shared.stats);
                }
            }
        }

        // Trace propagation (DESIGN.md §17): a traced shard sub-request
        // carries its span tree home on the `shard` response itself, so
        // the coordinator can stitch it into the cross-process trace. The
        // attachment happens *before* the dedup insert below — a hedged
        // retry replayed from the cache must be byte-identical to the
        // original, trace payload included. Client-visible `result`
        // responses are never touched: their trace lands in the slow-query
        // ring instead (fetch it with `TRACE <id>`).
        if requested_trace {
            if let (Response::Shard(body), Some(buf)) = (&mut response, &trace) {
                body.trace = Some(crate::protocol::ShardTrace {
                    queue_wait_us: queue_wait.as_micros() as u64,
                    spans_dropped: buf.dropped(),
                    spans: buf.tree(),
                });
                // Consumed by the response; nothing left to ring-log.
                trace = None;
            }
        }

        // Idempotency: remember the serialized response before answering,
        // so a client retry of the same id replays it byte-identically —
        // even when the original response line is lost to a dropped
        // connection right after this.
        if let Some(id) = job.request.id() {
            shared.dedup.lock().insert(id, response.to_json_line());
        }
        let total = job.admitted.elapsed();
        shared.stats.record_latencies(queue_wait, exec, total);
        if let Some(buf) = trace {
            // `trace=1` force-logs; otherwise the threshold decides.
            let log = requested_trace
                || shared
                    .config
                    .slow_query
                    .is_some_and(|threshold| total >= threshold);
            if log {
                shared.log_slow_query(&job.request, queue_wait, exec, total, &response, buf);
            }
        }
        shared.stats.in_flight.dec();
        // The connection handler may have hung up; that is fine.
        let _ = job.respond.send(response);
        slot.set_idle(epoch);
    }
    slot.mark_clean_exit();
}

/// Sleep for `total`, polling `cancel` in small slices. Returns `false` if
/// the sleep was cut short by cancellation. Shared by the `SLEEP` verb and
/// the delay fault so both honor client disconnect the same way.
fn cancellable_sleep(total: Duration, cancel: &CancelToken, poll_interval: Duration) -> bool {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline {
        if cancel.is_cancelled() {
            return false;
        }
        std::thread::sleep(Duration::from_millis(2).min(poll_interval));
    }
    true
}

/// Execute one worker-pool request, updating outcome counters.
fn execute_request(shared: &Shared, job: &Job, queue_wait: Duration) -> Response {
    let (cancel, fault) = (&job.cancel, job.fault);
    // Request-panic fault: detonate inside the isolation boundary; the
    // caller's catch_unwind turns this into a structured PANIC response.
    if fault == Some(FaultKind::PanicRequest) {
        panic!("fault injection: request panic");
    }
    match &job.request {
        Request::Sleep { ms, .. } => {
            let started = Instant::now();
            let completed = cancellable_sleep(
                Duration::from_millis(*ms),
                cancel,
                shared.config.poll_interval,
            );
            if completed {
                shared.stats.inc(&shared.stats.completed);
            } else {
                shared.stats.inc(&shared.stats.cancelled);
            }
            Response::Slept {
                ms: started.elapsed().as_millis() as u64,
                cancelled: !completed,
            }
        }
        Request::Query { options, text } => {
            let exec_started = Instant::now();
            let budget = request_budget(shared, options, cancel, fault, queue_wait);
            // Shard sub-request (`shard=i/n`, sent by the coordinator):
            // score one contiguous candidate slice strictly and answer with
            // the raw rows — the coordinator's concatenate-then-top_k merge
            // reproduces the single-box ranking bit for bit, so the `mode`
            // option is ignored here (degradation is the coordinator's job).
            if let Some((index, count)) = options.shard {
                return match run_shard(shared, text, budget, index, count) {
                    Ok(scores) => {
                        shared.stats.record_breakdown(&scores.stats);
                        shared.stats.inc(&shared.stats.completed);
                        Response::Shard(ShardBody::from_shard_scores(
                            &scores,
                            index,
                            count,
                            exec_started.elapsed(),
                        ))
                    }
                    Err(e) => {
                        if matches!(
                            e,
                            EngineError::BudgetExceeded {
                                limit: BudgetLimit::Cancelled,
                                ..
                            }
                        ) {
                            shared.stats.inc(&shared.stats.cancelled);
                        }
                        shared.stats.inc(&shared.stats.errors);
                        Response::from_engine_error(&e)
                    }
                };
            }
            let outcome = run_query(shared, options, text, budget, job.downtier);
            match outcome {
                Ok(result) => {
                    shared.stats.record_breakdown(&result.stats);
                    if let Some(d) = &result.degraded {
                        shared.stats.inc(&shared.stats.degraded);
                        if d.limit == BudgetLimit::Cancelled {
                            shared.stats.inc(&shared.stats.cancelled);
                        }
                    }
                    shared.stats.inc(&shared.stats.completed);
                    Response::Result(ResultBody::from_query_result(
                        &result,
                        exec_started.elapsed(),
                    ))
                }
                Err(e) => {
                    if matches!(
                        e,
                        EngineError::BudgetExceeded {
                            limit: BudgetLimit::Cancelled,
                            ..
                        }
                    ) {
                        shared.stats.inc(&shared.stats.cancelled);
                    }
                    shared.stats.inc(&shared.stats.errors);
                    Response::from_engine_error(&e)
                }
            }
        }
        Request::Explain { options: _, text } => {
            match hin_query::validate::parse_and_bind(text, shared.detector.graph().schema()) {
                Ok(bound) => {
                    let plan = shared.detector.engine().explain(&bound).to_string();
                    shared.stats.inc(&shared.stats.completed);
                    Response::Explain { plan }
                }
                Err(e) => {
                    shared.stats.inc(&shared.stats.errors);
                    Response::err(ErrorCode::Query, e.to_string())
                }
            }
        }
        // Inline requests never reach the pool.
        Request::Ping
        | Request::Stats
        | Request::Metrics { .. }
        | Request::Trace { .. }
        | Request::Shutdown
        | Request::Faults(_) => {
            Response::err(ErrorCode::Internal, "inline request reached worker pool")
        }
    }
}

/// Assemble the per-request budget: server defaults + request overrides,
/// the cooperative cancellation token, the queue wait already spent carved
/// out of the deadline (so `timeout-ms=` bounds admission-to-answer, not
/// execution-to-answer), brownout caps at level ≥ 1, and the injected
/// allocation-cap fault.
fn request_budget(
    shared: &Shared,
    options: &RequestOptions,
    cancel: &CancelToken,
    fault: Option<FaultKind>,
    queue_wait: Duration,
) -> Budget {
    let mut budget = options
        .budget_over(shared.detector.current_budget())
        .with_cancel_token(cancel.clone())
        .carve(queue_wait);
    // Brownout level ≥ 1 tightens the work caps of top-level queries (a
    // stricter per-request cap wins). Shard sub-requests are exempt: their
    // caps were chosen by the coordinator and byte-identical merge depends
    // on them.
    if options.shard.is_none() && shared.overload.level() >= 1 {
        let o = &shared.config.overload;
        let nnz = budget
            .max_nnz
            .map_or(o.brownout_max_nnz, |n| n.min(o.brownout_max_nnz));
        let candidates = budget
            .max_candidates
            .map_or(o.brownout_max_candidates, |n| {
                n.min(o.brownout_max_candidates)
            });
        budget = budget.with_max_nnz(nnz).with_max_candidates(candidates);
    }
    // Allocation-cap fault: zero the frontier-nnz budget so the request
    // fails through the engine's *real* budget-enforcement path — the
    // failure mode is genuine, only its trigger is injected.
    if fault == Some(FaultKind::AllocCap) {
        budget = budget.with_max_nnz(0);
    }
    budget
}

/// Parse, bind, and execute one query with the per-request budget.
fn run_query(
    shared: &Shared,
    options: &RequestOptions,
    text: &str,
    budget: Budget,
    downtier: bool,
) -> Result<netout::QueryResult, EngineError> {
    let bound = hin_query::validate::parse_and_bind(text, shared.detector.graph().schema())?;
    let engine = shared
        .detector
        .engine()
        .budget(budget)
        .threads(shared.config.threads_per_query);
    let requested = options.mode.unwrap_or(shared.config.default_mode);
    // Overload down-tiering: cost admission (`downtier`) or brownout level
    // ≥ 2 forces best-effort so an oversized request yields a partial
    // ranking within its deadline instead of a strict failure.
    let effective = if requested == ExecMode::Strict && (downtier || shared.overload.level() >= 2) {
        shared.stats.inc(&shared.stats.downtiered);
        hin_telemetry::logfmt!(
            "request_downtiered",
            cost_admission = downtier,
            brownout_level = shared.overload.level()
        );
        ExecMode::BestEffort
    } else {
        requested
    };
    match effective {
        ExecMode::Strict => engine.execute(&bound),
        ExecMode::BestEffort => engine.execute_best_effort(&bound, BATCH),
    }
}

/// Score one candidate shard (`shard=i/n`) with the per-request budget;
/// strict semantics, no top-k — see [`netout::QueryEngine::execute_shard`].
fn run_shard(
    shared: &Shared,
    text: &str,
    budget: Budget,
    index: usize,
    count: usize,
) -> Result<netout::ShardScores, EngineError> {
    let bound = hin_query::validate::parse_and_bind(text, shared.detector.graph().schema())?;
    shared
        .detector
        .engine()
        .budget(budget)
        .threads(shared.config.threads_per_query)
        .execute_shard(&bound, index, count)
}

/// Buffered line framing over a [`TcpStream`] with timeout-based polling,
/// a line-length cap, and liveness probing.
pub(crate) struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
    /// Set while skipping the remainder of an over-long line.
    discarding: bool,
    eof: bool,
}

pub(crate) enum LineEvent {
    /// A complete request line (without the newline).
    Line(String),
    /// A complete line that was not valid UTF-8 or exceeded the cap —
    /// report an error to the client, framing stays synchronized.
    Malformed(&'static str),
    /// Client closed the connection (or a hard socket error).
    Eof,
    /// The server is shutting down.
    Shutdown,
}

impl LineReader {
    pub(crate) fn new(stream: TcpStream) -> LineReader {
        LineReader {
            stream,
            buf: Vec::new(),
            discarding: false,
            eof: false,
        }
    }

    /// Pull the next buffered line, if a full one is present.
    fn take_buffered_line(&mut self) -> Option<LineEvent> {
        loop {
            let nl = self.buf.iter().position(|&b| b == b'\n');
            match nl {
                Some(i) => {
                    let line: Vec<u8> = self.buf.drain(..=i).collect();
                    if self.discarding {
                        self.discarding = false;
                        return Some(LineEvent::Malformed("request line too long"));
                    }
                    let line = &line[..line.len() - 1];
                    let line = line.strip_suffix(b"\r").unwrap_or(line);
                    if line.is_empty() {
                        continue; // skip blank lines silently
                    }
                    return match std::str::from_utf8(line) {
                        Ok(s) => Some(LineEvent::Line(s.to_string())),
                        Err(_) => Some(LineEvent::Malformed("request line is not valid UTF-8")),
                    };
                }
                None => {
                    if self.buf.len() > MAX_LINE_BYTES {
                        // Cap exceeded without a newline: drop what we have
                        // and discard until the line ends.
                        self.buf.clear();
                        self.discarding = true;
                    }
                    return None;
                }
            }
        }
    }

    /// Read one byte chunk with `timeout`. Returns `false` on EOF/hard
    /// error, `true` otherwise (including "nothing arrived yet").
    fn fill(&mut self, timeout: Duration) -> bool {
        if self.eof {
            return false;
        }
        let _ = self
            .stream
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))));
        let mut chunk = [0u8; 8192];
        match self.stream.read(&mut chunk) {
            Ok(0) => {
                self.eof = true;
                false
            }
            Ok(n) => {
                if self.discarding {
                    // While discarding we only care about the newline.
                    if let Some(i) = chunk[..n].iter().position(|&b| b == b'\n') {
                        self.buf.extend_from_slice(&chunk[i..n]);
                    }
                } else {
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                true
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => true,
            Err(e) if e.kind() == ErrorKind::Interrupted => true,
            Err(_) => {
                self.eof = true;
                false
            }
        }
    }

    /// Block until the next line, EOF, or shutdown, polling at
    /// `poll_interval`.
    pub(crate) fn next_line(
        &mut self,
        shutdown: &AtomicBool,
        poll_interval: Duration,
    ) -> LineEvent {
        loop {
            if let Some(event) = self.take_buffered_line() {
                return event;
            }
            if shutdown.load(Ordering::Relaxed) {
                return LineEvent::Shutdown;
            }
            if !self.fill(poll_interval) {
                return LineEvent::Eof;
            }
        }
    }

    /// Probe whether the client is still connected, consuming any pipelined
    /// bytes into the buffer. Used while a job is queued or executing.
    pub(crate) fn still_connected(&mut self) -> bool {
        if self.eof {
            return false;
        }
        self.fill(Duration::from_millis(1))
    }

    /// Write one pre-serialized response line (newline appended).
    pub(crate) fn write_line(&mut self, line: &str) -> bool {
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.stream.write_all(framed.as_bytes()).is_ok() && self.stream.flush().is_ok()
    }

    pub(crate) fn write_response(&mut self, response: &Response) -> bool {
        self.write_line(&response.to_json_line())
    }

    /// Write a multi-line text block (each line already `\n`-terminated)
    /// followed by one blank line marking its end. Used by the `METRICS`
    /// text form — the single non-JSON response in the protocol.
    pub(crate) fn write_text_block(&mut self, text: &str) -> bool {
        let mut framed = String::with_capacity(text.len() + 2);
        framed.push_str(text);
        if !framed.ends_with('\n') {
            framed.push('\n');
        }
        framed.push('\n');
        self.stream.write_all(framed.as_bytes()).is_ok() && self.stream.flush().is_ok()
    }
}

/// Per-connection request loop.
fn handle_connection(shared: &Shared, stream: TcpStream, job_tx: &Sender<Job>) {
    let _ = stream.set_nodelay(true);
    let mut reader = LineReader::new(stream);
    loop {
        let line = match reader.next_line(&shared.shutdown, shared.config.poll_interval) {
            LineEvent::Line(line) => line,
            LineEvent::Malformed(why) => {
                shared.stats.inc(&shared.stats.requests);
                shared.stats.inc(&shared.stats.errors);
                if !reader.write_response(&Response::err(ErrorCode::Protocol, why)) {
                    return;
                }
                continue;
            }
            LineEvent::Eof | LineEvent::Shutdown => return,
        };
        shared.stats.inc(&shared.stats.requests);
        let request = match Request::parse(&line) {
            Ok(r) => r,
            Err(e) => {
                shared.stats.inc(&shared.stats.errors);
                if !reader.write_response(&Response::err(ErrorCode::Protocol, e.to_string())) {
                    return;
                }
                continue;
            }
        };
        // METRICS text form: raw Prometheus exposition terminated by a
        // blank line — the one response that is not a single JSON line.
        if request == (Request::Metrics { json: false }) {
            if !reader.write_text_block(&shared.metrics_text()) {
                return;
            }
            continue;
        }
        let response = match &request {
            Request::Ping => Some(Response::Pong {
                uptime_ms: shared.stats.uptime().as_millis() as u64,
            }),
            Request::Stats => Some(shared.stats_response()),
            Request::Metrics { .. } => Some(shared.metrics_response()),
            Request::Trace { id } => Some(shared.trace_response(*id)),
            Request::Shutdown => {
                let draining = shared.queue_depth();
                shared.shutdown.store(true, Ordering::Relaxed);
                reader.write_response(&Response::Bye { draining });
                return;
            }
            Request::Faults(cmd) => {
                match cmd {
                    FaultCommand::Status => {}
                    FaultCommand::Clear => shared.faults.install(None),
                    FaultCommand::Install(plan) => shared.faults.install(Some(plan.clone())),
                }
                Some(shared.faults_response())
            }
            _ => None,
        };
        if let Some(response) = response {
            if !reader.write_response(&response) {
                return;
            }
            continue;
        }
        // Idempotency replay: a retry of an already-executed request id is
        // answered byte-identically from the dedup cache — no worker, no
        // fault-sequence index (so planned fault indices stay stable under
        // client retries).
        if let Some(id) = request.id() {
            let cached: Option<String> = shared.dedup.lock().get(id);
            if let Some(line) = cached {
                shared.stats.inc(&shared.stats.deduped);
                if !reader.write_line(&line) {
                    return;
                }
                continue;
            }
        }
        // Worker-pool requests: admission control, then wait for the
        // response while watching the socket for client disconnect.
        if !dispatch_job(shared, &mut reader, job_tx, request) {
            return;
        }
    }
}

/// Submit `request` to the pool and shepherd it to completion. Returns
/// `false` when the connection is done (client hung up or write failed).
fn dispatch_job(
    shared: &Shared,
    reader: &mut LineReader,
    job_tx: &Sender<Job>,
    request: Request,
) -> bool {
    debug_assert!(request.needs_worker());
    let overload = &shared.overload;
    let oconfig = &shared.config.overload;
    overload.maybe_transition(oconfig, &shared.stats);
    // Admission-time overload decisions apply to top-level queries only:
    // shard sub-requests already had their deadline carved (and their
    // priority weighed) by the coordinator, and SLEEP/EXPLAIN are cheap.
    let mut deadline = None;
    let mut cost = 0u64;
    let mut downtier = false;
    if let Request::Query { options, text } = &request {
        deadline = options
            .timeout_ms
            .map(Duration::from_millis)
            .or(shared.detector.current_budget().timeout);
        if options.shard.is_none() {
            // Priority shedding: at the deepest brownout level, requests
            // below the shed threshold get a structured busy + retry hint
            // instead of queue space, so the capacity that remains serves
            // the work the client fleet values most.
            let priority = options.priority.unwrap_or(DEFAULT_PRIORITY);
            if overload.level() >= BROWNOUT_MAX_LEVEL && priority < oconfig.shed_below_priority {
                shared.stats.inc(&shared.stats.priority_shed);
                let body = BusyBody {
                    queue_depth: shared.queue_depth(),
                    queue_cap: shared.config.queue_cap,
                    retry_after_ms: overload.retry_after_ms(shared.queue_depth(), oconfig),
                };
                hin_telemetry::logfmt!(
                    "priority_shed",
                    priority = priority,
                    retry_after_ms = body.retry_after_ms
                );
                return reader.write_response(&Response::Busy(body));
            }
            cost = netout::cost_estimate(
                text,
                shared.detector.index(),
                shared.detector.graph().edge_count(),
            );
            // Cost-based admission: once the model is warm and the request
            // carries a deadline, estimate whether it can fit. Hopeless
            // requests (estimate ≥ reject-factor × deadline) are refused
            // outright; merely oversized ones are down-tiered to
            // best-effort so they answer with a partial ranking in time.
            if let (Some(deadline), Some(est_us)) = (
                deadline,
                overload.estimate_micros(cost, oconfig.cost_min_observations),
            ) {
                let deadline_us = deadline.as_micros() as u64;
                let reject_at = (deadline_us as f64 * oconfig.cost_reject_factor) as u64;
                if oconfig.cost_reject_factor > 0.0 && est_us > reject_at {
                    shared.stats.inc(&shared.stats.cost_rejected);
                    let body = BusyBody {
                        queue_depth: shared.queue_depth(),
                        queue_cap: shared.config.queue_cap,
                        retry_after_ms: overload.retry_after_ms(shared.queue_depth(), oconfig),
                    };
                    hin_telemetry::logfmt!(
                        "cost_rejected",
                        cost = cost,
                        estimated_us = est_us,
                        deadline_us = deadline_us,
                        retry_after_ms = body.retry_after_ms
                    );
                    return reader.write_response(&Response::Busy(body));
                }
                if est_us > deadline_us {
                    downtier = true;
                }
            }
        }
    }
    // Claim this request's fault-sequence index. Claimed at admission time
    // — before the busy check — so the index order equals the order pool
    // requests arrive, independent of queue depth and worker scheduling.
    let fault = shared.faults.claim();
    let cancel = CancelToken::new();
    let (respond, response_rx) = channel::bounded::<Response>(1);
    let job = Job {
        request,
        cancel: cancel.clone(),
        respond,
        admitted: Instant::now(),
        deadline,
        cost,
        downtier,
        fault,
    };
    match job_tx.try_send(job) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            shared.stats.inc(&shared.stats.rejected_busy);
            return reader.write_response(&Response::Busy(BusyBody {
                queue_depth: shared.queue_depth(),
                queue_cap: shared.config.queue_cap,
                retry_after_ms: overload.retry_after_ms(shared.queue_depth(), oconfig),
            }));
        }
        Err(TrySendError::Disconnected(_)) => {
            shared.stats.inc(&shared.stats.errors);
            return reader
                .write_response(&Response::err(ErrorCode::Engine, "server is shutting down"));
        }
    }
    let mut client_gone = false;
    loop {
        match response_rx.recv_timeout(shared.config.poll_interval) {
            Ok(response) => {
                // Connection-drop fault: the request executed (and its
                // response is dedup-cached when it carried an id), but the
                // response line is eaten and the socket closed — the
                // client sees a mid-request disconnect and must recover by
                // reconnect + retry.
                if fault == Some(FaultKind::DropConnection) {
                    shared.stats.inc(&shared.stats.dropped_conns);
                    return false;
                }
                if client_gone {
                    return false;
                }
                return reader.write_response(&response);
            }
            Err(channel::RecvTimeoutError::Timeout) => {
                if !client_gone && !reader.still_connected() {
                    // The client hung up: stop the query cooperatively, but
                    // keep waiting for the worker so accounting stays exact.
                    cancel.cancel();
                    client_gone = true;
                }
            }
            Err(channel::RecvTimeoutError::Disconnected) => {
                // Worker dropped the sender without responding — only
                // possible if the worker died mid-job.
                shared.stats.inc(&shared.stats.errors);
                return !client_gone
                    && reader.write_response(&Response::err(
                        ErrorCode::Internal,
                        "worker dropped the request",
                    ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Compile-time thread-safety audit: everything shared across server threads
// must be Send + Sync. `QueryEngine` is built per-request inside one worker
// and only needs Send/Sync of its ingredients, but we assert it too so a
// future non-thread-safe `VectorSource` impl fails here, loudly.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_all() {
        assert_send_sync::<hin_graph::HinGraph>();
        assert_send_sync::<OutlierDetector>();
        assert_send_sync::<netout::VectorCache>();
        assert_send_sync::<netout::SubpathCache>();
        assert_send_sync::<netout::Budget>();
        assert_send_sync::<CancelToken>();
        assert_send_sync::<Shared>();
        assert_send_sync::<ServerStats>();
        assert_send_sync::<FaultState>();
        assert_send_sync::<Mutex<DedupCache>>();
        assert_send_sync::<WorkerSlot>();
    }
    let _ = assert_all;
};

#[cfg(test)]
mod tests {
    use super::*;
    use hin_datagen::toy;
    use netout::Budget;

    fn toy_server(config: ServerConfig) -> (SocketAddr, std::thread::JoinHandle<StatsSnapshot>) {
        let detector = OutlierDetector::new(toy::figure1_network()).with_vector_cache(256);
        let server = Server::bind(detector, "127.0.0.1:0", config).expect("bind");
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run());
        (addr, handle)
    }

    fn send_lines(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
        let mut client = crate::client::Client::connect(addr).expect("connect");
        lines
            .iter()
            .map(|l| client.send_line(l).expect("request"))
            .collect()
    }

    #[test]
    fn ping_query_stats_shutdown_cycle() {
        let (addr, handle) = toy_server(ServerConfig {
            workers: 2,
            queue_cap: 4,
            ..ServerConfig::default()
        });
        let responses = send_lines(
            addr,
            &[
                "PING",
                "QUERY FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author JUDGED BY author.paper.venue;",
                "NOT A VERB",
                "STATS",
            ],
        );
        assert!(responses[0].starts_with(r#"{"pong""#), "{}", responses[0]);
        assert!(responses[1].starts_with(r#"{"result""#), "{}", responses[1]);
        assert!(responses[1].contains(r#""measure":"NetOut""#));
        assert!(responses[2].starts_with(r#"{"err""#), "{}", responses[2]);
        assert!(responses[3].starts_with(r#"{"stats""#), "{}", responses[3]);
        let bye = send_lines(addr, &["SHUTDOWN"]);
        assert!(bye[0].starts_with(r#"{"bye""#), "{}", bye[0]);
        let final_stats = handle.join().expect("server thread");
        assert_eq!(final_stats.completed, 1);
        assert!(final_stats.errors >= 1);
        assert!(final_stats.connections >= 2);
    }

    #[test]
    fn per_request_budget_overrides_server_default() {
        let detector = OutlierDetector::new(toy::table1_network())
            .with_vector_cache(64)
            .budget(Budget::unbounded().with_timeout_ms(60_000));
        let server = Server::bind(
            detector,
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                queue_cap: 2,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run());
        let q = toy::table1_query();
        // Strict mode + tiny candidate cap → structured budget error.
        let responses = send_lines(
            addr,
            &[
                &format!("QUERY max-candidates=2 mode=strict {q}"),
                &format!("QUERY {q}"),
                "SHUTDOWN",
            ],
        );
        assert!(
            responses[0].contains(r#""code":"Budget""#),
            "{}",
            responses[0]
        );
        assert!(responses[1].starts_with(r#"{"result""#), "{}", responses[1]);
        handle.join().expect("server thread");
    }

    #[test]
    fn threads_per_query_matches_serial_results() {
        let q =
            "QUERY FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author JUDGED BY author.paper.venue;";
        let extract = |response: &str| {
            // Strip the per-request timing field; everything else — scores
            // included — must be identical between thread counts.
            let mut s = response.to_string();
            if let Some(start) = s.find(r#""exec_us":"#) {
                let end = s[start..]
                    .find(|c: char| c == ',' || c == '}')
                    .map(|i| start + i)
                    .unwrap_or(s.len());
                s.replace_range(start..end, r#""exec_us":0"#);
            }
            s
        };
        let mut outputs = Vec::new();
        for threads in [1, 4] {
            let (addr, handle) = toy_server(ServerConfig {
                workers: 2,
                queue_cap: 4,
                threads_per_query: threads,
                ..ServerConfig::default()
            });
            let responses = send_lines(addr, &[q, "SHUTDOWN"]);
            assert!(responses[0].starts_with(r#"{"result""#), "{}", responses[0]);
            outputs.push(extract(&responses[0]));
            handle.join().expect("server thread");
        }
        assert_eq!(outputs[0], outputs[1], "thread count changed the ranking");
    }

    #[test]
    fn overload_retry_after_scales_with_backlog_and_clamps() {
        let state = OverloadState::new();
        let config = OverloadConfig {
            retry_after_cap: Duration::from_millis(100),
            ..OverloadConfig::default()
        };
        // Cold model: the conservative per-job default applies.
        assert_eq!(
            state.retry_after_ms(0, &config),
            RETRY_AFTER_COLD_US / 1_000
        );
        let stats = ServerStats::new();
        state.observe_exec(100, Duration::from_micros(2_000), &stats);
        // One queued job + the incoming one at ~2 ms each.
        assert_eq!(state.retry_after_ms(1, &config), 4);
        // A deep backlog clamps at the cap.
        assert_eq!(state.retry_after_ms(10_000, &config), 100);
    }

    #[test]
    fn overload_cost_estimates_gate_on_observation_count() {
        let state = OverloadState::new();
        let stats = ServerStats::new();
        assert_eq!(state.estimate_micros(100, 2), None);
        state.observe_exec(100, Duration::from_micros(1_000), &stats);
        assert_eq!(state.estimate_micros(100, 2), None, "model not warm yet");
        state.observe_exec(100, Duration::from_micros(1_000), &stats);
        let est = state.estimate_micros(100, 2).expect("model is warm");
        assert!((500..=2_000).contains(&est), "estimate off: {est}");
        assert!(stats.cost_rate.get() > 0.0, "rate gauge not exported");
    }

    #[test]
    fn brownout_controller_rises_hysteretically_and_recovers() {
        let state = OverloadState::new();
        let stats = ServerStats::new();
        let config = OverloadConfig {
            brownout_enter: Some(Duration::from_millis(10)),
            brownout_exit: Duration::from_millis(2),
            brownout_dwell: Duration::ZERO,
            ..OverloadConfig::default()
        };
        // Not enough samples: the controller holds at level 0.
        for _ in 0..OVERLOAD_MIN_SAMPLES - 1 {
            state.record_queue_wait(Duration::from_millis(50));
        }
        state.maybe_transition(&config, &stats);
        assert_eq!(state.level(), 0);
        // Window full of slow waits: one step up per evaluation, capped.
        state.record_queue_wait(Duration::from_millis(50));
        for expect in [1, 2, 3, 3] {
            state.maybe_transition(&config, &stats);
            assert_eq!(state.level(), expect);
        }
        // Waits between exit and enter: hysteresis holds the level.
        for _ in 0..OVERLOAD_WINDOW {
            state.record_queue_wait(Duration::from_millis(5));
        }
        state.maybe_transition(&config, &stats);
        assert_eq!(state.level(), BROWNOUT_MAX_LEVEL);
        // Fast waits: the controller steps back down to normal.
        for _ in 0..OVERLOAD_WINDOW {
            state.record_queue_wait(Duration::from_micros(100));
        }
        for expect in [2, 1, 0, 0] {
            state.maybe_transition(&config, &stats);
            assert_eq!(state.level(), expect);
        }
        assert_eq!(
            stats
                .snapshot(0, 1, CacheSnapshot::default(), None)
                .brownout_level,
            0
        );
    }

    #[test]
    fn expired_requests_are_shed_without_executing() {
        // One worker pinned by a long SLEEP; a queued query whose deadline
        // passes while it waits must answer `expired` without executing.
        let (addr, handle) = toy_server(ServerConfig {
            workers: 1,
            queue_cap: 8,
            poll_interval: Duration::from_millis(5),
            ..ServerConfig::default()
        });
        let mut sleeper = crate::client::Client::connect(addr).expect("connect");
        sleeper.send_no_wait("SLEEP 400").expect("send");
        std::thread::sleep(Duration::from_millis(50));
        let q = "QUERY timeout-ms=100 FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author JUDGED BY author.paper.venue;";
        let responses = send_lines(addr, &[q]);
        assert!(
            responses[0].starts_with(r#"{"expired""#),
            "{}",
            responses[0]
        );
        assert!(
            responses[0].contains(r#""retry_after_ms""#),
            "{}",
            responses[0]
        );
        let _ = sleeper.read_response();
        let stats = send_lines(addr, &["STATS", "SHUTDOWN"]);
        assert!(stats[0].contains(r#""expired":1"#), "{}", stats[0]);
        let final_stats = handle.join().expect("server thread");
        assert_eq!(final_stats.expired, 1);
        assert_eq!(final_stats.completed, 1, "only the sleep completed");
    }

    #[test]
    fn cancellable_sleep_completes_and_cancels() {
        let token = CancelToken::new();
        let started = Instant::now();
        assert!(cancellable_sleep(
            Duration::from_millis(20),
            &token,
            Duration::from_millis(5)
        ));
        assert!(started.elapsed() >= Duration::from_millis(20));
        token.cancel();
        let started = Instant::now();
        assert!(!cancellable_sleep(
            Duration::from_millis(5000),
            &token,
            Duration::from_millis(5)
        ));
        assert!(started.elapsed() < Duration::from_secs(2), "did not cancel");
    }

    #[test]
    fn bind_retry_rides_out_addr_in_use() {
        let occupant = TcpListener::bind("127.0.0.1:0").expect("occupy");
        let addr = occupant.local_addr().expect("addr");
        let release = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            drop(occupant);
        });
        let detector = OutlierDetector::new(toy::figure1_network());
        let server = Server::bind_retry(
            detector,
            addr,
            ServerConfig::default(),
            20,
            Duration::from_millis(10),
        )
        .expect("bind_retry should win once the occupant releases the port");
        assert_eq!(server.local_addr(), addr);
        release.join().expect("release thread");
        // A non-AddrInUse error fails immediately, no retry loop.
        let detector = OutlierDetector::new(toy::figure1_network());
        let started = Instant::now();
        let err = Server::bind_retry(
            detector,
            "203.0.113.1:1", // TEST-NET address: bind cannot succeed
            ServerConfig::default(),
            50,
            Duration::from_millis(100),
        )
        .expect_err("binding a non-local address must fail");
        assert_ne!(err.kind(), ErrorKind::AddrInUse);
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "retried a non-retryable error"
        );
    }

    #[test]
    fn faults_verb_installs_and_panic_is_isolated() {
        let (addr, handle) = toy_server(ServerConfig {
            workers: 2,
            queue_cap: 8,
            ..ServerConfig::default()
        });
        let q =
            "QUERY FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author JUDGED BY author.paper.venue;";
        let responses = send_lines(
            addr,
            &[
                "FAULTS",
                "FAULTS seed=1;panic@0",
                q, // index 0 → panics inside the worker, isolated
                q, // index 1 → served normally by the same pool
                "FAULTS",
                "FAULTS OFF",
                "STATS",
            ],
        );
        assert!(responses[0].contains(r#""spec":null"#), "{}", responses[0]);
        assert!(
            responses[1].contains(r#""spec":"seed=1;panic@0""#),
            "{}",
            responses[1]
        );
        assert!(
            responses[2].contains(r#""code":"Panic""#) && responses[2].contains("fault injection"),
            "{}",
            responses[2]
        );
        assert!(responses[3].starts_with(r#"{"result""#), "{}", responses[3]);
        assert!(
            responses[4].contains(r#""panics":1"#) && responses[4].contains(r#""requests_seen":2"#),
            "{}",
            responses[4]
        );
        assert!(responses[5].contains(r#""spec":null"#), "{}", responses[5]);
        assert!(responses[6].contains(r#""panics":1"#), "{}", responses[6]);
        send_lines(addr, &["SHUTDOWN"]);
        let final_stats = handle.join().expect("server thread");
        assert_eq!(final_stats.panics, 1);
        assert_eq!(
            final_stats.respawns, 0,
            "isolated panic must not kill the worker"
        );
        assert_eq!(final_stats.completed, 1);
    }

    #[test]
    fn killed_worker_is_respawned_and_serving_continues() {
        let detector = OutlierDetector::new(toy::figure1_network()).with_vector_cache(256);
        let server = Server::bind(
            detector,
            "127.0.0.1:0",
            ServerConfig {
                workers: 1, // the kill takes out the whole pool
                queue_cap: 8,
                poll_interval: Duration::from_millis(5),
                fault_plan: Some(FaultPlan::parse("kill@0").expect("plan")),
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run());
        let q =
            "QUERY FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author JUDGED BY author.paper.venue;";
        let responses = send_lines(addr, &[q, q, q, "SHUTDOWN"]);
        assert!(
            responses[0].contains("worker dropped the request"),
            "{}",
            responses[0]
        );
        assert!(responses[1].starts_with(r#"{"result""#), "{}", responses[1]);
        assert!(responses[2].starts_with(r#"{"result""#), "{}", responses[2]);
        let final_stats = handle.join().expect("server thread");
        assert_eq!(final_stats.respawns, 1);
        assert_eq!(final_stats.completed, 2);
    }

    #[test]
    fn idempotent_requests_are_deduplicated_byte_identically() {
        let (addr, handle) = toy_server(ServerConfig {
            workers: 2,
            queue_cap: 8,
            ..ServerConfig::default()
        });
        let q = "QUERY id=42 FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author JUDGED BY author.paper.venue;";
        let responses = send_lines(addr, &[q, q, q, "STATS", "SHUTDOWN"]);
        assert!(responses[0].starts_with(r#"{"result""#), "{}", responses[0]);
        // Replays are byte-identical — including exec_us, which would differ
        // had the query actually re-executed.
        assert_eq!(responses[0], responses[1]);
        assert_eq!(responses[0], responses[2]);
        assert!(responses[3].contains(r#""deduped":2"#), "{}", responses[3]);
        let final_stats = handle.join().expect("server thread");
        assert_eq!(final_stats.deduped, 2);
        assert_eq!(
            final_stats.completed, 1,
            "the query must execute exactly once"
        );
    }

    #[test]
    fn metrics_and_trace_verbs_surface_telemetry() {
        let (addr, handle) = toy_server(ServerConfig {
            workers: 2,
            queue_cap: 8,
            slow_query: Some(Duration::ZERO), // log every query
            ..ServerConfig::default()
        });
        let q =
            "QUERY FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author JUDGED BY author.paper.venue;";
        let responses = send_lines(addr, &[q, "METRICS JSON", "TRACE"]);
        assert!(responses[0].starts_with(r#"{"result""#), "{}", responses[0]);
        assert!(
            responses[1].starts_with(r#"{"metrics""#)
                && responses[1].contains("hin_requests_total")
                && responses[1].contains("hin_queue_wait_us")
                && responses[1].contains("hin_engine_scoring_us_total"),
            "{}",
            responses[1]
        );
        assert!(
            responses[2].starts_with(r#"{"traces""#) && responses[2].contains(r#""entries":[{"#),
            "{}",
            responses[2]
        );
        // Fetch the logged entry and check its span tree reaches the
        // engine phases.
        let id = crate::client::json_u64_field(&responses[2], "id").expect("entry id");
        let trace = send_lines(addr, &[&format!("TRACE {id}"), "TRACE 999999999"]);
        assert!(
            trace[0].starts_with(r#"{"trace""#)
                && trace[0].contains(r#""name":"query""#)
                && trace[0].contains(r#""name":"set_retrieval""#),
            "{}",
            trace[0]
        );
        assert!(trace[1].contains(r#""code":"Protocol""#), "{}", trace[1]);

        // The bare METRICS form answers with raw Prometheus exposition
        // terminated by a blank line, not JSON.
        use std::io::BufRead;
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        writer.write_all(b"METRICS\n").expect("send");
        let mut text = String::new();
        for line in std::io::BufReader::new(stream).lines() {
            let line = line.expect("read");
            if line.is_empty() {
                break;
            }
            text.push('\n');
            text.push_str(&line);
        }
        let samples = hin_telemetry::parse_exposition(&text).expect("valid exposition");
        for name in [
            "hin_requests_total",
            "hin_completed_total",
            "hin_queue_wait_us_count",
            "hin_exec_us_count",
            "hin_total_us_count",
            "hin_cache_hit_ratio",
            "hin_engine_set_retrieval_us_total",
        ] {
            assert!(
                samples.iter().any(|s| s.name == name),
                "missing {name} in:\n{text}"
            );
        }
        send_lines(addr, &["SHUTDOWN"]);
        handle.join().expect("server thread");
    }

    #[test]
    fn shard_option_returns_raw_rows_covering_the_candidate_set() {
        use crate::json::{parse_value, Value};
        let (addr, handle) = toy_server(ServerConfig {
            workers: 2,
            queue_cap: 8,
            ..ServerConfig::default()
        });
        let q = "FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author JUDGED BY author.paper.venue;";
        let responses = send_lines(
            addr,
            &[
                &format!("QUERY shard=0/2 {q}"),
                &format!("QUERY shard=1/2 {q}"),
                &format!("QUERY shard=0/9 mode=best-effort {q}"), // mode ignored
                "SHUTDOWN",
            ],
        );
        let bodies: Vec<Value> = responses[..3]
            .iter()
            .map(|line| {
                let v = parse_value(line).expect("valid JSON");
                assert!(v.get("shard").is_some(), "{line}");
                v.get("shard").cloned().expect("shard body")
            })
            .collect();
        assert_eq!(bodies[0].get("of").and_then(Value::as_u64), Some(2));
        assert_eq!(bodies[1].get("shard").and_then(Value::as_u64), Some(1));
        let candidates = bodies[0]
            .get("candidates")
            .and_then(Value::as_usize)
            .expect("candidates");
        // The two half shards partition the candidate set: row counts plus
        // zero-visibility counts sum to the whole set.
        let covered: usize = bodies[..2]
            .iter()
            .map(|b| {
                b.get("rows")
                    .and_then(Value::as_array)
                    .map_or(0, |r| r.len())
                    + b.get("zero_visibility")
                        .and_then(Value::as_usize)
                        .unwrap_or(0)
            })
            .sum();
        assert_eq!(covered, candidates);
        assert_eq!(
            bodies[2].get("measure").and_then(Value::as_str),
            Some("NetOut")
        );
        handle.join().expect("server thread");
    }

    /// Ids retained in a `TRACE` listing, oldest first.
    fn trace_ids(line: &str) -> Vec<u64> {
        let v = crate::json::parse_value(line).expect("valid JSON");
        v.get("traces")
            .and_then(|t| t.get("entries"))
            .and_then(crate::json::Value::as_array)
            .expect("entries array")
            .iter()
            .map(|e| {
                e.get("id")
                    .and_then(crate::json::Value::as_u64)
                    .expect("entry id")
            })
            .collect()
    }

    #[test]
    fn trace_option_force_logs_and_ring_evicts_oldest_first() {
        // slow_query stays None: only the trace=1 request option opts
        // queries into the ring, which keeps the 2 most recent entries.
        let (addr, handle) = toy_server(ServerConfig {
            workers: 2,
            queue_cap: 16,
            slow_log_cap: 2,
            ..ServerConfig::default()
        });
        let q = "FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author JUDGED BY author.paper.venue;";
        // Concurrent traced queries from several clients: the ring must
        // stay bounded at capacity however the insertions interleave.
        let mut clients = Vec::new();
        for i in 0..4u64 {
            let line = format!("QUERY trace=1 id={} {q}", 100 + i);
            clients.push(std::thread::spawn(move || {
                send_lines(addr, &[line.as_str()])
            }));
        }
        for c in clients {
            let responses = c.join().expect("client thread");
            assert!(responses[0].starts_with(r#"{"result""#), "{}", responses[0]);
        }
        let listing = send_lines(addr, &["TRACE"]);
        assert_eq!(trace_ids(&listing[0]).len(), 2, "{}", listing[0]);
        // Sequential traced queries pin the eviction order: after ids
        // 1, 2, 3 pass through a cap-2 ring, only [2, 3] remain and the
        // evicted id answers with a structured error, not silence.
        let mut batch: Vec<String> = (1..=3u64)
            .map(|id| format!("QUERY trace=1 id={id} {q}"))
            .collect();
        batch.push("TRACE".to_string());
        batch.push("TRACE 1".to_string());
        batch.push("SHUTDOWN".to_string());
        let refs: Vec<&str> = batch.iter().map(String::as_str).collect();
        let responses = send_lines(addr, &refs);
        for r in &responses[..3] {
            assert!(r.starts_with(r#"{"result""#), "{r}");
        }
        assert_eq!(trace_ids(&responses[3]), vec![2, 3], "{}", responses[3]);
        assert!(
            responses[4].contains(r#""code":"Protocol""#)
                && responses[4].contains("no slow-query entry with id 1"),
            "{}",
            responses[4]
        );
        handle.join().expect("server thread");
    }

    #[test]
    fn slow_query_log_disabled_without_threshold() {
        let (addr, handle) = toy_server(ServerConfig {
            workers: 1,
            queue_cap: 4,
            ..ServerConfig::default() // slow_query: None
        });
        let q =
            "QUERY FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author JUDGED BY author.paper.venue;";
        let responses = send_lines(addr, &[q, "TRACE", "SHUTDOWN"]);
        assert!(responses[1].contains(r#""entries":[]"#), "{}", responses[1]);
        handle.join().expect("server thread");
    }

    #[test]
    fn cache_is_shared_across_requests() {
        let (addr, handle) = toy_server(ServerConfig {
            workers: 2,
            queue_cap: 8,
            ..ServerConfig::default()
        });
        let q =
            "QUERY FIND OUTLIERS FROM venue{\"ICDE\"}.paper.author JUDGED BY author.paper.venue;";
        let _ = send_lines(addr, &[q, q, q]);
        let stats = send_lines(addr, &["STATS", "SHUTDOWN"]);
        // The second and third runs hit vectors cached by the first.
        let hits: u64 = crate::client::json_u64_field(&stats[0], "hits").unwrap_or(0);
        assert!(hits > 0, "shared cache saw no hits: {}", stats[0]);
        handle.join().expect("server thread");
    }
}
