//! Live server statistics: counters, gauges, and latency histograms.
//!
//! A single [`ServerStats`] block is shared (behind an `Arc`) by the
//! acceptor, every connection handler, and every worker. All storage
//! lives in a [`hin_telemetry::Registry`], so the same atomics feed both
//! the legacy `STATS` snapshot and the Prometheus/JSON `METRICS`
//! exposition — there is exactly one histogram implementation and one
//! copy of every counter in the process.

use hin_telemetry::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use hin_telemetry::LatencySummary;

/// The shared statistics block. Counter and gauge fields are cheap
/// clonable handles into the embedded registry; hot paths never touch the
/// registry lock.
#[derive(Debug)]
pub struct ServerStats {
    /// Connections accepted over the server lifetime.
    pub connections: Counter,
    /// Requests read and parsed (including malformed ones).
    pub requests: Counter,
    /// Requests answered with `result`.
    pub completed: Counter,
    /// Requests rejected with `busy` by admission control.
    pub rejected_busy: Counter,
    /// Requests whose budget tripped cooperative cancellation (client
    /// disconnect or drain).
    pub cancelled: Counter,
    /// `result` responses carrying a degraded/partial marker.
    pub degraded: Counter,
    /// Requests answered with `err` (any code).
    pub errors: Counter,
    /// Jobs currently executing in workers.
    pub in_flight: Gauge,
    /// Request executions that panicked and were isolated (answered with a
    /// structured `PANIC` error instead of tearing down the worker).
    pub panics: Counter,
    /// Worker threads respawned by the supervisor (after a worker death or
    /// a hung-worker replacement).
    pub respawns: Counter,
    /// Requests answered from the idempotent-request dedup cache (retries
    /// of an already-executed request id).
    pub deduped: Counter,
    /// Connections dropped server-side by fault injection.
    pub dropped_conns: Counter,
    /// Requests shed with a structured `expired` response because their
    /// deadline elapsed while they waited in the queue (never executed).
    pub expired: Counter,
    /// Spans recorded but rejected because a trace buffer was full — a
    /// nonzero value means trace trees are incomplete and the span cap
    /// (or the query's fan-out) deserves a look.
    pub trace_dropped: Counter,
    /// Requests rejected at admission because their estimated cost could
    /// not fit the remaining deadline (cost-based admission control).
    pub cost_rejected: Counter,
    /// Requests shed at admission for low priority under brownout.
    pub priority_shed: Counter,
    /// Strict requests forced to best-effort by overload control (cost
    /// admission down-tiering or brownout level ≥ 2).
    pub downtiered: Counter,
    /// Brownout controller level transitions (either direction).
    pub brownout_transitions: Counter,
    /// Current brownout degradation level (0 = normal … 3 = shedding).
    pub brownout_level: Gauge,
    /// EWMA of execution cost-units per microsecond (the admission cost
    /// model's current rate; 0 before any observation).
    pub cost_rate: Gauge,
    /// Microseconds spent loading the serving snapshot at startup (0 when
    /// the graph was rebuilt from a text/binio file instead).
    pub snapshot_load_us: Gauge,
    /// Time from admission to a worker picking the job up.
    queue_wait: Arc<Histogram>,
    /// Worker execution time (parse+bind+execute).
    exec: Arc<Histogram>,
    /// Admission to response written.
    total: Arc<Histogram>,
    // Engine phase totals, accumulated from each query's ExecBreakdown.
    engine_set_retrieval_us: Counter,
    engine_unindexed_us: Counter,
    engine_indexed_us: Counter,
    engine_scoring_us: Counter,
    // Scrape-time gauges: owned by the server (queue, shared cache) and
    // refreshed immediately before each exposition render.
    uptime_ms: Gauge,
    queue_depth: Gauge,
    queue_cap: Gauge,
    cache_hits: Gauge,
    cache_misses: Gauge,
    cache_evictions: Gauge,
    cache_hit_ratio: Gauge,
    cache_len: Gauge,
    cache_size_bytes: Gauge,
    subpath_hits: Gauge,
    subpath_prefix_hits: Gauge,
    subpath_misses: Gauge,
    subpath_admitted: Gauge,
    subpath_rejected: Gauge,
    subpath_evictions: Gauge,
    subpath_bytes: Gauge,
    subpath_budget_bytes: Gauge,
    subpath_entries: Gauge,
    subpath_hit_ratio: Gauge,
    registry: Registry,
    started: Instant,
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats::new()
    }
}

impl ServerStats {
    /// A fresh statistics block; the uptime clock starts now.
    pub fn new() -> ServerStats {
        let registry = Registry::new();
        ServerStats {
            connections: registry.counter("hin_connections_total", "Connections accepted."),
            requests: registry.counter("hin_requests_total", "Requests read and parsed."),
            completed: registry.counter("hin_completed_total", "Requests answered with result."),
            rejected_busy: registry.counter(
                "hin_rejected_busy_total",
                "Requests rejected by admission control.",
            ),
            cancelled: registry.counter(
                "hin_cancelled_total",
                "Requests cancelled cooperatively (disconnect or drain).",
            ),
            degraded: registry.counter(
                "hin_degraded_total",
                "Degraded (partial) results served under budget pressure.",
            ),
            errors: registry.counter("hin_errors_total", "Requests answered with err."),
            in_flight: registry.gauge("hin_in_flight", "Jobs currently executing in workers."),
            panics: registry.counter("hin_panics_total", "Isolated request panics."),
            respawns: registry.counter(
                "hin_respawns_total",
                "Worker threads respawned by the supervisor.",
            ),
            deduped: registry.counter(
                "hin_deduped_total",
                "Responses replayed from the idempotency dedup cache.",
            ),
            dropped_conns: registry.counter(
                "hin_dropped_conns_total",
                "Connections dropped by fault injection.",
            ),
            expired: registry.counter(
                "hin_overload_expired_total",
                "Requests shed unexecuted because their deadline expired in queue.",
            ),
            trace_dropped: registry.counter(
                "hin_trace_dropped_spans_total",
                "Spans dropped because a per-query trace buffer was full.",
            ),
            cost_rejected: registry.counter(
                "hin_overload_cost_rejected_total",
                "Requests rejected because estimated cost could not fit the deadline.",
            ),
            priority_shed: registry.counter(
                "hin_overload_priority_shed_total",
                "Requests shed for low priority under brownout.",
            ),
            downtiered: registry.counter(
                "hin_overload_downtiered_total",
                "Strict requests forced to best-effort by overload control.",
            ),
            brownout_transitions: registry.counter(
                "hin_overload_brownout_transitions_total",
                "Brownout controller level transitions.",
            ),
            brownout_level: registry.gauge(
                "hin_overload_brownout_level",
                "Current brownout degradation level (0 normal .. 3 shedding).",
            ),
            cost_rate: registry.gauge(
                "hin_overload_cost_rate",
                "EWMA of execution cost-units per microsecond (0 before any observation).",
            ),
            snapshot_load_us: registry.gauge(
                "hin_snapshot_load_us",
                "Startup snapshot (mmap) load time, microseconds; 0 without a snapshot.",
            ),
            queue_wait: registry.histogram(
                "hin_queue_wait_us",
                "Admission to worker-pickup latency, microseconds.",
            ),
            exec: registry.histogram("hin_exec_us", "Worker execution latency, microseconds."),
            total: registry.histogram(
                "hin_total_us",
                "Admission to response-written latency, microseconds.",
            ),
            engine_set_retrieval_us: registry.counter(
                "hin_engine_set_retrieval_us_total",
                "Engine time in query-set retrieval, microseconds.",
            ),
            engine_unindexed_us: registry.counter(
                "hin_engine_unindexed_vectors_us_total",
                "Engine time materializing unindexed vectors, microseconds.",
            ),
            engine_indexed_us: registry.counter(
                "hin_engine_indexed_vectors_us_total",
                "Engine time serving vectors from indexes, microseconds.",
            ),
            engine_scoring_us: registry.counter(
                "hin_engine_scoring_us_total",
                "Engine time scoring candidates, microseconds.",
            ),
            uptime_ms: registry.gauge("hin_uptime_ms", "Milliseconds since the server started."),
            queue_depth: registry.gauge("hin_queue_depth", "Jobs waiting in the admission queue."),
            queue_cap: registry.gauge("hin_queue_cap", "Admission queue capacity."),
            cache_hits: registry.gauge("hin_cache_hits", "Vectors served from the shared cache."),
            cache_misses: registry.gauge("hin_cache_misses", "Vectors computed and inserted."),
            cache_evictions: registry.gauge("hin_cache_evictions", "Cache entries evicted."),
            cache_hit_ratio: registry.gauge(
                "hin_cache_hit_ratio",
                "Shared cache hit ratio in [0,1]; NaN before any lookup.",
            ),
            cache_len: registry.gauge("hin_cache_len", "Vectors cached right now."),
            cache_size_bytes: registry.gauge(
                "hin_cache_size_bytes",
                "Bytes of neighbor vectors resident in the shared cache.",
            ),
            subpath_hits: registry.gauge(
                "hin_subpath_hits",
                "Sub-path cache lookups served from a cached product.",
            ),
            subpath_prefix_hits: registry.gauge(
                "hin_subpath_prefix_hits",
                "Sub-path cache hits on a multi-chunk prefix product.",
            ),
            subpath_misses: registry.gauge(
                "hin_subpath_misses",
                "Sub-path cache lookups that found nothing cached.",
            ),
            subpath_admitted: registry.gauge(
                "hin_subpath_admitted",
                "Sub-path products accepted by the admission policy.",
            ),
            subpath_rejected: registry.gauge(
                "hin_subpath_rejected",
                "Sub-path products rejected by the admission policy.",
            ),
            subpath_evictions: registry.gauge(
                "hin_subpath_evictions",
                "Sub-path entries evicted to respect the byte budget.",
            ),
            subpath_bytes: registry.gauge(
                "hin_subpath_bytes",
                "Bytes of sub-path products currently resident.",
            ),
            subpath_budget_bytes: registry.gauge(
                "hin_subpath_budget_bytes",
                "Configured sub-path cache byte budget.",
            ),
            subpath_entries: registry.gauge(
                "hin_subpath_entries",
                "Sub-path products resident right now.",
            ),
            subpath_hit_ratio: registry.gauge(
                "hin_subpath_hit_ratio",
                "Sub-path cache hit ratio in [0,1]; NaN before any lookup.",
            ),
            registry,
            started: Instant::now(),
        }
    }

    /// Server uptime.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Record one completed job's latency split.
    pub fn record_latencies(&self, queue_wait: Duration, exec: Duration, total: Duration) {
        self.queue_wait.record(queue_wait);
        self.exec.record(exec);
        self.total.record(total);
    }

    /// Fold one query's phase breakdown into the engine-phase totals.
    pub fn record_breakdown(&self, b: &netout::ExecBreakdown) {
        self.engine_set_retrieval_us
            .add(b.set_retrieval.as_micros() as u64);
        self.engine_unindexed_us
            .add(b.unindexed_vectors.as_micros() as u64);
        self.engine_indexed_us
            .add(b.indexed_vectors.as_micros() as u64);
        self.engine_scoring_us.add(b.scoring.as_micros() as u64);
    }

    /// Bump a counter by one. Kept for call-site symmetry with the old
    /// atomic-field API; equivalent to `counter.inc()`.
    pub fn inc(&self, counter: &Counter) -> u64 {
        counter.inc()
    }

    /// Refresh the scrape-time gauges from server-owned state.
    fn set_scrape_gauges(
        &self,
        queue_depth: usize,
        queue_cap: usize,
        cache: &CacheSnapshot,
        subpath: &Option<SubpathSnapshot>,
    ) {
        self.uptime_ms.set(self.uptime().as_millis() as f64);
        self.queue_depth.set(queue_depth as f64);
        self.queue_cap.set(queue_cap as f64);
        self.cache_hits.set(cache.hits as f64);
        self.cache_misses.set(cache.misses as f64);
        self.cache_evictions.set(cache.evictions as f64);
        self.cache_hit_ratio
            .set(cache.hit_ratio.unwrap_or(f64::NAN));
        self.cache_len.set(cache.len as f64);
        self.cache_size_bytes.set(cache.size_bytes as f64);
        // With no sub-path cache configured the gauges stay at their
        // zero/NaN defaults rather than disappearing from the exposition.
        let sp = subpath.unwrap_or_default();
        self.subpath_hits.set(sp.hits as f64);
        self.subpath_prefix_hits.set(sp.prefix_hits as f64);
        self.subpath_misses.set(sp.misses as f64);
        self.subpath_admitted.set(sp.admitted as f64);
        self.subpath_rejected.set(sp.rejected as f64);
        self.subpath_evictions.set(sp.evictions as f64);
        self.subpath_bytes.set(sp.bytes_resident as f64);
        self.subpath_budget_bytes.set(sp.budget_bytes as f64);
        self.subpath_entries.set(sp.entries as f64);
        self.subpath_hit_ratio.set(sp.hit_ratio.unwrap_or(f64::NAN));
    }

    /// Render the Prometheus text exposition of every metric (the `METRICS`
    /// verb's text form). `queue_depth` and `cache` are owned by the server
    /// and passed in, as for [`ServerStats::snapshot`].
    pub fn render_metrics(
        &self,
        queue_depth: usize,
        queue_cap: usize,
        cache: CacheSnapshot,
        subpath: Option<SubpathSnapshot>,
    ) -> String {
        self.set_scrape_gauges(queue_depth, queue_cap, &cache, &subpath);
        self.registry.render_prometheus()
    }

    /// The JSON form of a metrics scrape (the `METRICS JSON` verb).
    pub fn metrics_snapshot(
        &self,
        queue_depth: usize,
        queue_cap: usize,
        cache: CacheSnapshot,
        subpath: Option<SubpathSnapshot>,
    ) -> MetricsSnapshot {
        self.set_scrape_gauges(queue_depth, queue_cap, &cache, &subpath);
        self.registry.snapshot()
    }

    /// Assemble a consistent snapshot. `queue_depth` and `cache` are owned
    /// by the server (channel length / shared [`netout::VectorCache`]) and
    /// passed in.
    pub fn snapshot(
        &self,
        queue_depth: usize,
        queue_cap: usize,
        cache: CacheSnapshot,
        subpath: Option<SubpathSnapshot>,
    ) -> StatsSnapshot {
        // Snapshot the uptime once; every field below reads from the same
        // instant rather than re-eyeballing the clock.
        let uptime_ms = self.uptime().as_millis() as u64;
        StatsSnapshot {
            uptime_ms,
            connections: self.connections.get(),
            requests: self.requests.get(),
            completed: self.completed.get(),
            rejected_busy: self.rejected_busy.get(),
            cancelled: self.cancelled.get(),
            degraded: self.degraded.get(),
            errors: self.errors.get(),
            in_flight: self.in_flight.get() as u64,
            panics: self.panics.get(),
            respawns: self.respawns.get(),
            deduped: self.deduped.get(),
            dropped_conns: self.dropped_conns.get(),
            expired: self.expired.get(),
            trace_dropped: self.trace_dropped.get(),
            cost_rejected: self.cost_rejected.get(),
            priority_shed: self.priority_shed.get(),
            downtiered: self.downtiered.get(),
            brownout_level: self.brownout_level.get() as u64,
            queue_depth,
            queue_cap,
            cache,
            subpath,
            queue_wait: self.queue_wait.summary(),
            exec: self.exec.summary(),
            total: self.total.summary(),
        }
    }
}

/// Shared neighbor-vector cache counters at snapshot time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct CacheSnapshot {
    /// Vectors served from the cache.
    pub hits: u64,
    /// Vectors computed and inserted.
    pub misses: u64,
    /// Entries evicted.
    pub evictions: u64,
    /// Hit ratio in `[0,1]`; `null` before any lookup.
    pub hit_ratio: Option<f64>,
    /// Cached vectors right now.
    pub len: usize,
    /// Bytes of cached vectors resident right now.
    pub size_bytes: usize,
}

impl From<netout::CacheStats> for CacheSnapshot {
    fn from(s: netout::CacheStats) -> Self {
        CacheSnapshot {
            hits: s.hits,
            misses: s.misses,
            evictions: s.evictions,
            hit_ratio: s.hit_rate(),
            len: 0,
            size_bytes: 0,
        }
    }
}

/// Sub-path product-cache counters at snapshot time (`null` in `STATS`
/// when the server runs without `--subpath-cache-mb`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct SubpathSnapshot {
    /// Lookups served from a cached product (chunk or prefix).
    pub hits: u64,
    /// Subset of `hits` that matched a multi-chunk prefix product.
    pub prefix_hits: u64,
    /// Lookups that found nothing cached.
    pub misses: u64,
    /// Products accepted by the admission policy.
    pub admitted: u64,
    /// Products rejected by the admission policy.
    pub rejected: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Bytes of cached products resident right now.
    pub bytes_resident: u64,
    /// Resident entries right now.
    pub entries: u64,
    /// Configured byte budget.
    pub budget_bytes: u64,
    /// Hit ratio in `[0,1]`; `null` before any lookup.
    pub hit_ratio: Option<f64>,
}

impl From<netout::SubpathStats> for SubpathSnapshot {
    fn from(s: netout::SubpathStats) -> Self {
        SubpathSnapshot {
            hits: s.hits,
            prefix_hits: s.prefix_hits,
            misses: s.misses,
            admitted: s.admitted,
            rejected: s.rejected,
            evictions: s.evictions,
            bytes_resident: s.bytes_resident,
            entries: s.entries,
            budget_bytes: s.budget_bytes,
            hit_ratio: s.hit_rate(),
        }
    }
}

/// The `STATS` response body: every counter, gauge, and histogram summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct StatsSnapshot {
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Requests parsed.
    pub requests: u64,
    /// Requests answered with `result`.
    pub completed: u64,
    /// Requests rejected with `busy`.
    pub rejected_busy: u64,
    /// Requests cancelled cooperatively.
    pub cancelled: u64,
    /// Degraded (partial) results served.
    pub degraded: u64,
    /// `err` responses.
    pub errors: u64,
    /// Jobs executing right now.
    pub in_flight: u64,
    /// Isolated request panics.
    pub panics: u64,
    /// Workers respawned by the supervisor.
    pub respawns: u64,
    /// Responses replayed from the idempotency dedup cache.
    pub deduped: u64,
    /// Connections dropped by fault injection.
    pub dropped_conns: u64,
    /// Requests shed unexecuted because their deadline expired in queue.
    pub expired: u64,
    /// Spans dropped because a per-query trace buffer was full.
    pub trace_dropped: u64,
    /// Requests rejected by cost-based admission control.
    pub cost_rejected: u64,
    /// Requests shed for low priority under brownout.
    pub priority_shed: u64,
    /// Strict requests forced to best-effort by overload control.
    pub downtiered: u64,
    /// Brownout degradation level at snapshot time (0 normal .. 3).
    pub brownout_level: u64,
    /// Jobs waiting in the admission queue right now.
    pub queue_depth: usize,
    /// Admission queue capacity.
    pub queue_cap: usize,
    /// Shared vector-cache counters.
    pub cache: CacheSnapshot,
    /// Sub-path product-cache counters; `null` when not configured.
    pub subpath: Option<SubpathSnapshot>,
    /// Admission → worker-pickup latency.
    pub queue_wait: LatencySummary,
    /// Worker execution latency.
    pub exec: LatencySummary,
    /// Admission → response-written latency.
    pub total: LatencySummary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let stats = ServerStats::new();
        stats.inc(&stats.requests);
        stats.inc(&stats.requests);
        stats.inc(&stats.completed);
        stats.inc(&stats.cancelled);
        stats.record_latencies(
            Duration::from_micros(10),
            Duration::from_micros(100),
            Duration::from_micros(120),
        );
        stats.inc(&stats.panics);
        stats.inc(&stats.respawns);
        stats.inc(&stats.deduped);
        stats.inc(&stats.dropped_conns);
        let snap = stats.snapshot(3, 8, CacheSnapshot::default(), None);
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.panics, 1);
        assert_eq!(snap.respawns, 1);
        assert_eq!(snap.deduped, 1);
        assert_eq!(snap.dropped_conns, 1);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.cancelled, 1);
        assert_eq!(snap.queue_depth, 3);
        assert_eq!(snap.queue_cap, 8);
        assert_eq!(snap.total.count, 1);
        assert!(snap.exec.p50_us >= 100);
        // Snapshot serializes to one JSON object line.
        let line = crate::json::to_string(&snap).unwrap();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"cancelled\":1"));
        // queue_wait quantiles are surfaced (satellite of ISSUE 5).
        assert_eq!(snap.queue_wait.count, 1);
        assert!(snap.queue_wait.p99_us >= 10);
        assert!(line.contains("\"queue_wait\":{"));
    }

    #[test]
    fn cache_snapshot_from_core_stats() {
        let s = netout::CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
        };
        let c = CacheSnapshot::from(s);
        assert_eq!(c.hit_ratio, Some(0.75));
    }

    #[test]
    fn subpath_snapshot_serializes_and_defaults_to_null() {
        let stats = ServerStats::new();
        let without = stats.snapshot(0, 8, CacheSnapshot::default(), None);
        let line = crate::json::to_string(&without).unwrap();
        assert!(line.contains("\"subpath\":null"), "{line}");
        let sp = SubpathSnapshot::from(netout::SubpathStats {
            hits: 6,
            prefix_hits: 1,
            misses: 2,
            admitted: 3,
            rejected: 0,
            evictions: 1,
            bytes_resident: 512,
            entries: 2,
            budget_bytes: 4096,
        });
        assert_eq!(sp.hit_ratio, Some(0.75));
        let with = stats.snapshot(0, 8, CacheSnapshot::default(), Some(sp));
        let line = crate::json::to_string(&with).unwrap();
        assert!(line.contains("\"subpath\":{\"hits\":6"), "{line}");
        assert!(line.contains("\"budget_bytes\":4096"), "{line}");
    }

    #[test]
    fn metrics_exposition_covers_required_names() {
        let stats = ServerStats::new();
        stats.inc(&stats.requests);
        stats.record_latencies(
            Duration::from_micros(5),
            Duration::from_micros(40),
            Duration::from_micros(50),
        );
        stats.record_breakdown(&netout::ExecBreakdown {
            set_retrieval: Duration::from_micros(7),
            scoring: Duration::from_micros(11),
            ..Default::default()
        });
        let cache = CacheSnapshot {
            hits: 3,
            misses: 1,
            evictions: 0,
            hit_ratio: Some(0.75),
            len: 4,
            size_bytes: 1024,
        };
        let subpath = SubpathSnapshot {
            hits: 9,
            prefix_hits: 2,
            misses: 3,
            admitted: 5,
            rejected: 1,
            evictions: 1,
            bytes_resident: 4096,
            entries: 5,
            budget_bytes: 65536,
            hit_ratio: Some(0.75),
        };
        let text = stats.render_metrics(2, 8, cache, Some(subpath));
        for name in [
            "hin_requests_total",
            "hin_queue_wait_us_count",
            "hin_exec_us_bucket",
            "hin_total_us_sum",
            "hin_cache_hit_ratio 0.75",
            "hin_cache_size_bytes 1024",
            "hin_subpath_hits 9",
            "hin_subpath_prefix_hits 2",
            "hin_subpath_misses 3",
            "hin_subpath_bytes 4096",
            "hin_subpath_budget_bytes 65536",
            "hin_subpath_hit_ratio 0.75",
            "hin_engine_set_retrieval_us_total 7",
            "hin_engine_scoring_us_total 11",
            "hin_queue_depth 2",
            "hin_trace_dropped_spans_total",
            "hin_overload_expired_total",
            "hin_overload_cost_rejected_total",
            "hin_overload_priority_shed_total",
            "hin_overload_downtiered_total",
            "hin_overload_brownout_transitions_total",
            "hin_overload_brownout_level",
            "hin_overload_cost_rate",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        // And the text form parses cleanly.
        let samples = hin_telemetry::parse_exposition(&text).unwrap();
        assert!(samples.iter().any(|s| s.name == "hin_in_flight"));
        // JSON form carries histogram summaries.
        let snap = stats.metrics_snapshot(2, 8, cache, Some(subpath));
        let h = snap
            .samples
            .iter()
            .find(|s| s.name == "hin_queue_wait_us")
            .unwrap();
        assert_eq!(h.summary.unwrap().count, 1);
    }

    #[test]
    fn uptime_is_lock_free_and_monotone() {
        let stats = ServerStats::new();
        let a = stats.uptime();
        let b = stats.uptime();
        assert!(b >= a);
    }
}
