//! Live server statistics: counters, gauges, and latency histograms.
//!
//! A single [`ServerStats`] block is shared (behind an `Arc`) by the
//! acceptor, every connection handler, and every worker. All storage
//! lives in a [`hin_telemetry::Registry`], so the same atomics feed both
//! the legacy `STATS` snapshot and the Prometheus/JSON `METRICS`
//! exposition — there is exactly one histogram implementation and one
//! copy of every counter in the process.

use hin_telemetry::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use hin_telemetry::LatencySummary;

/// The shared statistics block. Counter and gauge fields are cheap
/// clonable handles into the embedded registry; hot paths never touch the
/// registry lock.
#[derive(Debug)]
pub struct ServerStats {
    /// Connections accepted over the server lifetime.
    pub connections: Counter,
    /// Requests read and parsed (including malformed ones).
    pub requests: Counter,
    /// Requests answered with `result`.
    pub completed: Counter,
    /// Requests rejected with `busy` by admission control.
    pub rejected_busy: Counter,
    /// Requests whose budget tripped cooperative cancellation (client
    /// disconnect or drain).
    pub cancelled: Counter,
    /// `result` responses carrying a degraded/partial marker.
    pub degraded: Counter,
    /// Requests answered with `err` (any code).
    pub errors: Counter,
    /// Jobs currently executing in workers.
    pub in_flight: Gauge,
    /// Request executions that panicked and were isolated (answered with a
    /// structured `PANIC` error instead of tearing down the worker).
    pub panics: Counter,
    /// Worker threads respawned by the supervisor (after a worker death or
    /// a hung-worker replacement).
    pub respawns: Counter,
    /// Requests answered from the idempotent-request dedup cache (retries
    /// of an already-executed request id).
    pub deduped: Counter,
    /// Connections dropped server-side by fault injection.
    pub dropped_conns: Counter,
    /// Microseconds spent loading the serving snapshot at startup (0 when
    /// the graph was rebuilt from a text/binio file instead).
    pub snapshot_load_us: Gauge,
    /// Time from admission to a worker picking the job up.
    queue_wait: Arc<Histogram>,
    /// Worker execution time (parse+bind+execute).
    exec: Arc<Histogram>,
    /// Admission to response written.
    total: Arc<Histogram>,
    // Engine phase totals, accumulated from each query's ExecBreakdown.
    engine_set_retrieval_us: Counter,
    engine_unindexed_us: Counter,
    engine_indexed_us: Counter,
    engine_scoring_us: Counter,
    // Scrape-time gauges: owned by the server (queue, shared cache) and
    // refreshed immediately before each exposition render.
    uptime_ms: Gauge,
    queue_depth: Gauge,
    queue_cap: Gauge,
    cache_hits: Gauge,
    cache_misses: Gauge,
    cache_evictions: Gauge,
    cache_hit_ratio: Gauge,
    cache_len: Gauge,
    registry: Registry,
    started: Instant,
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats::new()
    }
}

impl ServerStats {
    /// A fresh statistics block; the uptime clock starts now.
    pub fn new() -> ServerStats {
        let registry = Registry::new();
        ServerStats {
            connections: registry.counter("hin_connections_total", "Connections accepted."),
            requests: registry.counter("hin_requests_total", "Requests read and parsed."),
            completed: registry.counter("hin_completed_total", "Requests answered with result."),
            rejected_busy: registry.counter(
                "hin_rejected_busy_total",
                "Requests rejected by admission control.",
            ),
            cancelled: registry.counter(
                "hin_cancelled_total",
                "Requests cancelled cooperatively (disconnect or drain).",
            ),
            degraded: registry.counter(
                "hin_degraded_total",
                "Degraded (partial) results served under budget pressure.",
            ),
            errors: registry.counter("hin_errors_total", "Requests answered with err."),
            in_flight: registry.gauge("hin_in_flight", "Jobs currently executing in workers."),
            panics: registry.counter("hin_panics_total", "Isolated request panics."),
            respawns: registry.counter(
                "hin_respawns_total",
                "Worker threads respawned by the supervisor.",
            ),
            deduped: registry.counter(
                "hin_deduped_total",
                "Responses replayed from the idempotency dedup cache.",
            ),
            dropped_conns: registry.counter(
                "hin_dropped_conns_total",
                "Connections dropped by fault injection.",
            ),
            snapshot_load_us: registry.gauge(
                "hin_snapshot_load_us",
                "Startup snapshot (mmap) load time, microseconds; 0 without a snapshot.",
            ),
            queue_wait: registry.histogram(
                "hin_queue_wait_us",
                "Admission to worker-pickup latency, microseconds.",
            ),
            exec: registry.histogram("hin_exec_us", "Worker execution latency, microseconds."),
            total: registry.histogram(
                "hin_total_us",
                "Admission to response-written latency, microseconds.",
            ),
            engine_set_retrieval_us: registry.counter(
                "hin_engine_set_retrieval_us_total",
                "Engine time in query-set retrieval, microseconds.",
            ),
            engine_unindexed_us: registry.counter(
                "hin_engine_unindexed_vectors_us_total",
                "Engine time materializing unindexed vectors, microseconds.",
            ),
            engine_indexed_us: registry.counter(
                "hin_engine_indexed_vectors_us_total",
                "Engine time serving vectors from indexes, microseconds.",
            ),
            engine_scoring_us: registry.counter(
                "hin_engine_scoring_us_total",
                "Engine time scoring candidates, microseconds.",
            ),
            uptime_ms: registry.gauge("hin_uptime_ms", "Milliseconds since the server started."),
            queue_depth: registry.gauge("hin_queue_depth", "Jobs waiting in the admission queue."),
            queue_cap: registry.gauge("hin_queue_cap", "Admission queue capacity."),
            cache_hits: registry.gauge("hin_cache_hits", "Vectors served from the shared cache."),
            cache_misses: registry.gauge("hin_cache_misses", "Vectors computed and inserted."),
            cache_evictions: registry.gauge("hin_cache_evictions", "Cache entries evicted."),
            cache_hit_ratio: registry.gauge(
                "hin_cache_hit_ratio",
                "Shared cache hit ratio in [0,1]; NaN before any lookup.",
            ),
            cache_len: registry.gauge("hin_cache_len", "Vectors cached right now."),
            registry,
            started: Instant::now(),
        }
    }

    /// Server uptime.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Record one completed job's latency split.
    pub fn record_latencies(&self, queue_wait: Duration, exec: Duration, total: Duration) {
        self.queue_wait.record(queue_wait);
        self.exec.record(exec);
        self.total.record(total);
    }

    /// Fold one query's phase breakdown into the engine-phase totals.
    pub fn record_breakdown(&self, b: &netout::ExecBreakdown) {
        self.engine_set_retrieval_us
            .add(b.set_retrieval.as_micros() as u64);
        self.engine_unindexed_us
            .add(b.unindexed_vectors.as_micros() as u64);
        self.engine_indexed_us
            .add(b.indexed_vectors.as_micros() as u64);
        self.engine_scoring_us.add(b.scoring.as_micros() as u64);
    }

    /// Bump a counter by one. Kept for call-site symmetry with the old
    /// atomic-field API; equivalent to `counter.inc()`.
    pub fn inc(&self, counter: &Counter) -> u64 {
        counter.inc()
    }

    /// Refresh the scrape-time gauges from server-owned state.
    fn set_scrape_gauges(&self, queue_depth: usize, queue_cap: usize, cache: &CacheSnapshot) {
        self.uptime_ms.set(self.uptime().as_millis() as f64);
        self.queue_depth.set(queue_depth as f64);
        self.queue_cap.set(queue_cap as f64);
        self.cache_hits.set(cache.hits as f64);
        self.cache_misses.set(cache.misses as f64);
        self.cache_evictions.set(cache.evictions as f64);
        self.cache_hit_ratio
            .set(cache.hit_ratio.unwrap_or(f64::NAN));
        self.cache_len.set(cache.len as f64);
    }

    /// Render the Prometheus text exposition of every metric (the `METRICS`
    /// verb's text form). `queue_depth` and `cache` are owned by the server
    /// and passed in, as for [`ServerStats::snapshot`].
    pub fn render_metrics(
        &self,
        queue_depth: usize,
        queue_cap: usize,
        cache: CacheSnapshot,
    ) -> String {
        self.set_scrape_gauges(queue_depth, queue_cap, &cache);
        self.registry.render_prometheus()
    }

    /// The JSON form of a metrics scrape (the `METRICS JSON` verb).
    pub fn metrics_snapshot(
        &self,
        queue_depth: usize,
        queue_cap: usize,
        cache: CacheSnapshot,
    ) -> MetricsSnapshot {
        self.set_scrape_gauges(queue_depth, queue_cap, &cache);
        self.registry.snapshot()
    }

    /// Assemble a consistent snapshot. `queue_depth` and `cache` are owned
    /// by the server (channel length / shared [`netout::VectorCache`]) and
    /// passed in.
    pub fn snapshot(
        &self,
        queue_depth: usize,
        queue_cap: usize,
        cache: CacheSnapshot,
    ) -> StatsSnapshot {
        // Snapshot the uptime once; every field below reads from the same
        // instant rather than re-eyeballing the clock.
        let uptime_ms = self.uptime().as_millis() as u64;
        StatsSnapshot {
            uptime_ms,
            connections: self.connections.get(),
            requests: self.requests.get(),
            completed: self.completed.get(),
            rejected_busy: self.rejected_busy.get(),
            cancelled: self.cancelled.get(),
            degraded: self.degraded.get(),
            errors: self.errors.get(),
            in_flight: self.in_flight.get() as u64,
            panics: self.panics.get(),
            respawns: self.respawns.get(),
            deduped: self.deduped.get(),
            dropped_conns: self.dropped_conns.get(),
            queue_depth,
            queue_cap,
            cache,
            queue_wait: self.queue_wait.summary(),
            exec: self.exec.summary(),
            total: self.total.summary(),
        }
    }
}

/// Shared neighbor-vector cache counters at snapshot time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct CacheSnapshot {
    /// Vectors served from the cache.
    pub hits: u64,
    /// Vectors computed and inserted.
    pub misses: u64,
    /// Entries evicted.
    pub evictions: u64,
    /// Hit ratio in `[0,1]`; `null` before any lookup.
    pub hit_ratio: Option<f64>,
    /// Cached vectors right now.
    pub len: usize,
}

impl From<netout::CacheStats> for CacheSnapshot {
    fn from(s: netout::CacheStats) -> Self {
        CacheSnapshot {
            hits: s.hits,
            misses: s.misses,
            evictions: s.evictions,
            hit_ratio: s.hit_rate(),
            len: 0,
        }
    }
}

/// The `STATS` response body: every counter, gauge, and histogram summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct StatsSnapshot {
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Requests parsed.
    pub requests: u64,
    /// Requests answered with `result`.
    pub completed: u64,
    /// Requests rejected with `busy`.
    pub rejected_busy: u64,
    /// Requests cancelled cooperatively.
    pub cancelled: u64,
    /// Degraded (partial) results served.
    pub degraded: u64,
    /// `err` responses.
    pub errors: u64,
    /// Jobs executing right now.
    pub in_flight: u64,
    /// Isolated request panics.
    pub panics: u64,
    /// Workers respawned by the supervisor.
    pub respawns: u64,
    /// Responses replayed from the idempotency dedup cache.
    pub deduped: u64,
    /// Connections dropped by fault injection.
    pub dropped_conns: u64,
    /// Jobs waiting in the admission queue right now.
    pub queue_depth: usize,
    /// Admission queue capacity.
    pub queue_cap: usize,
    /// Shared vector-cache counters.
    pub cache: CacheSnapshot,
    /// Admission → worker-pickup latency.
    pub queue_wait: LatencySummary,
    /// Worker execution latency.
    pub exec: LatencySummary,
    /// Admission → response-written latency.
    pub total: LatencySummary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let stats = ServerStats::new();
        stats.inc(&stats.requests);
        stats.inc(&stats.requests);
        stats.inc(&stats.completed);
        stats.inc(&stats.cancelled);
        stats.record_latencies(
            Duration::from_micros(10),
            Duration::from_micros(100),
            Duration::from_micros(120),
        );
        stats.inc(&stats.panics);
        stats.inc(&stats.respawns);
        stats.inc(&stats.deduped);
        stats.inc(&stats.dropped_conns);
        let snap = stats.snapshot(3, 8, CacheSnapshot::default());
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.panics, 1);
        assert_eq!(snap.respawns, 1);
        assert_eq!(snap.deduped, 1);
        assert_eq!(snap.dropped_conns, 1);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.cancelled, 1);
        assert_eq!(snap.queue_depth, 3);
        assert_eq!(snap.queue_cap, 8);
        assert_eq!(snap.total.count, 1);
        assert!(snap.exec.p50_us >= 100);
        // Snapshot serializes to one JSON object line.
        let line = crate::json::to_string(&snap).unwrap();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"cancelled\":1"));
        // queue_wait quantiles are surfaced (satellite of ISSUE 5).
        assert_eq!(snap.queue_wait.count, 1);
        assert!(snap.queue_wait.p99_us >= 10);
        assert!(line.contains("\"queue_wait\":{"));
    }

    #[test]
    fn cache_snapshot_from_core_stats() {
        let s = netout::CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
        };
        let c = CacheSnapshot::from(s);
        assert_eq!(c.hit_ratio, Some(0.75));
    }

    #[test]
    fn metrics_exposition_covers_required_names() {
        let stats = ServerStats::new();
        stats.inc(&stats.requests);
        stats.record_latencies(
            Duration::from_micros(5),
            Duration::from_micros(40),
            Duration::from_micros(50),
        );
        stats.record_breakdown(&netout::ExecBreakdown {
            set_retrieval: Duration::from_micros(7),
            scoring: Duration::from_micros(11),
            ..Default::default()
        });
        let cache = CacheSnapshot {
            hits: 3,
            misses: 1,
            evictions: 0,
            hit_ratio: Some(0.75),
            len: 4,
        };
        let text = stats.render_metrics(2, 8, cache);
        for name in [
            "hin_requests_total",
            "hin_queue_wait_us_count",
            "hin_exec_us_bucket",
            "hin_total_us_sum",
            "hin_cache_hit_ratio 0.75",
            "hin_engine_set_retrieval_us_total 7",
            "hin_engine_scoring_us_total 11",
            "hin_queue_depth 2",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        // And the text form parses cleanly.
        let samples = hin_telemetry::parse_exposition(&text).unwrap();
        assert!(samples.iter().any(|s| s.name == "hin_in_flight"));
        // JSON form carries histogram summaries.
        let snap = stats.metrics_snapshot(2, 8, cache);
        let h = snap
            .samples
            .iter()
            .find(|s| s.name == "hin_queue_wait_us")
            .unwrap();
        assert_eq!(h.summary.unwrap().count, 1);
    }

    #[test]
    fn uptime_is_lock_free_and_monotone() {
        let stats = ServerStats::new();
        let a = stats.uptime();
        let b = stats.uptime();
        assert!(b >= a);
    }
}
